package cni_test

import (
	"fmt"

	cni "repro"
)

// ExampleQueue moves items through the paper's cachable queue used as
// a host-machine SPSC queue between goroutines.
func ExampleQueue() {
	q := cni.NewQueue[int](8)
	done := make(chan int)
	go func() {
		sum := 0
		for i := 0; i < 100; i++ {
			sum += q.Dequeue()
		}
		done <- sum
	}()
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	fmt.Println("sum:", <-done)
	// Output:
	// sum: 4950
}

// ExampleRegister shows the cachable device register's explicit-clear
// handshake: Poll does not consume, and the producer cannot publish
// again until the consumer clears.
func ExampleRegister() {
	var r cni.Register[string]
	r.Publish("status: ready")
	if v, ok := r.Poll(); ok {
		fmt.Println("poll:", v)
	}
	if !r.TryPublish("too soon") {
		fmt.Println("publish refused before clear")
	}
	r.Clear()
	if r.TryPublish("status: go") {
		v, _ := r.Take()
		fmt.Println("take:", v)
	}
	// Output:
	// poll: status: ready
	// publish refused before clear
	// take: status: go
}

// ExampleBuild scripts the simulated machine directly: build it once,
// run a scenario of per-node programs over the configured NI, and
// read the typed trace.
func ExampleBuild() {
	m, err := cni.Build(cni.Config{Nodes: 2, NI: cni.CNI512Q, Bus: cni.MemoryBus})
	if err != nil {
		panic(err)
	}
	defer m.Close()

	sc := cni.NewScenario().
		At(0, func(ep *cni.Endpoint) {
			ep.Send(1, 64, "ping")
			reply := ep.Recv()
			fmt.Printf("node 0 got %q from node %d\n", reply.Payload, reply.Src)
		}).
		At(1, func(ep *cni.Endpoint) {
			msg := ep.Recv()
			ep.Send(msg.Src, msg.Size, "pong")
		})
	tr := m.Run(sc)
	fmt.Println("network messages:", tr.Counter("net.msg"))
	// Output:
	// node 0 got "pong" from node 1
	// network messages: 2
}

// ExampleExperiments walks the typed registry and runs one entry,
// using its uniform machine-readable Data.
func ExampleExperiments() {
	for _, e := range cni.Experiments()[:2] {
		fmt.Printf("%s %v\n", e.Name, e.Tags)
	}
	table1, _ := cni.LookupExperiment("table1")
	_, data := table1.Run(cni.RunOptions{})
	fmt.Println("rows:", len(data.Rows), "first:", data.Rows[0][0])
	// Output:
	// table1 [paper table]
	// table2 [paper table]
	// rows: 5 first: NI2w
}
