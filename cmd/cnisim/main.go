// Command cnisim regenerates the tables and figures of "Coherent
// Network Interfaces for Fine-Grain Communication" (ISCA 1996) on the
// reproduction's simulator.
//
// Usage:
//
//	cnisim list
//	cnisim table1|table2|table3|table4
//	cnisim fig6 [--bus=memory|io|alt]
//	cnisim fig7 [--bus=memory|io|alt]
//	cnisim fig8 [--bus=memory|io|alt] [--apps=spsolve,gauss,...]
//	cnisim occupancy [--apps=...]
//	cnisim ablation
//	cnisim sweep
//	cnisim dma
//	cnisim congestion
//	cnisim latency --ni=CNI512Q --bus=memory --size=64 [--topology=torus]
//	cnisim bandwidth --ni=CNI512Q --bus=memory --size=4096 [--topology=torus]
//	cnisim incast --ni=CNI512Q --bus=memory --size=244 [--topology=torus]
//	cnisim exchange --ni=CNI512Q --bus=memory --size=64 [--topology=torus]
//	cnisim bench --app=spsolve --ni=CNI16Qm --bus=memory [--topology=torus]
//	cnisim loadsweep [--arrival=poisson|bursty|closed] [--zipf=1.1] [--ni=...] [--topology=...]
//	cnisim loadsweep --load=8 --ni=CNI512Q --topology=torus [--nodes=4096 --shards=64]
//	cnisim faultsweep [--drop=1e-3] [--degrade=4] [--seed=7] [--ni=...] [--topology=...]
//	cnisim benchjson [--out=BENCH_sim.json] [--check]
//	cnisim trace loadsweep --topology=torus [--out=trace.json] [--sample-every=1000]
//	cnisim all
//
// The global --trace=out.json / --sample-every=N / --progress flags
// work on every command: any machine the command builds records its
// message lifecycles (and optionally periodic occupancy samples) and
// the merged timeline is written as Chrome trace-event JSON, loadable
// in Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	cni "repro"
)

func main() {
	// Profile and telemetry flags are shared by every subcommand and
	// may sit before or after the command word; strip them before
	// dispatch.
	prof, args, err := parseProfileFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnisim:", err)
		os.Exit(2)
	}
	tf, args, err := parseTraceFlags(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnisim:", err)
		os.Exit(2)
	}
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := args[0], args[1:]
	stopProf, err := prof.start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnisim:", err)
		os.Exit(1)
	}
	if cmd == "trace" {
		// The dedicated trace command owns the telemetry flags itself.
		err = runTrace(tf, args)
	} else {
		var finishTrace func() error
		finishTrace, err = tf.install()
		if err == nil {
			err = run(cmd, args)
			if terr := finishTrace(); err == nil {
				err = terr
			}
		}
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnisim:", err)
		os.Exit(1)
	}
}

// usageText is the command summary; main_test.go checks it stays in
// sync with cni.ExperimentNames().
const usageText = `usage: cnisim <command> [flags]

commands:
  list              list experiments (--json: the registry with titles and tags)
  table1..table4    the paper's tables
  fig6|fig7|fig8    the paper's figures (--bus=memory|io|alt)
  occupancy         §5.2 memory-bus occupancy (--apps=...)
  ablation          CQ optimisation ablation
  sweep             queue-size sweep
  dma               CNI vs user-level-DMA comparison
  congestion        probe RTT/bandwidth under load, flat vs torus
  loadsweep         offered-load sweep to saturation with tail-latency telemetry
                    (--arrival --zipf --ni --topology --seed;
                    --load=MB/s per node measures one point instead, scalable
                    with --nodes and --shards: a torus machine over 16 nodes
                    with --shards=N runs the sharded conservative-lookahead
                    engine, byte-identical across shard counts)
  faultsweep        goodput/tail latency vs injected drop rate under the
                    reliable transport (--drop --degrade --seed --ni --topology)
  rpc               datacenter RPC fan-out tail-at-scale sweep with aggregated
                    million-client populations (--clients --client-zipf --hedge
                    --hedge-after --ni --topology --seed; --fanout=k measures one
                    point instead, optionally with the --incast-chunk=B storage preset)
  collective        collective-schedule sweep: completion time and per-step skew
                    (--bytes --ni --topology; --schedule=ring-allreduce|rd-allreduce|
                    alltoall|broadcast runs one schedule with per-step detail,
                    scalable with --nodes and --shards; rd-allreduce needs a
                    power-of-two node count)
  latency           one 2-node round-trip measurement (--ni --bus --size --topology)
  bandwidth         one 2-node bandwidth measurement (--ni --bus --size --topology)
  incast            hotspot incast: all nodes stream to node 0 (--ni --bus --nodes --size --count --topology)
  exchange          personalised all-to-all (--ni --bus --nodes --size --rounds --topology)
  bench             one macrobenchmark run (--app --ni --bus --nodes --topology)
  benchjson         write headline perf metrics to BENCH_sim.json (--out; --check diffs canaries)
  trace             run one target (loadsweep, rpc, collective, latency,
                    bandwidth, incast, exchange)
                    with full telemetry and write its Perfetto-loadable timeline
                    (--out --sample-every --ni --bus --topology --size --nodes)
  all               every experiment in sequence

flags:
  --topology=flat|torus           interconnect fabric (default flat, the paper's model)
  --arrival=poisson|bursty|closed workload arrival process (loadsweep)
  --json=path  --csv=path         machine-readable export, uniform across every
                                  experiment command ("-" writes to stdout and
                                  suppresses the human-readable table)
  --trace=path                    record message lifecycles on every machine the
                                  command builds; write one merged Chrome trace
                                  JSON (open in https://ui.perfetto.dev)
  --sample-every=N                with --trace: sample link/queue/window occupancy
                                  and counter rates every N simulated cycles
  --progress                      heartbeat sweep progress to stderr (loadsweep,
                                  faultsweep, rpc, collective)
  --cpuprofile=path               write a pprof CPU profile of the run (any command)
  --memprofile=path               write a pprof heap profile at exit (any command)`

func usage() {
	fmt.Fprintln(os.Stderr, usageText)
}

func run(cmd string, args []string) error {
	switch cmd {
	case "list":
		return runList(args)
	case "table1", "table2", "table3", "table4",
		"ablation", "sweep", "dma", "congestion":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		jsonOut, csvOut := exportFlags(fs)
		if err := fs.Parse(args); err != nil {
			return err
		}
		return show(cmd, nil, *jsonOut, *csvOut)
	case "fig6", "fig7", "fig8", "occupancy":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		bus := fs.String("bus", "memory", "memory, io, or alt")
		appList := fs.String("apps", "", "comma-separated benchmark subset")
		jsonOut, csvOut := exportFlags(fs)
		if err := fs.Parse(args); err != nil {
			return err
		}
		name := cmd
		if cmd != "occupancy" {
			name = cmd + "-" + *bus
		}
		return show(name, splitApps(*appList), *jsonOut, *csvOut)
	case "latency", "bandwidth", "incast", "exchange":
		return runMicro(cmd, args)
	case "loadsweep":
		return runLoadSweep(args)
	case "faultsweep":
		return runFaultSweep(args)
	case "rpc":
		return runRPC(args)
	case "collective":
		return runCollective(args)
	case "bench":
		return runBench(args)
	case "benchjson":
		return runBenchJSON(args)
	case "all":
		for _, n := range cni.ExperimentNames() {
			if err := show(n, nil, "", ""); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runList prints the experiment names, or the full registry (name,
// title, tags) as JSON with --json.
func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the registry (name, title, tags) as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*asJSON {
		for _, n := range cni.ExperimentNames() {
			fmt.Println(n)
		}
		return nil
	}
	type entry struct {
		Name  string   `json:"name"`
		Title string   `json:"title"`
		Tags  []string `json:"tags"`
	}
	out := make([]entry, 0, len(cni.Experiments()))
	for _, e := range cni.Experiments() {
		out = append(out, entry{Name: e.Name, Title: e.Title, Tags: e.Tags})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// exportFlags installs the uniform machine-readable export flags.
func exportFlags(fs *flag.FlagSet) (jsonOut, csvOut *string) {
	jsonOut = fs.String("json", "", `write the machine-readable result (JSON) to this path ("-" = stdout)`)
	csvOut = fs.String("csv", "", `write the result grid (CSV) to this path ("-" = stdout)`)
	return jsonOut, csvOut
}

func show(name string, apps []string, jsonOut, csvOut string) error {
	// Flag conflicts fail before the (possibly multi-minute) run.
	if err := validateExport(jsonOut, csvOut); err != nil {
		return err
	}
	t, d, err := cni.ExperimentData(name, cni.RunOptions{Apps: apps})
	if err != nil {
		return err
	}
	printTable(t, jsonOut, csvOut)
	return export(d, jsonOut, csvOut)
}

// printTable renders the human-readable table, unless an exporter is
// aimed at stdout — then the stream must stay machine-parseable.
func printTable(t *cni.Table, jsonOut, csvOut string) {
	if jsonOut == "-" || csvOut == "-" {
		return
	}
	fmt.Print(t.String())
}

// validateExport rejects export-flag combinations up front.
func validateExport(jsonOut, csvOut string) error {
	if jsonOut == "-" && csvOut == "-" {
		return fmt.Errorf("--json=- and --csv=- cannot share stdout; send at most one format there")
	}
	return nil
}

// export writes an experiment's Data per the --json/--csv flags.
func export(d *cni.Data, jsonOut, csvOut string) error {
	if err := validateExport(jsonOut, csvOut); err != nil {
		return err
	}
	if jsonOut != "" {
		data, err := d.JSON()
		if err != nil {
			return err
		}
		if err := writeOut(jsonOut, data); err != nil {
			return err
		}
	}
	if csvOut != "" {
		if err := writeOut(csvOut, []byte(d.CSV())); err != nil {
			return err
		}
	}
	return nil
}

// writeOut writes to a file or to stdout ("-"). The announcement goes
// to stderr so a "-" exporter combined with a file exporter still
// leaves stdout machine-parseable.
func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func splitApps(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// parseConfig resolves --ni/--bus/--topology flags to a Config.
func parseConfig(ni, bus, topology string, nodes int) (cni.Config, error) {
	cfg := cni.Config{Nodes: nodes}
	topo, err := cni.ParseTopology(topology)
	if err != nil {
		return cfg, err
	}
	cfg.Topology = topo
	kind, err := parseNI(ni)
	if err != nil {
		return cfg, err
	}
	cfg.NI = kind
	switch bus {
	case "cache":
		cfg.Bus = cni.CacheBus
	case "memory":
		cfg.Bus = cni.MemoryBus
	case "io":
		cfg.Bus = cni.IOBus
	default:
		return cfg, fmt.Errorf("unknown bus %q (valid: cache, memory, io)", bus)
	}
	return cfg, cfg.Validate()
}

// parseNI resolves an NI design name; the valid set and its
// valid-values error live in params (one place to extend).
func parseNI(ni string) (cni.NIKind, error) { return cni.ParseNI(ni) }

func runMicro(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	ni := fs.String("ni", "CNI512Q", "NI design")
	bus := fs.String("bus", "memory", "bus attachment")
	topology := fs.String("topology", "flat", "interconnect fabric (flat or torus)")
	size := fs.Int("size", 64, "message payload bytes")
	// latency/bandwidth are 2-node by definition; only the collectives
	// take a node count, so a stray --nodes cannot silently mislead.
	var nodes, count, rounds *int
	switch cmd {
	case "incast":
		nodes = fs.Int("nodes", 16, "node count")
		count = fs.Int("count", 24, "messages per sender")
	case "exchange":
		nodes = fs.Int("nodes", 16, "node count")
		rounds = fs.Int("rounds", 3, "exchange rounds")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	n := 2
	if nodes != nil {
		n = *nodes
	}
	cfg, err := parseConfig(*ni, *bus, *topology, n)
	if err != nil {
		return err
	}
	switch cmd {
	case "latency":
		rtt := cni.RoundTrip(cfg, *size, 4)
		fmt.Printf("%s %dB round-trip: %d cycles (%.2f us)\n",
			cfg.Name(), *size, rtt, cni.Microseconds(rtt))
	case "bandwidth":
		bw := cni.Bandwidth(cfg, *size, 200)
		bound := cni.LocalQueueBandwidth()
		fmt.Printf("%s %dB bandwidth: %.1f MB/s (%.2f of the %.0f MB/s local-queue bound)\n",
			cfg.Name(), *size, bw, bw/bound, bound)
	case "incast":
		bw := cni.HotspotIncast(cfg, *size, *count)
		fmt.Printf("%s %d-node incast, %dB x %d/sender: %.1f MB/s delivered at the sink\n",
			cfg.Name(), cfg.Nodes, *size, *count, bw)
	case "exchange":
		cyc := cni.AllToAllExchange(cfg, *size, *rounds)
		fmt.Printf("%s %d-node all-to-all, %dB: %d cycles/round (%.2f us)\n",
			cfg.Name(), cfg.Nodes, *size, cyc, cni.Microseconds(cyc))
	}
	return nil
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	app := fs.String("app", "spsolve", "benchmark name")
	ni := fs.String("ni", "CNI16Qm", "NI design")
	bus := fs.String("bus", "memory", "bus attachment")
	topology := fs.String("topology", "flat", "interconnect fabric (flat or torus)")
	nodes := fs.Int("nodes", 16, "node count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := parseConfig(*ni, *bus, *topology, *nodes)
	if err != nil {
		return err
	}
	res, err := cni.RunBenchmark(*app, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.String())
	return nil
}
