// Command cnisim regenerates the tables and figures of "Coherent
// Network Interfaces for Fine-Grain Communication" (ISCA 1996) on the
// reproduction's simulator.
//
// Usage:
//
//	cnisim list
//	cnisim table1|table2|table3|table4
//	cnisim fig6 [--bus=memory|io|alt]
//	cnisim fig7 [--bus=memory|io|alt]
//	cnisim fig8 [--bus=memory|io|alt] [--apps=spsolve,gauss,...]
//	cnisim occupancy [--apps=...]
//	cnisim ablation
//	cnisim sweep
//	cnisim latency --ni=CNI512Q --bus=memory --size=64
//	cnisim bandwidth --ni=CNI512Q --bus=memory --size=4096
//	cnisim bench --app=spsolve --ni=CNI16Qm --bus=memory
//	cnisim benchjson [--out=BENCH_sim.json]
//	cnisim all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	cni "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	if err := run(cmd, args); err != nil {
		fmt.Fprintln(os.Stderr, "cnisim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cnisim <command> [flags]

commands:
  list              list experiments
  table1..table4    the paper's tables
  fig6|fig7|fig8    the paper's figures (--bus=memory|io|alt)
  occupancy         §5.2 memory-bus occupancy (--apps=...)
  ablation          CQ optimisation ablation
  sweep             queue-size sweep
  latency           one round-trip measurement (--ni --bus --size)
  bandwidth         one bandwidth measurement (--ni --bus --size)
  bench             one macrobenchmark run (--app --ni --bus)
  benchjson         write headline perf metrics to BENCH_sim.json (--out)
  all               every experiment in sequence`)
}

func run(cmd string, args []string) error {
	switch cmd {
	case "list":
		for _, n := range cni.ExperimentNames() {
			fmt.Println(n)
		}
		return nil
	case "table1", "table2", "table3", "table4":
		return show(cmd, nil)
	case "fig6", "fig7", "fig8", "occupancy":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		bus := fs.String("bus", "memory", "memory, io, or alt")
		appList := fs.String("apps", "", "comma-separated benchmark subset")
		if err := fs.Parse(args); err != nil {
			return err
		}
		name := cmd
		if cmd != "occupancy" {
			name = cmd + "-" + *bus
		}
		return show(name, splitApps(*appList))
	case "ablation":
		return show("ablation", nil)
	case "sweep":
		return show("sweep", nil)
	case "dma":
		return show("dma", nil)
	case "latency", "bandwidth":
		return runMicro(cmd, args)
	case "bench":
		return runBench(args)
	case "benchjson":
		return runBenchJSON(args)
	case "all":
		for _, n := range cni.ExperimentNames() {
			if err := show(n, nil); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func show(name string, apps []string) error {
	t, err := cni.Experiment(name, apps)
	if err != nil {
		return err
	}
	fmt.Print(t.String())
	return nil
}

func splitApps(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// parseConfig resolves --ni/--bus flags to a Config.
func parseConfig(ni, bus string, nodes int) (cni.Config, error) {
	cfg := cni.Config{Nodes: nodes}
	switch strings.ToLower(ni) {
	case "ni2w":
		cfg.NI = cni.NI2w
	case "cni4":
		cfg.NI = cni.CNI4
	case "cni16q":
		cfg.NI = cni.CNI16Q
	case "cni512q":
		cfg.NI = cni.CNI512Q
	case "cni16qm":
		cfg.NI = cni.CNI16Qm
	case "dma":
		cfg.NI = cni.DMA
	default:
		return cfg, fmt.Errorf("unknown NI %q", ni)
	}
	switch bus {
	case "cache":
		cfg.Bus = cni.CacheBus
	case "memory":
		cfg.Bus = cni.MemoryBus
	case "io":
		cfg.Bus = cni.IOBus
	default:
		return cfg, fmt.Errorf("unknown bus %q", bus)
	}
	return cfg, cfg.Validate()
}

func runMicro(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	ni := fs.String("ni", "CNI512Q", "NI design")
	bus := fs.String("bus", "memory", "bus attachment")
	size := fs.Int("size", 64, "message payload bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := parseConfig(*ni, *bus, 2)
	if err != nil {
		return err
	}
	switch cmd {
	case "latency":
		rtt := cni.RoundTrip(cfg, *size, 4)
		fmt.Printf("%s %dB round-trip: %d cycles (%.2f us)\n",
			cfg.Name(), *size, rtt, cni.Microseconds(rtt))
	case "bandwidth":
		bw := cni.Bandwidth(cfg, *size, 200)
		bound := cni.LocalQueueBandwidth()
		fmt.Printf("%s %dB bandwidth: %.1f MB/s (%.2f of the %.0f MB/s local-queue bound)\n",
			cfg.Name(), *size, bw, bw/bound, bound)
	}
	return nil
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	app := fs.String("app", "spsolve", "benchmark name")
	ni := fs.String("ni", "CNI16Qm", "NI design")
	bus := fs.String("bus", "memory", "bus attachment")
	nodes := fs.Int("nodes", 16, "node count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := parseConfig(*ni, *bus, *nodes)
	if err != nil {
		return err
	}
	res, err := cni.RunBenchmark(*app, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.String())
	return nil
}
