package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	cni "repro"
	"repro/internal/harness"
	"repro/internal/sim"
)

// benchReport is the machine-readable performance snapshot written by
// `cnisim benchjson`. Fields with _cycles/_mbps suffixes are simulated
// results (they must not drift without a model change); _per_sec and
// _ms fields are host-performance numbers that track the perf
// trajectory of the simulator itself.
type benchReport struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Engine substrate.
	EngineEventsPerSec   float64 `json:"engine_events_per_sec"`
	EngineAllocsPerEvent float64 `json:"engine_allocs_per_event"`

	// Simulated headline results (determinism canaries).
	RTT64BCNI512QCycles uint64  `json:"rtt_64B_cni512q_cycles"`
	BW4KBCNI512QMBps    float64 `json:"bw_4096B_cni512q_mbps"`

	// Experiment-harness wall clock (host).
	Fig6MemoryWallMs float64 `json:"fig6_memory_wall_ms"`
	Fig7MemoryWallMs float64 `json:"fig7_memory_wall_ms"`
}

// engineThroughput measures steady-state schedule+dispatch events/sec
// and allocations per event on a fresh engine.
func engineThroughput() (eps, allocsPerEvent float64) {
	const events = 2_000_000
	const fanout = 64
	e := sim.NewEngine()
	n := 0
	fn := func() { n++ }
	// Warm population: one pending event per cycle 0..fanout-1. Each
	// measured iteration pops exactly the event at time i and pushes a
	// replacement at i+fanout, holding the heap at a constant
	// fanout-event depth (the same regime BenchmarkEngineEvents pins).
	for i := 0; i < fanout; i++ {
		e.Schedule(sim.Time(i), fn)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < events; i++ {
		e.Run(sim.Time(i))
		e.Schedule(fanout, fn)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	e.RunAll()
	return float64(events) / wall.Seconds(),
		float64(after.Mallocs-before.Mallocs) / float64(events)
}

func timeTable(f func() *harness.Table) float64 {
	start := time.Now()
	f()
	return float64(time.Since(start).Microseconds()) / 1000
}

func runBenchJSON(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	out := fs.String("out", "BENCH_sim.json", "output path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r benchReport
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.EngineEventsPerSec, r.EngineAllocsPerEvent = engineThroughput()

	cfg := cni.Config{Nodes: 2, NI: cni.CNI512Q, Bus: cni.MemoryBus}
	r.RTT64BCNI512QCycles = uint64(cni.RoundTrip(cfg, 64, 4))
	r.BW4KBCNI512QMBps = cni.Bandwidth(cfg, 4096, 200)

	r.Fig6MemoryWallMs = timeTable(func() *harness.Table { return harness.Fig6(cni.MemoryBus) })
	r.Fig7MemoryWallMs = timeTable(func() *harness.Table { return harness.Fig7(cni.MemoryBus) })

	data, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
