package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	cni "repro"
	"repro/internal/harness"
	"repro/internal/sim"
)

// benchReport is the machine-readable performance snapshot written by
// `cnisim benchjson`. Fields with _cycles/_mbps suffixes are simulated
// results (they must not drift without a model change); _per_sec and
// _ms fields are host-performance numbers that track the perf
// trajectory of the simulator itself.
type benchReport struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Engine substrate.
	EngineEventsPerSec   float64 `json:"engine_events_per_sec"`
	EngineAllocsPerEvent float64 `json:"engine_allocs_per_event"`

	// Heaviest-path simulator throughput: one torus loadsweep point at
	// the saturation knee (the BenchmarkTorusLoadsweep workload),
	// reported as delivered user messages per wall-clock second. The
	// delivered count is simulated and exact — --check diffs it — while
	// the per-second rate is host perf (--check only requires the
	// committed snapshot to carry one, so the metric cannot silently
	// vanish). PreSoA is the same metric measured on the pre-SoA
	// pre-direct-handoff simulator on the reference host, kept as the
	// denominator of the recorded speedup.
	TorusLoadsweepEventsPerSec  float64 `json:"torus_loadsweep_events_per_sec"`
	TorusLoadsweepDeliveredMsgs uint64  `json:"torus_loadsweep_delivered_msgs"`
	TorusLoadsweepPreSoAPerSec  float64 `json:"torus_loadsweep_events_per_sec_pre_soa"`

	// Simulated headline results (determinism canaries).
	RTT64BCNI512QCycles uint64  `json:"rtt_64B_cni512q_cycles"`
	BW4KBCNI512QMBps    float64 `json:"bw_4096B_cni512q_mbps"`
	// TorusProbeRTTCycles pins the congestion model: probe RTT under
	// heavy hotspot load on the 16-node torus.
	TorusProbeRTTCycles uint64 `json:"torus_hotspot_rtt_64B_cni512q_cycles"`
	// The loadsweep canaries pin the workload/telemetry subsystem:
	// CNI512Q's saturation offered load (knee) for the Zipf-hotspot
	// workload per fabric. The torus value must sit strictly below
	// the flat one — converging hotspot flows queue on shared links —
	// and --check enforces the relation as well as the exact values.
	LoadsweepFlatKneeMBps  float64 `json:"loadsweep_flat_knee_cni512q_mbps"`
	LoadsweepTorusKneeMBps float64 `json:"loadsweep_torus_knee_cni512q_mbps"`

	// The datacenter-pack canaries pin the dcn subsystem. The rpc knee
	// is p99.9 at the top of the fan-out ladder (k=8) on the sweep's
	// headline cell (CNI512Q, flat, sweep windows and population): the
	// tail-at-scale number the rpc table leads with. The ring-allreduce
	// completions pin the collective scheduler per fabric; --check also
	// enforces flat < torus (the torus serialises the ring's neighbour
	// hops over shared links).
	RPCP999K8CNI512QUs       float64 `json:"rpc_p999_k8_cni512q_us"`
	RingAllreduceFlatCycles  uint64  `json:"ring_allreduce_flat_cni512q_cycles"`
	RingAllreduceTorusCycles uint64  `json:"ring_allreduce_torus_cni512q_cycles"`

	// The sharded-engine canaries: the Shard4kBench point (uniform
	// overload, 4096-node torus) on the sharded engine at 64 shards vs
	// the legacy serial engine. The delivered count is simulated and
	// exact — --check diffs it and additionally re-runs the point at 1
	// shard, which must deliver identically (shard-count invariance at
	// scale) — while the per-second rates and the speedup are host perf:
	// --check gates the speedup above shard4kMinSpeedup using best-of-3
	// run-phase timings. Events here are delivered user messages per
	// wall-clock second of run phase (construction excluded), the same
	// convention as torus_loadsweep_events_per_sec.
	EventsPerSec4kNodes       float64 `json:"events_per_sec_4k_nodes"`
	EventsPerSec4kNodesSerial float64 `json:"events_per_sec_4k_nodes_serial"`
	Shard4kDeliveredMsgs      uint64  `json:"shard_4k_delivered_msgs"`
	Shard4kSpeedup            float64 `json:"shard_4k_speedup"`

	// TraceOverheadPct is the wall-clock cost of full telemetry
	// (lifecycle recorder + sampler at the default period) on the same
	// torus loadsweep point, in percent over the untraced run. The
	// traced run's delivered count must equal the untraced canary —
	// tracing is inert — and --check gates the overhead under 15%.
	TraceOverheadPct float64 `json:"trace_overhead_pct"`

	// Experiment-harness wall clock (host).
	Fig6MemoryWallMs float64 `json:"fig6_memory_wall_ms"`
	Fig7MemoryWallMs float64 `json:"fig7_memory_wall_ms"`
}

// engineThroughput measures steady-state schedule+dispatch events/sec
// and allocations per event on a fresh engine.
func engineThroughput() (eps, allocsPerEvent float64) {
	const events = 2_000_000
	const fanout = 64
	e := sim.NewEngine()
	n := 0
	fn := func() { n++ }
	// Warm population: one pending event per cycle 0..fanout-1. Each
	// measured iteration pops exactly the event at time i and pushes a
	// replacement at i+fanout, holding the heap at a constant
	// fanout-event depth (the same regime BenchmarkEngineEvents pins).
	for i := 0; i < fanout; i++ {
		e.Schedule(sim.Time(i), fn)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < events; i++ {
		e.Run(sim.Time(i))
		e.Schedule(fanout, fn)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	e.RunAll()
	return float64(events) / wall.Seconds(),
		float64(after.Mallocs-before.Mallocs) / float64(events)
}

// preSoAEventsPerSec is torus_loadsweep_events_per_sec measured at the
// commit before the struct-of-arrays + direct-handoff scheduler work,
// on the reference host that produced the committed BENCH_sim.json.
const preSoAEventsPerSec = 7128.0

// torusLoadsweepThroughput runs the heaviest-path load point once
// under the given trace spec and returns host throughput plus the
// (deterministic) delivered count.
func torusLoadsweepThroughput(spec cni.TraceSpec) (eps float64, delivered uint64) {
	wl := cni.DefaultWorkload()
	wl.OfferedMBps = cni.LoadsweepBenchPerNodeMBps
	cfg := cni.Config{Nodes: cni.LoadsweepBenchNodes, NI: cni.CNI512Q,
		Bus: cni.MemoryBus, Topology: cni.TopoTorus, Workload: &wl, Trace: spec}
	start := time.Now()
	rep := cni.MeasureLoad(cfg, cni.LoadsweepBenchWarm, cni.LoadsweepBenchMeasure)
	wall := time.Since(start).Seconds()
	return float64(rep.Delivered) / wall, rep.Delivered
}

// shard4kMinSpeedup is the floor --check enforces on the sharded
// engine's run-phase speedup over the serial engine at 4096 nodes.
// The win comes from 64 shallow per-shard heaps replacing one
// machine-wide heap (the overloaded fabric keeps it deep) and from
// each epoch touching one 64-node row's state instead of striding the
// whole machine, so it holds on a single-core host too; extra cores
// only widen it.
const shard4kMinSpeedup = 1.5

// shard4kPoint runs the Shard4kBench workload point at the given shard
// count (0 = legacy serial engine) and returns delivered user messages
// per run-phase wall-clock second plus the (deterministic) delivered
// count and the run-phase seconds themselves.
func shard4kPoint(shards int) (eps float64, delivered uint64, secs float64) {
	wl := cni.DefaultWorkload()
	wl.OfferedMBps = cni.Shard4kBenchPerNodeMBps
	wl.ZipfS = 0 // uniform destinations; see harness.Shard4kBench*
	cfg := cni.Config{Nodes: cni.Shard4kBenchNodes, NI: cni.CNI16Q,
		Bus: cni.MemoryBus, Topology: cni.TopoTorus, Shards: shards, Workload: &wl}
	rep, secs := cni.MeasureLoadTimed(cfg, cni.Shard4kBenchWarm, cni.Shard4kBenchMeasure)
	return float64(rep.Delivered) / secs, rep.Delivered, secs
}

// shard4kSpeedup measures the sharded-vs-serial run-phase speedup at
// the Shard4kBench point, best of three runs each to damp host
// scheduling noise, and returns both rates plus the sharded run's
// delivered count.
func shard4kSpeedup() (eps, epsSerial, speedup float64, delivered uint64) {
	best := func(shards int) (eps, secs float64, delivered uint64) {
		secs = 1e18
		for i := 0; i < 3; i++ {
			e, d, s := shard4kPoint(shards)
			if s < secs {
				eps, secs = e, s
			}
			delivered = d
		}
		return eps, secs, delivered
	}
	epsSerial, serialSecs, _ := best(0)
	eps, shardSecs, delivered := best(cni.Shard4kBenchShards)
	return eps, epsSerial, serialSecs / shardSecs, delivered
}

// traceOverhead measures the telemetry tax: the torus loadsweep point
// with and without the full trace spec (recorder + default-period
// sampler), best of three each to damp host scheduling noise. It also
// returns the traced run's delivered count so --check can pin trace
// inertness on the heaviest path.
func traceOverhead() (pct float64, tracedDelivered uint64) {
	spec := cni.TraceSpec{Enabled: true, SampleEvery: cni.TraceSampleDefault}
	best := func(s cni.TraceSpec) (eps float64, delivered uint64) {
		for i := 0; i < 3; i++ {
			e, d := torusLoadsweepThroughput(s)
			if e > eps {
				eps = e
			}
			delivered = d
		}
		return eps, delivered
	}
	off, _ := best(cni.TraceSpec{})
	on, tracedDelivered := best(spec)
	return (off/on - 1) * 100, tracedDelivered
}

func timeTable(f func() *harness.Table) float64 {
	start := time.Now()
	f()
	return float64(time.Since(start).Microseconds()) / 1000
}

// canaries computes the simulated determinism canaries (no host-perf
// fields), shared by the write and --check paths.
func canaries(r *benchReport) {
	cfg := cni.Config{Nodes: 2, NI: cni.CNI512Q, Bus: cni.MemoryBus}
	r.RTT64BCNI512QCycles = uint64(cni.RoundTrip(cfg, 64, 4))
	r.BW4KBCNI512QMBps = cni.Bandwidth(cfg, 4096, 200)
	torus := cni.Config{Nodes: 16, NI: cni.CNI512Q, Bus: cni.MemoryBus, Topology: cni.TopoTorus}
	r.TorusProbeRTTCycles = uint64(cni.ProbeRTT(torus, 64, 8, 1000))
	_, rows := cni.LoadSweep(cni.SweepOptions{NIs: []cni.NIKind{cni.CNI512Q}})
	r.LoadsweepFlatKneeMBps = rows[0].KneeOfferedMBps
	r.LoadsweepTorusKneeMBps = rows[1].KneeOfferedMBps
	r.TorusLoadsweepEventsPerSec, r.TorusLoadsweepDeliveredMsgs = torusLoadsweepThroughput(cni.TraceSpec{})
	r.TorusLoadsweepPreSoAPerSec = preSoAEventsPerSec

	// Datacenter pack: the rpc sweep's headline tail point and the
	// ring-allreduce completion per fabric. Specs are constructed, not
	// user input, so a run error is a bug.
	rpcFlat := cni.Config{Nodes: 16, NI: cni.CNI512Q, Bus: cni.MemoryBus}
	rpcRep, err := cni.RunRPC(rpcFlat, cni.RPCSpecFor(cni.RPCOptions{}, 8, cni.RPCSweepThink),
		cni.RPCSweepWarm, cni.RPCSweepMeasure)
	if err != nil {
		panic(err)
	}
	r.RPCP999K8CNI512QUs = cni.Microseconds(rpcRep.Latency.Quantile(0.999))
	ringCycles := func(topo cni.Topology) uint64 {
		cfg := cni.Config{Nodes: 16, NI: cni.CNI512Q, Bus: cni.MemoryBus, Topology: topo}
		rep, err := cni.RunCollective(cfg, cni.DefaultCollectiveSpec())
		if err != nil {
			panic(err)
		}
		return uint64(rep.CompletionCycles)
	}
	r.RingAllreduceFlatCycles = ringCycles(cni.TopoFlat)
	r.RingAllreduceTorusCycles = ringCycles(cni.TopoTorus)
}

// checkCanaries regenerates the simulated canaries and diffs them
// against the committed snapshot, so timing-model drift fails CI
// instead of being silently overwritten.
func checkCanaries(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed benchReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	var fresh benchReport
	canaries(&fresh)
	var drift []string
	if fresh.RTT64BCNI512QCycles != committed.RTT64BCNI512QCycles {
		drift = append(drift, fmt.Sprintf("rtt_64B_cni512q_cycles: committed %d, fresh %d",
			committed.RTT64BCNI512QCycles, fresh.RTT64BCNI512QCycles))
	}
	if fresh.BW4KBCNI512QMBps != committed.BW4KBCNI512QMBps {
		drift = append(drift, fmt.Sprintf("bw_4096B_cni512q_mbps: committed %v, fresh %v",
			committed.BW4KBCNI512QMBps, fresh.BW4KBCNI512QMBps))
	}
	if fresh.TorusProbeRTTCycles != committed.TorusProbeRTTCycles {
		drift = append(drift, fmt.Sprintf("torus_hotspot_rtt_64B_cni512q_cycles: committed %d, fresh %d",
			committed.TorusProbeRTTCycles, fresh.TorusProbeRTTCycles))
	}
	if fresh.LoadsweepFlatKneeMBps != committed.LoadsweepFlatKneeMBps {
		drift = append(drift, fmt.Sprintf("loadsweep_flat_knee_cni512q_mbps: committed %v, fresh %v",
			committed.LoadsweepFlatKneeMBps, fresh.LoadsweepFlatKneeMBps))
	}
	if fresh.LoadsweepTorusKneeMBps != committed.LoadsweepTorusKneeMBps {
		drift = append(drift, fmt.Sprintf("loadsweep_torus_knee_cni512q_mbps: committed %v, fresh %v",
			committed.LoadsweepTorusKneeMBps, fresh.LoadsweepTorusKneeMBps))
	}
	if fresh.TorusLoadsweepDeliveredMsgs != committed.TorusLoadsweepDeliveredMsgs {
		drift = append(drift, fmt.Sprintf("torus_loadsweep_delivered_msgs: committed %d, fresh %d",
			committed.TorusLoadsweepDeliveredMsgs, fresh.TorusLoadsweepDeliveredMsgs))
	}
	if fresh.RPCP999K8CNI512QUs != committed.RPCP999K8CNI512QUs {
		drift = append(drift, fmt.Sprintf("rpc_p999_k8_cni512q_us: committed %v, fresh %v",
			committed.RPCP999K8CNI512QUs, fresh.RPCP999K8CNI512QUs))
	}
	if fresh.RingAllreduceFlatCycles != committed.RingAllreduceFlatCycles {
		drift = append(drift, fmt.Sprintf("ring_allreduce_flat_cni512q_cycles: committed %d, fresh %d",
			committed.RingAllreduceFlatCycles, fresh.RingAllreduceFlatCycles))
	}
	if fresh.RingAllreduceTorusCycles != committed.RingAllreduceTorusCycles {
		drift = append(drift, fmt.Sprintf("ring_allreduce_torus_cni512q_cycles: committed %d, fresh %d",
			committed.RingAllreduceTorusCycles, fresh.RingAllreduceTorusCycles))
	}
	if fresh.RingAllreduceFlatCycles >= fresh.RingAllreduceTorusCycles {
		drift = append(drift, fmt.Sprintf("ring-allreduce inversion: flat %d cycles must complete strictly before torus %d (neighbour hops serialise on shared torus links)",
			fresh.RingAllreduceFlatCycles, fresh.RingAllreduceTorusCycles))
	}
	if committed.TorusLoadsweepEventsPerSec <= 0 {
		drift = append(drift, "torus_loadsweep_events_per_sec: committed snapshot carries no throughput; regenerate with `cnisim benchjson`")
	}
	if committed.TraceOverheadPct == 0 {
		drift = append(drift, "trace_overhead_pct: committed snapshot carries no trace-overhead measurement; regenerate with `cnisim benchjson`")
	}
	if committed.EventsPerSec4kNodes <= 0 || committed.Shard4kSpeedup == 0 {
		drift = append(drift, "events_per_sec_4k_nodes: committed snapshot carries no sharded-engine measurement; regenerate with `cnisim benchjson`")
	}
	// The sharded-engine canaries: the 4096-node point's delivered
	// count is exact; one shard must reproduce sixteen (shard-count
	// invariance at scale, the serial-reference ordering); and sharding
	// must actually pay on the host.
	_, _, speedup4k, delivered4k := shard4kSpeedup()
	if delivered4k != committed.Shard4kDeliveredMsgs {
		drift = append(drift, fmt.Sprintf("shard_4k_delivered_msgs: committed %d, fresh %d",
			committed.Shard4kDeliveredMsgs, delivered4k))
	}
	if _, oneShard, _ := shard4kPoint(1); oneShard != delivered4k {
		drift = append(drift, fmt.Sprintf("shard-count variance: 1 shard delivered %d messages at 4096 nodes, %d shards delivered %d",
			oneShard, cni.Shard4kBenchShards, delivered4k))
	}
	if speedup4k <= shard4kMinSpeedup {
		drift = append(drift, fmt.Sprintf("shard_4k_speedup: fresh measurement %.2fx is under the %.1fx floor over the serial engine",
			speedup4k, shard4kMinSpeedup))
	}
	// The telemetry canary: tracing the heaviest path must not change
	// what the simulation computes and must stay cheap on the host.
	overheadPct, tracedDelivered := traceOverhead()
	if tracedDelivered != committed.TorusLoadsweepDeliveredMsgs {
		drift = append(drift, fmt.Sprintf("traced torus loadsweep delivered %d messages, untraced canary is %d: tracing perturbed the simulation",
			tracedDelivered, committed.TorusLoadsweepDeliveredMsgs))
	}
	if overheadPct >= 15 {
		drift = append(drift, fmt.Sprintf("trace_overhead_pct: fresh measurement %.1f%% breaches the 15%% budget", overheadPct))
	}
	if fresh.LoadsweepTorusKneeMBps >= fresh.LoadsweepFlatKneeMBps {
		drift = append(drift, fmt.Sprintf("loadsweep saturation inversion: torus knee %v MB/s must sit strictly below flat %v MB/s",
			fresh.LoadsweepTorusKneeMBps, fresh.LoadsweepFlatKneeMBps))
	}
	if len(drift) > 0 {
		return fmt.Errorf("simulated canaries drifted from %s (a timing-model change must update the snapshot deliberately):\n  %s",
			path, strings.Join(drift, "\n  "))
	}
	fmt.Printf("canaries match %s\n", path)
	return nil
}

func runBenchJSON(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	out := fs.String("out", "BENCH_sim.json", "output path")
	check := fs.Bool("check", false, "compare fresh canaries against the committed snapshot instead of writing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check {
		return checkCanaries(*out)
	}

	var r benchReport
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.EngineEventsPerSec, r.EngineAllocsPerEvent = engineThroughput()
	canaries(&r)
	r.TraceOverheadPct, _ = traceOverhead()
	r.EventsPerSec4kNodes, r.EventsPerSec4kNodesSerial, r.Shard4kSpeedup,
		r.Shard4kDeliveredMsgs = shard4kSpeedup()

	r.Fig6MemoryWallMs = timeTable(func() *harness.Table { return harness.Fig6(cni.MemoryBus) })
	r.Fig7MemoryWallMs = timeTable(func() *harness.Table { return harness.Fig7(cni.MemoryBus) })

	data, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
