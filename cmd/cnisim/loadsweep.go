package main

import (
	"flag"
	"fmt"

	cni "repro"
	"repro/internal/harness"
)

// runLoadSweep drives the workload/telemetry subsystem: by default a
// full offered-load sweep to saturation per NI × topology; with
// --load, one measured point at a fixed per-node offered load.
func runLoadSweep(args []string) error {
	fs := flag.NewFlagSet("loadsweep", flag.ExitOnError)
	arrival := fs.String("arrival", "poisson", "arrival process: poisson, bursty, or closed")
	zipf := fs.Float64("zipf", -1, "destination Zipf skew (>= 0 overrides, 0 = uniform; default keeps the hotspot skew)")
	load := fs.Float64("load", 0, "measure one point at this per-node offered MB/s instead of sweeping")
	ni := fs.String("ni", "", "restrict to one NI design (default: the five paper NIs + DMA)")
	topology := fs.String("topology", "", "restrict to one fabric (default: flat and torus)")
	seed := fs.Uint64("seed", 0, "workload seed (0 = default)")
	nodes := fs.Int("nodes", 0, "node count for a --load point (default the sweep's 16)")
	shards := fs.Int("shards", 0, "event-engine shards for a --load point (torus machines over 16 nodes; 0 = serial)")
	jsonOut, csvOut := exportFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flag conflicts fail before the multi-minute sweep.
	if err := validateExport(*jsonOut, *csvOut); err != nil {
		return err
	}
	ak, err := cni.ParseArrival(*arrival)
	if err != nil {
		return err
	}
	opt := cni.SweepOptions{Arrival: ak, Seed: *seed}
	if *zipf >= 0 {
		opt.ZipfS = zipf
	}
	if *ni != "" {
		kind, err := parseNI(*ni)
		if err != nil {
			return err
		}
		opt.NIs = []cni.NIKind{kind}
	}
	if *topology != "" {
		topo, err := cni.ParseTopology(*topology)
		if err != nil {
			return err
		}
		opt.Topos = []cni.Topology{topo}
	}
	if *load > 0 {
		if *jsonOut != "" || *csvOut != "" {
			return fmt.Errorf("--json/--csv export the full sweep; they do not apply to a single --load point")
		}
		if ak == cni.ArrivalClosed {
			return fmt.Errorf("--load sets an open-loop offered rate; the closed loop self-limits (run the closed-loop sweep without --load instead)")
		}
		return runLoadPoint(opt, *load, *nodes, *shards)
	}
	// The sweep's cells are pinned at the paper's 16-node machine so
	// rows stay comparable; scale knobs only shape a --load point.
	if *nodes != 0 || *shards != 0 {
		return fmt.Errorf("--nodes/--shards apply to a single --load point; the sweep is pinned at %d nodes", harness.SweepNodes)
	}
	pm := startProgress("loadsweep")
	if pm != nil {
		opt.Progress = func(cell string, mbps float64) {
			pm.note(cell, fmt.Sprintf("@ %.1f MB/s offered", mbps))
		}
	}
	t, rows := cni.LoadSweep(opt)
	pm.finish()
	printTable(t, *jsonOut, *csvOut)
	// The sweep's Data carries the CSV summary schema as its grid and
	// the full per-NI ladders under Extra, so the uniform --json/--csv
	// exporters cover both the summary and the detailed telemetry.
	return export(harness.SweepData(t, rows), *jsonOut, *csvOut)
}

// runLoadPoint measures one offered-load point with full percentile
// output, using the sweep's measurement windows. nodes and shards
// scale the machine past the sweep's 16-node default (shards > 0
// selects the sharded conservative-lookahead engine on torus machines
// over 16 nodes; results are shard-count invariant).
func runLoadPoint(opt cni.SweepOptions, perNodeMBps float64, nodes, shards int) error {
	kind := cni.CNI512Q
	if len(opt.NIs) == 1 {
		kind = opt.NIs[0]
	}
	topo := cni.TopoFlat
	if len(opt.Topos) == 1 {
		topo = opt.Topos[0]
	}
	if nodes == 0 {
		nodes = harness.SweepNodes
	}
	wl := harness.SweepWorkload(opt, perNodeMBps, 0)
	cfg := cni.Config{Nodes: nodes, NI: kind, Bus: cni.MemoryBus, Topology: topo, Workload: wl, Shards: shards}
	if err := cfg.Validate(); err != nil {
		return err
	}
	rep := cni.MeasureLoad(cfg, harness.SweepWarm, harness.SweepMeasure)
	us := func(q float64) float64 { return cni.Microseconds(rep.Latency.Quantile(q)) }
	fmt.Printf("%s %v arrivals, Zipf(s=%.2f), %d nodes\n", cfg.Name(), wl.Arrival, wl.ZipfS, cfg.Nodes)
	fmt.Printf("offered %.1f MB/s  goodput %.1f MB/s  sent %d  delivered %d\n",
		rep.OfferedMBps, rep.GoodputMBps, rep.Sent, rep.Delivered)
	fmt.Printf("latency (us): p50 %.1f  p90 %.1f  p99 %.1f  p99.9 %.1f  max %.1f  (n=%d)\n",
		us(0.50), us(0.90), us(0.99), us(0.999),
		cni.Microseconds(rep.Latency.Max()), rep.Latency.Count())
	return nil
}
