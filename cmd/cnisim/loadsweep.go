package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	cni "repro"
	"repro/internal/harness"
)

// runLoadSweep drives the workload/telemetry subsystem: by default a
// full offered-load sweep to saturation per NI × topology; with
// --load, one measured point at a fixed per-node offered load.
func runLoadSweep(args []string) error {
	fs := flag.NewFlagSet("loadsweep", flag.ExitOnError)
	arrival := fs.String("arrival", "poisson", "arrival process: poisson, bursty, or closed")
	zipf := fs.Float64("zipf", -1, "destination Zipf skew (>= 0 overrides, 0 = uniform; default keeps the hotspot skew)")
	load := fs.Float64("load", 0, "measure one point at this per-node offered MB/s instead of sweeping")
	ni := fs.String("ni", "", "restrict to one NI design (default: the five paper NIs + DMA)")
	topology := fs.String("topology", "", "restrict to one fabric (default: flat and torus)")
	seed := fs.Uint64("seed", 0, "workload seed (0 = default)")
	jsonOut := fs.String("json", "", "write machine-readable sweep rows (JSON) to this path")
	csvOut := fs.String("csv", "", "write the sweep summary (CSV) to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ak, err := cni.ParseArrival(*arrival)
	if err != nil {
		return err
	}
	opt := cni.SweepOptions{Arrival: ak, Seed: *seed}
	if *zipf >= 0 {
		opt.ZipfS = zipf
	}
	if *ni != "" {
		kind, err := parseNI(*ni)
		if err != nil {
			return err
		}
		opt.NIs = []cni.NIKind{kind}
	}
	if *topology != "" {
		topo, err := cni.ParseTopology(*topology)
		if err != nil {
			return err
		}
		opt.Topos = []cni.Topology{topo}
	}
	if *load > 0 {
		if *jsonOut != "" || *csvOut != "" {
			return fmt.Errorf("--json/--csv export the full sweep; they do not apply to a single --load point")
		}
		if ak == cni.ArrivalClosed {
			return fmt.Errorf("--load sets an open-loop offered rate; the closed loop self-limits (run the closed-loop sweep without --load instead)")
		}
		return runLoadPoint(opt, *load)
	}
	t, rows := cni.LoadSweep(opt)
	fmt.Print(t.String())
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *csvOut != "" {
		if err := os.WriteFile(*csvOut, []byte(sweepCSV(rows)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
	return nil
}

// sweepCSV renders the sweep summary rows as CSV.
func sweepCSV(rows []cni.SweepRow) string {
	var b strings.Builder
	b.WriteString("ni,topology,saturation_mbps,knee_offered_mbps," +
		"p50_us_30,p99_us_30,p999_us_30," +
		"p50_us_60,p99_us_60,p999_us_60," +
		"p50_us_90,p99_us_90,p999_us_90\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%.1f,%.1f", r.NI, r.Topology, r.SaturationMBps, r.KneeOfferedMBps)
		for _, pt := range r.AtFrac {
			fmt.Fprintf(&b, ",%.1f,%.1f,%.1f", pt.P50Us, pt.P99Us, pt.P999Us)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// runLoadPoint measures one offered-load point with full percentile
// output, using the sweep's measurement windows.
func runLoadPoint(opt cni.SweepOptions, perNodeMBps float64) error {
	kind := cni.CNI512Q
	if len(opt.NIs) == 1 {
		kind = opt.NIs[0]
	}
	topo := cni.TopoFlat
	if len(opt.Topos) == 1 {
		topo = opt.Topos[0]
	}
	wl := harness.SweepWorkload(opt, perNodeMBps, 0)
	cfg := cni.Config{Nodes: harness.SweepNodes, NI: kind, Bus: cni.MemoryBus, Topology: topo, Workload: wl}
	if err := cfg.Validate(); err != nil {
		return err
	}
	rep := cni.MeasureLoad(cfg, harness.SweepWarm, harness.SweepMeasure)
	us := func(q float64) float64 { return cni.Microseconds(rep.Latency.Quantile(q)) }
	fmt.Printf("%s %v arrivals, Zipf(s=%.2f), %d nodes\n", cfg.Name(), wl.Arrival, wl.ZipfS, cfg.Nodes)
	fmt.Printf("offered %.1f MB/s  goodput %.1f MB/s  sent %d  delivered %d\n",
		rep.OfferedMBps, rep.GoodputMBps, rep.Sent, rep.Delivered)
	fmt.Printf("latency (us): p50 %.1f  p90 %.1f  p99 %.1f  p99.9 %.1f  max %.1f  (n=%d)\n",
		us(0.50), us(0.90), us(0.99), us(0.999),
		cni.Microseconds(rep.Latency.Max()), rep.Latency.Count())
	return nil
}
