package main

import (
	"flag"
	"fmt"

	cni "repro"
	"repro/internal/harness"
)

// runFaultSweep drives the fault-injection subsystem: by default the
// full drop-rate ladder per NI × topology with the reliable transport
// engaged; --drop narrows the ladder to one rate, --degrade opens a
// mid-run degraded-link window, --seed reseeds the fault RNG (the
// workload keeps its own stream, so traffic is identical across
// seeds).
func runFaultSweep(args []string) error {
	fs := flag.NewFlagSet("faultsweep", flag.ExitOnError)
	drop := fs.Float64("drop", -1, "inject this per-message drop rate only (default: the full ladder 0..1e-2)")
	degrade := fs.Float64("degrade", 1, "degrade links mid-run: latency xK, bandwidth /K (1 = no window)")
	seed := fs.Uint64("seed", 0, "fault-injection seed (0 = default; traffic is seed-independent)")
	ni := fs.String("ni", "", "restrict to one NI design (default: the five paper NIs + DMA)")
	topology := fs.String("topology", "", "restrict to one fabric (default: flat and torus)")
	jsonOut, csvOut := exportFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flag conflicts and range errors fail before the multi-minute sweep.
	if err := validateExport(*jsonOut, *csvOut); err != nil {
		return err
	}
	if *drop != -1 && (*drop < 0 || *drop >= 1) {
		return fmt.Errorf("--drop=%g is not a drop rate; valid values are probabilities in [0, 1), e.g. 0, 1e-4, or 0.01 (omit the flag for the full ladder)", *drop)
	}
	if *degrade < 1 {
		return fmt.Errorf("--degrade=%g would speed links up; valid values are multipliers >= 1 (1 disables the degrade window)", *degrade)
	}
	opt := cni.FaultOptions{Seed: *seed, DegradeX: *degrade}
	ladder := cni.FaultLadder
	if *drop >= 0 {
		ladder = []float64{*drop}
		opt.Drops = ladder
	}
	if *ni != "" {
		kind, err := parseNI(*ni)
		if err != nil {
			return err
		}
		opt.NIs = []cni.NIKind{kind}
	}
	if *topology != "" {
		topo, err := cni.ParseTopology(*topology)
		if err != nil {
			return err
		}
		opt.Topos = []cni.Topology{topo}
	}
	pm := startProgress("faultsweep")
	if pm != nil {
		opt.Progress = func(cell string, drop float64) {
			pm.note(cell, fmt.Sprintf("@ drop %g", drop))
		}
	}
	t, rows := cni.FaultSweep(opt)
	pm.finish()
	printTable(t, *jsonOut, *csvOut)
	// As with loadsweep, Data carries the CSV summary grid plus the full
	// per-NI ladders (per-rung counters included) under Extra.
	return export(harness.FaultData(t, ladder, rows), *jsonOut, *csvOut)
}
