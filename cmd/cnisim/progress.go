package main

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// progressOn is set by the global --progress flag; the sweep commands
// install a heartbeat when it is on.
var progressOn bool

// progressInterval is the heartbeat period. A var so tests can shrink
// the wall-clock wait.
var progressInterval = 2 * time.Second

// progressMeter prints a heartbeat to stderr on a wall-clock ticker
// while a sweep runs: how many points have been measured and which
// cell/load was measured last. The harness invokes note from parallel
// worker goroutines; the ticker goroutine only ever reads under the
// same lock, so lines are never torn.
type progressMeter struct {
	what string
	mu   sync.Mutex
	n    int
	last string
	done chan struct{}
	wg   sync.WaitGroup
}

// startProgress returns a running meter, or nil when --progress is
// off (the nil meter's methods are no-ops, so callers need no guard).
func startProgress(what string) *progressMeter {
	if !progressOn {
		return nil
	}
	pm := &progressMeter{what: what, done: make(chan struct{})}
	pm.wg.Add(1)
	go pm.loop()
	return pm
}

func (pm *progressMeter) loop() {
	defer pm.wg.Done()
	t := time.NewTicker(progressInterval)
	defer t.Stop()
	for {
		select {
		case <-pm.done:
			return
		case <-t.C:
			pm.mu.Lock()
			n, last := pm.n, pm.last
			pm.mu.Unlock()
			if n > 0 {
				fmt.Fprintf(os.Stderr, "%s: %d points measured, last %s\n", pm.what, n, last)
			}
		}
	}
}

// note records one measured point (goroutine-safe; nil-safe).
func (pm *progressMeter) note(cell, detail string) {
	if pm == nil {
		return
	}
	pm.mu.Lock()
	pm.n++
	pm.last = cell + " " + detail
	pm.mu.Unlock()
}

// finish stops the ticker and prints the final count (nil-safe).
func (pm *progressMeter) finish() {
	if pm == nil {
		return
	}
	close(pm.done)
	pm.wg.Wait()
	fmt.Fprintf(os.Stderr, "%s: done, %d points measured\n", pm.what, pm.n)
}
