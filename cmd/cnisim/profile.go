package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
)

// profileFlags carries the pprof output paths shared by every
// subcommand. The flags are extracted before subcommand dispatch (they
// may appear anywhere on the command line) so each subcommand's own
// FlagSet never sees them.
type profileFlags struct {
	cpu string
	mem string
}

// parseProfileFlags strips --cpuprofile/--memprofile (either
// --flag=value or --flag value, one or two dashes) from args and
// returns the remaining arguments untouched, in order.
func parseProfileFlags(args []string) (profileFlags, []string, error) {
	var pf profileFlags
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		a := args[i]
		name := strings.TrimLeft(a, "-")
		val := ""
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name, val = name[:eq], name[eq+1:]
		}
		if !strings.HasPrefix(a, "-") || (name != "cpuprofile" && name != "memprofile") {
			rest = append(rest, a)
			continue
		}
		if val == "" {
			if i+1 >= len(args) {
				return pf, nil, fmt.Errorf("--%s needs a file path", name)
			}
			i++
			val = args[i]
		}
		if name == "cpuprofile" {
			pf.cpu = val
		} else {
			pf.mem = val
		}
	}
	return pf, rest, nil
}

// start begins CPU profiling if requested and returns a stop function
// that finishes the CPU profile and writes the heap profile. The stop
// function must run after the measured work, error or not.
func (pf profileFlags) start() (stop func() error, err error) {
	var cpuFile *os.File
	if pf.cpu != "" {
		cpuFile, err = os.Create(pf.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", pf.cpu)
		}
		if pf.mem != "" {
			f, err := os.Create(pf.mem)
			if err != nil {
				return err
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", pf.mem)
		}
		return nil
	}, nil
}
