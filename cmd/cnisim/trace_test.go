package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestTraceFlags pins the shared telemetry flag handling, mirroring
// the pprof contract: extraction from any position in any spelling,
// a missing value is a parse error, and --progress is boolean.
func TestTraceFlags(t *testing.T) {
	tf, rest, err := parseTraceFlags([]string{
		"--trace=t.json", "--json=-", "-sample-every", "250", "--bus=io", "--progress",
	})
	if err != nil {
		t.Fatalf("parseTraceFlags: %v", err)
	}
	if tf.out != "t.json" || tf.sampleEvery != 250 || !tf.progress {
		t.Fatalf("parsed %+v, want t.json/250/progress", tf)
	}
	if want := []string{"--json=-", "--bus=io"}; len(rest) != 2 || rest[0] != want[0] || rest[1] != want[1] {
		t.Fatalf("rest = %v, want %v", rest, want)
	}
	if tf, _, err := parseTraceFlags([]string{"--progress=false"}); err != nil || tf.progress {
		t.Errorf("--progress=false: %+v, %v", tf, err)
	}
	if _, _, err := parseTraceFlags([]string{"--trace"}); err == nil {
		t.Error("--trace without a path should error")
	}
	if _, _, err := parseTraceFlags([]string{"--sample-every"}); err == nil {
		t.Error("--sample-every without a count should error")
	}
	if _, _, err := parseTraceFlags([]string{"--sample-every=soon"}); err == nil {
		t.Error("--sample-every with a non-integer should error")
	}
	if _, _, err := parseTraceFlags([]string{"--progress=perhaps"}); err == nil {
		t.Error("--progress with a non-boolean should error")
	}

	// Sampling is written into the trace file, so it needs one.
	if _, err := (traceFlags{sampleEvery: 100}).install(); err == nil {
		t.Error("--sample-every without --trace should error at install")
	}
}

// TestGlobalTraceFlag runs a stock command under --trace end to end:
// the collector must capture the machine the command builds and write
// a Chrome trace JSON document at finish.
func TestGlobalTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "latency.json")
	finish, err := (traceFlags{out: path, sampleEvery: 200}).install()
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := run("latency", []string{"--ni=CNI512Q", "--bus=memory", "--size=32"}); err != nil {
		t.Fatalf("traced latency run: %v", err)
	}
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	assertChromeTrace(t, path)

	// A command that builds no machines must say so rather than write
	// an empty trace.
	finish, err = (traceFlags{out: path}).install()
	if err != nil {
		t.Fatal(err)
	}
	if err := run("list", nil); err != nil {
		t.Fatal(err)
	}
	if err := finish(); err == nil || !strings.Contains(err.Error(), "no simulated machines") {
		t.Errorf("finish after a machine-less command: %v", err)
	}
}

// TestRunTraceCommand runs the dedicated subcommand on a micro target
// and checks the target-word validation.
func TestRunTraceCommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bw.json")
	err := runTrace(traceFlags{}, []string{"bandwidth", "--ni=CNI512Q", "--size=256", "--out=" + path})
	if err != nil {
		t.Fatalf("trace bandwidth: %v", err)
	}
	assertChromeTrace(t, path)

	if err := runTrace(traceFlags{}, nil); err == nil || !strings.Contains(err.Error(), "loadsweep") {
		t.Errorf("trace without a target should list the valid targets, got %v", err)
	}
	if err := runTrace(traceFlags{}, []string{"teleport"}); err == nil || !strings.Contains(err.Error(), "teleport") {
		t.Errorf("trace with an unknown target should name it, got %v", err)
	}
}

// TestTraceSummaryReportsOverwritten pins the truncation contract
// from this PR's bug sweep: a wrapped trace ring must never export a
// clipped file silently. The always-printed summary line carries the
// overwritten count (including the healthy zero, so its absence is
// visible), and a wrapped ring adds an explicit warning.
func TestTraceSummaryReportsOverwritten(t *testing.T) {
	wrapped := func(notes int) []trace.Capture {
		r := trace.NewRecorder(sim.NewEngine(), 2, 4)
		for i := 0; i < notes; i++ {
			r.Note(1, trace.KInject, uint64(i), -1, 1, 0, 0, 0)
		}
		return []trace.Capture{{Label: "test", Rec: r}}
	}
	cases := []struct {
		notes int
		want  string
		warn  bool
	}{
		{3, "0 overwritten", false},
		{10, "6 overwritten", true}, // 10 notes into a 4-slot ring
	}
	for _, c := range cases {
		path := filepath.Join(t.TempDir(), "ow.json")
		stderr := captureStderr(t, func() {
			if err := writeTraceFile(path, wrapped(c.notes)); err != nil {
				t.Fatalf("writeTraceFile(%d notes): %v", c.notes, err)
			}
		})
		if !strings.Contains(stderr, c.want) {
			t.Errorf("%d notes: summary %q does not carry %q", c.notes, stderr, c.want)
		}
		if got := strings.Contains(stderr, "warning:"); got != c.warn {
			t.Errorf("%d notes: warning printed = %v, want %v\n%s", c.notes, got, c.warn, stderr)
		}
	}
}

// captureStderr runs fn with os.Stderr redirected to a pipe.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() {
		w.Close()
		os.Stderr = old
	}()
	fn()
	w.Close()
	os.Stderr = old
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		b.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return b.String()
}

// assertChromeTrace parses path as a Chrome trace-event document and
// requires a non-empty event list.
func assertChromeTrace(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s is not Chrome trace JSON: %v", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("%s has no trace events", path)
	}
}

// TestProgressMeter drives the heartbeat directly (progressOn gates
// startProgress) and checks the nil-meter path stays safe when
// --progress is off.
func TestProgressMeter(t *testing.T) {
	var off *progressMeter
	off.note("cell", "detail")
	off.finish() // nil-safe no-ops

	progressOn = true
	defer func() { progressOn = false }()
	pm := startProgress("testsweep")
	if pm == nil {
		t.Fatal("startProgress returned nil with progressOn set")
	}
	pm.note("CNI512Q/torus", "@ 4.0 MB/s offered")
	pm.note("CNI512Q/torus", "@ 5.2 MB/s offered")
	pm.finish()
	if pm.n != 2 {
		t.Errorf("meter counted %d points, want 2", pm.n)
	}
}
