package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	cni "repro"
)

func TestParseConfig(t *testing.T) {
	cases := []struct {
		ni, bus, topo string
		ok            bool
	}{
		{"NI2w", "memory", "flat", true},
		{"ni2w", "cache", "flat", true},
		{"CNI16Qm", "memory", "flat", true},
		{"CNI16Qm", "io", "flat", false}, // invalid per §2.3
		{"cni512q", "io", "flat", true},
		{"bogus", "memory", "flat", false},
		{"CNI4", "warp", "flat", false},
		{"CNI512Q", "memory", "torus", true},
		{"CNI512Q", "memory", "ring", false},
	}
	for _, c := range cases {
		cfg, err := parseConfig(c.ni, c.bus, c.topo, 2)
		if c.ok && err != nil {
			t.Errorf("parseConfig(%q,%q,%q): unexpected error %v", c.ni, c.bus, c.topo, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseConfig(%q,%q,%q): expected error", c.ni, c.bus, c.topo)
		}
		if err == nil && c.topo == "torus" && cfg.Topology != cni.TopoTorus {
			t.Errorf("parseConfig(%q,%q,%q): topology not threaded through", c.ni, c.bus, c.topo)
		}
	}
}

func TestRunStaticCommands(t *testing.T) {
	for _, cmd := range []string{"list", "table1", "table2", "table3", "table4"} {
		if err := run(cmd, nil); err != nil {
			t.Errorf("run(%q): %v", cmd, err)
		}
	}
	if err := run("bogus", nil); err == nil {
		t.Error("unknown command should error")
	}
}

// TestListJSON pins the machine-readable registry listing: every
// registered experiment appears with its name, title, and tags.
func TestListJSON(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run("list", []string{"--json"}); err != nil {
			t.Fatalf("list --json: %v", err)
		}
	})
	var entries []struct {
		Name  string   `json:"name"`
		Title string   `json:"title"`
		Tags  []string `json:"tags"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil {
		t.Fatalf("list --json output is not JSON: %v\n%s", err, out)
	}
	if len(entries) != len(cni.ExperimentNames()) {
		t.Fatalf("listed %d experiments, registry has %d", len(entries), len(cni.ExperimentNames()))
	}
	for i, name := range cni.ExperimentNames() {
		e := entries[i]
		if e.Name != name || e.Title == "" || len(e.Tags) == 0 {
			t.Errorf("entry %d = %+v, want name %q with title and tags", i, e, name)
		}
	}
}

// TestUniformExportFlags checks the shared --json/--csv exporters on
// an experiment command: the files exist, the JSON parses as the
// shared Data shape, and the CSV header matches it.
func TestUniformExportFlags(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "t.json")
	csvPath := filepath.Join(dir, "t.csv")
	if err := run("table3", []string{"--json=" + jsonPath, "--csv=" + csvPath}); err != nil {
		t.Fatalf("table3 export: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var d cni.Data
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("exported JSON does not parse as Data: %v", err)
	}
	if d.Name != "table3" || len(d.Rows) == 0 {
		t.Fatalf("exported Data = %+v", d)
	}
	csvRaw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	firstLine, _, _ := strings.Cut(string(csvRaw), "\n")
	if !strings.Contains(firstLine, "Benchmark") {
		t.Errorf("CSV header %q does not carry the table header", firstLine)
	}
	// Table 3's input column embeds commas; RFC-4180 quoting must keep
	// the column count stable.
	if !strings.Contains(string(csvRaw), `"`) {
		t.Error("CSV with comma-bearing cells should be quoted")
	}
}

// TestExportToStdoutIsPure pins that "--json=-" yields a stream jq
// could parse: the human-readable table must be suppressed, leaving
// nothing but the JSON document.
func TestExportToStdoutIsPure(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run("table1", []string{"--json=-"}); err != nil {
			t.Fatalf("table1 --json=-: %v", err)
		}
	})
	var d cni.Data
	if err := json.Unmarshal([]byte(out), &d); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, out)
	}
	if d.Name != "table1" {
		t.Fatalf("decoded %+v", d)
	}
	// Combining "-" with a file exporter must keep stdout pure too:
	// the "wrote <path>" announcement goes to stderr.
	csvPath := filepath.Join(t.TempDir(), "t.csv")
	out = captureStdout(t, func() {
		if err := run("table1", []string{"--json=-", "--csv=" + csvPath}); err != nil {
			t.Fatalf("table1 --json=- --csv=file: %v", err)
		}
	})
	if err := json.Unmarshal([]byte(out), &d); err != nil {
		t.Fatalf("stdout polluted when combining - with a file export: %v\n%s", err, out)
	}
	if _, err := os.Stat(csvPath); err != nil {
		t.Fatalf("csv file not written: %v", err)
	}
	// Both formats cannot share stdout.
	if err := run("table1", []string{"--json=-", "--csv=-"}); err == nil {
		t.Error("--json=- --csv=- should error instead of interleaving formats")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	defer func() {
		w.Close()
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestRunMicroCommands(t *testing.T) {
	if err := run("latency", []string{"--ni=CNI512Q", "--bus=memory", "--size=32"}); err != nil {
		t.Errorf("latency: %v", err)
	}
	if err := run("bandwidth", []string{"--ni=NI2w", "--bus=memory", "--size=64"}); err != nil {
		t.Errorf("bandwidth: %v", err)
	}
	if err := run("latency", []string{"--ni=CNI512Q", "--bus=memory", "--size=32", "--topology=torus"}); err != nil {
		t.Errorf("latency torus: %v", err)
	}
	if err := run("incast", []string{"--ni=CNI512Q", "--bus=memory", "--nodes=4", "--count=6", "--topology=torus"}); err != nil {
		t.Errorf("incast: %v", err)
	}
	if err := run("exchange", []string{"--ni=CNI512Q", "--bus=memory", "--nodes=4", "--rounds=2"}); err != nil {
		t.Errorf("exchange: %v", err)
	}
}

func TestRunLoadPoint(t *testing.T) {
	if err := run("loadsweep", []string{"--load=4", "--ni=CNI16Q", "--topology=torus"}); err != nil {
		t.Errorf("loadsweep --load: %v", err)
	}
	if err := run("loadsweep", []string{"--load=4", "--arrival=bursty", "--zipf=0.5"}); err != nil {
		t.Errorf("loadsweep --load bursty: %v", err)
	}
	// --load is an open-loop offered rate; the closed loop self-limits.
	if err := run("loadsweep", []string{"--load=4", "--arrival=closed"}); err == nil {
		t.Error("loadsweep --load --arrival=closed should error")
	}
	// JSON/CSV export only applies to the full sweep, never silently
	// skipped for a single point.
	if err := run("loadsweep", []string{"--load=4", "--json=/tmp/x.json"}); err == nil {
		t.Error("loadsweep --load --json should error")
	}
}

// TestRunFaultSweepCell runs one narrowed faultsweep cell end to end
// through the CLI, including the uniform JSON export with the full
// ladder under Extra.
func TestRunFaultSweepCell(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy in -short mode")
	}
	jsonPath := filepath.Join(t.TempDir(), "f.json")
	err := run("faultsweep", []string{
		"--ni=CNI512Q", "--topology=flat", "--drop=0.001", "--seed=7", "--json=" + jsonPath})
	if err != nil {
		t.Fatalf("faultsweep cell: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		cni.Data
		Extra []cni.FaultRow `json:"extra"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if d.Name != "faultsweep" || len(d.Rows) != 1 || len(d.Extra) != 1 {
		t.Fatalf("exported Data = name %q, %d rows, %d extra", d.Name, len(d.Rows), len(d.Extra))
	}
	pt := d.Extra[0].Ladder[0]
	if pt.DropRate != 0.001 || pt.Delivered == 0 {
		t.Fatalf("ladder point = %+v", pt)
	}
	if pt.Drops == 0 {
		t.Error("drop rate 1e-3 over the fault window should inject at least one drop")
	}
}

// TestFlagTyposFailWithValidValues pins the CLI contract from this
// PR's satellite: a typo in --topology, --arrival, --ni, or --bus
// must fail with an error listing the valid values, never silently
// fall back to a default.
func TestFlagTyposFailWithValidValues(t *testing.T) {
	cases := []struct {
		cmd   string
		args  []string
		wants []string // substrings the error must carry
	}{
		{"latency", []string{"--topology=ring"}, []string{"ring", "flat", "torus"}},
		{"loadsweep", []string{"--topology=mesh"}, []string{"mesh", "flat", "torus"}},
		{"loadsweep", []string{"--arrival=burst"}, []string{"burst", "poisson", "bursty", "closed"}},
		{"loadsweep", []string{"--ni=CNI1024Q"}, []string{"CNI1024Q", "NI2w", "CNI512Q", "DMA"}},
		{"latency", []string{"--ni=bogus"}, []string{"bogus", "CNI16Qm"}},
		{"latency", []string{"--bus=warp"}, []string{"warp", "cache", "memory", "io"}},
		{"faultsweep", []string{"--topology=mesh"}, []string{"mesh", "flat", "torus"}},
		{"faultsweep", []string{"--ni=CNI1024Q"}, []string{"CNI1024Q", "NI2w", "CNI512Q", "DMA"}},
		// Out-of-range fault parameters must name the valid range, not
		// launch a sweep with a nonsense probability.
		{"faultsweep", []string{"--drop=1.5"}, []string{"1.5", "[0, 1)"}},
		{"faultsweep", []string{"--drop=-0.2"}, []string{"-0.2", "[0, 1)"}},
		{"faultsweep", []string{"--degrade=0.5"}, []string{"0.5", ">= 1"}},
		{"faultsweep", []string{"--drop=2", "--json=-", "--csv=-"}, []string{"stdout"}},
		// RPC/collective parameters must name the constraint too.
		{"rpc", []string{"--fanout=0"}, []string{">= 1", "0"}},
		{"rpc", []string{"--fanout=-3"}, []string{">= 1", "-3"}},
		{"rpc", []string{"--hedge=1.5"}, []string{"1.5", "[0, 1)"}},
		{"rpc", []string{"--hedge=-0.1"}, []string{"-0.1", "[0, 1)"}},
		{"rpc", []string{"--ni=CNI1024Q"}, []string{"CNI1024Q", "NI2w", "CNI512Q", "DMA"}},
		{"rpc", []string{"--topology=mesh"}, []string{"mesh", "flat", "torus"}},
		// The incast preset shapes a single point; without --fanout it
		// would silently be ignored.
		{"rpc", []string{"--incast-chunk=4096"}, []string{"--fanout"}},
		{"collective", []string{"--schedule=rign"}, []string{"rign", "ring-allreduce", "rd-allreduce", "alltoall", "broadcast"}},
		{"collective", []string{"--ni=CNI1024Q"}, []string{"CNI1024Q", "NI2w", "CNI512Q", "DMA"}},
		{"collective", []string{"--topology=mesh"}, []string{"mesh", "flat", "torus"}},
		{"collective", []string{"--bytes=-1"}, []string{"-1", ">= 1"}},
		// Recursive doubling pairs ranks by XOR; a non-power-of-two node
		// count must be rejected at flag time, naming the constraint,
		// instead of surfacing as a deep dcn error after machine build.
		{"collective", []string{"--schedule=rd-allreduce", "--nodes=12"}, []string{"12", "powers of two"}},
		{"collective", []string{"--schedule=rd-allreduce", "--nodes=1"}, []string{">= 2", "1"}},
		// Scale knobs shape a single run; the sweep stays pinned at the
		// paper's 16-node machine so its rows remain comparable.
		{"collective", []string{"--nodes=64"}, []string{"--nodes", "pinned", "16"}},
		{"loadsweep", []string{"--nodes=64"}, []string{"--nodes", "pinned", "16"}},
		{"loadsweep", []string{"--shards=4"}, []string{"--shards", "pinned", "16"}},
	}
	for _, c := range cases {
		err := run(c.cmd, c.args)
		if err == nil {
			t.Errorf("%s %v: expected an error", c.cmd, c.args)
			continue
		}
		for _, want := range c.wants {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s %v: error %q does not mention %q", c.cmd, c.args, err, want)
			}
		}
	}
}

// TestUsageListsEveryExperiment pins the usage text to the experiment
// registry: every name cni.Experiment accepts (and every micro
// command run dispatches) must be discoverable from `cnisim
// <no-args>` output, so new experiments cannot ship CLI-invisible.
func TestUsageListsEveryExperiment(t *testing.T) {
	for _, name := range cni.ExperimentNames() {
		// Family commands appear as their base name (fig6-memory ->
		// fig6, table1 -> table1..table4 range line).
		base, _, _ := strings.Cut(name, "-")
		if strings.HasPrefix(base, "table") {
			base = "table1..table4"
		}
		if !strings.Contains(usageText, base) {
			t.Errorf("usage text does not mention experiment %q (looked for %q)", name, base)
		}
	}
	for _, cmd := range []string{"latency", "bandwidth", "incast", "exchange", "bench", "benchjson", "all", "list", "--topology", "loadsweep", "--arrival", "trace", "--trace", "--sample-every", "--progress"} {
		if !strings.Contains(usageText, cmd) {
			t.Errorf("usage text does not mention %q", cmd)
		}
	}
}

// TestListMatchesExperimentNames checks each listed experiment
// dispatches through run()'s switch (no registry entry the CLI cannot
// reach). It relies on run("bogus") erroring above; here every listed
// name must be a recognised command family.
func TestListMatchesExperimentNames(t *testing.T) {
	known := map[string]bool{
		"table1": true, "table2": true, "table3": true, "table4": true,
		"fig6": true, "fig7": true, "fig8": true,
		"occupancy": true, "ablation": true, "sweep": true, "dma": true,
		"congestion": true, "loadsweep": true, "faultsweep": true,
		"rpc": true, "collective": true,
	}
	for _, name := range cni.ExperimentNames() {
		base, _, _ := strings.Cut(name, "-")
		if !known[base] {
			t.Errorf("experiment %q has no CLI command family", name)
		}
	}
}

// TestRunRPCPoint runs one single-point rpc measurement end to end
// through the CLI with the uniform JSON export.
func TestRunRPCPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy in -short mode")
	}
	jsonPath := filepath.Join(t.TempDir(), "rpc.json")
	err := run("rpc", []string{
		"--fanout=2", "--clients=1000", "--think=200000", "--hedge=0.1",
		"--ni=CNI512Q", "--topology=flat", "--json=" + jsonPath})
	if err != nil {
		t.Fatalf("rpc point: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var d cni.Data
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if d.Name != "rpc-point" || len(d.Rows) != 1 {
		t.Fatalf("exported Data = name %q, %d rows", d.Name, len(d.Rows))
	}
	row := d.Rows[0]
	if row[0] != "CNI512Q" || row[1] != "flat" || row[2] != "2" {
		t.Fatalf("point row = %v", row)
	}
	if row[9] == "0" { // completed
		t.Error("point run completed no calls")
	}
	// The storage incast preset rides the same single-point path.
	if err := run("rpc", []string{"--fanout=4", "--clients=1000", "--think=200000", "--incast-chunk=4096"}); err != nil {
		t.Errorf("rpc incast preset: %v", err)
	}
}

// TestRunCollectiveSchedule runs one schedule end to end through the
// CLI: per-step rows in the export, completion in Extra.
func TestRunCollectiveSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy in -short mode")
	}
	jsonPath := filepath.Join(t.TempDir(), "coll.json")
	err := run("collective", []string{
		"--schedule=ring-allreduce", "--bytes=4096", "--ni=CNI512Q", "--json=" + jsonPath})
	if err != nil {
		t.Fatalf("collective run: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		cni.Data
		Extra cni.CollectiveReport `json:"extra"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	// Ring allreduce on 16 nodes = 2(N-1) = 30 steps.
	if d.Name != "collective-run" || len(d.Rows) != 30 {
		t.Fatalf("exported Data = name %q, %d rows", d.Name, len(d.Rows))
	}
	if d.Extra.CompletionCycles == 0 || d.Extra.MovedBytes == 0 {
		t.Fatalf("report = %+v", d.Extra)
	}
	// A schedule typo must not reach the simulator.
	if err := run("collective", []string{"--schedule=ring"}); err == nil {
		t.Error("collective --schedule=ring (typo) should error")
	}
}

// TestProfileFlags pins the shared pprof flag handling: the flags are
// extracted from any position in any spelling, a missing path is a
// parse error (not a silent no-profile run), and a profiled run
// actually writes both files.
func TestProfileFlags(t *testing.T) {
	pf, rest, err := parseProfileFlags([]string{
		"--cpuprofile=cpu.out", "--json=-", "-memprofile", "mem.out", "--bus=io",
	})
	if err != nil {
		t.Fatalf("parseProfileFlags: %v", err)
	}
	if pf.cpu != "cpu.out" || pf.mem != "mem.out" {
		t.Fatalf("parsed %+v, want cpu.out/mem.out", pf)
	}
	if want := []string{"--json=-", "--bus=io"}; len(rest) != 2 || rest[0] != want[0] || rest[1] != want[1] {
		t.Fatalf("rest = %v, want %v", rest, want)
	}
	if _, _, err := parseProfileFlags([]string{"--cpuprofile"}); err == nil {
		t.Error("--cpuprofile without a path should error")
	}
	if _, _, err := parseProfileFlags([]string{"--memprofile"}); err == nil {
		t.Error("--memprofile without a path should error")
	}

	dir := t.TempDir()
	pf = profileFlags{cpu: filepath.Join(dir, "cpu.pprof"), mem: filepath.Join(dir, "mem.pprof")}
	stop, err := pf.start()
	if err != nil {
		t.Fatalf("start profiles: %v", err)
	}
	if err := run("list", nil); err != nil {
		t.Fatalf("profiled run: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop profiles: %v", err)
	}
	for _, p := range []string{pf.cpu, pf.mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
