package main

import "testing"

func TestParseConfig(t *testing.T) {
	cases := []struct {
		ni, bus string
		ok      bool
	}{
		{"NI2w", "memory", true},
		{"ni2w", "cache", true},
		{"CNI16Qm", "memory", true},
		{"CNI16Qm", "io", false}, // invalid per §2.3
		{"cni512q", "io", true},
		{"bogus", "memory", false},
		{"CNI4", "warp", false},
	}
	for _, c := range cases {
		_, err := parseConfig(c.ni, c.bus, 2)
		if c.ok && err != nil {
			t.Errorf("parseConfig(%q,%q): unexpected error %v", c.ni, c.bus, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseConfig(%q,%q): expected error", c.ni, c.bus)
		}
	}
}

func TestRunStaticCommands(t *testing.T) {
	for _, cmd := range []string{"list", "table1", "table2", "table3", "table4"} {
		if err := run(cmd, nil); err != nil {
			t.Errorf("run(%q): %v", cmd, err)
		}
	}
	if err := run("bogus", nil); err == nil {
		t.Error("unknown command should error")
	}
}

func TestRunMicroCommands(t *testing.T) {
	if err := run("latency", []string{"--ni=CNI512Q", "--bus=memory", "--size=32"}); err != nil {
		t.Errorf("latency: %v", err)
	}
	if err := run("bandwidth", []string{"--ni=NI2w", "--bus=memory", "--size=64"}); err != nil {
		t.Errorf("bandwidth: %v", err)
	}
}
