package main

import (
	"flag"
	"fmt"

	cni "repro"
	"repro/internal/harness"
)

// flagWasSet reports whether the user passed the named flag
// explicitly (as opposed to its default applying).
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runRPC drives the datacenter RPC fan-out subsystem: by default the
// full fan-out-ladder + overload sweep per NI × topology; with
// --fanout, one measured point on one machine.
func runRPC(args []string) error {
	fs := flag.NewFlagSet("rpc", flag.ExitOnError)
	fanout := fs.Int("fanout", 0, "measure one point at this root fan-out (>= 1) instead of sweeping the ladder")
	clients := fs.Int("clients", 0, "simulated client population machine-wide (default 1000000)")
	think := fs.Int("think", 0, "mean client think cycles (default the sweep's moderate load)")
	clientZipf := fs.Float64("client-zipf", 0, "Zipf skew of per-client request weights (0 = uniform)")
	hedge := fs.Float64("hedge", 0, "hedge-eligible fraction of root calls, in [0, 1)")
	hedgeAfter := fs.Int("hedge-after", 0, "hedge trigger delay in cycles (default 20000)")
	chunk := fs.Int("incast-chunk", 0, "with --fanout: the storage incast preset, bulk replies of this many bytes")
	ni := fs.String("ni", "", "restrict to one NI design (default: the four taxonomy corners; single point: CNI512Q)")
	topology := fs.String("topology", "", "restrict to one fabric (default: flat and torus; single point: flat)")
	seed := fs.Uint64("seed", 0, "arrival/backend/service seed (0 = default)")
	jsonOut, csvOut := exportFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flag conflicts and invalid parameters fail before any simulation.
	if err := validateExport(*jsonOut, *csvOut); err != nil {
		return err
	}
	if flagWasSet(fs, "fanout") && *fanout < 1 {
		return fmt.Errorf("rpc: --fanout must be >= 1, have %d", *fanout)
	}
	if *hedge < 0 || *hedge >= 1 {
		return fmt.Errorf("rpc: --hedge must be in [0, 1), have %v", *hedge)
	}
	if *clients < 0 {
		return fmt.Errorf("rpc: --clients must be >= 1, have %d", *clients)
	}
	if *think < 0 || *hedgeAfter < 0 || *chunk < 0 {
		return fmt.Errorf("rpc: --think, --hedge-after, and --incast-chunk must be positive")
	}
	if *chunk > 0 && *fanout == 0 {
		return fmt.Errorf("rpc: --incast-chunk is a single-point preset; it needs --fanout")
	}
	opt := cni.RPCOptions{
		Clients:          *clients,
		ClientZipfS:      *clientZipf,
		Hedge:            *hedge,
		HedgeAfterCycles: *hedgeAfter,
		Seed:             *seed,
	}
	if *ni != "" {
		kind, err := parseNI(*ni)
		if err != nil {
			return err
		}
		opt.NIs = []cni.NIKind{kind}
	}
	if *topology != "" {
		topo, err := cni.ParseTopology(*topology)
		if err != nil {
			return err
		}
		opt.Topos = []cni.Topology{topo}
	}
	// Validate the composed spec up front (client-zipf range, ...): a
	// bad parameter must fail here, not minutes into a sweep.
	probeFanout := cni.RPCSweepFanouts[len(cni.RPCSweepFanouts)-1]
	if *fanout > 0 {
		probeFanout = *fanout
	}
	if err := cni.RPCSpecFor(opt, probeFanout, cni.RPCSweepThink).Validate(); err != nil {
		return err
	}
	if *fanout > 0 {
		return runRPCPoint(opt, *fanout, *think, *chunk, *jsonOut, *csvOut)
	}
	pm := startProgress("rpc")
	if pm != nil {
		opt.Progress = func(cell string, k int) {
			if k < 0 {
				pm.note(cell, fmt.Sprintf("overload @ k=%d", -k))
			} else {
				pm.note(cell, fmt.Sprintf("@ k=%d", k))
			}
		}
	}
	t, rows := cni.RPCSweep(opt)
	pm.finish()
	printTable(t, *jsonOut, *csvOut)
	return export(harness.RPCData(t, rows), *jsonOut, *csvOut)
}

// runRPCPoint measures one RPC point on one machine, using the
// sweep's windows so the numbers line up with sweep cells.
func runRPCPoint(opt cni.RPCOptions, fanout, think, chunk int, jsonOut, csvOut string) error {
	kind := cni.CNI512Q
	if len(opt.NIs) == 1 {
		kind = opt.NIs[0]
	}
	topo := cni.TopoFlat
	if len(opt.Topos) == 1 {
		topo = opt.Topos[0]
	}
	if think == 0 {
		think = cni.RPCSweepThink
	}
	spec := cni.RPCSpecFor(opt, fanout, think)
	if chunk > 0 {
		spec.Tiers = cni.IncastSpec(fanout, chunk).Tiers
		spec.Tiers[0].Fanout = fanout
	}
	cfg := cni.Config{Nodes: harness.SweepNodes, NI: kind, Bus: cni.MemoryBus, Topology: topo}
	if err := cfg.Validate(); err != nil {
		return err
	}
	rep, err := cni.RunRPC(cfg, spec, cni.RPCSweepWarm, cni.RPCSweepMeasure)
	if err != nil {
		return err
	}
	us := func(q float64) float64 { return cni.Microseconds(rep.Latency.Quantile(q)) }
	if jsonOut != "-" && csvOut != "-" {
		fmt.Printf("%s rpc fan-out k=%d, %d clients, think %d cycles, %d nodes\n",
			cfg.Name(), fanout, spec.Clients, spec.ThinkCycles, cfg.Nodes)
		fmt.Printf("offered %.1f KRPS  goodput %.1f KRPS  issued %d  completed %d  queued %d\n",
			rep.OfferedKRPS, rep.GoodputKRPS, rep.Issued, rep.Completed, rep.Queued)
		fmt.Printf("latency (us): p50 %.1f  p99 %.1f  p99.9 %.1f  max %.1f  (n=%d)\n",
			us(0.50), us(0.99), us(0.999), cni.Microseconds(rep.Latency.Max()), rep.Latency.Count())
		fmt.Printf("straggler join gap (us): p50 %.1f  p99 %.1f  hedges %d  hedge wins %d\n",
			cni.Microseconds(rep.Straggler.Quantile(0.50)),
			cni.Microseconds(rep.Straggler.Quantile(0.99)), rep.Hedges, rep.HedgeWins)
	}
	d := &cni.Data{
		Name:  "rpc-point",
		Title: fmt.Sprintf("%s rpc fan-out k=%d", cfg.Name(), fanout),
		Header: []string{"ni", "topology", "fanout", "offered_krps", "goodput_krps",
			"p50_us", "p99_us", "p999_us", "strag_p99_us", "completed", "queued", "hedges", "hedge_wins"},
		Rows: [][]string{{
			kind.String(), topo.String(), fmt.Sprintf("%d", fanout),
			fmt.Sprintf("%.1f", rep.OfferedKRPS), fmt.Sprintf("%.1f", rep.GoodputKRPS),
			fmt.Sprintf("%.1f", us(0.50)), fmt.Sprintf("%.1f", us(0.99)), fmt.Sprintf("%.1f", us(0.999)),
			fmt.Sprintf("%.1f", cni.Microseconds(rep.Straggler.Quantile(0.99))),
			fmt.Sprintf("%d", rep.Completed), fmt.Sprintf("%d", rep.Queued),
			fmt.Sprintf("%d", rep.Hedges), fmt.Sprintf("%d", rep.HedgeWins),
		}},
	}
	return export(d, jsonOut, csvOut)
}

// runCollective drives the collective-schedule subsystem: by default
// the full schedule grid per NI × topology; with --schedule, one run
// on one machine with per-step detail.
func runCollective(args []string) error {
	fs := flag.NewFlagSet("collective", flag.ExitOnError)
	schedule := fs.String("schedule", "", "run one schedule (ring-allreduce, rd-allreduce, alltoall, broadcast) instead of sweeping")
	bytes := fs.Int("bytes", 0, "per-node contribution in bytes (default 65536)")
	ni := fs.String("ni", "", "restrict to one NI design (single run: CNI512Q)")
	topology := fs.String("topology", "", "restrict to one fabric (single run: flat)")
	nodes := fs.Int("nodes", 0, "node count for a single --schedule run (default the sweep's 16)")
	shards := fs.Int("shards", 0, "event-engine shards for a single --schedule run (torus machines over 16 nodes; 0 = serial)")
	jsonOut, csvOut := exportFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateExport(*jsonOut, *csvOut); err != nil {
		return err
	}
	if *bytes < 0 {
		return fmt.Errorf("collective: --bytes must be >= 1, have %d", *bytes)
	}
	if *schedule == "" && (*nodes != 0 || *shards != 0) {
		return fmt.Errorf("--nodes/--shards apply to a single --schedule run; the sweep is pinned at %d nodes", harness.SweepNodes)
	}
	if *nodes != 0 && *nodes < 2 {
		return fmt.Errorf("collective: --nodes must be >= 2, have %d", *nodes)
	}
	opt := cni.CollectiveOptions{Bytes: *bytes}
	if *ni != "" {
		kind, err := parseNI(*ni)
		if err != nil {
			return err
		}
		opt.NIs = []cni.NIKind{kind}
	}
	if *topology != "" {
		topo, err := cni.ParseTopology(*topology)
		if err != nil {
			return err
		}
		opt.Topos = []cni.Topology{topo}
	}
	if *schedule != "" {
		sch, err := cni.ParseSchedule(*schedule)
		if err != nil {
			return err
		}
		n := *nodes
		if n == 0 {
			n = harness.SweepNodes
		}
		// Recursive doubling only pairs up cleanly on powers of two;
		// reject at flag time so the error points at the flag, not at a
		// machine the simulator already built.
		if sch == cni.RDAllreduce && n&(n-1) != 0 {
			return fmt.Errorf("collective: invalid --nodes %d for %s (valid: powers of two >= 2)", n, sch)
		}
		return runCollectiveRun(opt, sch, n, *shards, *jsonOut, *csvOut)
	}
	pm := startProgress("collective")
	if pm != nil {
		opt.Progress = func(cell, schedule string) { pm.note(cell, schedule) }
	}
	t, rows := cni.CollectiveSweep(opt)
	pm.finish()
	printTable(t, *jsonOut, *csvOut)
	return export(harness.CollectiveData(t, rows), *jsonOut, *csvOut)
}

// runCollectiveRun executes one schedule on one machine and reports
// per-step completion spread. nodes and shards scale the machine past
// the sweep's 16-node default.
func runCollectiveRun(opt cni.CollectiveOptions, sch cni.Schedule, nodes, shards int, jsonOut, csvOut string) error {
	kind := cni.CNI512Q
	if len(opt.NIs) == 1 {
		kind = opt.NIs[0]
	}
	topo := cni.TopoFlat
	if len(opt.Topos) == 1 {
		topo = opt.Topos[0]
	}
	bytes := opt.Bytes
	if bytes <= 0 {
		bytes = cni.CollectiveBytes
	}
	cfg := cni.Config{Nodes: nodes, NI: kind, Bus: cni.MemoryBus, Topology: topo, Shards: shards}
	if err := cfg.Validate(); err != nil {
		return err
	}
	rep, err := cni.RunCollective(cfg, cni.CollectiveSpec{Schedule: sch, Bytes: bytes})
	if err != nil {
		return err
	}
	if jsonOut != "-" && csvOut != "-" {
		fmt.Printf("%s %s, %d B per node, %d nodes\n", cfg.Name(), sch, rep.Bytes, rep.Nodes)
		fmt.Printf("completion %.1f us (%d cycles), %d steps, max per-step skew %d cycles\n",
			rep.CompletionMicros, rep.CompletionCycles, rep.Steps, rep.MaxSkew)
		fmt.Printf("traffic: %d messages, %d bytes moved\n", rep.Msgs, rep.MovedBytes)
	}
	d := &cni.Data{
		Name:   "collective-run",
		Title:  fmt.Sprintf("%s %s per-step completion", cfg.Name(), sch),
		Header: []string{"step", "min_end", "max_end", "skew_cycles"},
		Extra:  rep,
	}
	for _, st := range rep.PerStep {
		d.Rows = append(d.Rows, []string{
			fmt.Sprintf("%d", st.Step), fmt.Sprintf("%d", st.MinEnd),
			fmt.Sprintf("%d", st.MaxEnd), fmt.Sprintf("%d", st.Skew),
		})
	}
	return export(d, jsonOut, csvOut)
}
