package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cni "repro"
	"repro/internal/dcn"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// traceFlags carries the global telemetry flags shared by every
// subcommand: --trace=path records message lifecycles on every machine
// the command builds and writes one merged Chrome trace JSON at exit,
// --sample-every=N adds the periodic time-series sampler, and
// --progress turns on the sweeps' wall-clock heartbeat. Like the pprof
// flags they are extracted before subcommand dispatch.
type traceFlags struct {
	out         string
	sampleEvery uint64
	progress    bool
}

// parseTraceFlags strips --trace/--sample-every/--progress (either
// --flag=value or --flag value, one or two dashes; --progress is
// boolean) from args and returns the remaining arguments untouched,
// in order.
func parseTraceFlags(args []string) (traceFlags, []string, error) {
	var tf traceFlags
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		a := args[i]
		name := strings.TrimLeft(a, "-")
		val, hasVal := "", false
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name, val, hasVal = name[:eq], name[eq+1:], true
		}
		if !strings.HasPrefix(a, "-") || (name != "trace" && name != "sample-every" && name != "progress") {
			rest = append(rest, a)
			continue
		}
		if name == "progress" {
			on := true
			if hasVal {
				var err error
				if on, err = strconv.ParseBool(val); err != nil {
					return tf, nil, fmt.Errorf("--progress=%s: want a boolean", val)
				}
			}
			tf.progress = on
			continue
		}
		if !hasVal {
			if i+1 >= len(args) {
				return tf, nil, fmt.Errorf("--%s needs a value", name)
			}
			i++
			val = args[i]
		}
		switch name {
		case "trace":
			tf.out = val
		case "sample-every":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return tf, nil, fmt.Errorf("--sample-every=%s: want a cycle count", val)
			}
			tf.sampleEvery = n
		}
	}
	return tf, rest, nil
}

// install arms the default-trace collector per the global flags and
// returns a finish function that drains every captured machine and
// writes the merged export. It must run after the command, error or
// not, so a failing run still flushes what it traced.
func (tf traceFlags) install() (finish func() error, err error) {
	progressOn = tf.progress
	if tf.out == "" {
		if tf.sampleEvery > 0 {
			return nil, fmt.Errorf("--sample-every needs --trace=<path> to write its series to")
		}
		return func() error { return nil }, nil
	}
	scenario.SetDefaultTrace(cni.TraceSpec{Enabled: true, SampleEvery: tf.sampleEvery})
	return func() error {
		defer scenario.SetDefaultTrace(cni.TraceSpec{})
		caps := scenario.DrainCaptures()
		if len(caps) == 0 {
			return fmt.Errorf("--trace=%s: the command built no simulated machines to trace", tf.out)
		}
		return writeTraceFile(tf.out, caps)
	}, nil
}

// writeTraceFile writes one merged Chrome trace JSON document and
// announces its span accounting on stderr (stdout stays reserved for
// the command's own output).
func writeTraceFile(path string, caps []trace.Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sum, err := scenario.WriteCaptures(f, caps)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d machines, %d records -> %d events (%d message spans, %d user deliveries, %d link spans, %d samples, %d overwritten)\n",
		path, len(caps), sum.Records, sum.Events, sum.FragSpans, sum.UserSpans, sum.LinkSpans, sum.Samples, sum.Overwritten)
	if sum.Overwritten > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d records overwritten (raise Trace.RingSize or trace a shorter run)\n", sum.Overwritten)
	}
	return nil
}

// runTrace is the dedicated trace subcommand: run one well-known
// measurement with full telemetry on and write its timeline. The
// loadsweep target replays the benchjson canary's machine (the
// CNI512Q saturation-knee load point), so the trace's user-delivery
// spans cross-check against the pinned delivered-message count.
func runTrace(tf traceFlags, args []string) error {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("trace: need a target (loadsweep, rpc, collective, latency, bandwidth, incast, or exchange)")
	}
	target, args := args[0], args[1:]
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	ni := fs.String("ni", "CNI512Q", "NI design")
	bus := fs.String("bus", "memory", "bus attachment")
	topology := fs.String("topology", "torus", "interconnect fabric (flat or torus)")
	size := fs.Int("size", 64, "message payload bytes (micro targets)")
	nodes := fs.Int("nodes", 16, "node count (incast/exchange)")
	out := fs.String("out", "trace.json", "Chrome trace JSON output path")
	sampleEvery := fs.Uint64("sample-every", cni.TraceSampleDefault, "time-series sampling period in cycles (0 disables the sampler)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The global flags double as overrides, so `--trace=x.json` and
	// `--sample-every=N` mean the same thing on every command.
	path := *out
	if tf.out != "" {
		path = tf.out
	}
	every := *sampleEvery
	if tf.sampleEvery > 0 {
		every = tf.sampleEvery
	}

	scenario.SetDefaultTrace(cni.TraceSpec{Enabled: true, SampleEvery: every})
	defer scenario.SetDefaultTrace(cni.TraceSpec{})

	n := *nodes
	if target == "latency" || target == "bandwidth" {
		n = 2
	}
	cfg, err := parseConfig(*ni, *bus, *topology, n)
	if err != nil {
		return err
	}
	switch target {
	case "loadsweep":
		wl := cni.DefaultWorkload()
		wl.OfferedMBps = cni.LoadsweepBenchPerNodeMBps
		cfg.Nodes = cni.LoadsweepBenchNodes
		cfg.Workload = &wl
		if err := cfg.Validate(); err != nil {
			return err
		}
		rep := cni.MeasureLoad(cfg, cni.LoadsweepBenchWarm, cni.LoadsweepBenchMeasure)
		fmt.Printf("%s saturation-knee point: offered %.1f MB/s, goodput %.1f MB/s, delivered %d\n",
			cfg.Name(), rep.OfferedMBps, rep.GoodputMBps, rep.Delivered)
	case "rpc":
		// A scaled-down fan-out point: enough calls to populate the
		// timeline without overflowing the trace ring. Built explicitly
		// so the recorder stays inspectable for the per-hop breakdown.
		spec := cni.DefaultRPCSpec()
		spec.Clients = 1000
		spec.ThinkCycles = 200_000
		if err := cfg.Validate(); err != nil {
			return err
		}
		m, err := scenario.Build(cfg)
		if err != nil {
			return err
		}
		defer m.Close()
		rep, err := dcn.RunRPCOn(m, spec, 10_000, 200_000)
		if err != nil {
			return err
		}
		fmt.Printf("%s rpc k=%d: goodput %.1f KRPS, p99.9 %.1f us, %d completed\n",
			cfg.Name(), spec.Tiers[0].Fanout, rep.GoodputKRPS,
			cni.Microseconds(rep.Latency.Quantile(0.999)), rep.Completed)
		if rec := m.TraceRecorder(); rec != nil {
			b := rec.ComputeBreakdown()
			fmt.Printf("per-hop breakdown (us): NI stall p50 %.2f p99 %.2f | fabric p50 %.2f p99 %.2f | dispatch p50 %.2f p99 %.2f (%d frags, %d msgs)\n",
				cni.Microseconds(b.Stall.Quantile(0.50)), cni.Microseconds(b.Stall.Quantile(0.99)),
				cni.Microseconds(b.Fabric.Quantile(0.50)), cni.Microseconds(b.Fabric.Quantile(0.99)),
				cni.Microseconds(b.Dispatch.Quantile(0.50)), cni.Microseconds(b.Dispatch.Quantile(0.99)),
				b.Frags, b.Msgs)
		}
	case "collective":
		if err := cfg.Validate(); err != nil {
			return err
		}
		rep, err := cni.RunCollective(cfg, cni.DefaultCollectiveSpec())
		if err != nil {
			return err
		}
		fmt.Printf("%s %s: %.1f us over %d steps, max skew %d cycles\n",
			cfg.Name(), rep.Schedule, rep.CompletionMicros, rep.Steps, rep.MaxSkew)
	case "latency":
		rtt := cni.RoundTrip(cfg, *size, 4)
		fmt.Printf("%s %dB round-trip: %d cycles (%.2f us)\n",
			cfg.Name(), *size, rtt, cni.Microseconds(rtt))
	case "bandwidth":
		bw := cni.Bandwidth(cfg, *size, 200)
		fmt.Printf("%s %dB bandwidth: %.1f MB/s\n", cfg.Name(), *size, bw)
	case "incast":
		bw := cni.HotspotIncast(cfg, *size, 24)
		fmt.Printf("%s %d-node incast: %.1f MB/s at the sink\n", cfg.Name(), cfg.Nodes, bw)
	case "exchange":
		cyc := cni.AllToAllExchange(cfg, *size, 3)
		fmt.Printf("%s %d-node all-to-all: %d cycles/round\n", cfg.Name(), cfg.Nodes, cyc)
	default:
		return fmt.Errorf("trace: unknown target %q (valid: loadsweep, rpc, collective, latency, bandwidth, incast, exchange)", target)
	}
	return writeTraceFile(path, scenario.DrainCaptures())
}
