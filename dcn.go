package cni

import (
	"repro/internal/dcn"
	"repro/internal/harness"
)

// Datacenter scenario pack (internal/dcn): multi-hop RPC fan-out with
// straggler-aware joins and hedged requests, collective schedules, and
// aggregated million-client populations, re-exported in the same shape
// as the paper experiments and the load/fault sweeps.

// RPCTier describes one hop of a fan-out call: fan-out degree, mean
// exponential service time, and payload sizes.
type RPCTier = dcn.Tier

// RPCSpec configures one RPC fan-out measurement: client population,
// think time, tier shape, hedging, and the per-front-end in-flight cap.
type RPCSpec = dcn.RPCSpec

// RPCReport is one measured RPC run: offered vs goodput KRPS, call
// counters, and the latency and straggler histograms.
type RPCReport = dcn.RPCReport

// DefaultRPCSpec is a million-client fan-out at moderate load.
func DefaultRPCSpec() RPCSpec { return dcn.DefaultRPCSpec() }

// IncastSpec is the storage-read preset built on the fan-in
// primitive: tiny requests, bulk chunk replies converging on the
// caller at once.
func IncastSpec(fanout, chunkBytes int) RPCSpec { return dcn.IncastSpec(fanout, chunkBytes) }

// RunRPC executes spec's RPC workload on cfg's machine for
// warm + measure cycles and reports SLO telemetry from the
// measurement window.
func RunRPC(cfg Config, spec RPCSpec, warm, measure Cycles) (RPCReport, error) {
	return dcn.RunRPC(cfg, spec, warm, measure)
}

// Schedule names a collective algorithm.
type Schedule = dcn.Schedule

// The collective schedules.
const (
	RingAllreduce = dcn.RingAllreduce
	RDAllreduce   = dcn.RDAllreduce
	Alltoall      = dcn.Alltoall
	Broadcast     = dcn.Broadcast
)

// Schedules lists every collective schedule.
func Schedules() []Schedule { return dcn.Schedules() }

// ParseSchedule resolves a CLI schedule name; unknown names error
// with the valid list.
func ParseSchedule(s string) (Schedule, error) { return dcn.ParseSchedule(s) }

// CollectiveSpec configures one collective run.
type CollectiveSpec = dcn.CollectiveSpec

// CollectiveReport is one collective run's completion time, per-step
// skew, and traffic volume.
type CollectiveReport = dcn.CollectiveReport

// CollectiveStep is one schedule step's completion spread.
type CollectiveStep = dcn.StepStat

// DefaultCollectiveSpec is a 64KiB-per-node ring allreduce.
func DefaultCollectiveSpec() CollectiveSpec { return dcn.DefaultCollectiveSpec() }

// RunCollective executes one collective schedule on cfg's machine.
func RunCollective(cfg Config, spec CollectiveSpec) (CollectiveReport, error) {
	return dcn.RunCollective(cfg, spec)
}

// RPCOptions selects what RPCSweep measures.
type RPCOptions = harness.RPCOptions

// RPCRow is one NI × topology cell of the RPC sweep: the fan-out
// ladder plus one deep-overload point.
type RPCRow = harness.RPCRow

// RPCPoint is one measured RPC load point.
type RPCPoint = harness.RPCPoint

// RPCSweep* pin the sweep's measurement windows and default
// population; cnisim rpc's single-point mode uses the same values so a
// one-off run measures exactly what a sweep cell does.
const (
	RPCSweepWarm    = harness.RPCSweepWarm
	RPCSweepMeasure = harness.RPCSweepMeasure
	RPCSweepClients = harness.RPCSweepClients
	RPCSweepThink   = harness.RPCSweepThink
)

// RPCSweepFanouts is the fan-out ladder every sweep cell climbs.
var RPCSweepFanouts = harness.RPCSweepFanouts

// RPCSpecFor builds the spec for one sweep point: opt's overrides on
// the default spec at the given fan-out and think time.
func RPCSpecFor(opt RPCOptions, fanout, think int) RPCSpec {
	return harness.RPCSpecFor(opt, fanout, think)
}

// RPCSweep measures RPC fan-out tail latency for every requested
// NI × topology: the fan-out ladder at moderate offered load plus one
// deep-overload point.
func RPCSweep(opt RPCOptions) (*Table, []RPCRow) { return harness.RPCSweep(opt) }

// CollectiveOptions selects what CollectiveSweep measures.
type CollectiveOptions = harness.CollectiveOptions

// CollectiveRow is one NI × topology cell: every schedule's
// completion time and straggler skew.
type CollectiveRow = harness.CollectiveRow

// CollectiveCell is one schedule's result within a row.
type CollectiveCell = harness.CollectiveCell

// CollectiveBytes is the sweep's default per-node contribution.
const CollectiveBytes = harness.CollectiveBytes

// CollectiveSweep measures every collective schedule for every
// requested NI × topology.
func CollectiveSweep(opt CollectiveOptions) (*Table, []CollectiveRow) {
	return harness.CollectiveSweep(opt)
}
