package cni

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestExperimentRegistryConformance pins the registry's structural
// contract: unique non-empty names, non-empty titles and tags, and
// ExperimentNames() exactly mirroring registry order (the registry is
// the single source of truth — there is no hand-maintained name list
// left to drift).
func TestExperimentRegistryConformance(t *testing.T) {
	reg := Experiments()
	if len(reg) == 0 {
		t.Fatal("empty experiment registry")
	}
	names := ExperimentNames()
	if len(names) != len(reg) {
		t.Fatalf("ExperimentNames has %d entries, registry %d", len(names), len(reg))
	}
	seen := make(map[string]bool)
	for i, e := range reg {
		if strings.TrimSpace(e.Name) == "" {
			t.Errorf("registry[%d] has an empty name", i)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
		if strings.TrimSpace(e.Title) == "" {
			t.Errorf("%s: empty title", e.Name)
		}
		if len(e.Tags) == 0 {
			t.Errorf("%s: no tags", e.Name)
		}
		if e.Run == nil {
			t.Errorf("%s: nil Run", e.Name)
		}
		if names[i] != e.Name {
			t.Errorf("ExperimentNames()[%d] = %q, registry order has %q", i, names[i], e.Name)
		}
	}
	// The compat shim must reject unknown names with the valid list.
	if _, err := Experiment("nope", nil); err == nil || !strings.Contains(err.Error(), "table1") {
		t.Errorf("unknown-experiment error should list valid names, got %v", err)
	}
}

// TestExperimentRegistryRenders runs every registered experiment and
// checks that it renders a well-formed table (every row as wide as
// the header) and that its Data round-trips through JSON. The
// macrobenchmark sweeps are narrowed to one app to bound the cost;
// everything but the static tables is skipped in -short mode.
func TestExperimentRegistryRenders(t *testing.T) {
	cheap := map[string]bool{"table1": true, "table2": true, "table3": true, "table4": true}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if testing.Short() && !cheap[e.Name] {
				t.Skip("simulation-heavy experiment in -short mode")
			}
			t.Parallel()
			tb, d := e.Run(RunOptions{Apps: []string{"spsolve"}})
			if tb == nil || d == nil {
				t.Fatal("Run returned nil table or data")
			}
			if tb.String() == "" || len(tb.Rows) == 0 {
				t.Fatal("table rendered empty")
			}
			for r, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Errorf("table row %d has %d cells, header %d", r, len(row), len(tb.Header))
				}
			}
			if d.Name != e.Name {
				t.Errorf("data name %q != experiment name %q", d.Name, e.Name)
			}
			if len(d.Rows) == 0 || len(d.Header) == 0 {
				t.Fatal("data grid empty")
			}
			for r, row := range d.Rows {
				if len(row) != len(d.Header) {
					t.Errorf("data row %d has %d cells, header %d", r, len(row), len(d.Header))
				}
			}
			raw, err := d.JSON()
			if err != nil {
				t.Fatalf("JSON: %v", err)
			}
			var rt Data
			if err := json.Unmarshal(raw, &rt); err != nil {
				t.Fatalf("JSON round-trip: %v", err)
			}
			if rt.Name != d.Name || rt.Title != d.Title ||
				!reflect.DeepEqual(rt.Header, d.Header) || !reflect.DeepEqual(rt.Rows, d.Rows) {
				t.Error("Data did not survive the JSON round-trip")
			}
			if csv := d.CSV(); strings.Count(csv, "\n") != len(d.Rows)+1 {
				t.Errorf("CSV has %d lines, want %d", strings.Count(csv, "\n"), len(d.Rows)+1)
			}
		})
	}
}
