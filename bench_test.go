package cni

// One benchmark per table/figure of the paper's evaluation (§5), plus
// the DESIGN.md ablations. Each benchmark iteration regenerates the
// full experiment on the simulator; run with -v to see the rendered
// paper-style tables. The headline scalar of each experiment is
// attached via b.ReportMetric so `go test -bench=.` output records it.

import (
	"strconv"
	"testing"
)

// runExperiment executes the named experiment once per iteration and
// logs the rendered table.
func runExperiment(b *testing.B, name string, apps []string) *Table {
	b.Helper()
	var tb *Table
	for i := 0; i < b.N; i++ {
		var err error
		tb, err = Experiment(name, apps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", tb.String())
	return tb
}

func cellF(b *testing.B, tb *Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell %d,%d: %v", row, col, err)
	}
	return v
}

// BenchmarkTable1Taxonomy regenerates Table 1.
func BenchmarkTable1Taxonomy(b *testing.B) { runExperiment(b, "table1", nil) }

// BenchmarkTable2BusOccupancy regenerates Table 2 (the timing model).
func BenchmarkTable2BusOccupancy(b *testing.B) { runExperiment(b, "table2", nil) }

// BenchmarkTable3Macrobenchmarks regenerates Table 3.
func BenchmarkTable3Macrobenchmarks(b *testing.B) { runExperiment(b, "table3", nil) }

// BenchmarkTable4Comparison regenerates Table 4.
func BenchmarkTable4Comparison(b *testing.B) { runExperiment(b, "table4", nil) }

// BenchmarkFig6MemoryBus regenerates Fig 6a: round-trip latency on the
// memory bus. Metric: best-CNI improvement over NI2w at 64 bytes (the
// paper reports 37%).
func BenchmarkFig6MemoryBus(b *testing.B) {
	tb := runExperiment(b, "fig6-memory", nil)
	ni2w, best := cellF(b, tb, 3, 1), cellF(b, tb, 3, 4)
	b.ReportMetric(100*(ni2w-best)/ni2w, "%improvement@64B")
}

// BenchmarkFig6IOBus regenerates Fig 6b (paper: 74% at 64 bytes).
func BenchmarkFig6IOBus(b *testing.B) {
	tb := runExperiment(b, "fig6-io", nil)
	ni2w, best := cellF(b, tb, 3, 1), cellF(b, tb, 3, 4)
	b.ReportMetric(100*(ni2w-best)/ni2w, "%improvement@64B")
}

// BenchmarkFig6AlternateBuses regenerates Fig 6c. Metric: CNI16Qm@mem
// latency as a multiple of NI2w@cache at 64 bytes (paper: 1.43x).
func BenchmarkFig6AlternateBuses(b *testing.B) {
	tb := runExperiment(b, "fig6-alt", nil)
	b.ReportMetric(cellF(b, tb, 3, 2)/cellF(b, tb, 3, 1), "x-vs-cachebus@64B")
}

// BenchmarkFig7MemoryBus regenerates Fig 7a: bandwidth relative to the
// local-queue bound. Metric: best CNI at 4 KB (paper: ~0.73).
func BenchmarkFig7MemoryBus(b *testing.B) {
	tb := runExperiment(b, "fig7-memory", nil)
	b.ReportMetric(cellF(b, tb, 3, 4), "rel-bw@4KB")
}

// BenchmarkFig7IOBus regenerates Fig 7b.
func BenchmarkFig7IOBus(b *testing.B) {
	tb := runExperiment(b, "fig7-io", nil)
	b.ReportMetric(cellF(b, tb, 3, 4), "rel-bw@4KB")
}

// BenchmarkFig7AlternateBuses regenerates Fig 7c.
func BenchmarkFig7AlternateBuses(b *testing.B) {
	tb := runExperiment(b, "fig7-alt", nil)
	b.ReportMetric(cellF(b, tb, 3, 2), "Qm-rel-bw@4KB")
}

// BenchmarkFig8MemoryBus regenerates Fig 8a: all five macrobenchmarks
// on all five NIs. Metric: mean CNI16Qm speedup (paper: 1.17-1.53).
func BenchmarkFig8MemoryBus(b *testing.B) {
	tb := runExperiment(b, "fig8-memory", nil)
	sum := 0.0
	for r := range tb.Rows {
		sum += cellF(b, tb, r, 5)
	}
	b.ReportMetric(sum/float64(len(tb.Rows)), "mean-Qm-speedup")
}

// BenchmarkFig8IOBus regenerates Fig 8b (paper: CNI512Q 1.30-1.88).
func BenchmarkFig8IOBus(b *testing.B) {
	tb := runExperiment(b, "fig8-io", nil)
	sum := 0.0
	for r := range tb.Rows {
		sum += cellF(b, tb, r, 4)
	}
	b.ReportMetric(sum/float64(len(tb.Rows)), "mean-512Q-speedup")
}

// BenchmarkFig8AlternateBuses regenerates Fig 8c.
func BenchmarkFig8AlternateBuses(b *testing.B) {
	tb := runExperiment(b, "fig8-alt", nil)
	sum := 0.0
	for r := range tb.Rows {
		sum += cellF(b, tb, r, 2) / cellF(b, tb, r, 1)
	}
	b.ReportMetric(sum/float64(len(tb.Rows)), "Qm-vs-cachebus")
}

// BenchmarkBusOccupancy regenerates the §5.2 occupancy result.
// Metric: CNI16Qm memory-bus occupancy relative to NI2w averaged over
// the macrobenchmarks (paper: CQ CNIs reduce occupancy by up to 66%).
func BenchmarkBusOccupancy(b *testing.B) {
	tb := runExperiment(b, "occupancy", nil)
	b.ReportMetric(cellF(b, tb, len(tb.Rows)-1, 5), "Qm-rel-occupancy")
}

// BenchmarkAblationCQ measures the three CQ optimisations (DESIGN.md
// A1). Metric: RTT penalty of disabling lazy pointers.
func BenchmarkAblationCQ(b *testing.B) {
	tb := runExperiment(b, "ablation", nil)
	b.ReportMetric(cellF(b, tb, 1, 1)/cellF(b, tb, 0, 1), "no-lazy-RTT-x")
}

// BenchmarkSweepQueueSize sweeps the exposed queue size (A2).
func BenchmarkSweepQueueSize(b *testing.B) {
	tb := runExperiment(b, "sweep", nil)
	b.ReportMetric(cellF(b, tb, len(tb.Rows)-1, 2), "BW@512blk")
}

// BenchmarkDMAComparison regenerates the CNI-vs-DMA extension table
// (the comparison the paper lists as its open weakness). Metric: DMA
// round trip as a multiple of the CNI's at 16 bytes (fine grain).
func BenchmarkDMAComparison(b *testing.B) {
	tb := runExperiment(b, "dma", nil)
	b.ReportMetric(cellF(b, tb, 0, 3)/cellF(b, tb, 0, 2), "DMA-vs-CNI-RTT@16B")
}

// BenchmarkGoroutineCQ measures the pure-Go cachable queue itself
// (the paper's mechanism as a host-machine data structure).
func BenchmarkGoroutineCQ(b *testing.B) {
	q := NewQueue[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryEnqueue(i)
		q.TryDequeue()
	}
}

// benchLoadsweepPoint runs one loadsweep load point — the same
// machine, workload, and warm/measure windows as a sweep rung at the
// torus knee — and reports simulator throughput as delivered user
// messages per wall-clock second. The simulated work is fixed, so any
// host-side speedup of the simulator shows up linearly in the metric.
func benchLoadsweepPoint(b *testing.B, topo Topology) {
	b.Helper()
	wl := DefaultWorkload()
	wl.OfferedMBps = LoadsweepBenchPerNodeMBps
	cfg := Config{Nodes: LoadsweepBenchNodes, NI: CNI512Q, Bus: MemoryBus,
		Topology: topo, Workload: &wl}
	var delivered uint64
	for i := 0; i < b.N; i++ {
		rep := MeasureLoad(cfg, LoadsweepBenchWarm, LoadsweepBenchMeasure)
		delivered = rep.Delivered
	}
	b.ReportMetric(float64(delivered)*float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
}

// BenchmarkTorusLoadsweep is the heaviest-path benchmark: a 16-node
// CNI512Q torus loadsweep point at the saturation knee. The benchjson
// torus_loadsweep_events_per_sec canary runs exactly this workload.
func BenchmarkTorusLoadsweep(b *testing.B) { benchLoadsweepPoint(b, TopoTorus) }

// BenchmarkFlatLoadsweep is the flat-fabric twin of
// BenchmarkTorusLoadsweep (same workload, contention-free fabric).
func BenchmarkFlatLoadsweep(b *testing.B) { benchLoadsweepPoint(b, TopoFlat) }

// benchShard4kPoint runs the Shard4kBench overload point at the given
// shard count (0 = legacy serial engine) and reports run-phase
// seconds per run (machine construction excluded — the O(n²) tables
// dominate setup at 4096 nodes and are identical across shard counts).
func benchShard4kPoint(b *testing.B, shards int) {
	b.Helper()
	wl := DefaultWorkload()
	wl.OfferedMBps = Shard4kBenchPerNodeMBps
	wl.ZipfS = 0
	cfg := Config{Nodes: Shard4kBenchNodes, NI: CNI16Q, Bus: MemoryBus,
		Topology: TopoTorus, Shards: shards, Workload: &wl}
	var run float64
	for i := 0; i < b.N; i++ {
		_, secs := MeasureLoadTimed(cfg, Shard4kBenchWarm, Shard4kBenchMeasure)
		run += secs
	}
	b.ReportMetric(run/float64(b.N), "run-sec/op")
}

// BenchmarkShard4kNodes is the sharded-engine scale benchmark: the
// 4096-node uniform-overload torus point at Shard4kBenchShards. The
// benchjson events_per_sec_4k_nodes canary runs exactly this
// workload, and its --check gate compares it against the serial twin
// below.
func BenchmarkShard4kNodes(b *testing.B) { benchShard4kPoint(b, Shard4kBenchShards) }

// BenchmarkShard4kNodesSerial is the legacy serial engine on the same
// point — the denominator of the canary's speedup gate.
func BenchmarkShard4kNodesSerial(b *testing.B) { benchShard4kPoint(b, 0) }
