package cni

import "testing"

// Alloc-regression tests for the cachable-queue hot path: the paper's
// mechanism only makes sense as a fine-grain primitive if a steady
// enqueue/dequeue cycle touches no allocator.

func TestQueueZeroAlloc(t *testing.T) {
	q := NewQueue[int](64)
	allocs := testing.AllocsPerRun(1000, func() {
		if !q.TryEnqueue(7) {
			t.Fatal("enqueue refused on non-full queue")
		}
		if _, ok := q.TryDequeue(); !ok {
			t.Fatal("dequeue failed on non-empty queue")
		}
	})
	if allocs != 0 {
		t.Errorf("TryEnqueue+TryDequeue allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRegisterZeroAlloc(t *testing.T) {
	var r Register[uint64]
	allocs := testing.AllocsPerRun(1000, func() {
		if !r.TryPublish(42) {
			t.Fatal("publish refused on clear register")
		}
		if _, ok := r.Take(); !ok {
			t.Fatal("Take failed after publish")
		}
	})
	if allocs != 0 {
		t.Errorf("Register Put+Take allocates %.1f objects/op, want 0", allocs)
	}
}
