package cni

import "repro/internal/core"

// Queue is the paper's cachable queue (§2.2) as a practical
// single-producer/single-consumer queue between goroutines, with all
// three optimisations: message valid bits (the consumer polls the
// entry, not the tail pointer), sense reverse (the consumer never
// writes entries to clear them), and lazy pointers (the producer
// re-reads the shared head only when its shadow says the queue is
// full). Create one with NewQueue.
type Queue[T any] = core.Queue[T]

// NewQueue creates a Queue with at least the given capacity (rounded
// up to a power of two).
func NewQueue[T any](capacity int) *Queue[T] { return core.New[T](capacity) }

// Register is a cachable device register (§2.1) as a one-slot
// producer/consumer mailbox with the CDR's explicit clear handshake:
// Poll does not consume; the consumer must Clear (or Take) before the
// producer can publish again. The zero value is ready to use.
type Register[T any] = core.Register[T]
