// Spsc benchmarks the paper's cachable-queue algorithm as a real
// inter-goroutine SPSC queue, against a buffered Go channel — the CQ
// optimisations (valid bits, sense reverse, lazy pointers) are
// precisely cache-traffic optimisations, so the win shows up as
// host-machine throughput.
//
// Run with: go run ./examples/spsc [--items=2000000]
package main

import (
	"flag"
	"fmt"
	"time"

	cni "repro"
)

func main() {
	items := flag.Int("items", 2_000_000, "items to move")
	flag.Parse()

	// Cachable queue.
	q := cni.NewQueue[int](4096)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		for i := 0; i < *items; i++ {
			q.Dequeue()
		}
		close(done)
	}()
	for i := 0; i < *items; i++ {
		q.Enqueue(i)
	}
	<-done
	cqDur := time.Since(start)
	fmt.Printf("cachable queue: %d items in %v (%.1f M items/s, %d lazy head refreshes)\n",
		*items, cqDur.Round(time.Millisecond),
		float64(*items)/cqDur.Seconds()/1e6, q.FullMisses())

	// Buffered channel, same workload.
	ch := make(chan int, 4096)
	start = time.Now()
	done = make(chan struct{})
	go func() {
		for i := 0; i < *items; i++ {
			<-ch
		}
		close(done)
	}()
	for i := 0; i < *items; i++ {
		ch <- i
	}
	<-done
	chDur := time.Since(start)
	fmt.Printf("go channel:     %d items in %v (%.1f M items/s)\n",
		*items, chDur.Round(time.Millisecond), float64(*items)/chDur.Seconds()/1e6)
	fmt.Printf("cachable queue is %.1fx the channel's throughput\n",
		chDur.Seconds()/cqDur.Seconds())
}
