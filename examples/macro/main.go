// Macro runs one of the paper's five macrobenchmarks on a 16-node
// simulated machine for every applicable NI design and prints the
// Figure 8-style speedups over the NI2w baseline.
//
// Run with: go run ./examples/macro [--app=spsolve] [--bus=memory|io]
package main

import (
	"flag"
	"fmt"
	"log"

	cni "repro"
)

func main() {
	app := flag.String("app", "spsolve", "one of: spsolve gauss em3d moldyn appbt")
	bus := flag.String("bus", "memory", "memory or io")
	flag.Parse()

	busKind := cni.MemoryBus
	if *bus == "io" {
		busKind = cni.IOBus
	}

	base, err := cni.RunBenchmark(*app, cni.Config{Nodes: 16, NI: cni.NI2w, Bus: cni.MemoryBus})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on 16 nodes (baseline NI2w@memory: %.0f us, %d network messages)\n",
		*app, base.Micros(), base.Messages)

	for _, ni := range cni.AllNIs {
		cfg := cni.Config{Nodes: 16, NI: ni, Bus: busKind}
		if cfg.Validate() != nil {
			continue // e.g. CNI16Qm cannot live on the I/O bus
		}
		res, err := cni.RunBenchmark(*app, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %8.0f us   speedup %.2fx   bus occupancy %5.1f%% of baseline\n",
			cfg.Name(), res.Micros(), res.SpeedupOver(base),
			100*float64(res.MemBusOccupancy)/float64(base.MemBusOccupancy))
	}
}
