// Quickstart: the two faces of the CNI reproduction in one file.
//
// Part 1 uses the cachable-queue algorithm (the paper's §2.2
// contribution) as a real Go SPSC queue between goroutines.
//
// Part 2 runs the paper's headline microbenchmark on the simulator:
// round-trip latency of a 64-byte message for the baseline NI2w and
// the best memory-bus CNI.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	cni "repro"
)

func main() {
	// --- Part 1: cachable queue between goroutines -----------------
	q := cni.NewQueue[int](256)
	done := make(chan int)
	go func() {
		sum := 0
		for i := 0; i < 1000; i++ {
			sum += q.Dequeue()
		}
		done <- sum
	}()
	for i := 0; i < 1000; i++ {
		q.Enqueue(i)
	}
	fmt.Printf("cachable queue moved 1000 items, sum=%d, producer refreshed the shared head only %d times\n",
		<-done, q.FullMisses())

	// A cachable device register: explicit-clear handshake.
	var r cni.Register[string]
	r.Publish("status: ready")
	if v, ok := r.Poll(); ok {
		fmt.Printf("CDR poll (non-consuming): %q\n", v)
	}
	r.Clear()

	// --- Part 2: the paper's round-trip microbenchmark -------------
	for _, cfg := range []cni.Config{
		{Nodes: 2, NI: cni.NI2w, Bus: cni.MemoryBus},
		{Nodes: 2, NI: cni.CNI16Qm, Bus: cni.MemoryBus},
	} {
		rtt := cni.RoundTrip(cfg, 64, 4)
		fmt.Printf("%-16s 64B round-trip: %5d cycles (%.2f us)\n",
			cfg.Name(), rtt, cni.Microseconds(rtt))
	}
}
