// Latency sweeps process-to-process round-trip latency across message
// sizes and NI designs — a miniature of the paper's Figure 6 — and
// prints the improvement of each CNI over the NI2w baseline.
//
// Run with: go run ./examples/latency [--bus=memory|io]
package main

import (
	"flag"
	"fmt"
	"os"

	cni "repro"
)

func main() {
	bus := flag.String("bus", "memory", "memory or io")
	flag.Parse()

	var busKind cni.BusKind
	switch *bus {
	case "memory":
		busKind = cni.MemoryBus
	case "io":
		busKind = cni.IOBus
	default:
		fmt.Fprintln(os.Stderr, "latency: --bus must be memory or io")
		os.Exit(2)
	}

	nis := []cni.NIKind{cni.NI2w, cni.CNI4, cni.CNI16Q, cni.CNI512Q, cni.CNI16Qm}
	fmt.Printf("%-6s", "bytes")
	for _, ni := range nis {
		if ni == cni.CNI16Qm && busKind == cni.IOBus {
			continue // CNI16Qm cannot live on the I/O bus (§2.3)
		}
		fmt.Printf("%12s", ni)
	}
	fmt.Println("   (round-trip, microseconds)")

	for _, size := range []int{8, 16, 32, 64, 128, 256} {
		fmt.Printf("%-6d", size)
		var base float64
		for _, ni := range nis {
			if ni == cni.CNI16Qm && busKind == cni.IOBus {
				continue
			}
			cfg := cni.Config{Nodes: 2, NI: ni, Bus: busKind}
			us := cni.Microseconds(cni.RoundTrip(cfg, size, 4))
			if ni == cni.NI2w {
				base = us
			}
			fmt.Printf("%12.2f", us)
			_ = base
		}
		fmt.Println()
	}
}
