// Scenario demonstrates the user-scriptable API: a four-stage
// processing pipeline over the contention-modelled 2D torus, written
// purely against cni.Build / Machine.Run / Endpoint — a communication
// pattern none of the canned benchmarks implement.
//
// Four source nodes feed items into four parallel pipeline lanes;
// each of two middle stages receives an item, "processes" it
// (simulated compute), and forwards it; four sinks measure the
// end-to-end latency of every item. All messaging runs over the
// configured NI design and fabric with the paper's timing model, so
// swapping --ni shows how the NI choice changes an application the
// paper never measured.
//
// Run with: go run ./examples/scenario [--ni=CNI512Q] [--items=32]
package main

import (
	"flag"
	"fmt"
	"log"

	cni "repro"
)

func main() {
	niName := flag.String("ni", "CNI512Q", "NI design (NI2w, CNI4, CNI16Q, CNI512Q, CNI16Qm, DMA)")
	items := flag.Int("items", 32, "items each source feeds into its pipeline lane")
	size := flag.Int("size", 244, "payload bytes per pipeline message")
	work := flag.Int("work", 500, "compute cycles per item per middle stage")
	flag.Parse()

	ni, err := cni.ParseNI(*niName)
	if err != nil {
		log.Fatal(err)
	}

	const stages, width = 4, 4
	m, err := cni.Build(cni.Config{
		Nodes:    stages * width,
		NI:       ni,
		Bus:      cni.MemoryBus,
		Topology: cni.TopoTorus,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// Worker w of stage s is node s*width + w; each stage hands its
	// output to the same worker of the next stage, so a lane's hops
	// march down the torus columns.
	node := func(stage, w int) int { return stage*width + w }

	sc := cni.NewScenario()
	var sumLat, maxLat cni.Cycles
	for w := 0; w < width; w++ {
		lane := w

		// Stage 0: source. The payload carries the injection time.
		sc.At(node(0, lane), func(ep *cni.Endpoint) {
			for i := 0; i < *items; i++ {
				ep.Send(node(1, lane), *size, ep.Clock())
			}
		})

		// Middle stages: receive, process, forward.
		for s := 1; s < stages-1; s++ {
			stage := s
			sc.At(node(stage, lane), func(ep *cni.Endpoint) {
				for i := 0; i < *items; i++ {
					it := ep.Recv()
					ep.Load(0, it.Size)           // read the item
					ep.Compute(cni.Cycles(*work)) // process it
					ep.Send(node(stage+1, lane), it.Size, it.Payload)
				}
			})
		}

		// Final stage: sink; measures end-to-end item latency.
		sc.At(node(stages-1, lane), func(ep *cni.Endpoint) {
			for i := 0; i < *items; i++ {
				it := ep.Recv()
				lat := ep.Clock() - it.Payload.(cni.Cycles)
				sumLat += lat
				if lat > maxLat {
					maxLat = lat
				}
			}
		})
	}

	tr := m.Run(sc)
	total := width * *items
	fmt.Printf("pipeline: %d stages x %d lanes on %s (torus), %d items of %d B\n",
		stages, width, ni, total, *size)
	fmt.Printf("  run time       %8.1f us (%d cycles)\n", tr.Micros(), tr.Cycles())
	fmt.Printf("  item latency   %8.1f us mean, %.1f us worst (source -> sink, %d hops)\n",
		cni.Microseconds(sumLat)/float64(total), cni.Microseconds(maxLat), stages-1)
	fmt.Printf("  throughput     %8.1f items/ms\n",
		float64(total)/tr.Micros()*1000)
	fmt.Printf("  network        %d messages, %d payload bytes\n",
		tr.Counter("net.msg"), tr.Counter("net.bytes"))
	h := tr.Histogram("net.delivery")
	fmt.Printf("  fabric p50/p99 %.1f / %.1f us per network message\n",
		cni.Microseconds(h.Quantile(0.5)), cni.Microseconds(h.Quantile(0.99)))
}
