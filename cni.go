// Package cni is an open-source reproduction of "Coherent Network
// Interfaces for Fine-Grain Communication" (Mukherjee, Falsafi, Hill
// & Wood, ISCA 1996).
//
// The paper's idea: instead of uncachable device registers, let the
// network interface participate in the node's snooping cache
// coherence protocol. Two mechanisms make that pay off — cachable
// device registers (CDRs) and cachable queues (CQs) with lazy
// pointers, message valid bits, and sense reverse.
//
// The package exposes four layers:
//
//   - The CQ algorithm itself as a practical single-producer/
//     single-consumer queue between goroutines (Queue, Register) —
//     see cq.go.
//
//   - The scenario API: Build constructs the paper's simulated
//     machine (MOESI snooping caches, multiplexed memory and I/O
//     buses, an I/O bridge, the five NI designs
//     NI2w/CNI4/CNI16Q/CNI512Q/CNI16Qm, and a pluggable
//     sliding-window fabric) once and hands out per-node Endpoints;
//     Machine.Run executes a user-written Scenario — one Go function
//     per node, run as simulated processes — and returns a typed
//     Trace. Every benchmark in this repository is written against
//     this same API.
//
//   - Canned measurement entry points over that machine (RoundTrip,
//     Bandwidth, MeasureLoad, RunBenchmark, ...).
//
//   - The typed experiment registry that regenerates every table and
//     figure in the paper's evaluation with uniform machine-readable
//     output (Experiments, and the Experiment compat shim).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package cni

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Machine is one built simulated machine with per-node Endpoints:
// construct it with Build, script it with NewScenario + Machine.Run,
// and Close it when done. Simulated time accumulates across runs.
type Machine = scenario.Machine

// Endpoint is one node's interface to the machine: Send/TrySend/Recv
// plus active-message handlers (Handle, SendTo, Poll, PollUntil) and
// local costs (Compute, Load, Store, Sleep). Its methods charge the
// configured NI/bus/fabric's simulated costs to the node's process.
type Endpoint = scenario.Endpoint

// Scenario is an ordered set of per-node programs; build one with
// NewScenario().At(node, body) and execute it with Machine.Run.
type Scenario = scenario.Scenario

// NodeFunc is one node's program within a Scenario.
type NodeFunc = scenario.NodeFunc

// Trace is a scenario run's typed result: runtime cycles, per-counter
// deltas, and latency histograms.
type Trace = scenario.Trace

// Message is one user message as seen by Endpoint.Recv.
type Message = scenario.Message

// Handler is an active-message handler installed via Endpoint.Handle.
type Handler = scenario.Handler

// Delivery is what a Handler receives.
type Delivery = scenario.Delivery

// Build constructs a simulated machine for cfg and exposes its
// per-node Endpoints. The machine is reusable across scenario runs;
// Close it when done.
func Build(cfg Config) (*Machine, error) { return scenario.Build(cfg) }

// NewScenario returns an empty scenario for Machine.Run.
func NewScenario() *Scenario { return scenario.New() }

// Config selects a machine configuration: node count, NI design, bus
// attachment, and optional features/ablations.
type Config = params.Config

// NIKind identifies one of the paper's five NI designs.
type NIKind = params.NIKind

// BusKind identifies where the NI attaches.
type BusKind = params.BusKind

// The five network interface designs (paper Table 1).
const (
	NI2w    = params.NI2w
	CNI4    = params.CNI4
	CNI16Q  = params.CNI16Q
	CNI512Q = params.CNI512Q
	CNI16Qm = params.CNI16Qm
	// DMA is this reproduction's user-level-DMA comparator (the
	// comparison the paper lists as its open weakness).
	DMA = params.DMA
)

// NI attachment points (paper §4.1, §5).
const (
	CacheBus  = params.CacheBus
	MemoryBus = params.MemoryBus
	IOBus     = params.IOBus
)

// Topology identifies the interconnect fabric model.
type Topology = params.Topology

// Interconnect fabrics (Config.Topology).
const (
	// TopoFlat is the paper's contention-free constant-latency
	// network (the default).
	TopoFlat = params.TopoFlat
	// TopoTorus is the 2D torus with dimension-order routing and
	// per-link contention.
	TopoTorus = params.TopoTorus
)

// ParseTopology resolves a CLI topology name ("flat" or "torus").
func ParseTopology(s string) (Topology, error) { return params.ParseTopology(s) }

// ArrivalKind selects a workload arrival process.
type ArrivalKind = params.ArrivalKind

// The workload arrival processes (internal/workload).
const (
	ArrivalPoisson = params.ArrivalPoisson
	ArrivalBursty  = params.ArrivalBursty
	ArrivalClosed  = params.ArrivalClosed
)

// ParseArrival resolves a CLI arrival-process name ("poisson",
// "bursty", or "closed").
func ParseArrival(s string) (ArrivalKind, error) { return params.ParseArrival(s) }

// ParseNI resolves a CLI NI design name (case-insensitive).
func ParseNI(s string) (NIKind, error) { return params.ParseNI(s) }

// Workload configures the deterministic traffic generators; attach
// one to Config.Workload and measure with MeasureLoad.
type Workload = params.Workload

// DefaultWorkload is the load sweep's reference traffic spec.
func DefaultWorkload() Workload { return params.DefaultWorkload() }

// LoadReport is one measured workload run: offered load, goodput, and
// the end-to-end latency histogram.
type LoadReport = workload.Report

// MeasureLoad runs cfg's workload (cfg.Workload, nil for the default)
// for warm + measure cycles and reports goodput and tail latency from
// the measurement window.
func MeasureLoad(cfg Config, warm, measure Cycles) LoadReport {
	return workload.Run(cfg, warm, measure)
}

// MeasureLoadTimed is MeasureLoad plus the run phase's wall-clock
// seconds (machine construction excluded) — the denominator the
// sharded-engine speedup canary compares across Config.Shards values.
func MeasureLoadTimed(cfg Config, warm, measure Cycles) (LoadReport, float64) {
	return workload.RunTimed(cfg, warm, measure)
}

// Faults configures the deterministic fault-injection layer: seeded
// per-message drop/corrupt/duplicate/delay probabilities, a
// degraded-link window, node pause/crash schedules, and the reliable
// transport switch. The zero value injects nothing and leaves every
// simulation byte-identical to a fault-free build.
type Faults = params.Faults

// FaultPause stalls one node's NI over a simulated-time window.
type FaultPause = params.FaultPause

// FaultCrash kills one node's NI at a simulated time.
type FaultCrash = params.FaultCrash

// TraceSpec configures the zero-overhead telemetry subsystem
// (internal/trace): Enabled turns on message-lifecycle recording into
// per-node rings, SampleEvery > 0 adds the periodic time-series
// sampler. The zero value wires nothing and leaves every simulation
// byte-identical to an untraced build. Attach one to Config.Trace;
// read the handles back with Machine.TraceRecorder /
// Machine.TraceSampler and export Perfetto-loadable Chrome trace JSON
// with Machine.WriteTrace. (The name Trace is already taken by the
// scenario run result.)
type TraceSpec = params.Trace

// TraceSummary accounts for one trace export: record, span, and
// sample counts (Machine.WriteTrace's result).
type TraceSummary = trace.Summary

// Default trace-ring capacity (records per node) and sampling period
// (cycles), applied when TraceSpec leaves them zero.
const (
	TraceRingDefault   = params.TraceRingDefault
	TraceSampleDefault = params.TraceSampleDefault
)

// LoadsweepBench* pin the "heaviest path" benchmark load point shared
// by BenchmarkTorusLoadsweep and the benchjson
// torus_loadsweep_events_per_sec canary: the default sweep's machine
// at the CNI512Q torus saturation knee.
const (
	LoadsweepBenchNodes       = harness.LoadsweepBenchNodes
	LoadsweepBenchWarm        = harness.LoadsweepBenchWarm
	LoadsweepBenchMeasure     = harness.LoadsweepBenchMeasure
	LoadsweepBenchPerNodeMBps = harness.LoadsweepBenchPerNodeMBps
)

// Shard4kBench* pin the sharded-engine benchmark point shared by
// BenchmarkShard4kNodes and the benchjson events_per_sec_4k_nodes
// canary: uniform overload on a 4096-node torus, serial engine vs 64
// shards (see internal/harness/shardbench.go for the regime).
const (
	Shard4kBenchNodes       = harness.Shard4kBenchNodes
	Shard4kBenchShards      = harness.Shard4kBenchShards
	Shard4kBenchWarm        = harness.Shard4kBenchWarm
	Shard4kBenchMeasure     = harness.Shard4kBenchMeasure
	Shard4kBenchPerNodeMBps = harness.Shard4kBenchPerNodeMBps
)

// SweepOptions selects what LoadSweep sweeps.
type SweepOptions = harness.SweepOptions

// SweepRow is one NI × topology load sweep's machine-readable result.
type SweepRow = harness.SweepRow

// LoadSweep steps offered load up a ladder per NI × topology until
// goodput stops tracking it, and reports saturation throughput plus
// tail latency at 30/60/90% of the saturation load.
func LoadSweep(opt SweepOptions) (*Table, []SweepRow) { return harness.LoadSweep(opt) }

// FaultOptions selects what FaultSweep sweeps.
type FaultOptions = harness.FaultOptions

// FaultRow is one NI × topology drop-rate ladder with its
// graceful-degradation knee.
type FaultRow = harness.FaultRow

// FaultPoint is one measured (NI, topology, drop rate) cell.
type FaultPoint = harness.FaultPoint

// FaultLadder is the default injected drop-rate ladder.
var FaultLadder = harness.FaultLadder

// FaultSweep climbs the drop-rate ladder per NI × topology with the
// reliable transport engaged on every rung and reports goodput, tail
// latency, and recovery telemetry, plus each row's
// graceful-degradation knee.
func FaultSweep(opt FaultOptions) (*Table, []FaultRow) { return harness.FaultSweep(opt) }

// AllNIs lists the five designs in the paper's order.
var AllNIs = params.AllNIs

// Cycles is simulation time in 200 MHz processor cycles.
type Cycles = sim.Time

// Microseconds converts cycles to microseconds.
func Microseconds(c Cycles) float64 { return machine.Microseconds(c) }

// RoundTrip measures process-to-process round-trip latency (paper
// Fig 6) for size-byte messages under cfg; rounds are averaged after
// a warm-up. Returns cycles.
func RoundTrip(cfg Config, size, rounds int) Cycles {
	return apps.RoundTrip(cfg, size, rounds)
}

// Bandwidth measures sustainable process-to-process bandwidth (paper
// Fig 7) in MB/s of user payload for size-byte messages under cfg.
func Bandwidth(cfg Config, size, messages int) float64 {
	return apps.Bandwidth(cfg, size, messages)
}

// LocalQueueBandwidth returns the paper's Fig 7 normalisation bound:
// the cache-to-cache bandwidth of a local memory queue between two
// processors on one coherent memory bus (paper: 144 MB/s).
func LocalQueueBandwidth() float64 { return apps.LocalQueueBandwidth() }

// HotspotIncast streams perSender size-byte messages from every other
// node into node 0 and returns the delivered MB/s at the sink.
func HotspotIncast(cfg Config, size, perSender int) float64 {
	return apps.HotspotIncast(cfg, size, perSender)
}

// AllToAllExchange runs a personalised all-to-all and returns average
// cycles per round in steady state.
func AllToAllExchange(cfg Config, size, rounds int) Cycles {
	return apps.AllToAllExchange(cfg, size, rounds)
}

// ProbeRTT measures round-trip latency between node 0 and its torus
// antipode under hotspot background load with the given send gap
// (negative disables the background) — the congestion experiment's
// probe, exposed for one-off measurements.
func ProbeRTT(cfg Config, size, rounds, gap int) Cycles {
	return apps.ProbeRTT(cfg, size, rounds, gap, apps.BgHotspot)
}

// Benchmarks lists the five macrobenchmark names (paper Table 3).
func Benchmarks() []string {
	var out []string
	for _, a := range apps.All() {
		out = append(out, a.Name())
	}
	return out
}

// RunBenchmark executes one macrobenchmark under cfg and returns its
// result (runtime, bus occupancy, traffic).
func RunBenchmark(name string, cfg Config) (apps.Result, error) {
	a, err := apps.ByName(name)
	if err != nil {
		return apps.Result{}, err
	}
	return a.Run(cfg), nil
}

// Result is one macrobenchmark outcome.
type Result = apps.Result

// Table is a rendered experiment: paper-style rows with a String()
// method.
type Table = harness.Table

// ExperimentDef is one registered experiment: a stable Name, a
// human-readable Title, classification Tags, and a Run function
// returning the rendered Table plus machine-readable Data.
type ExperimentDef = harness.Experiment

// RunOptions parameterises one registry experiment run (currently:
// narrowing the macrobenchmark sweeps to an app subset).
type RunOptions = harness.RunOpts

// Data is an experiment's machine-readable result, uniformly
// exportable as JSON or CSV across every registered experiment.
type Data = harness.Data

// Experiments returns the typed experiment registry in presentation
// order. ExperimentNames, the Experiment shim, and the CLI's `list`
// are all derived from it, so a new experiment registers exactly
// once.
func Experiments() []ExperimentDef { return harness.Registry() }

// ExperimentNames lists the registered experiment names in registry
// order.
func ExperimentNames() []string {
	reg := harness.Registry()
	names := make([]string, len(reg))
	for i, e := range reg {
		names[i] = e.Name
	}
	return names
}

// LookupExperiment finds a registered experiment by name.
func LookupExperiment(name string) (ExperimentDef, bool) { return harness.ByName(name) }

// ExperimentData runs one registered experiment and returns both the
// rendered table and its machine-readable Data.
func ExperimentData(name string, opt RunOptions) (*Table, *Data, error) {
	e, ok := harness.ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("cni: unknown experiment %q (want one of %v)", name, ExperimentNames())
	}
	t, d := e.Run(opt)
	return t, d, nil
}

// Experiment regenerates one of the paper's tables or figures (or one
// of this reproduction's ablations). appNames narrows the Fig 8 /
// occupancy sweeps to specific benchmarks (nil runs all five).
//
// It is a thin compatibility shim over the typed registry; new code
// should use Experiments or ExperimentData.
func Experiment(name string, appNames []string) (*Table, error) {
	t, _, err := ExperimentData(name, RunOptions{Apps: appNames})
	return t, err
}
