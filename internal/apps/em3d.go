package apps

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
)

const hEm3dUpdate = HApp + 30

// Em3d reproduces the paper's three-dimensional electromagnetic wave
// propagation kernel (Culler et al., Split-C): a bipartite graph of E
// and H nodes with directed edges; each graph node sends two integers
// (12-byte payload with the header's sense of "two integers") to its
// remote neighbours through a custom update protocol each
// half-iteration. Several updates are in flight at once — bursty,
// like spsolve (§4.2, Table 3: "1K nodes, degree 5, 10% remote,
// span 6, 10 iter").
type Em3d struct {
	GraphNodes int
	Degree     int
	PctRemote  int // percentage of edges crossing processors
	Span       int // neighbour processors within +/- span
	Iters      int
	Seed       uint64
}

// NewEm3d returns the benchmark with its default (scaled) input.
func NewEm3d() *Em3d {
	// Paper: 1K nodes, degree 5, 10% remote, span 6, 10 iterations.
	// Scaled: 512 nodes, 6 iterations; degree/remoteness/span kept.
	return &Em3d{GraphNodes: 512, Degree: 5, PctRemote: 10, Span: 6, Iters: 6, Seed: 2}
}

// Name implements App.
func (e *Em3d) Name() string { return "em3d" }

// KeyComm implements App.
func (e *Em3d) KeyComm() string { return "Fine-Grain Messages" }

// Input implements App.
func (e *Em3d) Input() string {
	return fmt.Sprintf("%d nodes, degree %d, %d%% remote, span %d, %d iter (paper: 1K nodes, 10 iter)",
		e.GraphNodes, e.Degree, e.PctRemote, e.Span, e.Iters)
}

// Run implements App.
func (e *Em3d) Run(cfg params.Config) Result {
	m := build(cfg)
	defer m.Close()
	P := cfg.Nodes
	rnd := NewRand(e.Seed)
	bar := NewBarrier(m)

	// remoteEdges[p] = list of destination processors for p's remote
	// edges (one 12-byte update each per half-iteration);
	// expectedPerHalf[p] = updates p receives per half-iteration.
	remoteEdges := make([][]int, P)
	localEdges := make([]int, P)
	expectedPerHalf := make([]int, P)
	perProc := e.GraphNodes / P
	for gn := 0; gn < perProc*P; gn++ {
		owner := gn % P
		for d := 0; d < e.Degree; d++ {
			if rnd.Intn(100) < e.PctRemote {
				off := 1 + rnd.Intn(e.Span)
				if rnd.Intn(2) == 0 {
					off = -off
				}
				dst := ((owner+off)%P + P) % P
				if dst == owner {
					localEdges[owner]++
					continue
				}
				remoteEdges[owner] = append(remoteEdges[owner], dst)
				expectedPerHalf[dst]++
			} else {
				localEdges[owner]++
			}
		}
	}

	got := make([]int, P)
	for id := 0; id < P; id++ {
		node := id
		m.Endpoint(id).Handle(hEm3dUpdate, func(d *scenario.Delivery) {
			got[node]++
			d.EP.Compute(4) // apply the two-integer update
		})
	}

	sc := scenario.New()
	for id := 0; id < P; id++ {
		me := id
		sc.At(id, func(ep *scenario.Endpoint) {
			expected := 0
			for it := 0; it < e.Iters; it++ {
				for half := 0; half < 2; half++ { // E then H
					// Local updates: cached computation.
					ep.Compute(sim.Time(localEdges[me] * 4))
					// Remote updates: one 12-byte message per edge.
					for _, dst := range remoteEdges[me] {
						ep.SendTo(dst, hEm3dUpdate, 12, nil)
					}
					expected += expectedPerHalf[me]
					ep.PollUntil(func() bool { return got[me] >= expected })
					bar.Wait(ep)
				}
			}
		})
	}
	tr := m.Run(sc)
	return collect(e.Name(), cfg, m, tr)
}
