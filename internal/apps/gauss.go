package apps

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
)

const hGaussPivot = HApp + 20

// Gauss reproduces the paper's message-passing Gaussian elimination
// (Chandra et al.): the key communication pattern is a one-to-all
// broadcast of the pivot row each iteration — two kilobytes for the
// paper's 512x512 matrix (§4.2, §5.2 "gauss performs a one-to-all
// broadcast of a 2KB row").
//
// Rows are dealt cyclically; the pivot owner broadcasts the row, then
// every processor eliminates its remaining rows.
type Gauss struct {
	N          int // matrix dimension
	RowBytes   int // broadcast payload per pivot row
	FlopCycles int // cycles per eliminated element
}

// NewGauss returns the benchmark with its default (scaled) input.
func NewGauss() *Gauss {
	// Paper: 512x512 with 2 KB rows. Scaled: 64x64 with the row
	// broadcast held at 2 KB so the communication pattern (bulk
	// one-to-all) is unchanged.
	return &Gauss{N: 64, RowBytes: 2048, FlopCycles: 2}
}

// Name implements App.
func (g *Gauss) Name() string { return "gauss" }

// KeyComm implements App.
func (g *Gauss) KeyComm() string { return "One-To-All Broadcast" }

// Input implements App.
func (g *Gauss) Input() string {
	return fmt.Sprintf("%dx%d matrix, %dB pivot rows (paper: 512x512, 2KB rows)", g.N, g.N, g.RowBytes)
}

// Run implements App.
func (g *Gauss) Run(cfg params.Config) Result {
	m := build(cfg)
	defer m.Close()
	P := cfg.Nodes
	bar := NewBarrier(m)

	// gotPivot[p] counts pivot rows received at processor p.
	gotPivot := make([]int, P)
	for id := 0; id < P; id++ {
		node := id
		m.Endpoint(id).Handle(hGaussPivot, func(d *scenario.Delivery) {
			gotPivot[node]++
		})
	}

	sc := scenario.New()
	for id := 0; id < P; id++ {
		me := id
		sc.At(id, func(ep *scenario.Endpoint) {
			expected := 0
			for k := 0; k < g.N; k++ {
				owner := k % P
				if owner == me {
					// Read the pivot row out of memory and broadcast.
					ep.Load(0, g.RowBytes)
					for d := 0; d < P; d++ {
						if d != me {
							ep.SendTo(d, hGaussPivot, g.RowBytes, k)
						}
					}
				} else {
					expected++
					ep.PollUntil(func() bool { return gotPivot[me] >= expected })
				}
				// Eliminate my rows below the pivot.
				myRows := 0
				for r := k + 1; r < g.N; r++ {
					if r%P == me {
						myRows++
					}
				}
				ep.Compute(sim.Time(myRows * (g.N - k) * g.FlopCycles))
			}
			bar.Wait(ep)
		})
	}
	tr := m.Run(sc)
	return collect(g.Name(), cfg, m, tr)
}
