package apps

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

const hGaussPivot = HApp + 20

// Gauss reproduces the paper's message-passing Gaussian elimination
// (Chandra et al.): the key communication pattern is a one-to-all
// broadcast of the pivot row each iteration — two kilobytes for the
// paper's 512x512 matrix (§4.2, §5.2 "gauss performs a one-to-all
// broadcast of a 2KB row").
//
// Rows are dealt cyclically; the pivot owner broadcasts the row, then
// every processor eliminates its remaining rows.
type Gauss struct {
	N          int // matrix dimension
	RowBytes   int // broadcast payload per pivot row
	FlopCycles int // cycles per eliminated element
}

// NewGauss returns the benchmark with its default (scaled) input.
func NewGauss() *Gauss {
	// Paper: 512x512 with 2 KB rows. Scaled: 64x64 with the row
	// broadcast held at 2 KB so the communication pattern (bulk
	// one-to-all) is unchanged.
	return &Gauss{N: 64, RowBytes: 2048, FlopCycles: 2}
}

// Name implements App.
func (g *Gauss) Name() string { return "gauss" }

// KeyComm implements App.
func (g *Gauss) KeyComm() string { return "One-To-All Broadcast" }

// Input implements App.
func (g *Gauss) Input() string {
	return fmt.Sprintf("%dx%d matrix, %dB pivot rows (paper: 512x512, 2KB rows)", g.N, g.N, g.RowBytes)
}

// Run implements App.
func (g *Gauss) Run(cfg params.Config) Result {
	m := machine.New(cfg)
	defer m.Stop()
	P := cfg.Nodes
	bar := NewBarrier(m)

	// gotPivot[p] counts pivot rows received at processor p.
	gotPivot := make([]int, P)
	for _, n := range m.Nodes {
		node := n.ID
		n.Msgr.Register(hGaussPivot, func(ctx *msg.Context) {
			gotPivot[node]++
		})
	}

	for _, n := range m.Nodes {
		m.Spawn(n.ID, func(p *sim.Process, nd *machine.Node) {
			me := nd.ID
			expected := 0
			for k := 0; k < g.N; k++ {
				owner := k % P
				if owner == me {
					// Read the pivot row out of memory and broadcast.
					nd.CPU.LoadRange(p, machine.UserBase, g.RowBytes)
					for d := 0; d < P; d++ {
						if d != me {
							nd.Msgr.Send(p, d, hGaussPivot, g.RowBytes, k)
						}
					}
				} else {
					expected++
					nd.Msgr.PollUntil(p, func() bool { return gotPivot[me] >= expected })
				}
				// Eliminate my rows below the pivot.
				myRows := 0
				for r := k + 1; r < g.N; r++ {
					if r%P == me {
						myRows++
					}
				}
				nd.CPU.Compute(p, sim.Time(myRows*(g.N-k)*g.FlopCycles))
			}
			bar.Wait(p, nd)
		})
	}
	cycles := m.Run(sim.Forever)
	return collect(g.Name(), cfg, m, cycles)
}
