package apps

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
)

const hMoldynChunk = HApp + 40

// Moldyn reproduces the paper's molecular dynamics application (the
// CHARMM-like non-bonded force calculation): the dominant
// communication is a custom bulk reduction protocol (Mukherjee et
// al., PPOPP'95) that accounts for roughly 40% of execution with
// NI2w. One execution of the reduction iterates as many times as
// there are processors; in each iteration a processor sends 1.5 KB to
// the same neighbouring processor (§4.2, §5).
type Moldyn struct {
	Particles   int
	Iters       int // timesteps
	ChunkBytes  int // reduction transfer per ring step
	ForceCycles int // compute cycles per particle per timestep
}

// NewMoldyn returns the benchmark with its default (scaled) input.
func NewMoldyn() *Moldyn {
	// Paper: 2048 particles, 30 iterations, 1.5 KB reduction chunks.
	// Scaled: 2048 particles, 4 iterations; chunk size kept at 1.5 KB.
	return &Moldyn{Particles: 2048, Iters: 4, ChunkBytes: 1536, ForceCycles: 12}
}

// Name implements App.
func (md *Moldyn) Name() string { return "moldyn" }

// KeyComm implements App.
func (md *Moldyn) KeyComm() string { return "Bulk Reduction" }

// Input implements App.
func (md *Moldyn) Input() string {
	return fmt.Sprintf("%d particles, %d iter, %dB chunks (paper: 2048 particles, 30 iter)",
		md.Particles, md.Iters, md.ChunkBytes)
}

// Run implements App.
func (md *Moldyn) Run(cfg params.Config) Result {
	m := build(cfg)
	defer m.Close()
	P := cfg.Nodes
	bar := NewBarrier(m)

	got := make([]int, P)
	for id := 0; id < P; id++ {
		node := id
		m.Endpoint(id).Handle(hMoldynChunk, func(d *scenario.Delivery) {
			got[node]++
			// Fold the received partial forces into the local array.
			d.EP.Store(0, d.Size)
		})
	}

	sc := scenario.New()
	for id := 0; id < P; id++ {
		me := id
		sc.At(id, func(ep *scenario.Endpoint) {
			right := (me + 1) % P
			expected := 0
			for it := 0; it < md.Iters; it++ {
				// Force computation phase.
				ep.Compute(sim.Time(md.Particles / P * md.ForceCycles))
				// Bulk reduction: P ring steps, 1.5 KB to the same
				// neighbour each step; reception overlaps sending.
				for step := 0; step < P; step++ {
					ep.Load(0, md.ChunkBytes)
					ep.SendTo(right, hMoldynChunk, md.ChunkBytes, nil)
					expected++
					ep.PollUntil(func() bool { return got[me] >= expected })
				}
				bar.Wait(ep)
			}
		})
	}
	tr := m.Run(sc)
	return collect(md.Name(), cfg, m, tr)
}
