package apps

import (
	"testing"

	"repro/internal/params"
)

func cfg16(ni params.NIKind) params.Config {
	return params.Config{Nodes: 16, NI: ni, Bus: params.MemoryBus}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Next() == NewRand(2).Next() {
		t.Fatal("different seeds should differ")
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float(); f < 0 || f >= 1 {
			t.Fatalf("Float out of range: %v", f)
		}
	}
}

func TestRoundTripBasic(t *testing.T) {
	t.Parallel()
	rtt := RoundTrip(params.Config{NI: params.CNI512Q, Bus: params.MemoryBus}, 64, 3)
	if rtt < 2*params.NetLatency || rtt > 5000 {
		t.Fatalf("RTT = %d, implausible", rtt)
	}
}

func TestRoundTripMonotonicInSize(t *testing.T) {
	t.Parallel()
	cfg := params.Config{NI: params.CNI512Q, Bus: params.MemoryBus}
	prev := RoundTrip(cfg, 8, 2)
	for _, size := range []int{64, 256, 1024} {
		rtt := RoundTrip(cfg, size, 2)
		if rtt < prev {
			t.Errorf("RTT(%d) = %d < RTT of smaller size %d", size, rtt, prev)
		}
		prev = rtt
	}
}

func TestBandwidthOrdering(t *testing.T) {
	t.Parallel()
	// Fig 7a at a moderate size: every CNI beats NI2w.
	size, msgs := 1024, 30
	ni2w := Bandwidth(params.Config{NI: params.NI2w, Bus: params.MemoryBus}, size, msgs)
	cni := Bandwidth(params.Config{NI: params.CNI512Q, Bus: params.MemoryBus}, size, msgs)
	t.Logf("1KB bandwidth: NI2w=%.0f MB/s CNI512Q=%.0f MB/s", ni2w, cni)
	if cni <= ni2w {
		t.Errorf("CNI512Q bandwidth %.0f should beat NI2w %.0f", cni, ni2w)
	}
	if ni2w <= 0 || cni <= 0 {
		t.Error("bandwidth must be positive")
	}
}

func TestLocalQueueBandwidthNearPaper(t *testing.T) {
	t.Parallel()
	bw := LocalQueueBandwidth()
	t.Logf("local queue bound = %.0f MB/s (paper: 144)", bw)
	if bw < 130 || bw > 170 {
		t.Errorf("local queue bandwidth %.0f MB/s outside the calibration band", bw)
	}
}

func TestAllAppsListed(t *testing.T) {
	apps := All()
	if len(apps) != 5 {
		t.Fatalf("All() returned %d apps, want 5", len(apps))
	}
	want := []string{"spsolve", "gauss", "em3d", "moldyn", "appbt"}
	for i, a := range apps {
		if a.Name() != want[i] {
			t.Errorf("app %d = %s, want %s", i, a.Name(), want[i])
		}
		if a.KeyComm() == "" || a.Input() == "" {
			t.Errorf("%s missing Table 3 metadata", a.Name())
		}
	}
	if _, err := ByName("gauss"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should fail for unknown apps")
	}
}

// TestAppsCompleteOn16Nodes is the paper's configuration smoke test:
// every macrobenchmark must run to completion on 16 nodes with the
// best memory-bus CNI and produce sane statistics.
func TestAppsCompleteOn16Nodes(t *testing.T) {
	t.Parallel()
	for _, app := range All() {
		res := app.Run(cfg16(params.CNI16Qm))
		t.Logf("%s: %.0f us, %d net msgs", app.Name(), res.Micros(), res.Messages)
		if res.Cycles == 0 {
			t.Errorf("%s: zero cycles", app.Name())
		}
		if res.Messages == 0 {
			t.Errorf("%s: no network traffic", app.Name())
		}
		if res.MemBusOccupancy == 0 {
			t.Errorf("%s: no bus occupancy", app.Name())
		}
	}
}

// TestAppsDeterministic re-runs one app and expects identical cycles.
func TestAppsDeterministic(t *testing.T) {
	t.Parallel()
	a := NewEm3d().Run(cfg16(params.CNI512Q))
	b := NewEm3d().Run(cfg16(params.CNI512Q))
	if a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

// TestSpsolveCNIBeatsBaseline checks the Fig 8a headline for the most
// communication-bound app.
func TestSpsolveCNIBeatsBaseline(t *testing.T) {
	t.Parallel()
	base := NewSpsolve().Run(cfg16(params.NI2w))
	best := NewSpsolve().Run(cfg16(params.CNI16Qm))
	sp := best.SpeedupOver(base)
	t.Logf("spsolve speedup CNI16Qm vs NI2w = %.2f", sp)
	if sp <= 1.0 {
		t.Errorf("CNI16Qm should speed spsolve up, got %.2f", sp)
	}
}
