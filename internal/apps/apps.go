// Package apps contains the paper's workloads: the two
// microbenchmarks of §5.1 (process-to-process round-trip latency and
// bandwidth) and the five macrobenchmarks of §4.2 / Table 3 (spsolve,
// gauss, em3d, moldyn, appbt).
//
// The macrobenchmarks reproduce each application's *communication
// pattern and message-size distribution* — the paper attributes every
// effect it reports to those — with computation modelled as explicit
// cycle costs. Inputs are scaled from the paper's (documented per app
// and recorded in EXPERIMENTS.md) so a full five-app × five-NI ×
// two-bus sweep runs in seconds of host time.
package apps

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// App is one macrobenchmark.
type App interface {
	// Name is the Table 3 benchmark name.
	Name() string
	// KeyComm is the Table 3 "Key Communication" column.
	KeyComm() string
	// Input describes the (scaled) input data set.
	Input() string
	// Run executes the workload on a fresh machine built for cfg and
	// returns the result. Implementations must be deterministic.
	Run(cfg params.Config) Result
}

// Result summarises one application run.
type Result struct {
	App             string
	Config          params.Config
	Cycles          sim.Time
	MemBusOccupancy sim.Time
	Messages        uint64
	NetBytes        uint64
}

// Micros converts the runtime to microseconds.
func (r Result) Micros() float64 { return machine.Microseconds(r.Cycles) }

// SpeedupOver returns base.Cycles / r.Cycles (the paper's Fig 8
// y-axis, speedup relative to NI2w on the memory bus).
func (r Result) SpeedupOver(base Result) float64 {
	return float64(base.Cycles) / float64(r.Cycles)
}

func (r Result) String() string {
	return fmt.Sprintf("%s on %s: %.0f us, %d msgs, %d net bytes",
		r.App, r.Config.Name(), r.Micros(), r.Messages, r.NetBytes)
}

// All returns the five macrobenchmarks in Table 3 order.
func All() []App {
	return []App{NewSpsolve(), NewGauss(), NewEm3d(), NewMoldyn(), NewAppbt()}
}

// ByName returns the named app.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown benchmark %q", name)
}

// StatsDump, when non-nil, is invoked with every finished run's
// statistics. Tests and the CLI's --stats flag use it; it must not
// retain the Stats beyond the call.
var StatsDump func(cfg params.Config, st *sim.Stats)

// build constructs a scenario machine, panicking on invalid
// configurations (App.Run keeps the harness's no-error signature;
// call cfg.Validate first for a friendly error).
func build(cfg params.Config) *scenario.Machine {
	m, err := scenario.Build(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// collect turns a finished scenario run into a Result.
func collect(app string, cfg params.Config, m *scenario.Machine, tr *scenario.Trace) Result {
	if StatsDump != nil {
		StatsDump(cfg, m.Stats())
	}
	return Result{
		App:             app,
		Config:          cfg,
		Cycles:          tr.Cycles(),
		MemBusOccupancy: tr.BusOccupancy,
		Messages:        tr.Counter("net.msg"),
		NetBytes:        tr.Counter("net.bytes"),
	}
}

// Rand is a small deterministic xorshift64* generator so workloads are
// reproducible across runs and platforms.
type Rand struct{ s uint64 }

// NewRand seeds a generator (seed 0 is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Next returns the next raw 64-bit value.
func (r *Rand) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("apps: Intn on non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float returns a value in [0, 1).
func (r *Rand) Float() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}
