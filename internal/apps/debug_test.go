package apps

import (
	"strings"
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
)

// TestDebugSpsolveCounters prints aggregate counters for spsolve on
// the queue-based CNIs, used while validating the flow-control model
// against the paper's §5.2 narrative.
func TestDebugSpsolveCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("debug diagnostics")
	}
	interesting := func(name string) bool {
		return strings.HasPrefix(name, "tx.") ||
			strings.HasPrefix(name, "net.") ||
			strings.Contains(name, "send.full") ||
			strings.Contains(name, "swbuffered") ||
			strings.Contains(name, "headrefresh") ||
			strings.Contains(name, "qfull") ||
			strings.Contains(name, "send.block") ||
			strings.Contains(name, "overflowWB")
	}
	defer func() { StatsDump = nil }()
	for _, ni := range []params.NIKind{params.CNI4, params.CNI16Q, params.CNI512Q, params.CNI16Qm} {
		StatsDump = func(cfg params.Config, st *sim.Stats) {
			for _, name := range st.Counters() {
				if interesting(name) {
					t.Logf("  %-40s %d", name, st.Get(name))
				}
			}
		}
		res := NewSpsolve().Run(cfg16(ni))
		t.Logf("%s total: %d cycles, %d msgs", ni, res.Cycles, res.Messages)
	}
}
