package apps

import (
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

// Microbenchmark handler ids.
const (
	hPing = HApp + iota
	hPong
	hStream
	hIncast
	hExchange
	hBgSink
)

// RoundTrip measures process-to-process round-trip latency (§5.1.1,
// Fig 6) for size-byte user messages on a two-node machine built for
// cfg: node 0 sends, node 1's handler echoes the same payload size
// back. Returns the steady-state average round-trip in cycles.
//
// As in the paper, the measurement includes the messaging-layer
// overhead of copying between the NI and user-level buffers: data
// starts in the sender's cache and ends in the receiver's cache.
func RoundTrip(cfg params.Config, size, rounds int) sim.Time {
	rtt, _ := RoundTripDetail(cfg, size, rounds)
	return rtt
}

// RoundTripDetail is RoundTrip plus the total memory-bus occupancy of
// the measured rounds (both nodes), for occupancy-sensitive
// comparisons such as the CQ-optimisation ablation: some of the
// optimisations buy bus cycles rather than critical-path latency.
func RoundTripDetail(cfg params.Config, size, rounds int) (sim.Time, uint64) {
	cfg.Nodes = 2
	m := machine.New(cfg)
	defer m.Stop()

	pongs := 0
	m.Nodes[1].Msgr.Register(hPing, func(ctx *msg.Context) {
		ctx.M.Send(ctx.P, ctx.Src, hPong, ctx.Size, nil)
	})
	m.Nodes[0].Msgr.Register(hPong, func(ctx *msg.Context) { pongs++ })

	const warmup = 2
	var start, end sim.Time
	var busAtStart, busAtEnd sim.Time
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for r := 0; r < warmup+rounds; r++ {
			if r == warmup {
				start = p.Now()
				busAtStart = m.MemBusOccupancy()
			}
			n.Msgr.Send(p, 1, hPing, size, nil)
			want := r + 1
			n.Msgr.PollUntil(p, func() bool { return pongs == want })
		}
		end = p.Now()
		busAtEnd = m.MemBusOccupancy()
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return pongs == warmup+rounds })
	})
	m.Run(sim.Forever)
	if StatsDump != nil {
		StatsDump(cfg, m.Stats)
	}
	return (end - start) / sim.Time(rounds), uint64(busAtEnd-busAtStart) / uint64(rounds)
}

// Bandwidth measures sustainable process-to-process bandwidth (§5.1.2,
// Fig 7): node 0 streams messages of the given payload size, node 1
// consumes as fast as it can. Returns MB/s of user payload delivered
// (steady state: a warmup prefix is excluded).
func Bandwidth(cfg params.Config, size, messages int) float64 {
	cfg.Nodes = 2
	m := machine.New(cfg)
	defer m.Stop()

	warmup := messages / 5
	received := 0
	var start, end sim.Time
	m.Nodes[1].Msgr.Register(hStream, func(ctx *msg.Context) {
		// The consuming process reads the delivered payload (the
		// paper's measurement ends with data "in the receiving
		// processor's cache" — and used) plus per-message bookkeeping.
		ctx.CPU.LoadRange(ctx.P, machine.UserBase+0x4000, ctx.Size)
		ctx.CPU.Compute(ctx.P, 40)
		received++
		if received == warmup {
			start = ctx.P.Now()
		}
		if received == warmup+messages {
			end = ctx.P.Now()
		}
	})
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < warmup+messages; i++ {
			n.Msgr.Send(p, 1, hStream, size, nil)
		}
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		// The consumer arrives a little late (§5.1.2: the send rate
		// exceeds the reception rate), letting the stream pile into
		// the NI — which is what differentiates the designs' buffering.
		n.CPU.Compute(p, 4000)
		n.Msgr.PollUntil(p, func() bool { return received == warmup+messages })
	})
	m.Run(sim.Forever)
	if end <= start {
		return 0
	}
	bytes := float64(size) * float64(messages)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}

// ProbeDst returns the congestion probe's far endpoint: the node at
// the torus antipode of node 0 (maximum dimension-order hop count).
// The same node id is used under the flat topology so the two fabrics
// measure the identical traffic pattern.
func ProbeDst(nodes int) int { return antipode(0, nodes) }

// BgPattern selects the background traffic shape for ProbeRTT.
type BgPattern int

const (
	// BgHotspot aims every background sender at one hotspot node that
	// sits on the probe's dimension-order path (one hop before the
	// probe destination, in its column), so the converging incast
	// flows share links with the probe.
	BgHotspot BgPattern = iota
	// BgAllToAll pairs every background node with its torus antipode
	// (an involutive permutation), the classic uniform worst case for
	// dimension-order routing: every flow crosses the fabric's full
	// diameter, loading links in every row and column including the
	// probe's.
	BgAllToAll
)

func (b BgPattern) String() string {
	if b == BgAllToAll {
		return "all-to-all"
	}
	return "hotspot"
}

// antipode returns the node diagonally opposite id on the torus.
func antipode(id, nodes int) int {
	w, h := params.TorusDims(nodes)
	x, y := id%w, id/w
	return ((y+h/2)%h)*w + (x+w/2)%w
}

// HotspotNode returns BgHotspot's common destination: one hop before
// the probe destination in its torus column.
func HotspotNode(nodes int) int {
	w, _ := params.TorusDims(nodes)
	return ProbeDst(nodes) - w
}

// spawnBackground starts the congestion background traffic on every
// node except the probe endpoints (and, for BgHotspot, the hotspot
// sink): each sender streams full-payload messages at the given gap
// until *done flips. Call it after the probe processes are spawned so
// the simulated schedule keeps the probe's wake ordering. A negative
// gap spawns nothing.
func spawnBackground(m *machine.Machine, gap int, pattern BgPattern, done *bool) {
	nodes := m.Cfg.Nodes
	probeDst := ProbeDst(nodes)
	hot := HotspotNode(nodes)
	bgAlive := 0
	sending := make([]bool, nodes)
	targets := make([]int, 0, nodes)
	if gap >= 0 {
		for id := 1; id < nodes; id++ {
			if id == probeDst || (pattern == BgHotspot && id == hot) {
				continue
			}
			target := hot
			if pattern == BgAllToAll {
				target = antipode(id, nodes)
				if target == 0 || target == probeDst || target == id {
					continue // the probe pair maps to itself; skip partners of excluded nodes
				}
			}
			m.Nodes[id].Msgr.Register(hBgSink, func(ctx *msg.Context) {})
			sending[id] = true
			targets = append(targets, target)
			bgAlive++
			m.Spawn(id, func(p *sim.Process, n *machine.Node) {
				for !*done {
					n.Msgr.Send(p, target, hBgSink, params.MaxPayloadBytes, nil)
					n.Msgr.DrainAvailable(p)
					n.CPU.Compute(p, sim.Time(gap))
				}
				// Keep draining after the measurement so no partner is
				// left blocked on a full window mid-send; the last
				// sender to finish releases everyone.
				bgAlive--
				n.Msgr.PollUntil(p, func() bool { return bgAlive == 0 })
			})
		}
		// On tori with an odd dimension the antipode map is not an
		// involution, so a node skipped as a sender can still be some
		// other node's target; without a drain its NI fills and that
		// sender wedges on the window forever. Spawn a pure sink on
		// every such orphaned target. (On even-dimensioned tori —
		// including the 16-node harness configuration — this set is
		// empty and the simulated schedule is untouched.)
		for _, tgt := range targets {
			if sending[tgt] || (pattern == BgHotspot && tgt == hot) {
				continue
			}
			sending[tgt] = true // drain at most once
			m.Nodes[tgt].Msgr.Register(hBgSink, func(ctx *msg.Context) {})
			m.Spawn(tgt, func(p *sim.Process, n *machine.Node) {
				n.Msgr.PollUntil(p, func() bool { return *done && bgAlive == 0 })
			})
		}
	}
	// The hotspot sink keeps draining until every background sender
	// has finished its final (possibly flow-controlled) send.
	if pattern == BgHotspot {
		m.Nodes[hot].Msgr.Register(hBgSink, func(ctx *msg.Context) {})
		m.Spawn(hot, func(p *sim.Process, n *machine.Node) {
			n.Msgr.PollUntil(p, func() bool { return *done && bgAlive == 0 })
		})
	}
}

// ProbeRTT measures round-trip latency between node 0 and the far
// node ProbeDst(n) while the remaining nodes generate background load
// in the given pattern. gap is the compute delay in cycles between
// background sends — smaller gap, higher offered load; a negative gap
// disables the background entirely.
//
// The probe endpoints take no part in the background traffic, so
// under the flat (contention-free) interconnect the probe RTT is
// load-independent by construction; under the torus the background
// flows share links with the probe path and queue ahead of it, so the
// RTT grows with offered load.
func ProbeRTT(cfg params.Config, size, rounds, gap int, pattern BgPattern) sim.Time {
	if cfg.Nodes < 4 {
		panic("apps: ProbeRTT needs at least 4 nodes")
	}
	m := machine.New(cfg)
	defer m.Stop()
	probeDst := ProbeDst(cfg.Nodes)

	pongs := 0
	m.Nodes[probeDst].Msgr.Register(hPing, func(ctx *msg.Context) {
		ctx.M.Send(ctx.P, ctx.Src, hPong, ctx.Size, nil)
	})
	m.Nodes[0].Msgr.Register(hPong, func(ctx *msg.Context) { pongs++ })

	done := false
	const warmup = 2
	var start, end sim.Time
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for r := 0; r < warmup+rounds; r++ {
			if r == warmup {
				start = p.Now()
			}
			n.Msgr.Send(p, probeDst, hPing, size, nil)
			want := r + 1
			n.Msgr.PollUntil(p, func() bool { return pongs == want })
		}
		end = p.Now()
		done = true
	})
	m.Spawn(probeDst, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return done })
	})
	spawnBackground(m, gap, pattern, &done)
	m.Run(sim.Forever)
	if StatsDump != nil {
		StatsDump(cfg, m.Stats)
	}
	return (end - start) / sim.Time(rounds)
}

// ProbeBandwidth measures the delivered bandwidth of a victim stream
// (node 0 to ProbeDst, messages of the given payload size) while the
// remaining nodes generate background load in the given pattern at
// the given gap, as in ProbeRTT. Returns MB/s of user payload in
// steady state. Under the flat interconnect the background cannot
// touch the stream; under the torus shared links throttle it.
func ProbeBandwidth(cfg params.Config, size, messages, gap int, pattern BgPattern) float64 {
	if cfg.Nodes < 4 {
		panic("apps: ProbeBandwidth needs at least 4 nodes")
	}
	m := machine.New(cfg)
	defer m.Stop()
	probeDst := ProbeDst(cfg.Nodes)

	warmup := messages / 5
	if warmup < 1 {
		warmup = 1 // start must fire even for tiny runs
	}
	received := 0
	done := false
	var start, end sim.Time
	m.Nodes[probeDst].Msgr.Register(hStream, func(ctx *msg.Context) {
		ctx.CPU.LoadRange(ctx.P, machine.UserBase+0x4000, ctx.Size)
		ctx.CPU.Compute(ctx.P, 40)
		received++
		if received == warmup {
			start = ctx.P.Now()
		}
		if received == warmup+messages {
			end = ctx.P.Now()
		}
	})
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < warmup+messages; i++ {
			n.Msgr.Send(p, probeDst, hStream, size, nil)
		}
	})
	m.Spawn(probeDst, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return received == warmup+messages })
		done = true
	})
	spawnBackground(m, gap, pattern, &done)
	m.Run(sim.Forever)
	if end <= start {
		return 0
	}
	bytes := float64(size) * float64(messages)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}

// HotspotIncast streams perSender size-byte messages from every other
// node into node 0 simultaneously and returns the aggregate delivered
// payload bandwidth in MB/s at the sink, measured after a one-fifth
// warmup. On the torus the flows converge on the few links into node
// 0's router; on the flat network only the sink's NI and bus limit
// delivery.
func HotspotIncast(cfg params.Config, size, perSender int) float64 {
	m := machine.New(cfg)
	defer m.Stop()
	total := (cfg.Nodes - 1) * perSender
	warm := total / 5
	if warm < 1 {
		warm = 1 // start must fire even for tiny runs
	}
	received := 0
	var start, end sim.Time
	m.Nodes[0].Msgr.Register(hIncast, func(ctx *msg.Context) {
		ctx.CPU.LoadRange(ctx.P, machine.UserBase+0x4000, ctx.Size)
		received++
		if received == warm {
			start = ctx.P.Now()
		}
		if received == total {
			end = ctx.P.Now()
		}
	})
	for id := 1; id < cfg.Nodes; id++ {
		m.Spawn(id, func(p *sim.Process, n *machine.Node) {
			for i := 0; i < perSender; i++ {
				n.Msgr.Send(p, 0, hIncast, size, nil)
			}
		})
	}
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return received == total })
	})
	m.Run(sim.Forever)
	if end <= start {
		return 0
	}
	bytes := float64(size) * float64(total-warm)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}

// AllToAllExchange measures a personalised all-to-all: each round,
// every node sends one size-byte message to every other node (rotated
// start offsets) and polls until it holds the full round from every
// peer. Returns average cycles per round in steady state as seen by
// node 0. The torus serialises the exchange over its links; the flat
// network admits every flow at once.
func AllToAllExchange(cfg params.Config, size, rounds int) sim.Time {
	m := machine.New(cfg)
	defer m.Stop()
	n := cfg.Nodes
	recv := make([]int, n)
	for id := 0; id < n; id++ {
		at := id
		m.Nodes[id].Msgr.Register(hExchange, func(ctx *msg.Context) { recv[at]++ })
	}
	const warmup = 1
	var start, end sim.Time
	for id := 0; id < n; id++ {
		self := id
		m.Spawn(id, func(p *sim.Process, node *machine.Node) {
			for r := 0; r < warmup+rounds; r++ {
				if self == 0 && r == warmup {
					start = p.Now()
				}
				for off := 1; off < n; off++ {
					node.Msgr.Send(p, (self+off)%n, hExchange, size, nil)
				}
				want := (r + 1) * (n - 1)
				node.Msgr.PollUntil(p, func() bool { return recv[self] >= want })
			}
			if self == 0 {
				end = p.Now()
			}
		})
	}
	m.Run(sim.Forever)
	if StatsDump != nil {
		StatsDump(cfg, m.Stats)
	}
	return (end - start) / sim.Time(rounds)
}

// LocalQueueBandwidth computes the paper's Fig 7 normalisation bound:
// the maximum bandwidth two processors on the same coherent memory bus
// sustain through a local cachable memory queue (Fig 2). With the
// Table 2 costs this lands near the paper's 144 MB/s.
func LocalQueueBandwidth() float64 {
	eng := sim.NewEngine()
	st := sim.NewStats(eng)
	fab := bus.NewFabric(eng, st, "lq", false)
	mem := cache.NewMemory(fab, "lq.mem")
	fab.AddRegion(bus.Region{Name: "dram", Base: 0, Size: 1 << 30, Home: mem, Loc: params.MemoryBus, Cachable: true})
	sender := cache.New(eng, st, fab, "lq.s", params.ProcCacheBytes)
	receiver := cache.New(eng, st, fab, "lq.r", params.ProcCacheBytes)

	const blocks = 256
	var start, end sim.Time
	eng.Spawn("lq", func(p *sim.Process) {
		for b := uint64(0); b < blocks; b++ { // warm to steady state
			sender.Store(p, b*params.BlockBytes)
			receiver.Load(p, b*params.BlockBytes)
		}
		start = p.Now()
		for b := uint64(0); b < blocks; b++ {
			sender.Store(p, b*params.BlockBytes)
			receiver.Load(p, b*params.BlockBytes)
		}
		end = p.Now()
	})
	eng.RunAll()
	eng.Stop()
	bytes := float64(blocks * params.BlockBytes)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}
