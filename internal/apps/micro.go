package apps

import (
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

// Microbenchmark handler ids.
const (
	hPing = HApp + iota
	hPong
	hStream
)

// RoundTrip measures process-to-process round-trip latency (§5.1.1,
// Fig 6) for size-byte user messages on a two-node machine built for
// cfg: node 0 sends, node 1's handler echoes the same payload size
// back. Returns the steady-state average round-trip in cycles.
//
// As in the paper, the measurement includes the messaging-layer
// overhead of copying between the NI and user-level buffers: data
// starts in the sender's cache and ends in the receiver's cache.
func RoundTrip(cfg params.Config, size, rounds int) sim.Time {
	rtt, _ := RoundTripDetail(cfg, size, rounds)
	return rtt
}

// RoundTripDetail is RoundTrip plus the total memory-bus occupancy of
// the measured rounds (both nodes), for occupancy-sensitive
// comparisons such as the CQ-optimisation ablation: some of the
// optimisations buy bus cycles rather than critical-path latency.
func RoundTripDetail(cfg params.Config, size, rounds int) (sim.Time, uint64) {
	cfg.Nodes = 2
	m := machine.New(cfg)
	defer m.Stop()

	pongs := 0
	m.Nodes[1].Msgr.Register(hPing, func(ctx *msg.Context) {
		ctx.M.Send(ctx.P, ctx.Src, hPong, ctx.Size, nil)
	})
	m.Nodes[0].Msgr.Register(hPong, func(ctx *msg.Context) { pongs++ })

	const warmup = 2
	var start, end sim.Time
	var busAtStart, busAtEnd sim.Time
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for r := 0; r < warmup+rounds; r++ {
			if r == warmup {
				start = p.Now()
				busAtStart = m.MemBusOccupancy()
			}
			n.Msgr.Send(p, 1, hPing, size, nil)
			want := r + 1
			n.Msgr.PollUntil(p, func() bool { return pongs == want })
		}
		end = p.Now()
		busAtEnd = m.MemBusOccupancy()
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return pongs == warmup+rounds })
	})
	m.Run(sim.Forever)
	if StatsDump != nil {
		StatsDump(cfg, m.Stats)
	}
	return (end - start) / sim.Time(rounds), uint64(busAtEnd-busAtStart) / uint64(rounds)
}

// Bandwidth measures sustainable process-to-process bandwidth (§5.1.2,
// Fig 7): node 0 streams messages of the given payload size, node 1
// consumes as fast as it can. Returns MB/s of user payload delivered
// (steady state: a warmup prefix is excluded).
func Bandwidth(cfg params.Config, size, messages int) float64 {
	cfg.Nodes = 2
	m := machine.New(cfg)
	defer m.Stop()

	warmup := messages / 5
	received := 0
	var start, end sim.Time
	m.Nodes[1].Msgr.Register(hStream, func(ctx *msg.Context) {
		// The consuming process reads the delivered payload (the
		// paper's measurement ends with data "in the receiving
		// processor's cache" — and used) plus per-message bookkeeping.
		ctx.CPU.LoadRange(ctx.P, machine.UserBase+0x4000, ctx.Size)
		ctx.CPU.Compute(ctx.P, 40)
		received++
		if received == warmup {
			start = ctx.P.Now()
		}
		if received == warmup+messages {
			end = ctx.P.Now()
		}
	})
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < warmup+messages; i++ {
			n.Msgr.Send(p, 1, hStream, size, nil)
		}
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		// The consumer arrives a little late (§5.1.2: the send rate
		// exceeds the reception rate), letting the stream pile into
		// the NI — which is what differentiates the designs' buffering.
		n.CPU.Compute(p, 4000)
		n.Msgr.PollUntil(p, func() bool { return received == warmup+messages })
	})
	m.Run(sim.Forever)
	if end <= start {
		return 0
	}
	bytes := float64(size) * float64(messages)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}

// LocalQueueBandwidth computes the paper's Fig 7 normalisation bound:
// the maximum bandwidth two processors on the same coherent memory bus
// sustain through a local cachable memory queue (Fig 2). With the
// Table 2 costs this lands near the paper's 144 MB/s.
func LocalQueueBandwidth() float64 {
	eng := sim.NewEngine()
	st := sim.NewStats(eng)
	fab := bus.NewFabric(eng, st, "lq", false)
	mem := cache.NewMemory(fab, "lq.mem")
	fab.AddRegion(bus.Region{Name: "dram", Base: 0, Size: 1 << 30, Home: mem, Loc: params.MemoryBus, Cachable: true})
	sender := cache.New(eng, st, fab, "lq.s", params.ProcCacheBytes)
	receiver := cache.New(eng, st, fab, "lq.r", params.ProcCacheBytes)

	const blocks = 256
	var start, end sim.Time
	eng.Spawn("lq", func(p *sim.Process) {
		for b := uint64(0); b < blocks; b++ { // warm to steady state
			sender.Store(p, b*params.BlockBytes)
			receiver.Load(p, b*params.BlockBytes)
		}
		start = p.Now()
		for b := uint64(0); b < blocks; b++ {
			sender.Store(p, b*params.BlockBytes)
			receiver.Load(p, b*params.BlockBytes)
		}
		end = p.Now()
	})
	eng.RunAll()
	eng.Stop()
	bytes := float64(blocks * params.BlockBytes)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}
