package apps

import (
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Microbenchmark handler ids.
const (
	hPing = HApp + iota
	hPong
	hStream
	hIncast
	hExchange
	hBgSink
)

// RoundTrip measures process-to-process round-trip latency (§5.1.1,
// Fig 6) for size-byte user messages on a two-node machine built for
// cfg: node 0 sends, node 1's handler echoes the same payload size
// back. Returns the steady-state average round-trip in cycles.
//
// As in the paper, the measurement includes the messaging-layer
// overhead of copying between the NI and user-level buffers: data
// starts in the sender's cache and ends in the receiver's cache.
func RoundTrip(cfg params.Config, size, rounds int) sim.Time {
	rtt, _ := RoundTripDetail(cfg, size, rounds)
	return rtt
}

// RoundTripDetail is RoundTrip plus the total memory-bus occupancy of
// the measured rounds (both nodes), for occupancy-sensitive
// comparisons such as the CQ-optimisation ablation: some of the
// optimisations buy bus cycles rather than critical-path latency.
func RoundTripDetail(cfg params.Config, size, rounds int) (sim.Time, uint64) {
	cfg.Nodes = 2
	m := build(cfg)
	defer m.Close()

	pongs := 0
	m.Endpoint(1).Handle(hPing, func(d *scenario.Delivery) {
		d.EP.SendTo(d.Src, hPong, d.Size, nil)
	})
	m.Endpoint(0).Handle(hPong, func(d *scenario.Delivery) { pongs++ })

	const warmup = 2
	var start, end sim.Time
	var busAtStart, busAtEnd sim.Time
	sc := scenario.New().
		At(0, func(ep *scenario.Endpoint) {
			for r := 0; r < warmup+rounds; r++ {
				if r == warmup {
					start = ep.Clock()
					busAtStart = m.BusOccupancy()
				}
				ep.SendTo(1, hPing, size, nil)
				want := r + 1
				ep.PollUntil(func() bool { return pongs == want })
			}
			end = ep.Clock()
			busAtEnd = m.BusOccupancy()
		}).
		At(1, func(ep *scenario.Endpoint) {
			ep.PollUntil(func() bool { return pongs == warmup+rounds })
		})
	m.Run(sc)
	if StatsDump != nil {
		StatsDump(cfg, m.Stats())
	}
	return (end - start) / sim.Time(rounds), uint64(busAtEnd-busAtStart) / uint64(rounds)
}

// Bandwidth measures sustainable process-to-process bandwidth (§5.1.2,
// Fig 7): node 0 streams messages of the given payload size, node 1
// consumes as fast as it can. Returns MB/s of user payload delivered
// (steady state: a warmup prefix is excluded).
func Bandwidth(cfg params.Config, size, messages int) float64 {
	cfg.Nodes = 2
	m := build(cfg)
	defer m.Close()

	warmup := messages / 5
	received := 0
	var start, end sim.Time
	m.Endpoint(1).Handle(hStream, func(d *scenario.Delivery) {
		// The consuming process reads the delivered payload (the
		// paper's measurement ends with data "in the receiving
		// processor's cache" — and used) plus per-message bookkeeping.
		d.EP.Load(0x4000, d.Size)
		d.EP.Compute(40)
		received++
		if received == warmup {
			start = d.EP.Clock()
		}
		if received == warmup+messages {
			end = d.EP.Clock()
		}
	})
	sc := scenario.New().
		At(0, func(ep *scenario.Endpoint) {
			for i := 0; i < warmup+messages; i++ {
				ep.SendTo(1, hStream, size, nil)
			}
		}).
		At(1, func(ep *scenario.Endpoint) {
			// The consumer arrives a little late (§5.1.2: the send rate
			// exceeds the reception rate), letting the stream pile into
			// the NI — which is what differentiates the designs' buffering.
			ep.Compute(4000)
			ep.PollUntil(func() bool { return received == warmup+messages })
		})
	m.Run(sc)
	if end <= start {
		return 0
	}
	bytes := float64(size) * float64(messages)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}

// ProbeDst returns the congestion probe's far endpoint: the node at
// the torus antipode of node 0 (maximum dimension-order hop count).
// The same node id is used under the flat topology so the two fabrics
// measure the identical traffic pattern.
func ProbeDst(nodes int) int { return antipode(0, nodes) }

// BgPattern selects the background traffic shape for ProbeRTT.
type BgPattern int

const (
	// BgHotspot aims every background sender at one hotspot node that
	// sits on the probe's dimension-order path (one hop before the
	// probe destination, in its column), so the converging incast
	// flows share links with the probe.
	BgHotspot BgPattern = iota
	// BgAllToAll pairs every background node with its torus antipode
	// (an involutive permutation), the classic uniform worst case for
	// dimension-order routing: every flow crosses the fabric's full
	// diameter, loading links in every row and column including the
	// probe's.
	BgAllToAll
)

func (b BgPattern) String() string {
	if b == BgAllToAll {
		return "all-to-all"
	}
	return "hotspot"
}

// antipode returns the node diagonally opposite id on the torus.
func antipode(id, nodes int) int {
	w, h := params.TorusDims(nodes)
	x, y := id%w, id/w
	return ((y+h/2)%h)*w + (x+w/2)%w
}

// HotspotNode returns BgHotspot's common destination: one hop before
// the probe destination in its torus column.
func HotspotNode(nodes int) int {
	w, _ := params.TorusDims(nodes)
	return ProbeDst(nodes) - w
}

// addBackground appends the congestion background traffic to sc on
// every node except the probe endpoints (and, for BgHotspot, the
// hotspot sink): each sender streams full-payload messages at the
// given gap until *done flips. Append it after the probe programs so
// the simulated schedule keeps the probe's wake ordering. A negative
// gap adds nothing.
func addBackground(m *scenario.Machine, sc *scenario.Scenario, gap int, pattern BgPattern, done *bool) {
	nodes := m.Nodes()
	probeDst := ProbeDst(nodes)
	hot := HotspotNode(nodes)
	bgAlive := 0
	sending := make([]bool, nodes)
	targets := make([]int, 0, nodes)
	if gap >= 0 {
		for id := 1; id < nodes; id++ {
			if id == probeDst || (pattern == BgHotspot && id == hot) {
				continue
			}
			target := hot
			if pattern == BgAllToAll {
				target = antipode(id, nodes)
				if target == 0 || target == probeDst || target == id {
					continue // the probe pair maps to itself; skip partners of excluded nodes
				}
			}
			m.Endpoint(id).Handle(hBgSink, func(d *scenario.Delivery) {})
			sending[id] = true
			targets = append(targets, target)
			bgAlive++
			sc.At(id, func(ep *scenario.Endpoint) {
				for !*done {
					ep.SendTo(target, hBgSink, params.MaxPayloadBytes, nil)
					ep.Drain()
					ep.Compute(sim.Time(gap))
				}
				// Keep draining after the measurement so no partner is
				// left blocked on a full window mid-send; the last
				// sender to finish releases everyone.
				bgAlive--
				ep.PollUntil(func() bool { return bgAlive == 0 })
			})
		}
		// On tori with an odd dimension the antipode map is not an
		// involution, so a node skipped as a sender can still be some
		// other node's target; without a drain its NI fills and that
		// sender wedges on the window forever. Add a pure sink on
		// every such orphaned target. (On even-dimensioned tori —
		// including the 16-node harness configuration — this set is
		// empty and the simulated schedule is untouched.)
		for _, tgt := range targets {
			if sending[tgt] || (pattern == BgHotspot && tgt == hot) {
				continue
			}
			sending[tgt] = true // drain at most once
			m.Endpoint(tgt).Handle(hBgSink, func(d *scenario.Delivery) {})
			sc.At(tgt, func(ep *scenario.Endpoint) {
				ep.PollUntil(func() bool { return *done && bgAlive == 0 })
			})
		}
	}
	// The hotspot sink keeps draining until every background sender
	// has finished its final (possibly flow-controlled) send.
	if pattern == BgHotspot {
		m.Endpoint(hot).Handle(hBgSink, func(d *scenario.Delivery) {})
		sc.At(hot, func(ep *scenario.Endpoint) {
			ep.PollUntil(func() bool { return *done && bgAlive == 0 })
		})
	}
}

// ProbeRTT measures round-trip latency between node 0 and the far
// node ProbeDst(n) while the remaining nodes generate background load
// in the given pattern. gap is the compute delay in cycles between
// background sends — smaller gap, higher offered load; a negative gap
// disables the background entirely.
//
// The probe endpoints take no part in the background traffic, so
// under the flat (contention-free) interconnect the probe RTT is
// load-independent by construction; under the torus the background
// flows share links with the probe path and queue ahead of it, so the
// RTT grows with offered load.
func ProbeRTT(cfg params.Config, size, rounds, gap int, pattern BgPattern) sim.Time {
	if cfg.Nodes < 4 {
		panic("apps: ProbeRTT needs at least 4 nodes")
	}
	m := build(cfg)
	defer m.Close()
	probeDst := ProbeDst(cfg.Nodes)

	pongs := 0
	m.Endpoint(probeDst).Handle(hPing, func(d *scenario.Delivery) {
		d.EP.SendTo(d.Src, hPong, d.Size, nil)
	})
	m.Endpoint(0).Handle(hPong, func(d *scenario.Delivery) { pongs++ })

	done := false
	const warmup = 2
	var start, end sim.Time
	sc := scenario.New().
		At(0, func(ep *scenario.Endpoint) {
			for r := 0; r < warmup+rounds; r++ {
				if r == warmup {
					start = ep.Clock()
				}
				ep.SendTo(probeDst, hPing, size, nil)
				want := r + 1
				ep.PollUntil(func() bool { return pongs == want })
			}
			end = ep.Clock()
			done = true
		}).
		At(probeDst, func(ep *scenario.Endpoint) {
			ep.PollUntil(func() bool { return done })
		})
	addBackground(m, sc, gap, pattern, &done)
	m.Run(sc)
	if StatsDump != nil {
		StatsDump(cfg, m.Stats())
	}
	return (end - start) / sim.Time(rounds)
}

// ProbeBandwidth measures the delivered bandwidth of a victim stream
// (node 0 to ProbeDst, messages of the given payload size) while the
// remaining nodes generate background load in the given pattern at
// the given gap, as in ProbeRTT. Returns MB/s of user payload in
// steady state. Under the flat interconnect the background cannot
// touch the stream; under the torus shared links throttle it.
func ProbeBandwidth(cfg params.Config, size, messages, gap int, pattern BgPattern) float64 {
	if cfg.Nodes < 4 {
		panic("apps: ProbeBandwidth needs at least 4 nodes")
	}
	m := build(cfg)
	defer m.Close()
	probeDst := ProbeDst(cfg.Nodes)

	warmup := messages / 5
	if warmup < 1 {
		warmup = 1 // start must fire even for tiny runs
	}
	received := 0
	done := false
	var start, end sim.Time
	m.Endpoint(probeDst).Handle(hStream, func(d *scenario.Delivery) {
		d.EP.Load(0x4000, d.Size)
		d.EP.Compute(40)
		received++
		if received == warmup {
			start = d.EP.Clock()
		}
		if received == warmup+messages {
			end = d.EP.Clock()
		}
	})
	sc := scenario.New().
		At(0, func(ep *scenario.Endpoint) {
			for i := 0; i < warmup+messages; i++ {
				ep.SendTo(probeDst, hStream, size, nil)
			}
		}).
		At(probeDst, func(ep *scenario.Endpoint) {
			ep.PollUntil(func() bool { return received == warmup+messages })
			done = true
		})
	addBackground(m, sc, gap, pattern, &done)
	m.Run(sc)
	if end <= start {
		return 0
	}
	bytes := float64(size) * float64(messages)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}

// HotspotIncast streams perSender size-byte messages from every other
// node into node 0 simultaneously and returns the aggregate delivered
// payload bandwidth in MB/s at the sink, measured after a one-fifth
// warmup. On the torus the flows converge on the few links into node
// 0's router; on the flat network only the sink's NI and bus limit
// delivery.
func HotspotIncast(cfg params.Config, size, perSender int) float64 {
	m := build(cfg)
	defer m.Close()
	total := (cfg.Nodes - 1) * perSender
	warm := total / 5
	if warm < 1 {
		warm = 1 // start must fire even for tiny runs
	}
	received := 0
	var start, end sim.Time
	m.Endpoint(0).Handle(hIncast, func(d *scenario.Delivery) {
		d.EP.Load(0x4000, d.Size)
		received++
		if received == warm {
			start = d.EP.Clock()
		}
		if received == total {
			end = d.EP.Clock()
		}
	})
	sc := scenario.New()
	for id := 1; id < cfg.Nodes; id++ {
		sc.At(id, func(ep *scenario.Endpoint) {
			for i := 0; i < perSender; i++ {
				ep.SendTo(0, hIncast, size, nil)
			}
		})
	}
	sc.At(0, func(ep *scenario.Endpoint) {
		ep.PollUntil(func() bool { return received == total })
	})
	m.Run(sc)
	if end <= start {
		return 0
	}
	bytes := float64(size) * float64(total-warm)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}

// AllToAllExchange measures a personalised all-to-all: each round,
// every node sends one size-byte message to every other node (rotated
// start offsets) and polls until it holds the full round from every
// peer. Returns average cycles per round in steady state as seen by
// node 0. The torus serialises the exchange over its links; the flat
// network admits every flow at once.
func AllToAllExchange(cfg params.Config, size, rounds int) sim.Time {
	m := build(cfg)
	defer m.Close()
	n := cfg.Nodes
	recv := make([]int, n)
	for id := 0; id < n; id++ {
		at := id
		m.Endpoint(id).Handle(hExchange, func(d *scenario.Delivery) { recv[at]++ })
	}
	const warmup = 1
	var start, end sim.Time
	sc := scenario.New()
	for id := 0; id < n; id++ {
		self := id
		sc.At(id, func(ep *scenario.Endpoint) {
			for r := 0; r < warmup+rounds; r++ {
				if self == 0 && r == warmup {
					start = ep.Clock()
				}
				for off := 1; off < n; off++ {
					ep.SendTo((self+off)%n, hExchange, size, nil)
				}
				want := (r + 1) * (n - 1)
				ep.PollUntil(func() bool { return recv[self] >= want })
			}
			if self == 0 {
				end = ep.Clock()
			}
		})
	}
	m.Run(sc)
	if StatsDump != nil {
		StatsDump(cfg, m.Stats())
	}
	return (end - start) / sim.Time(rounds)
}

// LocalQueueBandwidth computes the paper's Fig 7 normalisation bound:
// the maximum bandwidth two processors on the same coherent memory bus
// sustain through a local cachable memory queue (Fig 2). With the
// Table 2 costs this lands near the paper's 144 MB/s.
func LocalQueueBandwidth() float64 {
	eng := sim.NewEngine()
	st := sim.NewStats(eng)
	fab := bus.NewFabric(eng, st, "lq", false)
	mem := cache.NewMemory(fab, "lq.mem")
	fab.AddRegion(bus.Region{Name: "dram", Base: 0, Size: 1 << 30, Home: mem, Loc: params.MemoryBus, Cachable: true})
	sender := cache.New(eng, st, fab, "lq.s", params.ProcCacheBytes)
	receiver := cache.New(eng, st, fab, "lq.r", params.ProcCacheBytes)

	const blocks = 256
	var start, end sim.Time
	eng.Spawn("lq", func(p *sim.Process) {
		for b := uint64(0); b < blocks; b++ { // warm to steady state
			sender.Store(p, b*params.BlockBytes)
			receiver.Load(p, b*params.BlockBytes)
		}
		start = p.Now()
		for b := uint64(0); b < blocks; b++ {
			sender.Store(p, b*params.BlockBytes)
			receiver.Load(p, b*params.BlockBytes)
		}
		end = p.Now()
	})
	eng.RunAll()
	eng.Stop()
	bytes := float64(blocks * params.BlockBytes)
	seconds := float64(end-start) / (params.CPUMHz * 1e6)
	return bytes / seconds / 1e6
}
