package apps

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

const hSpsolveEdge = HApp + 10

// Spsolve reproduces the paper's very fine-grained iterative
// sparse-matrix solver (Chong et al.): active messages propagate down
// the edges of a directed acyclic graph, all computation happens in
// handlers at the DAG nodes, each message carries a 12-byte payload,
// and the per-message computation is a single double-word addition.
// Many messages can be in flight at once, producing bursty traffic
// (§4.2, Table 3: "Fine-Grain Messages, 3720 elements").
//
// Scaled input: Elements DAG nodes arranged in Levels levels with
// Degree random next-level successors each; elements are dealt
// round-robin so most edges cross processors.
type Spsolve struct {
	Elements int
	Levels   int
	Degree   int
	Seed     uint64
}

// NewSpsolve returns the benchmark with its default (scaled) input.
func NewSpsolve() *Spsolve {
	return &Spsolve{Elements: 1240, Levels: 20, Degree: 3, Seed: 1}
}

// Name implements App.
func (s *Spsolve) Name() string { return "spsolve" }

// KeyComm implements App.
func (s *Spsolve) KeyComm() string { return "Fine-Grain Messages" }

// Input implements App.
func (s *Spsolve) Input() string {
	return fmt.Sprintf("%d elements, %d levels, degree %d (paper: 3720 elements)",
		s.Elements, s.Levels, s.Degree)
}

// dagNode is one element of the sparse system.
type dagNode struct {
	owner     int // processor
	indegree  int
	remaining int
	succs     []int // global element ids
}

// Run implements App.
func (s *Spsolve) Run(cfg params.Config) Result {
	m := machine.New(cfg)
	defer m.Stop()
	P := cfg.Nodes
	rnd := NewRand(s.Seed)

	perLevel := s.Elements / s.Levels
	nodes := make([]*dagNode, s.Elements)
	for i := range nodes {
		nodes[i] = &dagNode{owner: i % P}
	}
	for i := range nodes {
		l := i / perLevel
		if l+1 >= s.Levels {
			continue
		}
		for d := 0; d < s.Degree; d++ {
			t := (l+1)*perLevel + rnd.Intn(perLevel)
			if t < s.Elements {
				nodes[i].succs = append(nodes[i].succs, t)
				nodes[t].indegree++
			}
		}
	}
	// expected[p] = edge deliveries processor p must see (local +
	// remote); completion when every processor reaches its count.
	expected := make([]int, P)
	fired := make([]int, P)
	for i, nd := range nodes {
		nd.remaining = nd.indegree
		expected[i%P] += nd.indegree
	}

	// deliver consumes one incoming edge for element id; when the
	// element's dependencies are satisfied it computes and propagates.
	var deliver func(p *sim.Process, n *machine.Node, id int)
	propagate := func(p *sim.Process, n *machine.Node, nd *dagNode) {
		n.CPU.Compute(p, 4) // one double-word addition in the handler
		for _, t := range nd.succs {
			if nodes[t].owner == n.ID {
				deliver(p, n, t)
			} else {
				n.Msgr.Send(p, nodes[t].owner, hSpsolveEdge, 12, t)
			}
		}
	}
	deliver = func(p *sim.Process, n *machine.Node, id int) {
		nd := nodes[id]
		nd.remaining--
		fired[n.ID]++
		if nd.remaining == 0 {
			propagate(p, n, nd)
		}
	}

	for _, n := range m.Nodes {
		n := n
		n.Msgr.Register(hSpsolveEdge, func(ctx *msg.Context) {
			deliver(ctx.P, n, ctx.Payload.(int))
		})
	}
	for _, n := range m.Nodes {
		m.Spawn(n.ID, func(p *sim.Process, nd *machine.Node) {
			// Fire the local roots, then service edges to completion.
			for i, dn := range nodes {
				if dn.owner == nd.ID && dn.indegree == 0 {
					propagate(p, nd, nodes[i])
				}
			}
			nd.Msgr.PollUntil(p, func() bool { return fired[nd.ID] >= expected[nd.ID] })
		})
	}
	cycles := m.Run(sim.Forever)
	return collect(s.Name(), cfg, m, cycles)
}
