package apps

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/scenario"
)

const hSpsolveEdge = HApp + 10

// Spsolve reproduces the paper's very fine-grained iterative
// sparse-matrix solver (Chong et al.): active messages propagate down
// the edges of a directed acyclic graph, all computation happens in
// handlers at the DAG nodes, each message carries a 12-byte payload,
// and the per-message computation is a single double-word addition.
// Many messages can be in flight at once, producing bursty traffic
// (§4.2, Table 3: "Fine-Grain Messages, 3720 elements").
//
// Scaled input: Elements DAG nodes arranged in Levels levels with
// Degree random next-level successors each; elements are dealt
// round-robin so most edges cross processors.
type Spsolve struct {
	Elements int
	Levels   int
	Degree   int
	Seed     uint64
}

// NewSpsolve returns the benchmark with its default (scaled) input.
func NewSpsolve() *Spsolve {
	return &Spsolve{Elements: 1240, Levels: 20, Degree: 3, Seed: 1}
}

// Name implements App.
func (s *Spsolve) Name() string { return "spsolve" }

// KeyComm implements App.
func (s *Spsolve) KeyComm() string { return "Fine-Grain Messages" }

// Input implements App.
func (s *Spsolve) Input() string {
	return fmt.Sprintf("%d elements, %d levels, degree %d (paper: 3720 elements)",
		s.Elements, s.Levels, s.Degree)
}

// dagNode is one element of the sparse system.
type dagNode struct {
	owner     int // processor
	indegree  int
	remaining int
	succs     []int // global element ids
}

// Run implements App.
func (s *Spsolve) Run(cfg params.Config) Result {
	m := build(cfg)
	defer m.Close()
	P := cfg.Nodes
	rnd := NewRand(s.Seed)

	perLevel := s.Elements / s.Levels
	nodes := make([]*dagNode, s.Elements)
	for i := range nodes {
		nodes[i] = &dagNode{owner: i % P}
	}
	for i := range nodes {
		l := i / perLevel
		if l+1 >= s.Levels {
			continue
		}
		for d := 0; d < s.Degree; d++ {
			t := (l+1)*perLevel + rnd.Intn(perLevel)
			if t < s.Elements {
				nodes[i].succs = append(nodes[i].succs, t)
				nodes[t].indegree++
			}
		}
	}
	// expected[p] = edge deliveries processor p must see (local +
	// remote); completion when every processor reaches its count.
	expected := make([]int, P)
	fired := make([]int, P)
	for i, nd := range nodes {
		nd.remaining = nd.indegree
		expected[i%P] += nd.indegree
	}

	// deliver consumes one incoming edge for element id; when the
	// element's dependencies are satisfied it computes and propagates.
	var deliver func(ep *scenario.Endpoint, id int)
	propagate := func(ep *scenario.Endpoint, nd *dagNode) {
		ep.Compute(4) // one double-word addition in the handler
		for _, t := range nd.succs {
			if nodes[t].owner == ep.ID() {
				deliver(ep, t)
			} else {
				ep.SendTo(nodes[t].owner, hSpsolveEdge, 12, t)
			}
		}
	}
	deliver = func(ep *scenario.Endpoint, id int) {
		nd := nodes[id]
		nd.remaining--
		fired[ep.ID()]++
		if nd.remaining == 0 {
			propagate(ep, nd)
		}
	}

	for id := 0; id < P; id++ {
		m.Endpoint(id).Handle(hSpsolveEdge, func(d *scenario.Delivery) {
			deliver(d.EP, d.Payload.(int))
		})
	}
	sc := scenario.New()
	for id := 0; id < P; id++ {
		me := id
		sc.At(id, func(ep *scenario.Endpoint) {
			// Fire the local roots, then service edges to completion.
			for i, dn := range nodes {
				if dn.owner == me && dn.indegree == 0 {
					propagate(ep, nodes[i])
				}
			}
			ep.PollUntil(func() bool { return fired[me] >= expected[me] })
		})
	}
	tr := m.Run(sc)
	return collect(s.Name(), cfg, m, tr)
}
