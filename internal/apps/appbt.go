package apps

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
)

const (
	hAppbtReq = HApp + 50
	hAppbtRep = HApp + 51
)

// Appbt reproduces the paper's parallel 3D computational fluid
// dynamics application from the NAS suite (Burger & Mehta's
// shared-memory port): a cube of cells divided into subcubes, one per
// processor, communicating across subcube boundaries through
// Tempest's default invalidation-based shared-memory protocol — i.e.
// request/response pairs moving moderately large 128-byte blocks
// (§4.2, §5.2). The paper notes appbt exhibits a hot spot: one
// processor receives twice as many messages as the others.
type Appbt struct {
	CubeDim    int // cells per edge of the whole cube
	Iters      int
	BlockBytes int // shared-memory block size (paper: 128)
	Seed       uint64
}

// NewAppbt returns the benchmark with its default (scaled) input.
func NewAppbt() *Appbt {
	// Paper: 24x24x24 cube, 4 iterations, 128-byte blocks.
	// Scaled: 12x12x12, 4 iterations.
	return &Appbt{CubeDim: 12, Iters: 4, BlockBytes: 128, Seed: 3}
}

// Name implements App.
func (a *Appbt) Name() string { return "appbt" }

// KeyComm implements App.
func (a *Appbt) KeyComm() string { return "Near neighbor" }

// Input implements App.
func (a *Appbt) Input() string {
	return fmt.Sprintf("%dx%dx%d cube, %d iter, %dB blocks (paper: 24x24x24)",
		a.CubeDim, a.CubeDim, a.CubeDim, a.Iters, a.BlockBytes)
}

// Run implements App.
func (a *Appbt) Run(cfg params.Config) Result {
	m := build(cfg)
	defer m.Close()
	P := cfg.Nodes
	bar := NewBarrier(m)

	// Arrange processors in a ring of subcubes: each exchanges a
	// face's worth of 128-byte blocks with both neighbours per
	// iteration via request/response. Face size scales with the cube
	// cross-section split across processors.
	faceCells := a.CubeDim * a.CubeDim / 2
	blocksPerFace := faceCells * 8 / a.BlockBytes
	if blocksPerFace < 1 {
		blocksPerFace = 1
	}

	replies := make([]int, P)
	for id := 0; id < P; id++ {
		node := id
		ep := m.Endpoint(id)
		ep.Handle(hAppbtReq, func(d *scenario.Delivery) {
			// Shared-memory protocol: read the block and respond.
			d.EP.Load(0, a.BlockBytes)
			d.EP.SendTo(d.Src, hAppbtRep, a.BlockBytes, nil)
		})
		ep.Handle(hAppbtRep, func(d *scenario.Delivery) {
			replies[node]++
			d.EP.Store(0x8000, a.BlockBytes)
		})
	}

	sc := scenario.New()
	for id := 0; id < P; id++ {
		me := id
		sc.At(id, func(ep *scenario.Endpoint) {
			// Hot spot (§5.2): everyone fetches boundary state from
			// node 0 as well as from ring neighbours, so node 0 sees
			// roughly double traffic.
			peers := []int{(me + 1) % P, (me - 1 + P) % P}
			if me != 0 {
				peers = append(peers, 0)
			}
			expected := 0
			for it := 0; it < a.Iters; it++ {
				for _, peer := range peers {
					share := blocksPerFace
					if peer == 0 && me != 0 {
						share = blocksPerFace / (P - 1)
						if share < 1 {
							share = 1
						}
					}
					for b := 0; b < share; b++ {
						ep.SendTo(peer, hAppbtReq, 16, nil)
						expected++
						// Keep a couple of requests in flight.
						ep.PollUntil(func() bool { return replies[me] >= expected-2 })
					}
				}
				ep.PollUntil(func() bool { return replies[me] >= expected })
				// Relaxation compute on the subcube interior.
				ep.Compute(sim.Time(a.CubeDim * a.CubeDim * a.CubeDim / P * 6))
				bar.Wait(ep)
			}
		})
	}
	tr := m.Run(sc)
	return collect(a.Name(), cfg, m, tr)
}
