package apps

import (
	"repro/internal/scenario"
)

// Reserved active-message handler ids. Applications use ids >= HApp;
// the scenario layer's inbox sits below 90.
const (
	hBarrierArrive  = 90
	hBarrierRelease = 91
	// HApp is the first handler id available to workloads.
	HApp = 100
)

// Barrier is a centralised barrier built from active messages:
// everyone reports to node 0; when node 0 has seen every node
// (including itself) arrive, it broadcasts the release. Good enough
// for workload phase structure (the paper's applications use library
// barriers similarly).
type Barrier struct {
	m        *scenario.Machine
	arrived  int
	entered  []int // per-node wait generation
	released []int // per-node release generation
}

// NewBarrier wires barrier handlers on every node of m.
func NewBarrier(m *scenario.Machine) *Barrier {
	b := &Barrier{
		m:        m,
		entered:  make([]int, m.Nodes()),
		released: make([]int, m.Nodes()),
	}
	for id := 0; id < m.Nodes(); id++ {
		node := id
		ep := m.Endpoint(id)
		ep.Handle(hBarrierArrive, func(d *scenario.Delivery) {
			b.arriveAtRoot(d.EP)
		})
		ep.Handle(hBarrierRelease, func(d *scenario.Delivery) {
			b.released[node]++
		})
	}
	return b
}

// arriveAtRoot tallies one arrival; it always executes on node 0
// (either in the arrive handler or directly from node 0's Wait), so
// ep is node 0's endpoint.
func (b *Barrier) arriveAtRoot(ep *scenario.Endpoint) {
	b.arrived++
	if b.arrived < b.m.Nodes() {
		return
	}
	b.arrived = 0
	for id := 1; id < b.m.Nodes(); id++ {
		ep.SendTo(id, hBarrierRelease, 8, nil)
	}
	b.released[0]++
}

// Wait blocks the endpoint's node at the barrier until every node has
// arrived.
func (b *Barrier) Wait(ep *scenario.Endpoint) {
	me := ep.ID()
	b.entered[me]++
	want := b.entered[me]
	if me == 0 {
		b.arriveAtRoot(ep)
	} else {
		ep.SendTo(0, hBarrierArrive, 8, nil)
	}
	ep.PollUntil(func() bool { return b.released[me] >= want })
}
