package apps

import (
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/sim"
)

// Reserved active-message handler ids. Applications use ids >= HApp.
const (
	hBarrierArrive  = 90
	hBarrierRelease = 91
	// HApp is the first handler id available to workloads.
	HApp = 100
)

// Barrier is a centralised barrier built from active messages:
// everyone reports to node 0; when node 0 has seen every node
// (including itself) arrive, it broadcasts the release. Good enough
// for workload phase structure (the paper's applications use library
// barriers similarly).
type Barrier struct {
	m        *machine.Machine
	arrived  int
	entered  []int // per-node wait generation
	released []int // per-node release generation
}

// NewBarrier wires barrier handlers on every node of m.
func NewBarrier(m *machine.Machine) *Barrier {
	b := &Barrier{
		m:        m,
		entered:  make([]int, len(m.Nodes)),
		released: make([]int, len(m.Nodes)),
	}
	for _, n := range m.Nodes {
		node := n.ID
		n.Msgr.Register(hBarrierArrive, func(ctx *msg.Context) {
			b.arriveAtRoot(ctx.P, ctx.M)
		})
		n.Msgr.Register(hBarrierRelease, func(ctx *msg.Context) {
			b.released[node]++
		})
	}
	return b
}

// arriveAtRoot tallies one arrival; it always executes on node 0
// (either in the arrive handler or directly from node 0's Wait).
func (b *Barrier) arriveAtRoot(p *sim.Process, ms *msg.Messenger) {
	b.arrived++
	if b.arrived < len(b.m.Nodes) {
		return
	}
	b.arrived = 0
	for _, n := range b.m.Nodes {
		if n.ID != 0 {
			ms.Send(p, n.ID, hBarrierRelease, 8, nil)
		}
	}
	b.released[0]++
}

// Wait blocks node n at the barrier until every node has arrived.
func (b *Barrier) Wait(p *sim.Process, n *machine.Node) {
	b.entered[n.ID]++
	want := b.entered[n.ID]
	if n.ID == 0 {
		b.arriveAtRoot(p, n.Msgr)
	} else {
		n.Msgr.Send(p, 0, hBarrierArrive, 8, nil)
	}
	n.Msgr.PollUntil(p, func() bool { return b.released[n.ID] >= want })
}
