package apps

import (
	"testing"

	"repro/internal/params"
)

func congCfg(topo params.Topology) params.Config {
	return params.Config{Nodes: 16, NI: params.CNI512Q, Bus: params.MemoryBus, Topology: topo}
}

// TestProbeGeometry pins the probe endpoints the congestion
// experiment depends on.
func TestProbeGeometry(t *testing.T) {
	if got := ProbeDst(16); got != 10 {
		t.Errorf("ProbeDst(16) = %d, want 10 (the 4x4 antipode of node 0)", got)
	}
	if got := HotspotNode(16); got != 6 {
		t.Errorf("HotspotNode(16) = %d, want 6 (one hop before the antipode)", got)
	}
	if got := antipode(3, 16); got != 9 {
		t.Errorf("antipode(3) = %d, want 9", got)
	}
	for id := 0; id < 16; id++ {
		if antipode(antipode(id, 16), 16) != id {
			t.Fatalf("antipode not involutive at %d on even dims", id)
		}
	}
}

// TestFlatProbeRTTLoadIndependent is half of the congestion
// acceptance contract: on the paper's contention-free flat network
// the probe endpoints share nothing with the background, so the
// measured RTT must be bit-identical at every offered load.
func TestFlatProbeRTTLoadIndependent(t *testing.T) {
	t.Parallel()
	base := ProbeRTT(congCfg(params.TopoFlat), 64, 4, -1, BgHotspot)
	for _, gap := range []int{4000, 1000} {
		for _, pat := range []BgPattern{BgHotspot, BgAllToAll} {
			if got := ProbeRTT(congCfg(params.TopoFlat), 64, 4, gap, pat); got != base {
				t.Errorf("flat probe RTT under %v load (gap %d) = %d, want the unloaded %d exactly",
					pat, gap, got, base)
			}
		}
	}
}

// TestTorusProbeRTTGrowsWithLoad is the other half: on the torus the
// hotspot background shares links with the probe, so RTT must grow
// monotonically as the offered load rises.
func TestTorusProbeRTTGrowsWithLoad(t *testing.T) {
	t.Parallel()
	none := ProbeRTT(congCfg(params.TopoTorus), 64, 8, -1, BgHotspot)
	light := ProbeRTT(congCfg(params.TopoTorus), 64, 8, 4000, BgHotspot)
	heavy := ProbeRTT(congCfg(params.TopoTorus), 64, 8, 1000, BgHotspot)
	if !(none < light && light < heavy) {
		t.Errorf("torus hotspot probe RTT not monotone in load: none=%d light=%d heavy=%d", none, light, heavy)
	}
	a2a := ProbeRTT(congCfg(params.TopoTorus), 64, 8, 1000, BgAllToAll)
	if a2a <= none {
		t.Errorf("torus all-to-all load did not delay the probe: loaded=%d unloaded=%d", a2a, none)
	}
}

// TestTorusProbeBandwidthDegrades checks the victim stream loses
// bandwidth to background traffic on the torus but not on flat.
func TestTorusProbeBandwidthDegrades(t *testing.T) {
	t.Parallel()
	flatIdle := ProbeBandwidth(congCfg(params.TopoFlat), 244, 120, -1, BgHotspot)
	flatLoad := ProbeBandwidth(congCfg(params.TopoFlat), 244, 120, 1000, BgHotspot)
	if flatIdle != flatLoad {
		t.Errorf("flat victim bandwidth changed under load: %.2f vs %.2f", flatIdle, flatLoad)
	}
	torusIdle := ProbeBandwidth(congCfg(params.TopoTorus), 244, 120, -1, BgHotspot)
	torusLoad := ProbeBandwidth(congCfg(params.TopoTorus), 244, 120, 1000, BgHotspot)
	if torusLoad >= torusIdle {
		t.Errorf("torus victim bandwidth did not degrade: idle %.2f, loaded %.2f", torusIdle, torusLoad)
	}
}

// TestHotspotIncast checks the incast microbenchmark completes and
// reports a positive, deterministic sink bandwidth on both fabrics.
func TestHotspotIncast(t *testing.T) {
	t.Parallel()
	for _, topo := range []params.Topology{params.TopoFlat, params.TopoTorus} {
		a := HotspotIncast(congCfg(topo), 244, 12)
		b := HotspotIncast(congCfg(topo), 244, 12)
		if a <= 0 {
			t.Errorf("%v incast bandwidth = %.2f, want > 0", topo, a)
		}
		if a != b {
			t.Errorf("%v incast not deterministic: %.4f vs %.4f", topo, a, b)
		}
	}
}

// TestAllToAllExchange checks the exchange microbenchmark on both
// fabrics, including the small-machine case the CLI exposes.
func TestAllToAllExchange(t *testing.T) {
	t.Parallel()
	for _, topo := range []params.Topology{params.TopoFlat, params.TopoTorus} {
		cfg := congCfg(topo)
		cfg.Nodes = 4
		cyc := AllToAllExchange(cfg, 64, 2)
		if cyc <= 0 {
			t.Errorf("%v all-to-all cycles/round = %d, want > 0", topo, cyc)
		}
	}
}

// TestTorusMacrobenchmark runs one macrobenchmark end to end on the
// torus: the whole stack (msg layer, NIs, flow control) must work
// unchanged behind the Interconnect interface.
func TestTorusMacrobenchmark(t *testing.T) {
	t.Parallel()
	cfg := params.Config{Nodes: 16, NI: params.CNI512Q, Bus: params.MemoryBus, Topology: params.TopoTorus}
	flat := cfg
	flat.Topology = params.TopoFlat
	a, err := ByName("spsolve")
	if err != nil {
		t.Fatal(err)
	}
	rt := a.Run(cfg)
	rf := freshRun(t, "spsolve", flat)
	if rt.Cycles <= rf.Cycles {
		t.Errorf("torus spsolve (%d cycles) should be slower than flat (%d): store-and-forward hops cost more than the flat 100-cycle transit", rt.Cycles, rf.Cycles)
	}
	if rt.Messages != rf.Messages {
		t.Errorf("topology changed the communication pattern: %d vs %d messages", rt.Messages, rf.Messages)
	}
}

func freshRun(t *testing.T, name string, cfg params.Config) Result {
	t.Helper()
	a, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a.Run(cfg)
}

// TestAllToAllBackgroundOddTorusTerminates is a regression test: on
// tori with an odd dimension (12 nodes -> 3x4) the antipode map is
// not an involution, so a node excluded as a background sender can
// still be another sender's target. Before orphaned targets were
// given drain processes, that sender wedged on its window and the
// run never terminated.
func TestAllToAllBackgroundOddTorusTerminates(t *testing.T) {
	t.Parallel()
	cfg := params.Config{Nodes: 12, NI: params.NI2w, Bus: params.MemoryBus, Topology: params.TopoTorus}
	rtt := ProbeRTT(cfg, 64, 2, 2000, BgAllToAll)
	if rtt == 0 {
		t.Fatal("probe measured no round trips")
	}
}
