package harness

import (
	"bytes"
	"testing"

	"repro/internal/params"
	"repro/internal/workload"
)

// narrowFault is a one-cell sweep option set: small enough for unit
// tests, but running the full measureFault/FaultConfig path.
func narrowFault(seed uint64, drops []float64) FaultOptions {
	return FaultOptions{
		Seed:  seed,
		Drops: drops,
		NIs:   []params.NIKind{params.CNI512Q},
		Topos: []params.Topology{params.TopoTorus},
	}
}

// TestFaultSweepDeterministic pins the satellite's reproducibility
// contract: the same seed yields a byte-identical sweep (through the
// exported Data JSON, i.e. exactly what --json emits), and a
// different fault seed yields a different one.
func TestFaultSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy in -short mode")
	}
	ladder := []float64{0, 1e-2}
	render := func(seed uint64) []byte {
		tb, rows := FaultSweep(narrowFault(seed, ladder))
		d := FaultData(tb, ladder, rows)
		raw, err := d.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := render(7), render(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same fault seed produced different sweep JSON")
	}
	if c := render(8); bytes.Equal(a, c) {
		t.Fatal("different fault seeds produced byte-identical sweeps (fault RNG ignored?)")
	}
}

// TestFaultSeedDoesNotPerturbWorkload pins RNG-stream isolation: the
// fault seed must change which frames are dropped, never what the
// workload offers. Two runs differing only in fault seed must offer
// identical traffic (same Sent, same OfferedMBps) while injecting
// different fault schedules.
func TestFaultSeedDoesNotPerturbWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy in -short mode")
	}
	run := func(seed uint64) FaultPoint {
		opt := narrowFault(seed, nil)
		return measureFault(FaultConfig(opt, params.CNI512Q, params.TopoTorus, 1e-2), 1e-2)
	}
	a, b := run(1), run(2)
	if a.Sent != b.Sent || a.OfferedMBps != b.OfferedMBps {
		t.Errorf("fault seed leaked into the workload stream: sent %d/%d, offered %g/%g",
			a.Sent, b.Sent, a.OfferedMBps, b.OfferedMBps)
	}
	if a.Drops == 0 || b.Drops == 0 {
		t.Fatalf("drop rate 1e-2 injected no drops (%d, %d)", a.Drops, b.Drops)
	}
	if a.Drops == b.Drops && a.GoodputMBps == b.GoodputMBps && a.P999Us == b.P999Us {
		t.Error("different fault seeds produced an identical fault schedule")
	}
}

// TestFaultZeroValueByteIdentical pins the conformance satellite at
// the workload level: an explicit zero-value Faults block — and a
// nonzero fault seed with nothing to inject — must leave a run
// byte-identical to the fault-free baseline on both fabrics.
func TestFaultZeroValueByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy in -short mode")
	}
	for _, topo := range []params.Topology{params.TopoFlat, params.TopoTorus} {
		base := params.Config{
			Nodes: SweepNodes, NI: params.CNI512Q, Bus: params.MemoryBus, Topology: topo,
			Workload: SweepWorkload(SweepOptions{}, FaultPerNodeMBps, 0),
		}
		run := func(f params.Faults) workload.Report {
			cfg := base
			cfg.Faults = f
			return workload.Run(cfg, SweepWarm, SweepMeasure/2)
		}
		ref := run(params.Faults{})
		seeded := run(params.Faults{Seed: 99}) // a seed with nothing to inject is inert
		for name, rep := range map[string]workload.Report{"zero": ref, "seed-only": seeded} {
			if rep.Drops != 0 || rep.Retransmits != 0 || rep.Dead != 0 {
				t.Errorf("%s %s: fault counters moved on a fault-free run: %+v", topo, name, rep)
			}
		}
		if ref.Sent != seeded.Sent || ref.Delivered != seeded.Delivered ||
			ref.GoodputMBps != seeded.GoodputMBps ||
			ref.Latency.Quantile(0.999) != seeded.Latency.Quantile(0.999) ||
			ref.Latency.Count() != seeded.Latency.Count() {
			t.Errorf("%s: an inert Faults block changed the run: %+v vs %+v", topo, ref, seeded)
		}
	}
}

// TestFaultDataShape pins the uniform-export schema: one goodput and
// one p99.9 column per rung, rows as wide as the header, ladders under
// Extra.
func TestFaultDataShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy in -short mode")
	}
	ladder := []float64{0, 1e-3}
	tb, rows := FaultSweep(narrowFault(3, ladder))
	d := FaultData(tb, ladder, rows)
	if want := 3 + 2*len(ladder); len(d.Header) != want {
		t.Fatalf("header %v has %d columns, want %d", d.Header, len(d.Header), want)
	}
	if len(d.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(d.Rows))
	}
	for _, row := range d.Rows {
		if len(row) != len(d.Header) {
			t.Fatalf("row %v narrower than header %v", row, d.Header)
		}
	}
	got, ok := d.Extra.([]FaultRow)
	if !ok || len(got) != 1 || len(got[0].Ladder) != len(ladder) {
		t.Fatalf("Extra = %#v, want one FaultRow with %d rungs", d.Extra, len(ladder))
	}
	for i, pt := range got[0].Ladder {
		if pt.DropRate != ladder[i] {
			t.Errorf("rung %d drop rate %g, want %g", i, pt.DropRate, ladder[i])
		}
		if pt.Sent == 0 || pt.Delivered == 0 {
			t.Errorf("rung %d carried no traffic: %+v", i, pt)
		}
	}
	// The knee must be one of the ladder rates.
	knee := got[0].KneeDropRate
	okKnee := false
	for _, r := range ladder {
		okKnee = okKnee || knee == r
	}
	if !okKnee {
		t.Errorf("knee %g is not a ladder rate %v", knee, ladder)
	}
}

// TestFaultConfigDegradeWindow pins FaultConfig's degrade plumbing:
// the window opens over the middle half of the measurement and scales
// both latency and bandwidth.
func TestFaultConfigDegradeWindow(t *testing.T) {
	opt := FaultOptions{DegradeX: 4}
	cfg := FaultConfig(opt, params.CNI512Q, params.TopoTorus, 0)
	f := cfg.Faults
	if f.DegradeFrom != FaultWarm+FaultMeasure/4 || f.DegradeUntil != FaultWarm+3*FaultMeasure/4 {
		t.Errorf("degrade window [%d, %d)", f.DegradeFrom, f.DegradeUntil)
	}
	if f.DegradeLatencyX != 4 || f.DegradeBandwidthX != 4 {
		t.Errorf("degrade multipliers %v, %v, want 4, 4", f.DegradeLatencyX, f.DegradeBandwidthX)
	}
	if !f.Transport {
		t.Error("fault sweep configs must force the transport on")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("FaultConfig invalid: %v", err)
	}
}
