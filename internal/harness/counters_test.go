package harness

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/dcn"
	"repro/internal/params"
	"repro/internal/scenario"
)

// countersDoc parses COUNTERS.md into the set of documented counter
// names: the first backticked token of each table row.
func countersDoc(t *testing.T) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "COUNTERS.md"))
	if err != nil {
		t.Fatalf("counter registry missing: %v", err)
	}
	row := regexp.MustCompile("^\\| `([^`]+)` \\|")
	doc := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			doc[m[1]] = true
		}
	}
	if len(doc) == 0 {
		t.Fatal("COUNTERS.md has no counter rows")
	}
	return doc
}

// observedCounters runs a fault-injected, trace-enabled ring exchange
// on every NI design and both fabrics and collects the union of live
// counter names, node indices normalised to node*. The drop rate and
// reliable transport make sure the failure-path counters
// (net.retransmits, net.checksum_fail, ...) exist, and the torus run
// adds the net.torus.* family.
func observedCounters(t *testing.T) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	nis := append(append([]params.NIKind{}, params.AllNIs...), params.DMA)
	for _, ni := range nis {
		for _, topo := range []params.Topology{params.TopoFlat, params.TopoTorus} {
			cfg := FaultConfig(FaultOptions{Seed: 1}, ni, topo, 1e-2)
			cfg.Trace = params.Trace{Enabled: true, SampleEvery: 1000}
			cfg.Workload = SweepWorkload(SweepOptions{}, FaultPerNodeMBps, 0)
			m, err := scenario.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sc := scenario.New()
			var got int
			for id := 0; id < cfg.Nodes; id++ {
				id := id
				sc.At(id, func(ep *scenario.Endpoint) {
					ep.Handle(3, func(d *scenario.Delivery) { got++ })
					ep.SendTo((id+1)%cfg.Nodes, 3, 400, nil)
					ep.PollUntil(func() bool { return got >= cfg.Nodes })
				})
			}
			m.Run(sc)
			for _, n := range m.Stats().Counters() {
				names[n] = true
			}
			m.Close()
		}
	}
	// The dcn pack's rpc.* / coll.* families: a small hedged RPC run
	// (hedge + overload queueing exercise every rpc counter) and one
	// collective, per fabric.
	for _, topo := range []params.Topology{params.TopoFlat, params.TopoTorus} {
		cfg := params.Config{Nodes: SweepNodes, NI: params.CNI512Q, Bus: params.MemoryBus, Topology: topo}
		m, err := scenario.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec := RPCSpecFor(RPCOptions{Clients: 10_000, Hedge: 0.5, HedgeAfterCycles: 1_000}, 4, 200_000)
		spec.MaxInflight = 1
		if _, err := dcn.RunRPCOn(m, spec, 5_000, 40_000); err != nil {
			t.Fatal(err)
		}
		for _, n := range m.Stats().Counters() {
			names[n] = true
		}
		m.Close()

		m, err = scenario.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dcn.RunCollectiveOn(m, dcn.CollectiveSpec{Schedule: dcn.RingAllreduce, Bytes: 4096}); err != nil {
			t.Fatal(err)
		}
		for _, n := range m.Stats().Counters() {
			names[n] = true
		}
		m.Close()
	}
	node := regexp.MustCompile(`^node\d+\.`)
	norm := map[string]bool{}
	for n := range names {
		norm[node.ReplaceAllString(n, "node*.")] = true
	}
	return norm
}

// TestCounterRegistry enforces the COUNTERS.md contract in both
// directions: every counter the simulator emits is documented, and —
// because the fabric/transport names are the ones sweep exports and
// benchjson canaries key on — every documented net.* counter is still
// emitted. (Non-net documented counters are allowed to go unobserved
// by a particular configuration; emitting an undocumented one never
// is.)
func TestCounterRegistry(t *testing.T) {
	doc := countersDoc(t)
	obs := observedCounters(t)

	var missing []string
	for n := range obs {
		if !doc[n] {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	for _, n := range missing {
		t.Errorf("counter %q is emitted but not documented in COUNTERS.md", n)
	}

	var gone []string
	for n := range doc {
		if strings.HasPrefix(n, "net.") && !obs[n] {
			gone = append(gone, n)
		}
	}
	sort.Strings(gone)
	for _, n := range gone {
		t.Errorf("COUNTERS.md documents %q but the fault-enabled run no longer emits it", n)
	}
}
