// Package harness regenerates every table and figure in the paper's
// evaluation (§5): Figures 6 (round-trip latency), 7 (bandwidth), and
// 8 (macrobenchmark speedups), Tables 1-4, the §5.2 bus-occupancy
// result, plus the ablation sweeps DESIGN.md adds (CQ optimisations
// and queue-size scaling).
//
// Each experiment returns a Table whose String() renders the same
// rows/series the paper reports; cmd/cnisim and bench_test.go are thin
// wrappers over this package.
package harness

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/params"
)

// Table is one experiment's output: a titled grid.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Cell returns the numeric-cell string at (row, col) for tests.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// Fig6Sizes are the paper's Figure 6 message sizes (bytes).
var Fig6Sizes = []int{8, 16, 32, 64, 128, 256}

// Fig7Sizes are the paper's Figure 7 message sizes (bytes).
var Fig7Sizes = []int{8, 64, 512, 4096}

// Fig8NIsMemory lists Figure 8a's NIs.
var Fig8NIsMemory = []params.NIKind{params.NI2w, params.CNI4, params.CNI16Q, params.CNI512Q, params.CNI16Qm}

// Fig8NIsIO lists Figure 8b's NIs (no CNI16Qm on the I/O bus, §2.3).
var Fig8NIsIO = []params.NIKind{params.NI2w, params.CNI4, params.CNI16Q, params.CNI512Q}

// rttRounds is the steady-state round count per latency point.
const rttRounds = 4

// fig6Config builds a microbenchmark config.
func fig6Config(ni params.NIKind, bus params.BusKind) params.Config {
	return params.Config{Nodes: 2, NI: ni, Bus: bus}
}

// Fig6 reproduces Figure 6a/6b: process-to-process round-trip latency
// (microseconds) for each NI at each message size, on the given bus.
func Fig6(bus params.BusKind) *Table {
	nis := Fig8NIsMemory
	if bus == params.IOBus {
		nis = Fig8NIsIO
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 6 (%s bus): round-trip message latency, microseconds", bus),
		Header: append([]string{"bytes"}, niNames(nis)...),
	}
	cells := grid(len(Fig6Sizes), len(nis), func(r, c int) string {
		rtt := apps.RoundTrip(fig6Config(nis[c], bus), Fig6Sizes[r], rttRounds)
		return fmt.Sprintf("%.2f", machine.Microseconds(rtt))
	})
	for r, size := range Fig6Sizes {
		t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", size)}, cells[r]...))
	}
	return t
}

// Fig6Alt reproduces Figure 6c: NI2w on the cache bus vs CNI16Qm on
// the memory bus vs CNI512Q on the I/O bus.
func Fig6Alt() *Table {
	t := &Table{
		Title:  "Figure 6c (alternate buses): round-trip latency, microseconds",
		Header: []string{"bytes", "NI2w@cache", "CNI16Qm@memory", "CNI512Q@io"},
	}
	cfgs := altConfigs()
	cells := grid(len(Fig6Sizes), len(cfgs), func(r, c int) string {
		rtt := apps.RoundTrip(cfgs[c], Fig6Sizes[r], rttRounds)
		return fmt.Sprintf("%.2f", machine.Microseconds(rtt))
	})
	for r, size := range Fig6Sizes {
		t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", size)}, cells[r]...))
	}
	return t
}

func altConfigs() []params.Config {
	return []params.Config{
		{Nodes: 2, NI: params.NI2w, Bus: params.CacheBus},
		{Nodes: 2, NI: params.CNI16Qm, Bus: params.MemoryBus},
		{Nodes: 2, NI: params.CNI512Q, Bus: params.IOBus},
	}
}

// bwMessages picks a message count that exercises steady state without
// exploding event counts at tiny sizes.
func bwMessages(size int) int {
	n := 96 * 1024 / size
	if n < 24 {
		n = 24
	}
	if n > 1200 {
		n = 1200
	}
	return n
}

// Fig7 reproduces Figure 7a/7b: bandwidth relative to the local
// cachable-queue bound, per NI per message size. On the memory bus the
// CNI16Qm-with-snarfing series of Fig 7a is included.
func Fig7(bus params.BusKind) *Table {
	nis := Fig8NIsMemory
	if bus == params.IOBus {
		nis = Fig8NIsIO
	}
	bound := apps.LocalQueueBandwidth()
	header := append([]string{"bytes"}, niNames(nis)...)
	withSnarf := bus == params.MemoryBus
	cfgs := make([]params.Config, 0, len(nis)+1)
	for _, ni := range nis {
		cfgs = append(cfgs, fig6Config(ni, bus))
	}
	if withSnarf {
		header = append(header, "CNI16Qm+snarf")
		cfg := fig6Config(params.CNI16Qm, bus)
		cfg.Snarfing = true
		cfgs = append(cfgs, cfg)
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 7 (%s bus): bandwidth relative to local-queue bound (%.0f MB/s)", bus, bound),
		Header: header,
	}
	cells := grid(len(Fig7Sizes), len(cfgs), func(r, c int) string {
		bw := apps.Bandwidth(cfgs[c], Fig7Sizes[r], bwMessages(Fig7Sizes[r]))
		return fmt.Sprintf("%.2f", bw/bound)
	})
	for r, size := range Fig7Sizes {
		t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", size)}, cells[r]...))
	}
	return t
}

// Fig7Alt reproduces Figure 7c: alternate buses, relative bandwidth.
func Fig7Alt() *Table {
	bound := apps.LocalQueueBandwidth()
	t := &Table{
		Title:  fmt.Sprintf("Figure 7c (alternate buses): bandwidth relative to local-queue bound (%.0f MB/s)", bound),
		Header: []string{"bytes", "NI2w@cache", "CNI16Qm@memory", "CNI512Q@io"},
	}
	cfgs := altConfigs()
	cells := grid(len(Fig7Sizes), len(cfgs), func(r, c int) string {
		bw := apps.Bandwidth(cfgs[c], Fig7Sizes[r], bwMessages(Fig7Sizes[r]))
		return fmt.Sprintf("%.2f", bw/bound)
	})
	for r, size := range Fig7Sizes {
		t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", size)}, cells[r]...))
	}
	return t
}

func niNames(nis []params.NIKind) []string {
	out := make([]string, len(nis))
	for i, ni := range nis {
		out[i] = ni.String()
	}
	return out
}

// Fig8 reproduces Figure 8a/8b: per-macrobenchmark speedup over NI2w
// on the memory bus. appNames limits the run (nil = all five).
func Fig8(bus params.BusKind, appNames []string) *Table {
	nis := Fig8NIsMemory
	if bus == params.IOBus {
		nis = Fig8NIsIO
	}
	cfgs := make([]params.Config, 0, len(nis))
	for _, ni := range nis {
		cfgs = append(cfgs, params.Config{Nodes: 16, NI: ni, Bus: bus})
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 8 (%s bus): speedup over NI2w on the memory bus", bus),
		Header: append([]string{"benchmark"}, niNames(nis)...),
	}
	t.Rows = speedupRows(selectApps(appNames), cfgs)
	return t
}

// Fig8Alt reproduces Figure 8c: NI2w@cache vs CNI16Qm@memory vs
// CNI512Q@io, speedups over NI2w@memory.
func Fig8Alt(appNames []string) *Table {
	t := &Table{
		Title:  "Figure 8c (alternate buses): speedup over NI2w on the memory bus",
		Header: []string{"benchmark", "NI2w@cache", "CNI16Qm@memory", "CNI512Q@io"},
	}
	cfgs := altConfigs()
	for i := range cfgs {
		cfgs[i].Nodes = 16
	}
	t.Rows = speedupRows(selectApps(appNames), cfgs)
	return t
}

// speedupRows runs every (benchmark, config) cell plus the per-app
// NI2w@memory baseline concurrently, then renders speedup rows in the
// apps' order. Each cell constructs a private App instance so no state
// is shared between host workers.
func speedupRows(sel []apps.App, cfgs []params.Config) [][]string {
	base := params.Config{Nodes: 16, NI: params.NI2w, Bus: params.MemoryBus}
	runs := append([]params.Config{base}, cfgs...)
	results := grid(len(sel), len(runs), func(r, c int) apps.Result {
		return freshApp(sel[r].Name()).Run(runs[c])
	})
	rows := make([][]string, 0, len(sel))
	for r, app := range sel {
		row := []string{app.Name()}
		for c := 1; c < len(runs); c++ {
			row = append(row, fmt.Sprintf("%.2f", results[r][c].SpeedupOver(results[r][0])))
		}
		rows = append(rows, row)
	}
	return rows
}

// freshApp returns a private instance of the named benchmark.
func freshApp(name string) apps.App {
	a, err := apps.ByName(name)
	if err != nil {
		panic(err)
	}
	return a
}

func selectApps(names []string) []apps.App {
	if len(names) == 0 {
		return apps.All()
	}
	var out []apps.App
	for _, n := range names {
		a, err := apps.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, a)
	}
	return out
}

// Occupancy reproduces the §5.2 result: memory-bus occupancy of each
// CNI relative to NI2w, averaged over the macrobenchmarks ("CQ-based
// CNIs ... reduce the memory bus occupancy by as much as 66% ...
// CNI4 ... by only 23%").
func Occupancy(appNames []string) *Table {
	t := &Table{
		Title:  "Section 5.2: memory-bus occupancy relative to NI2w (memory bus), lower is better",
		Header: append([]string{"benchmark"}, niNames(Fig8NIsMemory)...),
	}
	sums := make([]float64, len(Fig8NIsMemory))
	sel := selectApps(appNames)
	runs := make([]params.Config, 0, len(Fig8NIsMemory)+1)
	runs = append(runs, params.Config{Nodes: 16, NI: params.NI2w, Bus: params.MemoryBus})
	for _, ni := range Fig8NIsMemory {
		runs = append(runs, params.Config{Nodes: 16, NI: ni, Bus: params.MemoryBus})
	}
	results := grid(len(sel), len(runs), func(r, c int) apps.Result {
		return freshApp(sel[r].Name()).Run(runs[c])
	})
	for r, app := range sel {
		base := results[r][0]
		row := []string{app.Name()}
		for i := range Fig8NIsMemory {
			rel := float64(results[r][i+1].MemBusOccupancy) / float64(base.MemBusOccupancy)
			sums[i] += rel
			row = append(row, fmt.Sprintf("%.2f", rel))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, fmt.Sprintf("%.2f", s/float64(len(sel))))
	}
	t.Rows = append(t.Rows, avg)
	return t
}

// AblationCQ measures each CQ optimisation's contribution (A1 in
// DESIGN.md): round-trip latency and bandwidth for CNI512Q with each
// optimisation disabled in turn.
func AblationCQ() *Table {
	t := &Table{
		Title: "Ablation: CQ optimisations (32-block CQ, memory bus)",
		Note: "Measured in steady state on a wrapped (reused) queue — valid bits and\n" +
			"sense reverse pay off once entries are revisited (§2.2). The bus column\n" +
			"is memory-bus cycles consumed per 64-byte round trip.",
		Header: []string{"variant", "RTT 64B (us)", "bus cyc/RTT", "BW 1KB (MB/s)"},
	}
	variants := []struct {
		name string
		mod  func(*params.Config)
	}{
		{"all optimisations", func(c *params.Config) {}},
		{"no lazy pointers", func(c *params.Config) { c.NoLazyPointers = true }},
		{"no valid bits (poll tail)", func(c *params.Config) { c.NoValidBits = true }},
		{"no sense reverse (explicit clear)", func(c *params.Config) { c.NoSenseReverse = true }},
		{"update-protocol extension", func(c *params.Config) { c.UpdateProtocol = true }},
	}
	t.Rows = runCells(len(variants), func(i int) []string {
		v := variants[i]
		cfg := fig6Config(params.CNI512Q, params.MemoryBus)
		// A small queue wraps within the measurement, reaching the
		// steady state the optimisations are designed for.
		cfg.QueueBlocksOverride = 32
		v.mod(&cfg)
		rtt, busCyc := apps.RoundTripDetail(cfg, 64, 24)
		bw := apps.Bandwidth(cfg, 1024, bwMessages(1024))
		return []string{
			v.name,
			fmt.Sprintf("%.2f", machine.Microseconds(rtt)),
			fmt.Sprintf("%d", busCyc),
			fmt.Sprintf("%.0f", bw),
		}
	})
	return t
}

// DMAComparison is the comparison the paper names as its open
// weakness (§1): program-controlled CNIs vs a user-level-DMA NI.
// It reports round-trip latency and bandwidth across message sizes
// for NI2w, the best CNI, and the DMA extension; the expected shape
// is the one the paper's discussion predicts — DMA's constant
// descriptor cost wins on processor overhead for bulk transfers but
// its interrupt notification and DRAM delivery lose on fine-grain
// latency.
func DMAComparison() *Table {
	t := &Table{
		Title: "Extension: CNI vs user-level DMA (memory bus)",
		Note: "RTT in microseconds; bandwidth in MB/s. The DMA NI posts 4-word\n" +
			"descriptors, delivers to DRAM, and notifies via a 1000-cycle interrupt.",
		Header: []string{"bytes", "NI2w RTT", "CNI512Q RTT", "DMA RTT", "NI2w BW", "CNI512Q BW", "DMA BW"},
	}
	sizes := []int{16, 256, 1024, 4096}
	nis := []params.NIKind{params.NI2w, params.CNI512Q, params.DMA}
	cells := grid(len(sizes), 2*len(nis), func(r, c int) string {
		size := sizes[r]
		if c < len(nis) {
			rtt := apps.RoundTrip(fig6Config(nis[c], params.MemoryBus), size, rttRounds)
			return fmt.Sprintf("%.2f", machine.Microseconds(rtt))
		}
		bw := apps.Bandwidth(fig6Config(nis[c-len(nis)], params.MemoryBus), size, bwMessages(size))
		return fmt.Sprintf("%.0f", bw)
	})
	for r, size := range sizes {
		t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", size)}, cells[r]...))
	}
	return t
}

// SweepQueueSize measures bandwidth and burst behaviour as the CQ size
// varies (A2 in DESIGN.md), and NI2w FIFO depth alongside.
func SweepQueueSize() *Table {
	t := &Table{
		Title:  "Ablation: exposed queue size (device-homed CQ, memory bus)",
		Header: []string{"queue blocks", "RTT 64B (us)", "BW 1KB (MB/s)"},
	}
	sizes := []int{8, 16, 64, 128, 512}
	t.Rows = runCells(len(sizes), func(i int) []string {
		cfg := fig6Config(params.CNI512Q, params.MemoryBus)
		cfg.QueueBlocksOverride = sizes[i]
		rtt := apps.RoundTrip(cfg, 64, rttRounds)
		bw := apps.Bandwidth(cfg, 1024, bwMessages(1024))
		return []string{
			fmt.Sprintf("%d", sizes[i]),
			fmt.Sprintf("%.2f", machine.Microseconds(rtt)),
			fmt.Sprintf("%.0f", bw),
		}
	})
	return t
}
