package harness

import (
	"encoding/csv"
	"encoding/json"
	"strings"

	"repro/internal/params"
)

// RunOpts parameterises one registry experiment run.
type RunOpts struct {
	// Apps narrows the macrobenchmark sweeps (fig8, occupancy) to a
	// benchmark subset; nil runs all five. Experiments without a
	// benchmark dimension ignore it.
	Apps []string
}

// Data is an experiment's machine-readable result: a named grid that
// marshals uniformly to JSON or CSV across every experiment, plus an
// optional experiment-specific structured payload (for the load
// sweep, the full per-NI ladders).
type Data struct {
	Name   string     `json:"name"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Extra  any        `json:"extra,omitempty"`
}

// tableData derives the uniform machine-readable grid from a rendered
// table; Registry stamps the experiment name afterwards, so the name
// literal lives in exactly one place per entry.
func tableData(t *Table) *Data {
	return &Data{Title: t.Title, Header: t.Header, Rows: t.Rows}
}

// JSON marshals the data (indented, trailing newline).
func (d *Data) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CSV renders the header and rows as RFC-4180 CSV (cells containing
// commas — e.g. Table 3's input descriptions — are quoted).
func (d *Data) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(d.Header)
	_ = w.WriteAll(d.Rows)
	return b.String()
}

// Experiment is one registered experiment: a stable name, a
// human-readable title, classification tags, and a runner that
// renders the paper-style table plus the machine-readable Data.
type Experiment struct {
	// Name is the stable identifier (CLI command / Experiment shim).
	Name string
	// Title is the rendered table's headline.
	Title string
	// Tags classify the experiment: "paper" (reproduces a paper
	// artefact) or "extension", plus a kind ("table", "latency",
	// "bandwidth", "speedup", "occupancy", "ablation", "congestion",
	// "workload").
	Tags []string
	// Run executes the experiment.
	Run func(opt RunOpts) (*Table, *Data)
}

// simple wraps a no-option table generator into a registry runner.
func simple(fn func() *Table) func(RunOpts) (*Table, *Data) {
	return func(RunOpts) (*Table, *Data) {
		t := fn()
		return t, tableData(t)
	}
}

// withApps wraps a benchmark-narrowable generator.
func withApps(fn func(appNames []string) *Table) func(RunOpts) (*Table, *Data) {
	return func(opt RunOpts) (*Table, *Data) {
		t := fn(opt.Apps)
		return t, tableData(t)
	}
}

// Registry returns the experiment registry in presentation order —
// the paper's tables, then its figures, then this reproduction's
// extensions. The order is the public ExperimentNames order and the
// CLI `list` order; tests pin that every entry renders a well-formed
// table and round-trips its Data.
func Registry() []Experiment {
	paper := func(kind string) []string { return []string{"paper", kind} }
	ext := func(kind string) []string { return []string{"extension", kind} }
	reg := []Experiment{
		{Name: "table1", Title: "NI taxonomy summary (paper Table 1)",
			Tags: paper("table"), Run: simple(Table1)},
		{Name: "table2", Title: "Bus occupancy timing model (paper Table 2)",
			Tags: paper("table"), Run: simple(Table2)},
		{Name: "table3", Title: "Macrobenchmark summary (paper Table 3)",
			Tags: paper("table"), Run: simple(Table3)},
		{Name: "table4", Title: "NI comparison (paper Table 4)",
			Tags: paper("table"), Run: simple(Table4)},
		{Name: "fig6-memory", Title: "Round-trip latency, memory bus (paper Fig 6a)",
			Tags: paper("latency"), Run: simple(func() *Table { return Fig6(params.MemoryBus) })},
		{Name: "fig6-io", Title: "Round-trip latency, I/O bus (paper Fig 6b)",
			Tags: paper("latency"), Run: simple(func() *Table { return Fig6(params.IOBus) })},
		{Name: "fig6-alt", Title: "Round-trip latency, alternate buses (paper Fig 6c)",
			Tags: paper("latency"), Run: simple(Fig6Alt)},
		{Name: "fig7-memory", Title: "Relative bandwidth, memory bus (paper Fig 7a)",
			Tags: paper("bandwidth"), Run: simple(func() *Table { return Fig7(params.MemoryBus) })},
		{Name: "fig7-io", Title: "Relative bandwidth, I/O bus (paper Fig 7b)",
			Tags: paper("bandwidth"), Run: simple(func() *Table { return Fig7(params.IOBus) })},
		{Name: "fig7-alt", Title: "Relative bandwidth, alternate buses (paper Fig 7c)",
			Tags: paper("bandwidth"), Run: simple(Fig7Alt)},
		{Name: "fig8-memory", Title: "Macrobenchmark speedups, memory bus (paper Fig 8a)",
			Tags: paper("speedup"), Run: withApps(func(a []string) *Table { return Fig8(params.MemoryBus, a) })},
		{Name: "fig8-io", Title: "Macrobenchmark speedups, I/O bus (paper Fig 8b)",
			Tags: paper("speedup"), Run: withApps(func(a []string) *Table { return Fig8(params.IOBus, a) })},
		{Name: "fig8-alt", Title: "Macrobenchmark speedups, alternate buses (paper Fig 8c)",
			Tags: paper("speedup"), Run: withApps(Fig8Alt)},
		{Name: "occupancy", Title: "Memory-bus occupancy relative to NI2w (paper §5.2)",
			Tags: paper("occupancy"), Run: withApps(Occupancy)},
		{Name: "ablation", Title: "CQ optimisation ablation",
			Tags: ext("ablation"), Run: simple(AblationCQ)},
		{Name: "sweep", Title: "Exposed queue-size sweep",
			Tags: ext("ablation"), Run: simple(SweepQueueSize)},
		{Name: "dma", Title: "CNI vs user-level DMA",
			Tags: ext("bandwidth"), Run: simple(DMAComparison)},
		{Name: "congestion", Title: "Probe RTT and victim bandwidth under load, flat vs torus",
			Tags: ext("congestion"), Run: simple(Congestion)},
		{Name: "loadsweep", Title: "Offered-load sweep to saturation with tail latency",
			Tags: ext("workload"), Run: func(RunOpts) (*Table, *Data) {
				t, rows := LoadSweep(SweepOptions{})
				return t, SweepData(t, rows)
			}},
		{Name: "faultsweep", Title: "Goodput and tail latency vs injected drop rate, flat vs torus",
			Tags: ext("faults"), Run: func(RunOpts) (*Table, *Data) {
				t, rows := FaultSweep(FaultOptions{})
				return t, FaultData(t, FaultLadder, rows)
			}},
		{Name: "rpc", Title: "RPC fan-out tail latency at a million clients, flat vs torus",
			Tags: ext("dcn"), Run: func(RunOpts) (*Table, *Data) {
				t, rows := RPCSweep(RPCOptions{})
				return t, RPCData(t, rows)
			}},
		{Name: "collective", Title: "Collective schedule completion and per-step skew, flat vs torus",
			Tags: ext("dcn"), Run: func(RunOpts) (*Table, *Data) {
				t, rows := CollectiveSweep(CollectiveOptions{})
				return t, CollectiveData(t, rows)
			}},
	}
	// Stamp every result's Data.Name from the registry entry, so the
	// name literal cannot drift between the entry and its Data.
	for i := range reg {
		name, inner := reg[i].Name, reg[i].Run
		reg[i].Run = func(opt RunOpts) (*Table, *Data) {
			t, d := inner(opt)
			d.Name = name
			return t, d
		}
	}
	return reg
}

// ByName finds a registered experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
