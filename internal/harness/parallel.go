package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Every experiment in this package is a grid of independent cells —
// each one builds its own machine, its own engine, its own stats — so
// the grid fans out over a worker pool and the rows are assembled from
// the completed cells in index order. Output is byte-identical to a
// serial run: parallelism only changes which host core evaluates a
// cell, never the simulated schedule inside it.

// Serial forces single-threaded cell evaluation (for A/B timing and
// debugging; the output is identical either way).
var Serial = false

// runCells evaluates n independent cells with up to GOMAXPROCS host
// workers and returns the results in cell-index order.
func runCells[T any](n int, run func(i int) T) []T {
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if Serial || workers > n {
		// Degenerate pools keep ordering trivially; n below GOMAXPROCS
		// still fans out one worker per cell.
		if Serial {
			workers = 1
		} else {
			workers = n
		}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = run(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = run(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// grid evaluates rows×cols cells and returns [row][col] results.
func grid[T any](rows, cols int, run func(r, c int) T) [][]T {
	flat := runCells(rows*cols, func(i int) T { return run(i/cols, i%cols) })
	out := make([][]T, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
