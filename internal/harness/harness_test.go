package harness

import (
	"strconv"
	"testing"

	"repro/internal/params"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Cell(row, col), 64)
	if err != nil {
		t.Fatalf("cell(%d,%d) = %q: %v", row, col, tb.Cell(row, col), err)
	}
	return v
}

func TestFig6MemoryShape(t *testing.T) {
	t.Parallel()
	tb := Fig6(params.MemoryBus)
	t.Log("\n" + tb.String())
	// Columns: bytes, NI2w, CNI4, CNI16Q, CNI512Q, CNI16Qm.
	// CNIs beat NI2w from 32 bytes up; at 8-16 bytes this model's NI2w
	// is within noise of the CNIs (documented deviation: the paper
	// reports ~20% CNI advantage there), so allow near-parity.
	for r := range tb.Rows {
		ni2w := cell(t, tb, r, 1)
		slack := 1.0
		if r < 2 {
			slack = 1.10
		}
		for c := 2; c <= 5; c++ {
			if cell(t, tb, r, c) >= ni2w*slack {
				t.Errorf("row %s: %s (%.2f) should beat NI2w (%.2f, slack %.2f)",
					tb.Cell(r, 0), tb.Header[c], cell(t, tb, r, c), ni2w, slack)
			}
		}
	}
	// Latency grows with size for every NI.
	for c := 1; c <= 5; c++ {
		if cell(t, tb, len(tb.Rows)-1, c) <= cell(t, tb, 0, c) {
			t.Errorf("%s: 256B latency should exceed 8B", tb.Header[c])
		}
	}
	// The paper's 64B headline: ~37% round-trip improvement for the
	// best CNI. Accept anything from 15% up.
	ni2w64 := cell(t, tb, 3, 1)
	best := cell(t, tb, 3, 4) // CNI512Q
	if imp := (ni2w64 - best) / ni2w64; imp < 0.15 {
		t.Errorf("64B best-CNI improvement = %.0f%%, want >= 15%% (paper: 37%%)", imp*100)
	}
}

func TestFig6IOShape(t *testing.T) {
	t.Parallel()
	tb := Fig6(params.IOBus)
	t.Log("\n" + tb.String())
	for r := range tb.Rows {
		ni2w := cell(t, tb, r, 1)
		for c := 2; c <= 4; c++ {
			if cell(t, tb, r, c) >= ni2w {
				t.Errorf("row %s: %s should beat NI2w on the I/O bus", tb.Cell(r, 0), tb.Header[c])
			}
		}
	}
}

func TestFig6AltShape(t *testing.T) {
	t.Parallel()
	tb := Fig6Alt()
	t.Log("\n" + tb.String())
	for r := range tb.Rows {
		cache := cell(t, tb, r, 1)
		mem := cell(t, tb, r, 2)
		io := cell(t, tb, r, 3)
		if !(cache < mem && mem < io) {
			t.Errorf("row %s: want cache < memory < io, got %.2f %.2f %.2f",
				tb.Cell(r, 0), cache, mem, io)
		}
	}
}

func TestFig7MemoryShape(t *testing.T) {
	t.Parallel()
	tb := Fig7(params.MemoryBus)
	t.Log("\n" + tb.String())
	// Relative bandwidth: CNIs beat NI2w from 64 bytes up (at 8 bytes
	// everything is poll-bound and near-equal; the CDR/CQ handshakes
	// cost CNI4/CNI16Q their edge there — documented deviation). The
	// best CNI reaches a solid fraction of the local-queue bound.
	for r := range tb.Rows {
		ni2w := cell(t, tb, r, 1)
		lo := 2
		if r == 0 {
			lo = 4 // only the big-queue designs must win at 8B
		}
		for c := lo; c <= 5; c++ {
			if r == 0 && c == 5 {
				continue // CNI16Qm at 8B overflows without snarfing
			}
			if cell(t, tb, r, c) <= ni2w {
				t.Errorf("row %s: %s (%.2f) should beat NI2w (%.2f)",
					tb.Cell(r, 0), tb.Header[c], cell(t, tb, r, c), ni2w)
			}
		}
	}
	last := len(tb.Rows) - 1
	if best := cell(t, tb, last, 4); best < 0.55 {
		t.Errorf("CNI512Q at 4KB reaches only %.2f of the bound, want >= 0.55 (paper: ~0.73)", best)
	}
	// Snarfing improves CNI16Qm bandwidth wherever its device cache
	// overflows (Fig 7a; strongest at small sizes in this model).
	snarfWins := 0
	for r := range tb.Rows {
		plain, snarf := cell(t, tb, r, 5), cell(t, tb, r, 6)
		if snarf < plain*0.98 {
			t.Errorf("row %s: snarfing should never hurt (%.2f vs %.2f)", tb.Cell(r, 0), snarf, plain)
		}
		if snarf > plain*1.02 {
			snarfWins++
		}
	}
	if snarfWins == 0 {
		t.Error("snarfing should improve CNI16Qm bandwidth at some size")
	}
}

func TestFig7IOShape(t *testing.T) {
	t.Parallel()
	tb := Fig7(params.IOBus)
	t.Log("\n" + tb.String())
	for r := range tb.Rows {
		ni2w := cell(t, tb, r, 1)
		lo := 2
		if r == 0 {
			lo = 3 // CNI4's handshake dominates at 8B on the slow bus
		}
		for c := lo; c <= 4; c++ {
			if r == 0 && c == 3 {
				continue // CNI16Q at 8B is backpressure-bound
			}
			if cell(t, tb, r, c) <= ni2w {
				t.Errorf("row %s: %s should beat NI2w", tb.Cell(r, 0), tb.Header[c])
			}
		}
	}
}

func TestStaticTables(t *testing.T) {
	if len(Table1().Rows) != 5 {
		t.Error("Table 1 should list five NIs")
	}
	if len(Table2().Rows) != 5 {
		t.Error("Table 2 should list five operations")
	}
	if len(Table3().Rows) != 5 {
		t.Error("Table 3 should list five benchmarks")
	}
	if len(Table4().Rows) != 12 {
		t.Error("Table 4 should list twelve NIs")
	}
	for _, tb := range []*Table{Table1(), Table2(), Table3(), Table4()} {
		if tb.String() == "" {
			t.Error("empty rendering")
		}
	}
}

func TestAblationCQ(t *testing.T) {
	t.Parallel()
	tb := AblationCQ()
	t.Log("\n" + tb.String())
	baseRTT := cell(t, tb, 0, 1)
	baseBus := cell(t, tb, 0, 2)
	baseBW := cell(t, tb, 0, 3)
	// Rows 1-3 disable an optimisation: none may beat the optimised
	// baseline on latency or bandwidth (small tolerance for second-
	// order scheduling effects).
	for r := 1; r <= 3; r++ {
		if cell(t, tb, r, 1) < baseRTT*0.99 {
			t.Errorf("%s should not beat the fully-optimised CQ RTT", tb.Cell(r, 0))
		}
		if cell(t, tb, r, 3) > baseBW*1.03 {
			t.Errorf("%s should not beat the fully-optimised CQ bandwidth", tb.Cell(r, 0))
		}
	}
	// Tail polling and explicit clears cost bus occupancy even when
	// the latency impact hides under device work (§2.2).
	if cell(t, tb, 2, 2) <= baseBus {
		t.Errorf("tail polling should consume more bus cycles: %v vs %v", cell(t, tb, 2, 2), baseBus)
	}
	if cell(t, tb, 3, 2) <= baseBus {
		t.Errorf("explicit clears should consume more bus cycles: %v vs %v", cell(t, tb, 3, 2), baseBus)
	}
	// The update-protocol extension removes the receiver's poll miss:
	// latency must improve.
	if cell(t, tb, 4, 1) >= baseRTT {
		t.Errorf("update protocol RTT %.2f should beat baseline %.2f", cell(t, tb, 4, 1), baseRTT)
	}
}

func TestFig8SpsolveOnly(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("macro sweep in -short mode")
	}
	tb := Fig8(params.MemoryBus, []string{"spsolve"})
	t.Log("\n" + tb.String())
	ni2w := cell(t, tb, 0, 1)
	if ni2w < 0.99 || ni2w > 1.01 {
		t.Errorf("NI2w speedup over itself = %.2f, want 1.0", ni2w)
	}
	// CNI4 at least matches NI2w; the small CQ design pays its
	// saturation tax on this fine-grain workload (paper: parity with
	// CNI4; here within ~15%); the large-queue designs win big.
	if cell(t, tb, 0, 2) < 0.98 {
		t.Errorf("CNI4 speedup = %.2f, want >= 0.98", cell(t, tb, 0, 2))
	}
	if cell(t, tb, 0, 3) < 0.85 {
		t.Errorf("CNI16Q speedup = %.2f, want >= 0.85", cell(t, tb, 0, 3))
	}
	for c := 4; c <= 5; c++ {
		if cell(t, tb, 0, c) < 1.15 {
			t.Errorf("%s speedup = %.2f, want >= 1.15 (paper: 17-53%% gains)",
				tb.Header[c], cell(t, tb, 0, c))
		}
	}
}

func TestOccupancySpsolve(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("macro sweep in -short mode")
	}
	tb := Occupancy([]string{"spsolve"})
	t.Log("\n" + tb.String())
	// CQ CNIs cut occupancy much more than CNI4 (§5.2).
	cni4 := cell(t, tb, 0, 2)
	cq := cell(t, tb, 0, 5)
	if cq >= cni4 {
		t.Errorf("CNI16Qm occupancy (%.2f) should be below CNI4 (%.2f)", cq, cni4)
	}
}
