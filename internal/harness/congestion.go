package harness

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/params"
)

// Congestion load levels: the compute gap (cycles) between background
// sends. A negative gap disables the background.
var congestionLoads = []struct {
	name string
	gap  int
}{
	{"none", -1},
	{"light", 4000},
	{"heavy", 1000},
}

// congestion probe parameters.
const (
	congestionNodes    = 16
	congestionRTTBytes = 64
	congestionRTTRound = 8
	congestionBWBytes  = 244
	congestionBWMsgs   = 120
)

// Congestion is the experiment the flat model structurally cannot
// express (DESIGN.md §7): per-NI probe round-trip latency and victim
// stream bandwidth between node 0 and its torus antipode while the
// other nodes generate background load — converging on a hotspot on
// the probe's path, or an antipodal all-to-all permutation — on the
// paper's contention-free flat network versus the 2D torus. Under
// flat, the probe columns are load-independent by construction; under
// the torus, shared links queue the probe behind the background.
func Congestion() *Table {
	nis := Fig8NIsMemory
	t := &Table{
		Title: fmt.Sprintf("Congestion: probe RTT and victim bandwidth under background load (%d nodes, memory bus)", congestionNodes),
		Note: "Probe: node 0 <-> its torus antipode. hot = background incast into a node on the\n" +
			"probe's path; a2a = antipodal-permutation background. Load is the gap between\n" +
			"background sends (none / 4000 / 1000 cycles). The flat network is the paper's\n" +
			"contention-free model, so its probe columns cannot depend on load.",
		Header: []string{"NI", "load",
			"hot RTT flat (us)", "hot RTT torus (us)", "a2a RTT torus (us)",
			"hot BW flat (MB/s)", "hot BW torus (MB/s)"},
	}
	cfg := func(ni params.NIKind, topo params.Topology) params.Config {
		return params.Config{Nodes: congestionNodes, NI: ni, Bus: params.MemoryBus, Topology: topo}
	}
	rows := len(nis) * len(congestionLoads)
	cells := grid(rows, 5, func(r, c int) string {
		ni := nis[r/len(congestionLoads)]
		gap := congestionLoads[r%len(congestionLoads)].gap
		switch c {
		case 0:
			rtt := apps.ProbeRTT(cfg(ni, params.TopoFlat), congestionRTTBytes, congestionRTTRound, gap, apps.BgHotspot)
			return fmt.Sprintf("%.2f", machine.Microseconds(rtt))
		case 1:
			rtt := apps.ProbeRTT(cfg(ni, params.TopoTorus), congestionRTTBytes, congestionRTTRound, gap, apps.BgHotspot)
			return fmt.Sprintf("%.2f", machine.Microseconds(rtt))
		case 2:
			rtt := apps.ProbeRTT(cfg(ni, params.TopoTorus), congestionRTTBytes, congestionRTTRound, gap, apps.BgAllToAll)
			return fmt.Sprintf("%.2f", machine.Microseconds(rtt))
		case 3:
			bw := apps.ProbeBandwidth(cfg(ni, params.TopoFlat), congestionBWBytes, congestionBWMsgs, gap, apps.BgHotspot)
			return fmt.Sprintf("%.1f", bw)
		default:
			bw := apps.ProbeBandwidth(cfg(ni, params.TopoTorus), congestionBWBytes, congestionBWMsgs, gap, apps.BgHotspot)
			return fmt.Sprintf("%.1f", bw)
		}
	})
	for r := 0; r < rows; r++ {
		name := ""
		if r%len(congestionLoads) == 0 {
			name = nis[r/len(congestionLoads)].String()
		}
		t.Rows = append(t.Rows, append([]string{name, congestionLoads[r%len(congestionLoads)].name}, cells[r]...))
	}
	return t
}
