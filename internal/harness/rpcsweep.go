package harness

import (
	"fmt"

	"repro/internal/dcn"
	"repro/internal/machine"
	"repro/internal/params"
)

// RPC sweep tuning. The fan-out ladder is the headline dimension —
// tail-at-scale grows with k because every call waits for its slowest
// backend — and one overload point per cell reports goodput when
// offered load far exceeds serving capacity.
const (
	// RPCSweepWarm/RPCSweepMeasure bracket each measured point; cnisim
	// rpc's single-point mode uses the same windows, so a one-off run
	// measures exactly what a sweep cell does. The long window buys
	// a few hundred completed calls per point at the ladder's offered
	// rate — enough for stable tail quantiles.
	RPCSweepWarm    = 50_000
	RPCSweepMeasure = 1_000_000
	// RPCSweepClients is the default simulated client population
	// (machine-wide): a million clients aggregated onto the sweep's 16
	// nodes.
	RPCSweepClients = 1_000_000
	// RPCSweepThink is the moderate-load mean think time; with
	// RPCSweepClients it offers 125 KRPS machine-wide, about half the
	// weakest NI's measured k=8 serving capacity (~260 KRPS on a torus
	// of NI2w nodes), so even the top of the fan-out ladder queues
	// lightly instead of saturating.
	RPCSweepThink = 1_600_000_000
	// rpcOverloadDiv shortens think time for the overload point
	// (offered load x20).
	rpcOverloadDiv = 20
)

// RPCSweepFanouts is the fan-out ladder every cell climbs.
var RPCSweepFanouts = []int{1, 2, 4, 8}

// rpcSweepNIs picks the taxonomy corners for the default sweep: the
// CM-5-like baseline, the small and large coherent queue designs, and
// the DMA comparator (the full five-NI grid triples the runtime
// without changing the story).
var rpcSweepNIs = []params.NIKind{params.NI2w, params.CNI4, params.CNI512Q, params.DMA}

// RPCPoint is one measured RPC load point.
type RPCPoint struct {
	Fanout      int     `json:"fanout"`
	OfferedKRPS float64 `json:"offered_krps"`
	GoodputKRPS float64 `json:"goodput_krps"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	P999Us      float64 `json:"p999_us"`
	// StragP99Us is the p99 first-to-last sub-reply join gap.
	StragP99Us float64 `json:"strag_p99_us"`
	Completed  uint64  `json:"completed"`
	Queued     uint64  `json:"queued"`
	Hedges     uint64  `json:"hedges"`
	HedgeWins  uint64  `json:"hedge_wins"`
}

// RPCRow is one NI × topology cell: the fan-out ladder at moderate
// load plus one deep-overload point at the top fan-out.
type RPCRow struct {
	NI       string     `json:"ni"`
	Topology string     `json:"topology"`
	Ladder   []RPCPoint `json:"ladder"`
	Overload RPCPoint   `json:"overload"`
}

// RPCOptions selects what to sweep. Zero values mean the default
// million-client population, no hedging, the taxonomy-corner NIs, and
// both fabrics.
type RPCOptions struct {
	// Clients is the machine-wide population (default RPCSweepClients).
	Clients int
	// ClientZipfS skews per-client request weights.
	ClientZipfS float64
	// Hedge and HedgeAfterCycles configure root-call hedging.
	Hedge            float64
	HedgeAfterCycles int
	Seed             uint64
	NIs              []params.NIKind
	Topos            []params.Topology
	// Progress, when non-nil, is called once per measured point with
	// the cell's "NI/topology" label and the point's fan-out (the
	// overload point reports fan-out as negative). Cells fan out over
	// worker goroutines, so the callback must be goroutine-safe.
	Progress func(cell string, fanout int)
}

// notify reports one measured point.
func (opt *RPCOptions) notify(cell string, fanout int) {
	if opt.Progress != nil {
		opt.Progress(cell, fanout)
	}
}

// RPCSpecFor builds the dcn spec for one sweep point: the options'
// overrides on the default spec, at the given fan-out and think time.
// cnisim rpc uses it too, so a one-off point measures exactly what a
// sweep cell would.
func RPCSpecFor(opt RPCOptions, fanout int, think int) dcn.RPCSpec {
	spec := dcn.DefaultRPCSpec()
	spec.Clients = RPCSweepClients
	if opt.Clients > 0 {
		spec.Clients = opt.Clients
	}
	spec.ThinkCycles = think
	spec.ClientZipfS = opt.ClientZipfS
	spec.Hedge = opt.Hedge
	if opt.HedgeAfterCycles > 0 {
		spec.HedgeAfterCycles = opt.HedgeAfterCycles
	}
	if opt.Seed != 0 {
		spec.Seed = opt.Seed
	}
	spec.Tiers[0].Fanout = fanout
	return spec
}

// rpcMeasure runs one point and condenses the report.
func rpcMeasure(cfg params.Config, spec dcn.RPCSpec) RPCPoint {
	rep, err := dcn.RunRPC(cfg, spec, RPCSweepWarm, RPCSweepMeasure)
	if err != nil {
		panic(err) // sweep specs are constructed, not user input
	}
	q := func(p float64) float64 { return machine.Microseconds(rep.Latency.Quantile(p)) }
	return RPCPoint{
		Fanout:      spec.Tiers[0].Fanout,
		OfferedKRPS: rep.OfferedKRPS,
		GoodputKRPS: rep.GoodputKRPS,
		P50Us:       q(0.50),
		P99Us:       q(0.99),
		P999Us:      q(0.999),
		StragP99Us:  machine.Microseconds(rep.Straggler.Quantile(0.99)),
		Completed:   rep.Completed,
		Queued:      rep.Queued,
		Hedges:      rep.Hedges,
		HedgeWins:   rep.HedgeWins,
	}
}

// rpcSweepOne measures one NI × topology cell.
func rpcSweepOne(opt RPCOptions, ni params.NIKind, topo params.Topology) RPCRow {
	row := RPCRow{NI: ni.String(), Topology: topo.String()}
	cell := row.NI + "/" + row.Topology
	cfg := params.Config{Nodes: SweepNodes, NI: ni, Bus: params.MemoryBus, Topology: topo}
	for _, k := range RPCSweepFanouts {
		row.Ladder = append(row.Ladder, rpcMeasure(cfg, RPCSpecFor(opt, k, RPCSweepThink)))
		opt.notify(cell, k)
	}
	top := RPCSweepFanouts[len(RPCSweepFanouts)-1]
	row.Overload = rpcMeasure(cfg, RPCSpecFor(opt, top, RPCSweepThink/rpcOverloadDiv))
	opt.notify(cell, -top)
	return row
}

// RPCData renders an RPC sweep's machine-readable Data: the summary
// grid plus the full per-cell ladders under Extra.
func RPCData(t *Table, rows []RPCRow) *Data {
	header := []string{"ni", "topology"}
	for _, k := range RPCSweepFanouts {
		header = append(header, fmt.Sprintf("p999_us_k%d", k))
	}
	header = append(header, "p50_us_top", "strag_p99_us_top",
		"overload_offered_krps", "overload_goodput_krps")
	d := &Data{Name: "rpc", Title: t.Title, Header: header, Extra: rows}
	for _, r := range rows {
		row := []string{r.NI, r.Topology}
		for _, pt := range r.Ladder {
			row = append(row, fmt.Sprintf("%.1f", pt.P999Us))
		}
		top := r.Ladder[len(r.Ladder)-1]
		row = append(row,
			fmt.Sprintf("%.1f", top.P50Us),
			fmt.Sprintf("%.1f", top.StragP99Us),
			fmt.Sprintf("%.1f", r.Overload.OfferedKRPS),
			fmt.Sprintf("%.1f", r.Overload.GoodputKRPS))
		d.Rows = append(d.Rows, row)
	}
	return d
}

// RPCSweep measures RPC fan-out tail latency for every requested NI ×
// topology: the fan-out ladder at moderate offered load, then one
// deep-overload point at the top fan-out. Cells are independent
// machines and fan out over the host cores; output is byte-identical
// to a serial run.
func RPCSweep(opt RPCOptions) (*Table, []RPCRow) {
	nis := opt.NIs
	if len(nis) == 0 {
		nis = rpcSweepNIs
	}
	topos := opt.Topos
	if len(topos) == 0 {
		topos = []params.Topology{params.TopoFlat, params.TopoTorus}
	}
	rows := runCells(len(nis)*len(topos), func(i int) RPCRow {
		return rpcSweepOne(opt, nis[i/len(topos)], topos[i%len(topos)])
	})
	spec := RPCSpecFor(opt, RPCSweepFanouts[0], RPCSweepThink)
	t := &Table{
		Title: fmt.Sprintf("RPC fan-out tail at scale: %d clients, think %d cycles (%d nodes, memory bus)",
			spec.Clients, spec.ThinkCycles, SweepNodes),
		Note: fmt.Sprintf("Each root call fans out to k backends (exp service, mean %d cycles) and joins\n"+
			"on the slowest reply; p99.9 vs k is the tail-at-scale cost per NI. strag is the\n"+
			"p99 first-to-last reply gap at k=%d. The overload point offers %dx the ladder's\n"+
			"load against a %d-call in-flight cap per front-end: offered vs goodput KRPS\n"+
			"shows the serving plateau. Latency is coordinated-omission-free (timed from\n"+
			"intended arrival). Histogram quantile error <= 6.25%%.",
			spec.Tiers[0].ServiceCycles, RPCSweepFanouts[len(RPCSweepFanouts)-1],
			rpcOverloadDiv, spec.MaxInflight),
		Header: []string{"NI", "topo",
			"p99.9@k1 (us)", "p99.9@k2", "p99.9@k4", "p99.9@k8",
			"p50@k8", "strag p99@k8", "over offer (krps)", "over good (krps)"},
	}
	for i, r := range rows {
		name := ""
		if i%len(topos) == 0 {
			name = r.NI
		}
		cells := []string{name, r.Topology}
		for _, pt := range r.Ladder {
			cells = append(cells, fmt.Sprintf("%.1f", pt.P999Us))
		}
		top := r.Ladder[len(r.Ladder)-1]
		cells = append(cells,
			fmt.Sprintf("%.1f", top.P50Us),
			fmt.Sprintf("%.1f", top.StragP99Us),
			fmt.Sprintf("%.1f", r.Overload.OfferedKRPS),
			fmt.Sprintf("%.1f", r.Overload.GoodputKRPS))
		t.Rows = append(t.Rows, cells)
	}
	return t, rows
}
