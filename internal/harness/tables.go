package harness

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/params"
)

// Table1 reproduces the paper's Table 1: the NI taxonomy summary.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: Summary of Network Interface Devices",
		Header: []string{"NI/CNI", "Exposed Queue Size", "Queue Pointers", "Home"},
	}
	rows := []struct {
		ni       params.NIKind
		exposed  string
		pointers string
		home     string
	}{
		{params.NI2w, "2 words", "", ""},
		{params.CNI4, "4 cache blocks", "", "device"},
		{params.CNI16Q, "16 cache blocks", "explicit", "device"},
		{params.CNI512Q, "512 cache blocks", "explicit", "device"},
		{params.CNI16Qm, "16 cache blocks", "explicit", "main memory"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.ni.String(), r.exposed, r.pointers, r.home})
	}
	return t
}

// Table2 echoes the timing model (the paper's Table 2), which the
// simulator consumes as input; printing it verifies the model in use.
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: Bus Occupancy for NI and Memory Access (processor cycles)",
		Header: []string{"Operation", "Cache Bus", "Memory Bus", "I/O Bus"},
	}
	t.Rows = [][]string{
		{"Uncached 8-byte load from NI",
			fmt.Sprint(params.UncLoadCacheBus), fmt.Sprint(params.UncLoadMemBus), fmt.Sprint(params.UncLoadIOBus)},
		{"Uncached 8-byte store to NI",
			fmt.Sprint(params.UncStoreCacheBus), fmt.Sprint(params.UncStoreMemBus), fmt.Sprint(params.UncStoreIOBus)},
		{"Cache-to-cache transfer CNI->proc (64B)",
			"", fmt.Sprint(params.BlockMemBus), fmt.Sprint(params.BlockIODevToProc)},
		{"Cache-to-cache transfer proc->CNI (64B)",
			"", fmt.Sprint(params.BlockMemBus), fmt.Sprint(params.BlockIOProcToDev)},
		{"Memory-to-cache transfer (64B)",
			"", fmt.Sprint(params.BlockMemBus), ""},
	}
	return t
}

// Table3 reproduces the paper's Table 3: macrobenchmark summary, with
// this reproduction's scaled inputs.
func Table3() *Table {
	t := &Table{
		Title:  "Table 3: Summary of macrobenchmarks",
		Header: []string{"Benchmark", "Key Communication", "Input Data Set (scaled)"},
	}
	for _, a := range apps.All() {
		t.Rows = append(t.Rows, []string{a.Name(), a.KeyComm(), a.Input()})
	}
	return t
}

// Table4 reproduces the paper's Table 4: the qualitative comparison of
// CNI with other machines' network interfaces.
func Table4() *Table {
	t := &Table{
		Title:  "Table 4: Comparison of CNI with other network interfaces",
		Header: []string{"Network Interface", "Coherence", "Caching", "Uniform Interface"},
	}
	t.Rows = [][]string{
		{"CNI", "Yes", "Yes", "Memory Interface"},
		{"TMC CM-5", "No", "No", "No"},
		{"Typhoon", "Possible", "Possible", "Possible"},
		{"FLASH", "Possible", "Possible", "Possible"},
		{"Meiko CS2", "Possible", "No", "Possible"},
		{"Alewife", "No", "No", "No"},
		{"FUGU", "No", "No", "No"},
		{"StarT-NG", "No", "Maybe", "No"},
		{"AP1000", "No", "Sender", "No"},
		{"T-Zero", "Partial", "Partial", "No"},
		{"SHRIMP", "Yes", "Write Through", "No"},
		{"DI Multicomputer", "No", "No", "Network Interface"},
	}
	return t
}
