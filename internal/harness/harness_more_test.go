package harness

import (
	"testing"
)

func TestSweepQueueSizeMonotone(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	tb := SweepQueueSize()
	t.Log("\n" + tb.String())
	// Bandwidth must not degrade as the queue grows, and must improve
	// substantially from the smallest to the largest size.
	prev := 0.0
	for r := range tb.Rows {
		bw := cell(t, tb, r, 2)
		if bw < prev*0.97 {
			t.Errorf("bandwidth regressed at %s blocks: %.0f after %.0f", tb.Cell(r, 0), bw, prev)
		}
		prev = bw
	}
	first, last := cell(t, tb, 0, 2), cell(t, tb, len(tb.Rows)-1, 2)
	if last < first*1.05 {
		t.Errorf("queue capacity should buy bandwidth: %.0f -> %.0f", first, last)
	}
}

func TestDMAComparisonShape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("dma sweep in -short mode")
	}
	tb := DMAComparison()
	t.Log("\n" + tb.String())
	// Columns: bytes, NI2w RTT, CNI RTT, DMA RTT, NI2w BW, CNI BW, DMA BW.
	// Fine grain: DMA latency is the worst of the three.
	if cell(t, tb, 0, 3) <= cell(t, tb, 0, 1) || cell(t, tb, 0, 3) <= cell(t, tb, 0, 2) {
		t.Error("16B: DMA should have the worst round trip (interrupt cost)")
	}
	// Bulk: DMA beats NI2w on both metrics and closes on the CNI.
	last := len(tb.Rows) - 1
	if cell(t, tb, last, 3) >= cell(t, tb, last, 1) {
		t.Error("4KB: DMA round trip should beat NI2w")
	}
	if cell(t, tb, last, 6) <= cell(t, tb, last, 4) {
		t.Error("4KB: DMA bandwidth should beat NI2w")
	}
	if cell(t, tb, last, 6) < cell(t, tb, last, 5)*0.7 {
		t.Error("4KB: DMA bandwidth should be within 30% of the CNI")
	}
	// The DMA/CNI latency ratio shrinks monotonically with size (the
	// breakeven narrative).
	prev := 1e9
	for r := range tb.Rows {
		ratio := cell(t, tb, r, 3) / cell(t, tb, r, 2)
		if ratio > prev*1.05 {
			t.Errorf("row %s: DMA/CNI ratio %.2f did not shrink", tb.Cell(r, 0), ratio)
		}
		prev = ratio
	}
}

func TestFig7AltShape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("alt sweep in -short mode")
	}
	tb := Fig7Alt()
	t.Log("\n" + tb.String())
	// The cache-bus NI2w bypasses the memory bus entirely, so it can
	// exceed the coherent local-queue bound; the coherent designs
	// cannot by much. Ordering cache > memory > io holds at all sizes.
	for r := range tb.Rows {
		cache := cell(t, tb, r, 1)
		mem := cell(t, tb, r, 2)
		io := cell(t, tb, r, 3)
		if !(cache > mem && mem > io) {
			t.Errorf("row %s: want cache > memory > io, got %.2f %.2f %.2f",
				tb.Cell(r, 0), cache, mem, io)
		}
	}
}

func TestTableCellAndString(t *testing.T) {
	tb := Table1()
	if tb.Cell(0, 0) != "NI2w" {
		t.Errorf("Cell(0,0) = %q", tb.Cell(0, 0))
	}
	s := tb.String()
	if len(s) == 0 || s[len(s)-1] != '\n' {
		t.Error("String should end with a newline")
	}
}
