package harness

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/params"
	"repro/internal/workload"
)

// Load-sweep tuning. The ladder is geometric so one sweep spans the
// two decades between a polled NI's comfortable load and its
// collapse; rungs are identical across NIs and fabrics so rows are
// comparable.
const (
	// SweepNodes/SweepWarm/SweepMeasure are exported so a cnisim
	// --load point measures exactly the machine and windows a sweep
	// rung does.
	SweepNodes    = 16
	SweepWarm     = 20_000 // cycles before the measurement window
	SweepMeasure  = 80_000 // measurement window length
	sweepBaseMBps = 4.0    // per-node offered load on the first rung
	sweepGrowth   = 1.3
	sweepMaxRungs = 12
	// sweepKneeEff defines saturation: the knee is the last rung
	// whose goodput still tracked offered load to within this factor.
	sweepKneeEff = 0.85
	// closedMaxClients caps the closed-loop ladder (clients per node).
	closedMaxClients = 64
	// closedKneeGain: the closed-loop knee is the last doubling that
	// still grew goodput by this factor.
	closedKneeGain = 1.05
)

// LoadsweepBench* pin the "heaviest path" benchmark load point that
// BenchmarkTorusLoadsweep and the benchjson
// torus_loadsweep_events_per_sec canary share: the default sweep's
// machine at the CNI512Q torus saturation knee (the 7th ladder rung).
const (
	LoadsweepBenchNodes       = SweepNodes
	LoadsweepBenchWarm        = SweepWarm
	LoadsweepBenchMeasure     = SweepMeasure
	LoadsweepBenchPerNodeMBps = sweepBaseMBps * sweepGrowth * sweepGrowth *
		sweepGrowth * sweepGrowth * sweepGrowth * sweepGrowth
)

// sweepFracs are the fractions of the saturation offered load at
// which tail latency is reported.
var sweepFracs = [3]float64{0.3, 0.6, 0.9}

// SweepPoint is one measured load point.
type SweepPoint struct {
	// OfferedMBps is the aggregate offered load; for the closed loop
	// it is the measured (self-limited) goodput.
	OfferedMBps float64 `json:"offered_mbps"`
	// GoodputMBps is the aggregate delivered user payload.
	GoodputMBps float64 `json:"goodput_mbps"`
	// Clients is the per-node client count (closed loop only).
	Clients int `json:"clients,omitempty"`
	// Latency percentiles in microseconds (see Report.Latency for
	// the semantics per arrival kind).
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	// Sent/Delivered count user messages over the whole run.
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
}

// SweepRow is one NI × topology sweep: the ladder to saturation plus
// tail-latency measurements at fractions of the saturation load.
type SweepRow struct {
	NI       string `json:"ni"`
	Topology string `json:"topology"`
	// SaturationMBps is the best goodput observed on the ladder.
	SaturationMBps float64 `json:"saturation_mbps"`
	// KneeOfferedMBps is the saturation offered load: the last rung
	// whose goodput tracked offered load (sweepKneeEff); AtFrac is
	// measured at sweepFracs of it.
	KneeOfferedMBps float64 `json:"knee_offered_mbps"`
	// KneeTracked is false when even the ladder's first rung failed
	// the tracking test, i.e. KneeOfferedMBps fell back to the base
	// rung and was never actually sustained.
	KneeTracked bool          `json:"knee_tracked"`
	Ladder      []SweepPoint  `json:"ladder"`
	AtFrac      [3]SweepPoint `json:"at_frac"`
}

// SweepOptions selects what to sweep. Empty NIs/Topos mean the five
// paper NIs plus DMA over both fabrics; a zero Seed keeps the
// default workload's.
type SweepOptions struct {
	Arrival params.ArrivalKind
	// ZipfS, when non-nil, overrides the destination skew (0 =
	// uniform); nil keeps params.DefaultWorkload's hotspot skew, so
	// the zero-value SweepOptions sweeps the default workload.
	ZipfS *float64
	Seed  uint64
	NIs   []params.NIKind
	Topos []params.Topology
	// Progress, when non-nil, is called once per measured load point
	// with the cell's "NI/topology" label and the point's aggregate
	// offered load in MB/s (the self-limited goodput for closed-loop
	// rungs). Cells fan out over worker goroutines, so the callback
	// must be goroutine-safe.
	Progress func(cell string, offeredMBps float64)
}

// notify reports one measured point to the Progress callback.
func (opt *SweepOptions) notify(cell string, offeredMBps float64) {
	if opt.Progress != nil {
		opt.Progress(cell, offeredMBps)
	}
}

// SweepWorkload builds the workload spec for one load point: the
// options' arrival/skew/seed overrides on top of the default
// workload, at the given per-node offered load (open loop) or client
// population (closed loop). cnisim --load uses it too, so a one-off
// point measures exactly the workload a sweep rung would.
func SweepWorkload(opt SweepOptions, perNodeMBps float64, clients int) *params.Workload {
	wl := params.DefaultWorkload()
	wl.Arrival = opt.Arrival
	if opt.ZipfS != nil {
		wl.ZipfS = *opt.ZipfS
	}
	if opt.Seed != 0 {
		wl.Seed = opt.Seed
	}
	wl.OfferedMBps = perNodeMBps
	wl.Clients = clients
	return &wl
}

// measure runs one load point and condenses the report.
func measure(cfg params.Config) SweepPoint {
	rep := workload.Run(cfg, SweepWarm, SweepMeasure)
	q := func(p float64) float64 {
		return machine.Microseconds(rep.Latency.Quantile(p))
	}
	clients := 0
	if cfg.Workload.Arrival == params.ArrivalClosed {
		clients = cfg.Workload.Clients
	}
	return SweepPoint{
		OfferedMBps: rep.OfferedMBps,
		GoodputMBps: rep.GoodputMBps,
		Clients:     clients,
		P50Us:       q(0.50),
		P90Us:       q(0.90),
		P99Us:       q(0.99),
		P999Us:      q(0.999),
		Sent:        rep.Sent,
		Delivered:   rep.Delivered,
	}
}

// sweepOne climbs the ladder for one NI × topology until goodput
// stops tracking offered load, then measures tail latency at
// sweepFracs of the knee.
func sweepOne(opt SweepOptions, ni params.NIKind, topo params.Topology) SweepRow {
	row := SweepRow{NI: ni.String(), Topology: topo.String()}
	cell := row.NI + "/" + row.Topology
	cfg := func(wl *params.Workload) params.Config {
		return params.Config{Nodes: SweepNodes, NI: ni, Bus: params.MemoryBus, Topology: topo, Workload: wl}
	}
	if opt.Arrival == params.ArrivalClosed {
		// Closed loop: double the per-node client count until goodput
		// stops growing; offered load self-limits, so the knee is the
		// smallest population that reaches the plateau.
		prev := 0.0
		kneeClients := 1
		for c := 1; c <= closedMaxClients; c *= 2 {
			pt := measure(cfg(SweepWorkload(opt, 0, c)))
			opt.notify(cell, pt.GoodputMBps)
			row.Ladder = append(row.Ladder, pt)
			if pt.GoodputMBps > row.SaturationMBps {
				row.SaturationMBps = pt.GoodputMBps
			}
			if c > 1 && pt.GoodputMBps < prev*closedKneeGain {
				break
			}
			prev = pt.GoodputMBps
			kneeClients = c
		}
		row.KneeOfferedMBps = row.SaturationMBps
		row.KneeTracked = true
		for i, f := range sweepFracs {
			c := int(f*float64(kneeClients) + 0.5)
			if c < 1 {
				c = 1
			}
			row.AtFrac[i] = measure(cfg(SweepWorkload(opt, 0, c)))
			opt.notify(cell, row.AtFrac[i].GoodputMBps)
		}
		return row
	}
	perNode := sweepBaseMBps
	knee := sweepBaseMBps
	for rung := 0; rung < sweepMaxRungs; rung++ {
		pt := measure(cfg(SweepWorkload(opt, perNode, 0)))
		opt.notify(cell, pt.OfferedMBps)
		row.Ladder = append(row.Ladder, pt)
		if pt.GoodputMBps > row.SaturationMBps {
			row.SaturationMBps = pt.GoodputMBps
		}
		if pt.GoodputMBps < sweepKneeEff*pt.OfferedMBps {
			break
		}
		row.KneeTracked = true
		knee = perNode
		perNode *= sweepGrowth
	}
	row.KneeOfferedMBps = knee * SweepNodes
	for i, f := range sweepFracs {
		row.AtFrac[i] = measure(cfg(SweepWorkload(opt, f*knee, 0)))
		opt.notify(cell, row.AtFrac[i].OfferedMBps)
	}
	return row
}

// SweepData renders a sweep's machine-readable Data: a summary grid
// with stable snake_case column names (the CSV export's schema) and
// the full per-NI ladders under Extra. The name is set here because
// cnisim's parameterised loadsweep path builds this Data without
// going through the registry (whose stamp would agree anyway).
func SweepData(t *Table, rows []SweepRow) *Data {
	d := &Data{
		Name:  "loadsweep",
		Title: t.Title,
		Header: []string{"ni", "topology", "saturation_mbps", "knee_offered_mbps",
			"p50_us_30", "p99_us_30", "p999_us_30",
			"p50_us_60", "p99_us_60", "p999_us_60",
			"p50_us_90", "p99_us_90", "p999_us_90"},
		Extra: rows,
	}
	for _, r := range rows {
		row := []string{r.NI, r.Topology,
			fmt.Sprintf("%.1f", r.SaturationMBps), fmt.Sprintf("%.1f", r.KneeOfferedMBps)}
		for _, pt := range r.AtFrac {
			row = append(row,
				fmt.Sprintf("%.1f", pt.P50Us),
				fmt.Sprintf("%.1f", pt.P99Us),
				fmt.Sprintf("%.1f", pt.P999Us))
		}
		d.Rows = append(d.Rows, row)
	}
	return d
}

// LoadSweep runs the load sweep for every requested NI × topology and
// renders the table; the rows carry the machine-readable results
// (JSON/CSV in cmd/cnisim). Each cell is an independent machine, so
// rows fan out over the host cores; output is byte-identical to a
// serial run.
func LoadSweep(opt SweepOptions) (*Table, []SweepRow) {
	nis := opt.NIs
	if len(nis) == 0 {
		nis = append(append([]params.NIKind{}, Fig8NIsMemory...), params.DMA)
	}
	topos := opt.Topos
	if len(topos) == 0 {
		topos = []params.Topology{params.TopoFlat, params.TopoTorus}
	}
	wl := SweepWorkload(opt, 0, 0)
	rows := runCells(len(nis)*len(topos), func(i int) SweepRow {
		return sweepOne(opt, nis[i/len(topos)], topos[i%len(topos)])
	})
	note := fmt.Sprintf("Offered load climbs a geometric ladder until goodput stops tracking it\n"+
		"(< %.0f%% delivered); sat is the best goodput, knee the saturation offered\n"+
		"load, and latency percentiles (end-to-end, coordinated-omission-free) are\n"+
		"measured at %.0f/%.0f/%.0f%% of the knee. Histogram quantile error <= 6.25%%.",
		100*sweepKneeEff, 100*sweepFracs[0], 100*sweepFracs[1], 100*sweepFracs[2])
	if opt.Arrival == params.ArrivalClosed {
		note = fmt.Sprintf("The per-node client population doubles until goodput stops growing (< %.0f%%\n"+
			"gain per doubling); sat = knee is the plateau goodput, and request/reply\n"+
			"latency percentiles are measured at %.0f/%.0f/%.0f%% of the knee's client\n"+
			"count. Histogram quantile error <= 6.25%%.",
			100*(closedKneeGain-1), 100*sweepFracs[0], 100*sweepFracs[1], 100*sweepFracs[2])
	}
	t := &Table{
		Title: fmt.Sprintf("Load sweep: %v arrivals, Zipf(s=%.2f) destinations (%d nodes, memory bus)",
			wl.Arrival, wl.ZipfS, SweepNodes),
		Note: note,
		Header: []string{"NI", "topo", "sat MB/s", "knee MB/s",
			"p50@30 (us)", "p99@30", "p99.9@30",
			"p50@60", "p99@60", "p99.9@60",
			"p50@90", "p99@90", "p99.9@90"},
	}
	for i, r := range rows {
		name := ""
		if i%len(topos) == 0 {
			name = r.NI
		}
		cells := []string{name, r.Topology,
			fmt.Sprintf("%.1f", r.SaturationMBps),
			fmt.Sprintf("%.1f", r.KneeOfferedMBps)}
		for _, pt := range r.AtFrac {
			cells = append(cells,
				fmt.Sprintf("%.1f", pt.P50Us),
				fmt.Sprintf("%.1f", pt.P99Us),
				fmt.Sprintf("%.1f", pt.P999Us))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, rows
}
