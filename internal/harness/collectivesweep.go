package harness

import (
	"fmt"

	"repro/internal/dcn"
	"repro/internal/machine"
	"repro/internal/params"
)

// CollectiveBytes is the default per-node contribution (the vector
// each rank reduces / the volume each rank exchanges).
const CollectiveBytes = 64 * 1024

// collectiveNIs mirrors the RPC sweep's taxonomy corners.
var collectiveNIs = []params.NIKind{params.NI2w, params.CNI4, params.CNI512Q, params.DMA}

// CollectiveCell is one schedule's result within a row.
type CollectiveCell struct {
	Schedule         string  `json:"schedule"`
	Steps            int     `json:"steps"`
	CompletionUs     float64 `json:"completion_us"`
	MaxSkewCycles    uint64  `json:"max_skew_cycles"`
	MovedBytes       uint64  `json:"moved_bytes"`
	CompletionCycles uint64  `json:"completion_cycles"`
}

// CollectiveRow is one NI × topology cell: every schedule's
// completion time and straggler skew on that machine.
type CollectiveRow struct {
	NI        string           `json:"ni"`
	Topology  string           `json:"topology"`
	Bytes     int              `json:"bytes"`
	Schedules []CollectiveCell `json:"schedules"`
}

// CollectiveOptions selects what to sweep. Zero values mean the
// default 64KiB contribution, the taxonomy-corner NIs, and both
// fabrics.
type CollectiveOptions struct {
	Bytes int
	NIs   []params.NIKind
	Topos []params.Topology
	// Progress, when non-nil, is called once per measured schedule
	// with the cell's "NI/topology" label and the schedule name.
	// Cells fan out over worker goroutines, so the callback must be
	// goroutine-safe.
	Progress func(cell, schedule string)
}

// notify reports one measured schedule.
func (opt *CollectiveOptions) notify(cell, schedule string) {
	if opt.Progress != nil {
		opt.Progress(cell, schedule)
	}
}

// collectiveOne runs every schedule on one NI × topology machine
// configuration (a fresh machine per schedule — collectives measure a
// quiet fabric).
func collectiveOne(opt CollectiveOptions, ni params.NIKind, topo params.Topology) CollectiveRow {
	bytes := opt.Bytes
	if bytes <= 0 {
		bytes = CollectiveBytes
	}
	row := CollectiveRow{NI: ni.String(), Topology: topo.String(), Bytes: bytes}
	cell := row.NI + "/" + row.Topology
	cfg := params.Config{Nodes: SweepNodes, NI: ni, Bus: params.MemoryBus, Topology: topo}
	for _, sch := range dcn.Schedules() {
		rep, err := dcn.RunCollective(cfg, dcn.CollectiveSpec{Schedule: sch, Bytes: bytes})
		if err != nil {
			panic(err) // sweep specs are constructed, not user input
		}
		row.Schedules = append(row.Schedules, CollectiveCell{
			Schedule:         string(sch),
			Steps:            rep.Steps,
			CompletionUs:     machine.Microseconds(rep.CompletionCycles),
			CompletionCycles: uint64(rep.CompletionCycles),
			MaxSkewCycles:    uint64(rep.MaxSkew),
			MovedBytes:       rep.MovedBytes,
		})
		opt.notify(cell, string(sch))
	}
	return row
}

// CollectiveData renders the sweep's machine-readable Data: the
// summary grid plus full per-cell schedule reports under Extra.
func CollectiveData(t *Table, rows []CollectiveRow) *Data {
	header := []string{"ni", "topology"}
	for _, sch := range dcn.Schedules() {
		header = append(header,
			fmt.Sprintf("%s_completion_us", sch),
			fmt.Sprintf("%s_max_skew_cycles", sch))
	}
	d := &Data{Name: "collective", Title: t.Title, Header: header, Extra: rows}
	for _, r := range rows {
		row := []string{r.NI, r.Topology}
		for _, c := range r.Schedules {
			row = append(row, fmt.Sprintf("%.1f", c.CompletionUs), fmt.Sprintf("%d", c.MaxSkewCycles))
		}
		d.Rows = append(d.Rows, row)
	}
	return d
}

// CollectiveSweep measures every collective schedule for every
// requested NI × topology. Cells fan out over the host cores; output
// is byte-identical to a serial run.
func CollectiveSweep(opt CollectiveOptions) (*Table, []CollectiveRow) {
	nis := opt.NIs
	if len(nis) == 0 {
		nis = collectiveNIs
	}
	topos := opt.Topos
	if len(topos) == 0 {
		topos = []params.Topology{params.TopoFlat, params.TopoTorus}
	}
	bytes := opt.Bytes
	if bytes <= 0 {
		bytes = CollectiveBytes
	}
	rows := runCells(len(nis)*len(topos), func(i int) CollectiveRow {
		return collectiveOne(opt, nis[i/len(topos)], topos[i%len(topos)])
	})
	t := &Table{
		Title: fmt.Sprintf("Collective schedules: %d KiB per node (%d nodes, memory bus)",
			bytes/1024, SweepNodes),
		Note: "Completion is start to the last node's finish; skew is the largest per-step\n" +
			"spread between the fastest and slowest participant (the schedule's straggler\n" +
			"exposure). ring moves 2(n-1) chunks of 1/n, rd-allreduce log2(n) full vectors\n" +
			"(power-of-two only), alltoall n-1 pairwise chunks, broadcast a binomial tree.",
		Header: []string{"NI", "topo",
			"ring done (us)", "ring skew (cyc)",
			"rd done", "rd skew",
			"a2a done", "a2a skew",
			"bcast done", "bcast skew"},
	}
	for i, r := range rows {
		name := ""
		if i%len(topos) == 0 {
			name = r.NI
		}
		cells := []string{name, r.Topology}
		for _, c := range r.Schedules {
			cells = append(cells, fmt.Sprintf("%.1f", c.CompletionUs), fmt.Sprintf("%d", c.MaxSkewCycles))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, rows
}
