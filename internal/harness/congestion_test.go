package harness

import (
	"strconv"
	"testing"
)

// TestCongestionTable checks the congestion experiment's shape and
// its headline contract: the flat probe column is identical at every
// load level for every NI, and each NI's torus hotspot column is
// strictly larger at heavy load than unloaded.
func TestCongestionTable(t *testing.T) {
	tb := Congestion()
	wantRows := len(Fig8NIsMemory) * len(congestionLoads)
	if len(tb.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), wantRows)
	}
	if len(tb.Header) != 7 {
		t.Fatalf("header width = %d, want 7", len(tb.Header))
	}
	cell := func(r, c int) float64 {
		v, err := strconv.ParseFloat(tb.Cell(r, c), 64)
		if err != nil {
			t.Fatalf("cell (%d,%d) %q not numeric: %v", r, c, tb.Cell(r, c), err)
		}
		return v
	}
	per := len(congestionLoads)
	for ni := 0; ni < len(Fig8NIsMemory); ni++ {
		base := ni * per
		// Flat probe RTT (col 2): load-independent, to the rendered digit.
		for l := 1; l < per; l++ {
			if tb.Cell(base+l, 2) != tb.Cell(base, 2) {
				t.Errorf("%s: flat probe RTT varies with load: %s vs %s",
					Fig8NIsMemory[ni], tb.Cell(base+l, 2), tb.Cell(base, 2))
			}
		}
		// Torus hotspot RTT (col 3): heavy load strictly above unloaded.
		if !(cell(base+per-1, 3) > cell(base, 3)) {
			t.Errorf("%s: torus hotspot RTT did not grow under load: %s -> %s",
				Fig8NIsMemory[ni], tb.Cell(base, 3), tb.Cell(base+per-1, 3))
		}
	}
}
