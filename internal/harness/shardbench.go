package harness

// Shard4kBench* pin the sharded-engine benchmark point that the
// benchjson events_per_sec_4k_nodes canary measures: a uniform-
// destination open-loop workload on a 4096-node torus, offered far
// past saturation (64 MB/s per node) so in-flight frames, credit
// stalls, and retries dominate the event mix — the regime where the
// machine-wide serial heap is deepest and per-shard heaps plus
// shard-local state pay. Destinations are uniform (ZipfS = 0) rather
// than the default hotspot skew: a hotspot caps deliveries at one
// node's links and leaves idle polling as the dominant event, which
// measures the poll loop, not the fabric at scale. Shards = 64 puts
// one 64-node torus row per shard, so X-dimension hops stay
// shard-local and only Y-dimension hops cross.
const (
	Shard4kBenchNodes       = 4096
	Shard4kBenchShards      = 64
	Shard4kBenchWarm        = 2_000  // cycles before the measurement window
	Shard4kBenchMeasure     = 10_000 // measurement window length
	Shard4kBenchPerNodeMBps = 64.0
)
