package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/params"
)

var update = flag.Bool("update", false, "rewrite the golden table files from the current model")

// goldenTables lists the fast experiments (static tables plus the
// 2-node microbenchmark figures) whose full rendered text is pinned.
// The determinism contract (DESIGN.md §6) needs more than the two
// scalar canaries: a silent drift in any one cell must fail CI, not
// hide inside an unchanged table shape.
func goldenTables() map[string]func() *Table {
	return map[string]func() *Table{
		"table1":      Table1,
		"table2":      Table2,
		"table3":      Table3,
		"table4":      Table4,
		"fig6-memory": func() *Table { return Fig6(params.MemoryBus) },
		"fig6-io":     func() *Table { return Fig6(params.IOBus) },
		"fig6-alt":    Fig6Alt,
		"fig7-memory": func() *Table { return Fig7(params.MemoryBus) },
		"fig7-io":     func() *Table { return Fig7(params.IOBus) },
		"fig7-alt":    Fig7Alt,
		// The full load-sweep table (per NI × topology ladders to
		// saturation): pins the workload/telemetry subsystem — the
		// generators' seeded schedules, the histogram percentiles, and
		// the knee detection — to the byte.
		"loadsweep": func() *Table { t, _ := LoadSweep(SweepOptions{}); return t },
		// The datacenter pack's two tables: the RPC fan-out tail ladder
		// (straggler join, overload point) and the collective schedule
		// grid. Pinning both fixes the dcn subsystem's arrival model,
		// join/hedge logic, and schedule step maths to the byte.
		"rpc":        func() *Table { t, _ := RPCSweep(RPCOptions{}); return t },
		"collective": func() *Table { t, _ := CollectiveSweep(CollectiveOptions{}); return t },
	}
}

func TestGoldenTables(t *testing.T) {
	for name, fn := range goldenTables() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			got := fn().String()
			path := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with `go test ./internal/harness -run TestGoldenTables -update`): %v", err)
			}
			if got == string(want) {
				return
			}
			gotLines := strings.Split(got, "\n")
			wantLines := strings.Split(string(want), "\n")
			for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
				var g, w string
				if i < len(gotLines) {
					g = gotLines[i]
				}
				if i < len(wantLines) {
					w = wantLines[i]
				}
				if g != w {
					t.Fatalf("%s drifted from golden at line %d:\n  got:  %q\n  want: %q\n(a deliberate model change must regenerate with -update)", name, i+1, g, w)
				}
			}
		})
	}
}
