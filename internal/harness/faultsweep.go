package harness

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/workload"
)

// Fault-sweep tuning. Every NI runs the same drop-rate ladder at the
// same fixed offered load, so rows isolate how each design's recovery
// behaves — not how close to saturation it started.
const (
	// FaultWarm/FaultMeasure bound one fault point's run. The window
	// is longer than a load-sweep rung so the rare-drop rungs see
	// enough frames for the ladder to resolve.
	FaultWarm    = SweepWarm
	FaultMeasure = 200_000
	// FaultPerNodeMBps is the fixed per-node offered load — twice the
	// load sweep's base rung, still comfortably under every NI's knee,
	// so goodput loss on a rung is attributable to the faults.
	FaultPerNodeMBps = 8.0
	// faultKneeEff defines the graceful-degradation knee: the largest
	// drop rate whose goodput still reaches this fraction of the
	// zero-drop rung's.
	faultKneeEff = 0.90
)

// FaultLadder is the default drop-rate ladder.
var FaultLadder = []float64{0, 1e-5, 1e-4, 1e-3, 1e-2}

// FaultPoint is one measured (NI, topology, drop-rate) cell.
type FaultPoint struct {
	DropRate    float64 `json:"drop_rate"`
	OfferedMBps float64 `json:"offered_mbps"`
	GoodputMBps float64 `json:"goodput_mbps"`
	// Latency percentiles in microseconds (end-to-end, coordinated-
	// omission-free; retransmit delays land in the tail).
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	// Sent/Delivered count user messages over the whole run; Delivered
	// plus transport-declared-dead frames accounts for every loss.
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	// Fault and recovery telemetry (network frames, whole run).
	Drops         uint64 `json:"drops"`
	Retransmits   uint64 `json:"retransmits"`
	DupSuppressed uint64 `json:"dup_suppressed"`
	Dead          uint64 `json:"dead"`
}

// FaultRow is one NI × topology ladder.
type FaultRow struct {
	NI       string `json:"ni"`
	Topology string `json:"topology"`
	// KneeDropRate is the largest ladder rate whose goodput held
	// faultKneeEff of the zero-drop rung's — the graceful-degradation
	// knee.
	KneeDropRate float64      `json:"knee_drop_rate"`
	Ladder       []FaultPoint `json:"ladder"`
}

// FaultOptions selects what to sweep. Zero-value fields take the
// defaults: the full ladder, no degrade window, fault seed 1, the
// five paper NIs plus DMA over both fabrics.
type FaultOptions struct {
	// Seed drives the fault RNG only; the workload keeps its own
	// default seed, so every rung offers identical traffic.
	Seed uint64
	// Drops overrides the drop-rate ladder.
	Drops []float64
	// DegradeX > 1 opens a mid-measurement degraded-link window
	// (latency ×DegradeX, bandwidth ÷DegradeX) over the middle half of
	// the measurement window on every rung.
	DegradeX float64
	NIs      []params.NIKind
	Topos    []params.Topology
	// Progress, when non-nil, is called once per measured rung with
	// the cell's "NI/topology" label and the rung's injected drop
	// rate. Cells fan out over worker goroutines, so the callback must
	// be goroutine-safe.
	Progress func(cell string, dropRate float64)
}

// FaultConfig builds the machine configuration for one fault point —
// cnisim's parameterised path uses it too, so a one-off point
// measures exactly what a sweep cell does.
func FaultConfig(opt FaultOptions, ni params.NIKind, topo params.Topology, drop float64) params.Config {
	f := params.Faults{Seed: opt.Seed, DropProb: drop, Transport: true}
	if opt.DegradeX > 1 {
		f.DegradeFrom = FaultWarm + FaultMeasure/4
		f.DegradeUntil = FaultWarm + 3*FaultMeasure/4
		f.DegradeLatencyX = opt.DegradeX
		f.DegradeBandwidthX = opt.DegradeX
	}
	return params.Config{
		Nodes: SweepNodes, NI: ni, Bus: params.MemoryBus, Topology: topo,
		Workload: SweepWorkload(SweepOptions{}, FaultPerNodeMBps, 0),
		Faults:   f,
	}
}

// measureFault runs one fault point and condenses the report.
func measureFault(cfg params.Config, drop float64) FaultPoint {
	rep := workload.Run(cfg, FaultWarm, FaultMeasure)
	q := func(p float64) float64 {
		return machine.Microseconds(rep.Latency.Quantile(p))
	}
	return FaultPoint{
		DropRate:      drop,
		OfferedMBps:   rep.OfferedMBps,
		GoodputMBps:   rep.GoodputMBps,
		P50Us:         q(0.50),
		P99Us:         q(0.99),
		P999Us:        q(0.999),
		Sent:          rep.Sent,
		Delivered:     rep.Delivered,
		Drops:         rep.Drops,
		Retransmits:   rep.Retransmits,
		DupSuppressed: rep.DupSuppressed,
		Dead:          rep.Dead,
	}
}

// faultSweepOne climbs the drop ladder for one NI × topology.
func faultSweepOne(opt FaultOptions, ladder []float64, ni params.NIKind, topo params.Topology) FaultRow {
	row := FaultRow{NI: ni.String(), Topology: topo.String(), KneeDropRate: ladder[0]}
	for _, drop := range ladder {
		row.Ladder = append(row.Ladder, measureFault(FaultConfig(opt, ni, topo, drop), drop))
		if opt.Progress != nil {
			opt.Progress(row.NI+"/"+row.Topology, drop)
		}
	}
	base := row.Ladder[0].GoodputMBps
	for _, pt := range row.Ladder {
		if pt.GoodputMBps >= faultKneeEff*base {
			row.KneeDropRate = pt.DropRate
		}
	}
	return row
}

// FaultData renders a fault sweep's machine-readable Data: a summary
// grid with per-rung goodput and p99.9 columns (the CSV schema) and
// the full ladders under Extra.
func FaultData(t *Table, ladder []float64, rows []FaultRow) *Data {
	d := &Data{
		Name:   "faultsweep",
		Title:  t.Title,
		Header: []string{"ni", "topology", "knee_drop_rate"},
		Extra:  rows,
	}
	for _, drop := range ladder {
		d.Header = append(d.Header,
			fmt.Sprintf("goodput_mbps@%g", drop), fmt.Sprintf("p999_us@%g", drop))
	}
	for _, r := range rows {
		row := []string{r.NI, r.Topology, fmt.Sprintf("%g", r.KneeDropRate)}
		for _, pt := range r.Ladder {
			row = append(row, fmt.Sprintf("%.1f", pt.GoodputMBps), fmt.Sprintf("%.1f", pt.P999Us))
		}
		d.Rows = append(d.Rows, row)
	}
	return d
}

// FaultSweep runs the drop-rate ladder for every requested NI ×
// topology with the reliable transport engaged on every rung
// (including drop 0, so the ladder isolates fault impact from the
// transport's own overhead). Cells fan out over host cores; output is
// byte-identical to a serial run.
func FaultSweep(opt FaultOptions) (*Table, []FaultRow) {
	nis := opt.NIs
	if len(nis) == 0 {
		nis = append(append([]params.NIKind{}, Fig8NIsMemory...), params.DMA)
	}
	topos := opt.Topos
	if len(topos) == 0 {
		topos = []params.Topology{params.TopoFlat, params.TopoTorus}
	}
	ladder := opt.Drops
	if len(ladder) == 0 {
		ladder = FaultLadder
	}
	rows := runCells(len(nis)*len(topos), func(i int) FaultRow {
		return faultSweepOne(opt, ladder, nis[i/len(topos)], topos[i%len(topos)])
	})
	title := fmt.Sprintf("Fault sweep: goodput and tail latency vs drop rate (%d nodes, %.0f MB/s per node, memory bus)",
		SweepNodes, FaultPerNodeMBps)
	if opt.DegradeX > 1 {
		title += fmt.Sprintf(", mid-run links degraded x%g", opt.DegradeX)
	}
	t := &Table{
		Title: title,
		Note: fmt.Sprintf("Every rung injects seeded per-message drops at the fabric edge; the\n"+
			"reliable transport (seq+ack, timeout retransmit, %dx backoff, budget %d)\n"+
			"recovers them, so goodput loss and tail growth measure recovery cost.\n"+
			"The knee is the largest rate holding %.0f%% of the zero-drop goodput.\n"+
			"Fault seed %d; identical seeds reproduce byte-identical sweeps.",
			msg.RelRetxBackoff, msg.RelRetxBudget, 100*faultKneeEff, opt.Seed),
		Header: []string{"NI", "topo", "knee"},
	}
	for _, drop := range ladder {
		t.Header = append(t.Header,
			fmt.Sprintf("gput@%g", drop), fmt.Sprintf("p99.9@%g", drop))
	}
	for i, r := range rows {
		name := ""
		if i%len(topos) == 0 {
			name = r.NI
		}
		cells := []string{name, r.Topology, fmt.Sprintf("%g", r.KneeDropRate)}
		for _, pt := range r.Ladder {
			cells = append(cells, fmt.Sprintf("%.1f", pt.GoodputMBps), fmt.Sprintf("%.1f", pt.P999Us))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, rows
}
