package harness

import (
	"strconv"
	"testing"

	"repro/internal/params"
)

// TestLoadSweepTorusSaturatesBelowFlat pins the subsystem's headline
// result for the Zipf-hotspot workload: the CQ flagship saturates at
// a strictly lower offered load on the torus than on the paper's
// contention-free flat network, because converging hotspot flows
// queue on shared links before the hot node's NI becomes the limit.
func TestLoadSweepTorusSaturatesBelowFlat(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("load sweep in -short mode")
	}
	_, rows := LoadSweep(SweepOptions{NIs: []params.NIKind{params.CNI512Q}})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want flat+torus", len(rows))
	}
	flat, torus := rows[0], rows[1]
	if flat.Topology != "flat" || torus.Topology != "torus" {
		t.Fatalf("row order: %s, %s", flat.Topology, torus.Topology)
	}
	if !(torus.KneeOfferedMBps < flat.KneeOfferedMBps) {
		t.Errorf("torus knee %.1f MB/s not strictly below flat knee %.1f MB/s",
			torus.KneeOfferedMBps, flat.KneeOfferedMBps)
	}
	if !(torus.SaturationMBps < flat.SaturationMBps) {
		t.Errorf("torus saturation %.1f MB/s not strictly below flat %.1f MB/s",
			torus.SaturationMBps, flat.SaturationMBps)
	}
	// Tail latency at matched relative load (90% of each fabric's own
	// knee) is worse on the torus: link queueing is extra delay the
	// flat model cannot express.
	if !(torus.AtFrac[2].P99Us > flat.AtFrac[2].P99Us) {
		t.Errorf("torus p99@90 %.1f us should exceed flat's %.1f us",
			torus.AtFrac[2].P99Us, flat.AtFrac[2].P99Us)
	}
}

// TestLoadSweepSerialParallelIdentical extends PR 1's parallel-harness
// contract to the new table: fanning rows out over host cores must be
// byte-identical to a serial run.
func TestLoadSweepSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("load sweep in -short mode")
	}
	opt := SweepOptions{NIs: []params.NIKind{params.CNI16Q}}
	par, _ := LoadSweep(opt)
	Serial = true
	ser, _ := LoadSweep(opt)
	Serial = false
	if par.String() != ser.String() {
		t.Fatalf("parallel and serial sweeps differ:\n--- parallel\n%s--- serial\n%s", par.String(), ser.String())
	}
}

// TestLoadSweepShape checks the ladder and table invariants on a
// cheap single-NI sweep.
func TestLoadSweepShape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("load sweep in -short mode")
	}
	tb, rows := LoadSweep(SweepOptions{NIs: []params.NIKind{params.CNI4}, Topos: []params.Topology{params.TopoFlat}})
	if len(tb.Rows) != 1 || len(rows) != 1 {
		t.Fatalf("want one row, got %d/%d", len(tb.Rows), len(rows))
	}
	if len(tb.Header) != 13 {
		t.Fatalf("header width = %d, want 13", len(tb.Header))
	}
	r := rows[0]
	if len(r.Ladder) < 2 {
		t.Fatalf("ladder has %d rungs", len(r.Ladder))
	}
	// Ladder rungs climb geometrically and the knee is one of them.
	for i := 1; i < len(r.Ladder); i++ {
		if !(r.Ladder[i].OfferedMBps > r.Ladder[i-1].OfferedMBps) {
			t.Errorf("ladder not increasing at rung %d", i)
		}
	}
	if r.KneeOfferedMBps <= 0 || r.SaturationMBps <= 0 {
		t.Error("knee and saturation must be positive")
	}
	if !r.KneeTracked {
		t.Error("CNI4/flat must sustain at least the base rung")
	}
	// Every AtFrac point carries latency percentiles in order.
	for i, pt := range r.AtFrac {
		if !(pt.P50Us <= pt.P90Us && pt.P90Us <= pt.P99Us && pt.P99Us <= pt.P999Us) {
			t.Errorf("frac %d: percentiles out of order: %+v", i, pt)
		}
		if pt.Delivered == 0 {
			t.Errorf("frac %d: no traffic delivered", i)
		}
	}
	// Rendered cells are numeric.
	for c := 2; c < len(tb.Header); c++ {
		if _, err := strconv.ParseFloat(tb.Cell(0, c), 64); err != nil {
			t.Errorf("cell %d %q not numeric: %v", c, tb.Cell(0, c), err)
		}
	}
}

// TestLoadSweepClosedLoop: the closed-loop ladder reaches a plateau
// and reports it as saturation.
func TestLoadSweepClosedLoop(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("load sweep in -short mode")
	}
	_, rows := LoadSweep(SweepOptions{Arrival: params.ArrivalClosed,
		NIs: []params.NIKind{params.CNI512Q}, Topos: []params.Topology{params.TopoFlat}})
	r := rows[0]
	if r.SaturationMBps <= 0 || r.KneeOfferedMBps != r.SaturationMBps {
		t.Errorf("closed-loop saturation should be the plateau goodput: %+v", r)
	}
	if len(r.Ladder) < 2 {
		t.Errorf("closed ladder has %d rungs", len(r.Ladder))
	}
	for i, pt := range r.Ladder {
		if pt.Clients == 0 {
			t.Errorf("rung %d: missing client count", i)
		}
	}
}
