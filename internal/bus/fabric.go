package bus

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/sim"
)

// Region describes one range of the node's physical address space:
// who its home agent is, which bus the home sits on, and whether the
// range may be cached.
type Region struct {
	Name     string
	Base     uint64
	Size     uint64
	Home     Agent
	Loc      params.BusKind
	Cachable bool
}

// Contains reports whether addr falls in the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// postedWrite is an uncached store buffered in the I/O bridge.
type postedWrite struct {
	dev Device
	reg uint64
	val uint64
}

// Fabric is a node's bus complex: the memory bus, an optional I/O bus
// behind a bridge, and the address map. All processor-, cache-, and
// device-initiated traffic flows through it.
//
// Deadlock-freedom: crossing transactions always acquire the memory
// bus before the I/O bus. The paper's bridge instead NACKs the I/O
// side on simultaneous initiation with a fairness guarantee (§4.1);
// the fixed lock order is an equivalent deterministic discipline that
// preserves the same contention behaviour (both buses are held for
// the duration of blocking crossing reads; see DESIGN.md).
type Fabric struct {
	eng *sim.Engine

	Mem *Bus
	IO  *Bus // nil when the node has no I/O-bus devices

	regions []Region
	loc     map[Agent]params.BusKind

	// Interned counters for the transaction hot path: one per
	// transaction kind, plus per-location uncached access counts.
	txCount  [UP + 1]*sim.Counter
	uncLoad  [params.IOBus + 1]*sim.Counter
	uncStore [params.IOBus + 1]*sim.Counter

	// I/O bridge posted-write queue (paper: "the bridge buffers writes
	// and coherent invalidations, but blocks on reads").
	bridgeQ     sim.FIFO[postedWrite]
	bridgeCond  *sim.Cond // signalled when bridgeQ gains an entry
	bridgeSpace *sim.Cond // signalled when bridgeQ frees an entry

	// txFree recycles transaction boxes: the Tx escapes through the
	// SnoopTx interface call, so without a free list every coherent
	// transaction costs one heap allocation (the steady-state alloc
	// pin fails loudly). Depth equals the most transactions ever
	// simultaneously in flight on this node's buses.
	txFree []*Tx
}

// getTx pops a recycled Tx box (or allocates the pool's next slot)
// and fills it with tx.
func (f *Fabric) getTx(tx Tx) *Tx {
	n := len(f.txFree)
	if n == 0 {
		t := new(Tx)
		*t = tx
		return t
	}
	t := f.txFree[n-1]
	f.txFree = f.txFree[:n-1]
	*t = tx
	return t
}

// putTx returns a Tx box to the free list. The box must not be
// referenced after the call; snoopers see it only during snoopAll.
func (f *Fabric) putTx(t *Tx) {
	t.Initiator = nil // drop the agent reference while pooled
	f.txFree = append(f.txFree, t)
}

// NewFabric builds the bus complex. withIO adds the 50 MHz I/O bus and
// its bridge drain process. name prefixes stats keys (e.g. "node3").
func NewFabric(e *sim.Engine, st *sim.Stats, name string, withIO bool) *Fabric {
	f := &Fabric{
		eng: e,
		Mem: New(e, st, params.MemoryBus, name+".membus"),
		loc: make(map[Agent]params.BusKind),
	}
	for k := CR; k <= UP; k++ {
		f.txCount[k] = st.Counter("tx." + k.String())
	}
	for _, l := range []params.BusKind{params.CacheBus, params.MemoryBus, params.IOBus} {
		f.uncLoad[l] = st.Counter("unc.load." + l.String())
		f.uncStore[l] = st.Counter("unc.store." + l.String())
	}
	if withIO {
		f.IO = New(e, st, params.IOBus, name+".iobus")
		f.bridgeCond = sim.NewCond(e)
		f.bridgeSpace = sim.NewCond(e)
		e.Spawn(name+".bridge", f.bridgeDrain)
	}
	return f
}

// AddRegion installs an address range in the map.
func (f *Fabric) AddRegion(r Region) {
	for i := range f.regions {
		o := &f.regions[i]
		if r.Base < o.Base+o.Size && o.Base < r.Base+r.Size {
			panic(fmt.Sprintf("bus: region %q overlaps %q", r.Name, o.Name))
		}
	}
	f.regions = append(f.regions, r)
}

// Attach registers an agent as a snooper on the bus at loc.
func (f *Fabric) Attach(a Agent, loc params.BusKind) {
	f.loc[a] = loc
	switch loc {
	case params.MemoryBus:
		f.Mem.Attach(a)
	case params.IOBus:
		if f.IO == nil {
			panic("bus: attaching to absent I/O bus")
		}
		f.IO.Attach(a)
	case params.CacheBus:
		// Cache-bus devices are not snoopers; accesses bypass buses.
	default:
		panic("bus: bad location")
	}
}

// Lookup resolves addr to its region; it panics on unmapped addresses,
// which always indicate a simulator bug.
func (f *Fabric) Lookup(addr uint64) *Region {
	for i := range f.regions {
		if f.regions[i].Contains(addr) {
			return &f.regions[i]
		}
	}
	panic(fmt.Sprintf("bus: unmapped address %#x", addr))
}

// locOf returns the bus an agent is attached to.
func (f *Fabric) locOf(a Agent) params.BusKind {
	l, ok := f.loc[a]
	if !ok {
		panic("bus: agent not attached: " + a.AgentName())
	}
	return l
}

// Do runs one coherent transaction to completion: arbitration, snoop,
// data transfer, release. It blocks the calling process for the
// transaction's duration and returns the snoop summary.
func (f *Fabric) Do(p *sim.Process, tx Tx) Result {
	region := f.Lookup(tx.Addr)
	if !region.Cachable && tx.Kind != CI {
		panic(fmt.Sprintf("bus: coherent %v on uncachable region %q", tx.Kind, region.Name))
	}
	initLoc := f.locOf(tx.Initiator)
	crossing := initLoc == params.IOBus || region.Loc == params.IOBus

	// The snoop phase hands the Tx across the SnoopTx interface, which
	// forces it to the heap; route it through the free list so the box
	// is recycled instead of allocated per transaction.
	t := f.getTx(tx)

	f.Mem.Acquire(p)
	if crossing {
		f.IO.Acquire(p)
	}

	// Snoop phase: every agent on every involved bus sees the
	// transaction and updates its state before data moves.
	home := region.Home
	shared, supplier := f.Mem.snoopAll(t, home)
	if crossing {
		s2, sup2 := f.IO.snoopAll(t, home)
		shared = shared || s2
		if sup2 != nil {
			supplier = sup2
		}
	}
	if supplier == nil {
		supplier = home
	}

	// Timing phase (Table 2).
	var memCost, ioCost sim.Time
	switch tx.Kind {
	case CR, CRI:
		memCost = sim.Time(params.BlockTransferCost(params.MemoryBus, supplier.AgentClass(), tx.Initiator.AgentClass()))
		if crossing {
			ioCost = sim.Time(params.BlockTransferCost(params.IOBus, supplier.AgentClass(), tx.Initiator.AgentClass()))
		}
	case WB, UP:
		memCost = sim.Time(params.BlockTransferCost(params.MemoryBus, tx.Initiator.AgentClass(), home.AgentClass()))
		if crossing {
			ioCost = sim.Time(params.BlockTransferCost(params.IOBus, tx.Initiator.AgentClass(), home.AgentClass()))
		}
	case CI:
		memCost = sim.Time(params.InvalidateCost(params.MemoryBus))
		if crossing {
			ioCost = sim.Time(params.InvalidateCost(params.IOBus))
		}
	default:
		panic("bus: bad tx kind")
	}

	f.txCount[tx.Kind].Inc()
	dur := memCost
	if ioCost > dur {
		dur = ioCost
	}
	// Blocking crossing transactions hold both buses for the whole
	// transfer (the bridge "blocks on reads").
	f.Mem.busy.AddBusy(dur)
	f.Mem.cycles.Add(uint64(dur))
	if crossing {
		f.IO.busy.AddBusy(dur)
		f.IO.cycles.Add(uint64(dur))
	}
	p.Sleep(dur)

	if crossing {
		f.IO.Release()
	}
	f.Mem.Release()

	f.putTx(t)
	return Result{Shared: shared, Supplier: supplier.AgentClass()}
}

// UncachedLoad performs a blocking 8-byte uncached load from a device
// register and returns the value the device reports at completion.
func (f *Fabric) UncachedLoad(p *sim.Process, dev Device, reg uint64) uint64 {
	loc := f.locOf(dev)
	f.uncLoad[loc].Inc()
	switch loc {
	case params.CacheBus:
		p.Sleep(sim.Time(params.UncachedLoadCost(loc)))
		return dev.RegRead(reg)
	case params.MemoryBus:
		f.Mem.Acquire(p)
		f.Mem.Occupy(p, sim.Time(params.UncachedLoadCost(loc)))
		v := dev.RegRead(reg)
		f.Mem.Release()
		return v
	case params.IOBus:
		cost := sim.Time(params.UncachedLoadCost(loc))
		f.Mem.Acquire(p)
		f.IO.Acquire(p)
		f.Mem.busy.AddBusy(cost)
		f.Mem.cycles.Add(uint64(cost))
		f.IO.busy.AddBusy(cost)
		f.IO.cycles.Add(uint64(cost))
		p.Sleep(cost)
		v := dev.RegRead(reg)
		f.IO.Release()
		f.Mem.Release()
		return v
	}
	panic("bus: bad device location")
}

// UncachedStore performs one 8-byte uncached store to a device
// register. The call is made by the processor's store-buffer drain
// process, so the architectural "postedness" is upstream; here the
// store occupies the memory bus and, for I/O-bus devices, is buffered
// in the bridge (the memory bus is released as soon as the bridge
// accepts the write).
func (f *Fabric) UncachedStore(p *sim.Process, dev Device, reg, val uint64) {
	loc := f.locOf(dev)
	f.uncStore[loc].Inc()
	switch loc {
	case params.CacheBus:
		p.Sleep(sim.Time(params.UncachedStoreCost(loc)))
		dev.RegWrite(reg, val)
	case params.MemoryBus:
		f.Mem.Acquire(p)
		f.Mem.Occupy(p, sim.Time(params.UncachedStoreCost(params.MemoryBus)))
		dev.RegWrite(reg, val)
		f.Mem.Release()
	case params.IOBus:
		for f.bridgeQ.Len() >= params.BridgeBufferDepth {
			f.bridgeSpace.Wait(p)
		}
		f.Mem.Acquire(p)
		f.Mem.Occupy(p, sim.Time(params.UncachedStoreCost(params.MemoryBus)))
		f.bridgeQ.Push(postedWrite{dev, reg, val})
		f.bridgeCond.Signal()
		f.Mem.Release()
	default:
		panic("bus: bad device location")
	}
}

// bridgeDrain is the I/O bridge's posted-write engine: it forwards
// buffered uncached stores onto the I/O bus in order.
func (f *Fabric) bridgeDrain(p *sim.Process) {
	for {
		for f.bridgeQ.Len() == 0 {
			f.bridgeCond.Wait(p)
		}
		w := f.bridgeQ.Peek()
		f.IO.Acquire(p)
		f.IO.Occupy(p, sim.Time(params.UncachedStoreCost(params.IOBus)))
		w.dev.RegWrite(w.reg, w.val)
		f.IO.Release()
		f.bridgeQ.Pop()
		f.bridgeSpace.Signal()
	}
}
