package bus

import (
	"repro/internal/params"
	"repro/internal/sim"
)

// Bus is one multiplexed snooping bus: a FIFO-arbitrated resource that
// admits a single outstanding transaction, plus the set of snooping
// agents attached to it.
type Bus struct {
	eng  *sim.Engine
	kind params.BusKind
	name string

	mu     sim.FIFOMutex
	agents []Agent
	busy   *sim.BusyTracker
	cycles *sim.Counter // interned "<name>.cycles"
}

// New creates a bus of the given kind. Stats keys are prefixed with
// the bus name (e.g. "bus.mem0").
func New(e *sim.Engine, st *sim.Stats, kind params.BusKind, name string) *Bus {
	return &Bus{
		eng:    e,
		kind:   kind,
		name:   name,
		busy:   st.Busy(name),
		cycles: st.Counter(name + ".cycles"),
	}
}

// Kind returns the bus kind (memory or I/O).
func (b *Bus) Kind() params.BusKind { return b.kind }

// BusName returns the stats/trace name.
func (b *Bus) BusName() string { return b.name }

// Attach registers an agent as a snooper on this bus.
func (b *Bus) Attach(a Agent) { b.agents = append(b.agents, a) }

// Acquire arbitrates for the bus (FIFO).
func (b *Bus) Acquire(p *sim.Process) { b.mu.Lock(p) }

// Release frees the bus for the next waiter.
func (b *Bus) Release() { b.mu.Unlock() }

// Occupy accounts d cycles of occupancy while the caller holds the bus
// and advances the caller by d cycles.
func (b *Bus) Occupy(p *sim.Process, d sim.Time) {
	b.busy.AddBusy(d)
	b.cycles.Add(uint64(d))
	p.Sleep(d)
}

// snoopAll presents tx to every attached agent except the initiator,
// folding their responses. home is the home agent for tx.Addr (may be
// attached to a different bus; pass nil here if so).
func (b *Bus) snoopAll(tx *Tx, home Agent) (shared bool, supplier Agent) {
	for _, a := range b.agents {
		if a == tx.Initiator {
			continue
		}
		s := a.SnoopTx(tx, a == home)
		if s.HasCopy {
			shared = true
		}
		if s.WillSupply {
			supplier = a
		}
	}
	return shared, supplier
}

// Busy returns the occupancy tracker (for §5.2 occupancy results).
func (b *Bus) Busy() *sim.BusyTracker { return b.busy }

// QueueLen reports how many processes are waiting for the bus.
func (b *Bus) QueueLen() int { return b.mu.QueueLen() }
