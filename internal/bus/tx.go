// Package bus models the node's multiplexed, snooping, coherent buses:
// the 100 MHz memory bus, the 50 MHz coherent I/O bus, and the I/O
// bridge between them (paper §4.1). Each bus admits one outstanding
// transaction and arbitrates FIFO.
//
// The Fabric type is the per-node front door: caches, devices, and the
// processor issue transactions through it and it works out which buses
// are held, for how long (per Table 2 of the paper), and which agents
// snoop the transaction.
package bus

import (
	"fmt"

	"repro/internal/params"
)

// Kind enumerates bus transaction types, a subset of MBus level-2.
type Kind int

const (
	// CR is a coherent read: fetch a 64-byte block for sharing.
	CR Kind = iota
	// CRI is a coherent read-and-invalidate: fetch a block with
	// ownership, invalidating all other copies. Stores to blocks not
	// held Modified/Exclusive issue CRI (see DESIGN.md calibration).
	CRI
	// CI is an address-only coherent invalidation (no data transfer),
	// used by CNI devices to recall CDR/queue blocks.
	CI
	// WB writes a dirty 64-byte block back to its home.
	WB
	// UP is an update push: the owner broadcasts fresh block contents
	// so caches holding a matching (invalid) frame can refill without
	// a later read miss. The paper suggests update-based protocols as
	// a CNI enhancement (§2.2, §5.1.2); this is the optional
	// Config.UpdateProtocol extension.
	UP
)

func (k Kind) String() string {
	switch k {
	case CR:
		return "CR"
	case CRI:
		return "CRI"
	case CI:
		return "CI"
	case WB:
		return "WB"
	case UP:
		return "UP"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Tx is one coherent bus transaction.
type Tx struct {
	Kind      Kind
	Addr      uint64 // block-aligned
	Initiator Agent
}

// Snoop is an agent's response to observing a transaction.
type Snoop struct {
	// HasCopy reports the agent holds the block in a non-Invalid state
	// (before acting on the transaction).
	HasCopy bool
	// WillSupply reports the agent owns the data (M/O/E) and supplies
	// it cache-to-cache instead of the home.
	WillSupply bool
}

// Agent is anything attached to a bus that participates in snooping:
// processor caches, CNI devices, and main memory.
type Agent interface {
	// AgentName identifies the agent in traces and stats.
	AgentName() string
	// AgentClass selects Table 2 transfer costs (proc/device/memory).
	AgentClass() params.AgentClass
	// SnoopTx observes a transaction initiated by another agent and
	// performs any required state transition (invalidate, downgrade,
	// absorb writeback). It must not block; it runs inside the
	// initiator's transaction. The boolean reports whether the agent is
	// the home for the address (homes absorb WBs and supply data when
	// no cache owns the block).
	SnoopTx(tx *Tx, isHome bool) Snoop
}

// Device is an Agent with uncachable device registers.
type Device interface {
	Agent
	// RegRead services an uncached load; reg is a device-local offset.
	RegRead(reg uint64) uint64
	// RegWrite services an uncached store.
	RegWrite(reg, val uint64)
}

// Result summarises a completed coherent transaction for the initiator.
type Result struct {
	// Shared reports whether any other agent retains a copy.
	Shared bool
	// Supplier is who provided the data for CR/CRI.
	Supplier params.AgentClass
}
