package bus

import (
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
)

// stubAgent is a scriptable bus agent/device.
type stubAgent struct {
	name    string
	class   params.AgentClass
	snoops  []Tx
	supply  bool
	hasCopy bool
	regs    map[uint64]uint64
	writes  []uint64
}

func newStub(name string, class params.AgentClass) *stubAgent {
	return &stubAgent{name: name, class: class, regs: make(map[uint64]uint64)}
}

func (s *stubAgent) AgentName() string             { return s.name }
func (s *stubAgent) AgentClass() params.AgentClass { return s.class }
func (s *stubAgent) SnoopTx(tx *Tx, isHome bool) Snoop {
	s.snoops = append(s.snoops, *tx)
	return Snoop{HasCopy: s.hasCopy, WillSupply: s.supply}
}
func (s *stubAgent) RegRead(reg uint64) uint64 { return s.regs[reg] }
func (s *stubAgent) RegWrite(reg, val uint64)  { s.regs[reg] = val; s.writes = append(s.writes, reg) }

func memFabric(t *testing.T) (*sim.Engine, *Fabric, *stubAgent, *stubAgent) {
	t.Helper()
	e := sim.NewEngine()
	st := sim.NewStats(e)
	f := NewFabric(e, st, "t", false)
	home := newStub("home", params.ClassMemory)
	f.Attach(home, params.MemoryBus)
	f.AddRegion(Region{Name: "dram", Base: 0, Size: 1 << 20, Home: home, Loc: params.MemoryBus, Cachable: true})
	other := newStub("other", params.ClassProc)
	f.Attach(other, params.MemoryBus)
	return e, f, home, other
}

func TestRegionOverlapPanics(t *testing.T) {
	_, f, home, _ := memFabric(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected overlap panic")
		}
	}()
	f.AddRegion(Region{Name: "dup", Base: 512, Size: 64, Home: home, Loc: params.MemoryBus})
}

func TestLookupUnmappedPanics(t *testing.T) {
	_, f, _, _ := memFabric(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected unmapped panic")
		}
	}()
	f.Lookup(1 << 30)
}

func TestCoherentReadCostAndSnoop(t *testing.T) {
	e, f, _, other := memFabric(t)
	req := newStub("req", params.ClassProc)
	f.Attach(req, params.MemoryBus)
	var dur sim.Time
	e.Spawn("t", func(p *sim.Process) {
		start := p.Now()
		res := f.Do(p, Tx{Kind: CR, Addr: 0x40, Initiator: req})
		dur = p.Now() - start
		if res.Supplier != params.ClassMemory {
			t.Errorf("supplier = %v, want memory", res.Supplier)
		}
	})
	e.RunAll()
	if dur != params.BlockMemBus {
		t.Errorf("CR took %d, want %d", dur, params.BlockMemBus)
	}
	if len(other.snoops) != 1 || other.snoops[0].Kind != CR {
		t.Errorf("other agent snooped %v", other.snoops)
	}
	if len(req.snoops) != 0 {
		t.Error("initiator must not snoop its own transaction")
	}
}

func TestCacheSupplierWins(t *testing.T) {
	e, f, _, other := memFabric(t)
	other.supply = true
	other.hasCopy = true
	req := newStub("req", params.ClassProc)
	f.Attach(req, params.MemoryBus)
	e.Spawn("t", func(p *sim.Process) {
		res := f.Do(p, Tx{Kind: CR, Addr: 0x40, Initiator: req})
		if res.Supplier != params.ClassProc {
			t.Errorf("supplier = %v, want proc (cache-to-cache)", res.Supplier)
		}
		if !res.Shared {
			t.Error("Shared should be true when another cache holds a copy")
		}
	})
	e.RunAll()
}

func TestInvalidateCost(t *testing.T) {
	e, f, _, _ := memFabric(t)
	req := newStub("req", params.ClassDevice)
	f.Attach(req, params.MemoryBus)
	var dur sim.Time
	e.Spawn("t", func(p *sim.Process) {
		start := p.Now()
		f.Do(p, Tx{Kind: CI, Addr: 0x80, Initiator: req})
		dur = p.Now() - start
	})
	e.RunAll()
	if dur != params.InvalMemBus {
		t.Errorf("CI took %d, want %d", dur, params.InvalMemBus)
	}
}

func TestCoherentOpOnUncachableRegionPanics(t *testing.T) {
	e, f, home, _ := memFabric(t)
	f.AddRegion(Region{Name: "regs", Base: 1 << 21, Size: 4096, Home: home, Loc: params.MemoryBus, Cachable: false})
	req := newStub("req", params.ClassProc)
	f.Attach(req, params.MemoryBus)
	caught := false
	e.Spawn("t", func(p *sim.Process) {
		defer func() { caught = recover() != nil }()
		f.Do(p, Tx{Kind: CR, Addr: 1 << 21, Initiator: req})
	})
	e.RunAll()
	if !caught {
		t.Error("expected panic for CR on uncachable region")
	}
}

func TestUncachedLoadMemoryBus(t *testing.T) {
	e, f, _, _ := memFabric(t)
	dev := newStub("dev", params.ClassDevice)
	f.Attach(dev, params.MemoryBus)
	dev.regs[8] = 77
	var dur sim.Time
	var val uint64
	e.Spawn("t", func(p *sim.Process) {
		start := p.Now()
		val = f.UncachedLoad(p, dev, 8)
		dur = p.Now() - start
	})
	e.RunAll()
	if val != 77 {
		t.Errorf("value = %d", val)
	}
	if dur != sim.Time(params.UncLoadMemBus) {
		t.Errorf("load took %d, want %d", dur, params.UncLoadMemBus)
	}
}

func TestUncachedCacheBusBypassesBuses(t *testing.T) {
	e, f, _, _ := memFabric(t)
	dev := newStub("dev", params.ClassDevice)
	f.Attach(dev, params.CacheBus)
	var dur sim.Time
	e.Spawn("t", func(p *sim.Process) {
		start := p.Now()
		f.UncachedLoad(p, dev, 0)
		f.UncachedStore(p, dev, 0, 1)
		dur = p.Now() - start
	})
	e.RunAll()
	if dur != 8 { // 4 + 4 cycles, no bus occupancy
		t.Errorf("cache-bus access took %d, want 8", dur)
	}
	if f.Mem.Busy().Total() != 0 {
		t.Error("cache-bus access must not occupy the memory bus")
	}
}

func ioFabric(t *testing.T) (*sim.Engine, *Fabric, *stubAgent) {
	t.Helper()
	e := sim.NewEngine()
	st := sim.NewStats(e)
	f := NewFabric(e, st, "t", true)
	home := newStub("home", params.ClassMemory)
	f.Attach(home, params.MemoryBus)
	f.AddRegion(Region{Name: "dram", Base: 0, Size: 1 << 20, Home: home, Loc: params.MemoryBus, Cachable: true})
	return e, f, home
}

func TestCrossingReadHoldsBothBuses(t *testing.T) {
	e, f, _ := ioFabric(t)
	dev := newStub("dev", params.ClassDevice)
	f.Attach(dev, params.IOBus)
	f.AddRegion(Region{Name: "devq", Base: 1 << 21, Size: 4096, Home: dev, Loc: params.IOBus, Cachable: true})
	req := newStub("req", params.ClassProc)
	f.Attach(req, params.MemoryBus)
	var dur sim.Time
	e.Spawn("t", func(p *sim.Process) {
		start := p.Now()
		f.Do(p, Tx{Kind: CR, Addr: 1 << 21, Initiator: req})
		dur = p.Now() - start
	})
	e.RunAll()
	if dur != params.BlockIODevToProc {
		t.Errorf("crossing CR took %d, want %d", dur, params.BlockIODevToProc)
	}
	// Blocking crossing reads occupy both buses for the whole transfer.
	if f.Mem.Busy().Total() != params.BlockIODevToProc {
		t.Errorf("memory bus busy %d, want %d", f.Mem.Busy().Total(), params.BlockIODevToProc)
	}
	if f.IO.Busy().Total() != params.BlockIODevToProc {
		t.Errorf("I/O bus busy %d, want %d", f.IO.Busy().Total(), params.BlockIODevToProc)
	}
}

func TestPostedStoreReleasesMemoryBusEarly(t *testing.T) {
	e, f, _ := ioFabric(t)
	dev := newStub("dev", params.ClassDevice)
	f.Attach(dev, params.IOBus)
	var issueDur sim.Time
	e.Spawn("t", func(p *sim.Process) {
		start := p.Now()
		f.UncachedStore(p, dev, 8, 5)
		issueDur = p.Now() - start
	})
	e.RunAll()
	// The store occupies the memory bus only for its memory-bus share;
	// the bridge forwards it onto the I/O bus afterwards.
	if issueDur != sim.Time(params.UncStoreMemBus) {
		t.Errorf("posted store held the caller %d cycles, want %d", issueDur, params.UncStoreMemBus)
	}
	if dev.regs[8] != 5 {
		t.Error("posted store never reached the device")
	}
	if got := f.IO.Busy().Total(); got != sim.Time(params.UncStoreIOBus) {
		t.Errorf("I/O bus busy %d, want %d", got, params.UncStoreIOBus)
	}
}

func TestBridgePreservesStoreOrder(t *testing.T) {
	e, f, _ := ioFabric(t)
	dev := newStub("dev", params.ClassDevice)
	f.Attach(dev, params.IOBus)
	e.Spawn("t", func(p *sim.Process) {
		for i := uint64(0); i < 12; i++ { // more than the bridge buffer
			f.UncachedStore(p, dev, i, i)
		}
	})
	e.RunAll()
	if len(dev.writes) != 12 {
		t.Fatalf("device saw %d writes, want 12", len(dev.writes))
	}
	for i, reg := range dev.writes {
		if reg != uint64(i) {
			t.Fatalf("write order violated at %d: reg %d", i, reg)
		}
	}
}

func TestBusFIFOOrderUnderContention(t *testing.T) {
	e, f, _, _ := memFabric(t)
	req1 := newStub("req1", params.ClassProc)
	req2 := newStub("req2", params.ClassProc)
	f.Attach(req1, params.MemoryBus)
	f.Attach(req2, params.MemoryBus)
	var order []string
	e.Spawn("a", func(p *sim.Process) {
		f.Do(p, Tx{Kind: CR, Addr: 0x40, Initiator: req1})
		order = append(order, "a")
	})
	e.Spawn("b", func(p *sim.Process) {
		f.Do(p, Tx{Kind: CR, Addr: 0x80, Initiator: req2})
		order = append(order, "b")
	})
	e.RunAll()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
	if e.Now() != 2*params.BlockMemBus {
		t.Fatalf("two serialised CRs ended at %d, want %d", e.Now(), 2*params.BlockMemBus)
	}
}
