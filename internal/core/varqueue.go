package core

import (
	"math/bits"
	"runtime"
	"sync/atomic"
)

// VarQueue generalises the cachable queue to variable-length messages
// (the paper's footnote 2: "CQs can be generalized to variable length
// messages in a straight-forward manner"). The ring stores bytes;
// each record is a length word followed by the payload, and the
// length word doubles as the valid flag: its top bit carries the
// sense of the lap that wrote it, so — exactly as in the fixed-size
// queue — the consumer polls the record header, never the tail
// pointer, and never writes the ring to clear it.
//
// Records never wrap: a record that would cross the end of the ring
// is preceded by a skip marker (length 0 with the current sense) and
// placed at the start. Single producer, single consumer.
type VarQueue struct {
	size uint64 // bytes, power of two
	mask uint64
	buf  []byte
	hdr  []atomic.Uint64 // one header slot per 8-byte position

	_ pad
	// Producer-private.
	tail       uint64 // byte position (monotonic)
	shadowHead uint64
	fullMisses uint64

	_ pad
	// Consumer-private.
	head uint64

	_             pad
	publishedHead atomic.Uint64
}

const varAlign = 8

// NewVarQueue creates a byte ring of at least capacity bytes (rounded
// up to a power of two, minimum 64). The largest storable message is
// capacity/2 - 8 bytes.
func NewVarQueue(capacity int) *VarQueue {
	if capacity < 64 {
		capacity = 64
	}
	size := uint64(1) << uint(bits.Len(uint(capacity-1)))
	return &VarQueue{
		size: size,
		mask: size - 1,
		buf:  make([]byte, size),
		hdr:  make([]atomic.Uint64, size/varAlign),
	}
}

// Cap returns the ring capacity in bytes.
func (q *VarQueue) Cap() int { return int(q.size) }

// MaxMsg returns the largest message the queue accepts.
func (q *VarQueue) MaxMsg() int { return int(q.size/2) - varAlign }

// lap returns the lap number for byte position pos. The fixed-size
// Queue gets away with the paper's single sense bit because entry
// boundaries repeat every lap; variable records move their boundaries
// between laps, so a one-bit sense could alias a header written two
// laps ago (an ABA hazard). Encoding the full lap count (+1 so that
// the zero-initialised header array is invalid for lap 0) removes it.
func (q *VarQueue) lap(pos uint64) uint64 {
	return pos/q.size + 1
}

// hdrAt returns the header slot for byte position pos (8-aligned).
func (q *VarQueue) hdrAt(pos uint64) *atomic.Uint64 {
	return &q.hdr[(pos&q.mask)/varAlign]
}

// pack encodes a record header: lap in the upper 32 bits, length in
// the lower 32.
func pack(lap, length uint64) uint64 { return lap<<32 | length }

// recLen returns the ring bytes a payload of n consumes.
func recLen(n int) uint64 {
	return varAlign + (uint64(n)+varAlign-1)/varAlign*varAlign
}

// TryEnqueue appends p's bytes; false when the queue lacks space.
func (q *VarQueue) TryEnqueue(p []byte) bool {
	if len(p) > q.MaxMsg() {
		return false
	}
	need := recLen(len(p))
	// A record must not wrap: account for a possible skip region.
	tail := q.tail
	skip := uint64(0)
	if end := tail & q.mask; end+need > q.size {
		skip = q.size - end
	}
	if !q.reserve(tail + skip + need) {
		return false
	}
	if skip > 0 {
		// Publish a skip marker, then restart at the ring head.
		q.hdrAt(tail).Store(pack(q.lap(tail), 0))
		tail += skip
	}
	copy(q.buf[(tail&q.mask)+varAlign:], p)
	q.hdrAt(tail).Store(pack(q.lap(tail), uint64(len(p)))) // release
	q.tail = tail + need
	return true
}

// reserve checks (lazily) that the producer may advance to newTail.
func (q *VarQueue) reserve(newTail uint64) bool {
	if newTail-q.shadowHead > q.size {
		q.shadowHead = q.publishedHead.Load()
		q.fullMisses++
		if newTail-q.shadowHead > q.size {
			return false
		}
	}
	return true
}

// TryDequeue removes the oldest message, appending it to dst and
// returning the extended slice; ok is false when the queue is empty.
func (q *VarQueue) TryDequeue(dst []byte) (out []byte, ok bool) {
	head := q.head
	for {
		h := q.hdrAt(head).Load()
		if h>>32 != q.lap(head) {
			return dst, false // empty
		}
		length := h & 0xFFFFFFFF
		if length == 0 {
			// Skip marker: the next record starts at the ring head.
			head += q.size - (head & q.mask)
			continue
		}
		dst = append(dst, q.buf[(head&q.mask)+varAlign:(head&q.mask)+varAlign+length]...)
		q.head = head + recLen(int(length))
		q.publishedHead.Store(q.head)
		return dst, true
	}
}

// Enqueue appends p, spinning while the queue is full.
func (q *VarQueue) Enqueue(p []byte) {
	for !q.TryEnqueue(p) {
		runtime.Gosched()
	}
}

// Dequeue removes the oldest message, spinning while empty.
func (q *VarQueue) Dequeue(dst []byte) []byte {
	for {
		if out, ok := q.TryDequeue(dst); ok {
			return out
		}
		runtime.Gosched()
	}
}

// FullMisses reports producer refreshes of the shared head pointer.
func (q *VarQueue) FullMisses() uint64 { return q.fullMisses }
