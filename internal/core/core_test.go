package core

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestFIFOOrderSingleThread(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 8; i++ {
		if !q.TryEnqueue(i) {
			t.Fatalf("enqueue %d failed on empty queue", i)
		}
	}
	if q.TryEnqueue(99) {
		t.Fatal("enqueue succeeded on full queue")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryDequeue()
		if !ok || v != i {
			t.Fatalf("dequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("dequeue succeeded on empty queue")
	}
}

func TestCapacityRounding(t *testing.T) {
	cases := map[int]int{1: 2, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := New[int](in).Cap(); got != want {
			t.Errorf("New(%d).Cap() = %d, want %d", in, got, want)
		}
	}
}

func TestSenseAlternatesPerLap(t *testing.T) {
	q := New[int](4)
	// Lap 0 positions 0..3 have sense 1, lap 1 has sense 0, etc.
	for pos := uint64(0); pos < 16; pos++ {
		want := uint32(1 - (pos/4)%2)
		if got := q.sense(pos); got != want {
			t.Fatalf("sense(%d) = %d, want %d", pos, got, want)
		}
	}
}

func TestManyLapsNoCorruption(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 1000; i++ {
		if !q.TryEnqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
		v, ok := q.TryDequeue()
		if !ok || v != i {
			t.Fatalf("lap test: dequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	q := New[string](4)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue returned ok")
	}
	q.TryEnqueue("a")
	for i := 0; i < 3; i++ {
		v, ok := q.Peek()
		if !ok || v != "a" {
			t.Fatalf("Peek = (%q,%v), want (a,true)", v, ok)
		}
	}
	if v, _ := q.TryDequeue(); v != "a" {
		t.Fatal("Dequeue after Peek lost the value")
	}
}

func TestLazyPointerRefreshTwicePerPass(t *testing.T) {
	q := New[int](8)
	// Fill half, drain half, repeatedly. The paper (§2.2): "If the
	// queue is no more than half full on average, then the sender needs
	// to check head — and incur a cache miss — only twice each time
	// around the array."
	const rounds = 10
	for round := 0; round < rounds; round++ {
		for i := 0; i < 4; i++ {
			q.TryEnqueue(i)
		}
		for i := 0; i < 4; i++ {
			q.TryDequeue()
		}
	}
	passes := uint64(rounds * 4 / q.Cap())
	if q.FullMisses() > 2*passes {
		t.Fatalf("FullMisses = %d, want <= %d (twice per pass)", q.FullMisses(), 2*passes)
	}
	// Now force wrap-around against a full queue.
	for i := 0; i < 8; i++ {
		q.TryEnqueue(i)
	}
	q.TryEnqueue(99) // full: must refresh
	if q.FullMisses() == 0 {
		t.Fatal("FullMisses = 0 after enqueue on full queue")
	}
}

func TestConsumerLen(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		q.TryEnqueue(i)
	}
	if got := q.ConsumerLen(); got != 5 {
		t.Fatalf("ConsumerLen = %d, want 5", got)
	}
	q.TryDequeue()
	if got := q.ConsumerLen(); got != 4 {
		t.Fatalf("ConsumerLen = %d, want 4", got)
	}
}

// TestPropertyDrainMatchesFill: property-based check that for any
// pattern of enqueues/dequeues the values drained are a prefix-ordered
// subsequence equal to the values inserted (no loss, no duplication,
// no reordering).
func TestPropertyDrainMatchesFill(t *testing.T) {
	f := func(ops []uint8, capSeed uint8) bool {
		capacity := int(capSeed%31) + 2
		q := New[int](capacity)
		next := 0
		var sent, got []int
		for _, op := range ops {
			if op%2 == 0 {
				if q.TryEnqueue(next) {
					sent = append(sent, next)
				}
				next++
			} else {
				if v, ok := q.TryDequeue(); ok {
					got = append(got, v)
				}
			}
		}
		for {
			v, ok := q.TryDequeue()
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(sent) != len(got) {
			return false
		}
		for i := range sent {
			if sent[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNeverExceedsCapacity: occupancy never exceeds capacity
// and TryEnqueue fails exactly when occupancy == capacity.
func TestPropertyNeverExceedsCapacity(t *testing.T) {
	f := func(ops []bool, capSeed uint8) bool {
		capacity := int(capSeed%15) + 2
		q := New[int](capacity)
		occ := 0
		for _, enq := range ops {
			if enq {
				if q.TryEnqueue(1) {
					occ++
				} else if occ != q.Cap() {
					return false // refused while not full
				}
			} else {
				if _, ok := q.TryDequeue(); ok {
					occ--
				} else if occ != 0 {
					return false // empty while occupied
				}
			}
			if occ < 0 || occ > q.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentProducerConsumer exercises the cross-goroutine
// happens-before edges (run with -race).
func TestConcurrentProducerConsumer(t *testing.T) {
	const n = 20000
	q := New[int](64)
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan string, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Enqueue(i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if v := q.Dequeue(); v != i {
				select {
				case errs <- "out of order":
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

func TestRegisterHandshake(t *testing.T) {
	var r Register[int]
	if _, ok := r.Poll(); ok {
		t.Fatal("Poll on empty register returned ok")
	}
	if !r.TryPublish(7) {
		t.Fatal("TryPublish failed on clear register")
	}
	if r.TryPublish(8) {
		t.Fatal("TryPublish succeeded before Clear (handshake violated)")
	}
	v, ok := r.Poll()
	if !ok || v != 7 {
		t.Fatalf("Poll = (%d,%v), want (7,true)", v, ok)
	}
	// Poll does not clear: the CDR's clear is explicit.
	if _, ok := r.Poll(); !ok {
		t.Fatal("second Poll lost the value")
	}
	r.Clear()
	if _, ok := r.Poll(); ok {
		t.Fatal("Poll returned ok after Clear")
	}
	if !r.TryPublish(9) {
		t.Fatal("TryPublish failed after Clear")
	}
	v, ok = r.Take()
	if !ok || v != 9 {
		t.Fatalf("Take = (%d,%v), want (9,true)", v, ok)
	}
	if _, ok := r.Take(); ok {
		t.Fatal("Take on cleared register returned ok")
	}
}

func TestRegisterConcurrent(t *testing.T) {
	var r Register[int]
	const n = 5000
	done := make(chan bool)
	go func() {
		for i := 0; i < n; i++ {
			r.Publish(i)
		}
		done <- true
	}()
	prev := -1
	for got := 0; got < n; {
		v, ok := r.Take()
		if !ok {
			runtime.Gosched() // single-CPU friendliness: let the producer run
			continue
		}
		if v != prev+1 {
			t.Fatalf("register skipped: %d after %d", v, prev)
		}
		prev = v
		got++
	}
	<-done
}

func BenchmarkQueueEnqueueDequeue(b *testing.B) {
	q := New[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryEnqueue(i)
		q.TryDequeue()
	}
}

func BenchmarkQueueConcurrent(b *testing.B) {
	q := New[int](1024)
	done := make(chan struct{})
	go func() {
		for i := 0; i < b.N; i++ {
			q.Enqueue(i)
		}
		close(done)
	}()
	for i := 0; i < b.N; i++ {
		q.Dequeue()
	}
	<-done
}
