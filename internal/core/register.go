package core

import (
	"runtime"
	"sync/atomic"
)

// Register is the software analogue of a cachable device register
// (CDR, §2.1): a single coherent "block" used to pass one value at a
// time from a producer to a consumer. Unlike Queue there is no ring —
// reuse is the explicit handshake the paper describes: the consumer
// must Clear the register before the producer can publish again,
// mirroring the CDR's explicit clear operation (the paper's
// three-cycle handshake collapses to one atomic transition here).
//
// Poll is wait-free and, like a CDR, touches only the register itself,
// so an unchanged register costs the consumer nothing but a read.
type Register[T any] struct {
	state atomic.Uint32 // 0 = empty (cleared), 1 = full (published)
	val   T
}

// TryPublish stores v if the register is clear and reports success.
func (r *Register[T]) TryPublish(v T) bool {
	if r.state.Load() != 0 {
		return false
	}
	r.val = v
	r.state.Store(1) // release
	return true
}

// Publish stores v, spinning until the consumer clears the register.
func (r *Register[T]) Publish(v T) {
	for !r.TryPublish(v) {
		runtime.Gosched()
	}
}

// Poll returns the current value if one is published. It does not
// clear the register; repeated polls return the same value.
func (r *Register[T]) Poll() (v T, ok bool) {
	if r.state.Load() != 1 {
		return v, false
	}
	return r.val, true
}

// Clear completes the handshake, making the register reusable.
// Calling Clear on an empty register is a no-op.
func (r *Register[T]) Clear() { r.state.Store(0) }

// Take polls and, if a value is present, clears in one step.
func (r *Register[T]) Take() (v T, ok bool) {
	v, ok = r.Poll()
	if ok {
		r.Clear()
	}
	return v, ok
}
