package core

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestVarQueueBasic(t *testing.T) {
	q := NewVarQueue(256)
	msgs := [][]byte{
		[]byte("a"),
		[]byte("hello world"),
		bytes.Repeat([]byte{7}, 50),
	}
	for _, m := range msgs {
		if !q.TryEnqueue(m) {
			t.Fatalf("enqueue %d bytes failed", len(m))
		}
	}
	for _, want := range msgs {
		got, ok := q.TryDequeue(nil)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("dequeue = %q,%v want %q", got, ok, want)
		}
	}
	if _, ok := q.TryDequeue(nil); ok {
		t.Fatal("dequeue on empty queue succeeded")
	}
}

func TestVarQueueRejectsOversize(t *testing.T) {
	q := NewVarQueue(128)
	if q.TryEnqueue(make([]byte, q.MaxMsg()+1)) {
		t.Fatal("oversized message accepted")
	}
	if !q.TryEnqueue(make([]byte, q.MaxMsg())) {
		t.Fatal("max-size message refused on an empty queue")
	}
}

func TestVarQueueFillsAndDrains(t *testing.T) {
	q := NewVarQueue(256)
	n := 0
	for q.TryEnqueue([]byte("0123456789")) {
		n++
	}
	if n == 0 {
		t.Fatal("nothing fit")
	}
	for i := 0; i < n; i++ {
		if _, ok := q.TryDequeue(nil); !ok {
			t.Fatalf("drained only %d of %d", i, n)
		}
	}
	if _, ok := q.TryDequeue(nil); ok {
		t.Fatal("extra message appeared")
	}
}

func TestVarQueueWrapWithSkipMarkers(t *testing.T) {
	q := NewVarQueue(128)
	// Sizes chosen to leave awkward space at the ring end repeatedly.
	payload := func(i, n int) []byte {
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(i + j)
		}
		return b
	}
	sizes := []int{24, 17, 40, 9, 33, 48, 1, 25}
	k := 0
	for round := 0; round < 50; round++ {
		n := sizes[round%len(sizes)]
		q.Enqueue(payload(k, n))
		got := q.Dequeue(nil)
		if !bytes.Equal(got, payload(k, n)) {
			t.Fatalf("round %d: corrupted message (%d bytes)", round, n)
		}
		k++
	}
}

// TestVarQueuePropertyFIFO: any mix of enqueues/dequeues preserves
// byte-exact FIFO order with no loss or duplication.
func TestVarQueuePropertyFIFO(t *testing.T) {
	f := func(ops []uint16, capSeed uint8) bool {
		q := NewVarQueue(int(capSeed)*8 + 64)
		var sent, got [][]byte
		next := byte(0)
		for _, op := range ops {
			if op%3 != 0 {
				n := int(op%uint16(q.MaxMsg())) + 1
				m := bytes.Repeat([]byte{next}, n)
				if q.TryEnqueue(m) {
					sent = append(sent, m)
					next++
				}
			} else if v, ok := q.TryDequeue(nil); ok {
				got = append(got, v)
			}
		}
		for {
			v, ok := q.TryDequeue(nil)
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(sent) != len(got) {
			return false
		}
		for i := range sent {
			if !bytes.Equal(sent[i], got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVarQueueConcurrent(t *testing.T) {
	q := NewVarQueue(1024)
	const n = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			m := []byte{byte(i), byte(i >> 8), byte(1 + i%37)}
			q.Enqueue(m)
		}
	}()
	for i := 0; i < n; i++ {
		got := q.Dequeue(nil)
		if got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("message %d corrupted: %v", i, got)
		}
	}
	wg.Wait()
}

func TestVarQueueLazyPointers(t *testing.T) {
	q := NewVarQueue(1024)
	// Half-full usage: few shared-head refreshes, like the fixed queue.
	for round := 0; round < 100; round++ {
		q.TryEnqueue(make([]byte, 100))
		q.TryDequeue(nil)
	}
	if q.FullMisses() > 25 {
		t.Fatalf("FullMisses = %d, lazy pointer not lazy", q.FullMisses())
	}
}
