// Package core implements the paper's cachable queue (CQ) algorithm
// (§2.2) as a reusable single-producer/single-consumer queue, with all
// three of the paper's optimisations:
//
//   - Message valid bits: the receiver polls the entry at head, never
//     the tail pointer, so an empty-queue poll touches only memory the
//     producer will eventually write (on real hardware: a cache hit
//     until the producer's write invalidates it).
//
//   - Sense reverse: the valid flag's encoding alternates each pass
//     around the ring (valid == 1 on odd passes, 0 on even), so the
//     consumer never writes the entry to clear it — eliminating the
//     ownership (read-for-ownership) transfer a clear would cost.
//
//   - Lazy pointers: the producer keeps a stale shadow of the
//     consumer's head and re-reads the real head only when the shadow
//     says the queue is full; if the queue is on average no more than
//     half full the producer touches the shared head pointer only
//     twice per pass.
//
// The implementation uses monotonically increasing 64-bit positions;
// an entry's lap parity is its sense, exactly the paper's alternation.
// Between goroutines the valid flag and published head are atomics,
// which is the memory-model analogue of the paper's reliance on cache
// coherence plus memory barriers (§2.2 footnote 3).
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// pad keeps producer-side, consumer-side, and shared fields on
// separate cache lines, the software analogue of the paper keeping
// head and tail "in separate cache blocks".
type pad [64]byte

type entry[T any] struct {
	valid atomic.Uint32 // holds the sense value of the lap that wrote it
	val   T
}

// Queue is a single-producer single-consumer cachable queue.
// Enqueue must be called from one goroutine at a time, Dequeue from
// one goroutine at a time; the two sides may run concurrently.
type Queue[T any] struct {
	size    uint64
	mask    uint64
	lapBits uint
	entries []entry[T]

	_ pad
	// Producer-private state.
	tail       uint64 // next position to write
	shadowHead uint64 // lazy copy of the consumer's published head
	fullMisses uint64 // times the shadow had to be refreshed (stats)

	_ pad
	// Consumer-private state.
	head uint64 // next position to read

	_ pad
	// Shared: consumer publishes head here; producer reads it lazily.
	publishedHead atomic.Uint64
}

// New creates a queue with capacity entries (rounded up to a power of
// two, minimum 2).
func New[T any](capacity int) *Queue[T] {
	if capacity < 2 {
		capacity = 2
	}
	size := uint64(1) << uint(bits.Len(uint(capacity-1)))
	return &Queue[T]{
		size:    size,
		mask:    size - 1,
		lapBits: uint(bits.TrailingZeros64(size)),
		entries: make([]entry[T], size),
	}
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return int(q.size) }

// sense returns the valid-flag encoding for the lap containing pos:
// 1 on the first (odd) pass, 0 on the second, alternating — the
// paper's sense reverse. Zero-initialised entries are therefore
// invalid for the first lap.
func (q *Queue[T]) sense(pos uint64) uint32 {
	return uint32(1 ^ ((pos >> q.lapBits) & 1))
}

// TryEnqueue appends v and reports success; it fails only when the
// queue is full. This is the paper's Figure 4 enqueue.
func (q *Queue[T]) TryEnqueue(v T) bool {
	if q.tail-q.shadowHead >= q.size {
		// Shadow says full: refresh from the consumer (the only point
		// where the producer touches shared state).
		q.shadowHead = q.publishedHead.Load()
		q.fullMisses++
		if q.tail-q.shadowHead >= q.size {
			return false
		}
	}
	e := &q.entries[q.tail&q.mask]
	e.val = v
	e.valid.Store(q.sense(q.tail)) // release: publishes val
	q.tail++
	return true
}

// Enqueue appends v, spinning (with scheduler yields) while full.
func (q *Queue[T]) Enqueue(v T) {
	for !q.TryEnqueue(v) {
		runtime.Gosched()
	}
}

// TryDequeue removes the oldest entry; ok is false when the queue is
// empty. This is the paper's Figure 5 dequeue: the valid flag at head
// is compared against the consumer's current sense.
func (q *Queue[T]) TryDequeue() (v T, ok bool) {
	e := &q.entries[q.head&q.mask]
	if e.valid.Load() != q.sense(q.head) {
		return v, false // empty
	}
	v = e.val
	q.head++
	q.publishedHead.Store(q.head)
	return v, true
}

// Dequeue removes the oldest entry, spinning while empty.
func (q *Queue[T]) Dequeue() T {
	for {
		if v, ok := q.TryDequeue(); ok {
			return v
		}
		runtime.Gosched()
	}
}

// Peek returns the oldest entry without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	e := &q.entries[q.head&q.mask]
	if e.valid.Load() != q.sense(q.head) {
		return v, false
	}
	return e.val, true
}

// ConsumerLen reports the number of entries visible to the consumer.
// It may undercount entries the producer has published since the last
// poll (it walks valid flags; O(n) worst case, diagnostic use only).
func (q *Queue[T]) ConsumerLen() int {
	n := 0
	for pos := q.head; pos < q.head+q.size; pos++ {
		if q.entries[pos&q.mask].valid.Load() != q.sense(pos) {
			break
		}
		n++
	}
	return n
}

// ProducerLen reports the producer's (conservative) view of queue
// occupancy, based on its lazy shadow head.
func (q *Queue[T]) ProducerLen() int { return int(q.tail - q.shadowHead) }

// FullMisses reports how many times the producer had to refresh the
// shadow head — the "cache misses on head" the lazy-pointer
// optimisation exists to minimise.
func (q *Queue[T]) FullMisses() uint64 { return q.fullMisses }

// String describes the queue for debugging.
func (q *Queue[T]) String() string {
	return fmt.Sprintf("cq.Queue{cap=%d tail=%d head=%d shadow=%d}",
		q.size, q.tail, q.publishedHead.Load(), q.shadowHead)
}
