package sim

import "runtime"

// Conservative-lookahead sharded engine (time-barrier PDES).
//
// A ShardSet partitions a machine's nodes into contiguous groups, each
// with its own Engine (its own 4-ary heap, clock, and process token).
// Execution proceeds in epochs: at a barrier the coordinator finds the
// globally earliest pending event time S and lets every shard run
// [S, S+L-1] independently, where L (the lookahead) is a lower bound
// on the delay of any event one shard can create on another. Any
// cross-shard event created during the epoch therefore fires at
// S+L or later — provably after the epoch — so it is routed through a
// deterministic-merge inbox and materialised at the next barrier
// instead of being pushed into a foreign heap mid-epoch.
//
// Determinism (shard-count invariance): cross-shard events are
// ordered by (At, Key), where Key is a fabric-assigned tiebreak unique
// per (At). At each barrier the coordinator drains the inboxes into
// per-destination-shard pending heaps and materialises the events due
// this epoch in sorted (At, Key) order, assigning each a sequence
// number in the class-1 band (class1Base + a per-shard monotonic
// rank). Engine-local events keep their ordinary sequence numbers,
// which stay far below class1Base. The merged (time, seq) dispatch
// order is therefore a pure function of (At, Key) and of each node's
// own event-creation order — never of the shard count — so a ShardSet
// with one shard is byte-identical to the same ShardSet with eight.
// (Epoch windows never overlap in time, so ranks assigned at earlier
// barriers order correctly against later ones.)
//
// Note the one-shard ShardSet, not the plain serial Engine, is the
// reference ordering: the serial engine interleaves same-instant
// cross-node events by creation order, while the canonical rule above
// orders a node's local events before same-instant cross arrivals.
// Both are valid event orderings; only the canonical one is
// shard-count invariant.

// class1Base is the sequence-number floor of materialised cross-shard
// events. Engine-local sequence numbers are per-event increments and
// stay far below 2^48 for any practical run, so at equal times every
// local event precedes every cross event — a rule that is independent
// of shard count and of when either event was created.
const class1Base uint64 = 1 << 48

// CrossEvent is one cross-shard occurrence: a fabric message arriving
// at (or acknowledging to) a node owned by another shard.
type CrossEvent struct {
	// At is the absolute fire time.
	At Time
	// Key is the deterministic tiebreak: events with equal At must
	// carry distinct Keys, and (At, Key) defines the merge order.
	Key uint64
	// Kind and Node are routing tags for the dispatcher: Node is the
	// node the event fires at (it selects the destination shard). Aux
	// is a second dispatcher-defined tag (e.g. the far end of a flow-
	// control slot).
	Kind uint8
	Node int32
	Aux  int32
	// Msg carries the payload (a pointer, so boxing allocates nothing).
	Msg any
}

// xfire is a pooled carrier for one materialised cross event: the
// closure is built once and reused, so steady-state materialisation
// allocates nothing.
type xfire struct {
	ev CrossEvent
	fn func()
}

// crossHeap is a 4-ary min-heap of CrossEvents ordered by (At, Key).
type crossHeap struct {
	a []CrossEvent
}

func (h *crossHeap) len() int { return len(h.a) }

func crossBefore(x, y *CrossEvent) bool {
	if x.At != y.At {
		return x.At < y.At
	}
	return x.Key < y.Key
}

func (h *crossHeap) push(ev CrossEvent) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !crossBefore(&h.a[i], &h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *crossHeap) pop() CrossEvent {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[n] = CrossEvent{}
	h.a = h.a[:n]
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			return top
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if crossBefore(&h.a[c], &h.a[min]) {
				min = c
			}
		}
		if !crossBefore(&h.a[min], &h.a[i]) {
			return top
		}
		h.a[i], h.a[min] = h.a[min], h.a[i]
		i = min
	}
}

// ShardSet is a group of Engines executing one simulation under
// conservative-lookahead synchronisation. Build it with NewShardSet,
// bind every node's components to Engine(node), wire the fabric's
// cross-shard dispatch with SetDispatch, and drive it with Run/Stop
// exactly like a single Engine.
type ShardSet struct {
	nodes     int
	lookahead Time
	engines   []*Engine
	shardOf   []int32 // node -> shard
	dispatch  func(*CrossEvent)

	// inboxes[srcShard] collects cross events created during an epoch.
	// Each is written only by its own shard's goroutine and drained by
	// the coordinator at the barrier (the epoch channels order the
	// accesses), so no locks are needed.
	inboxes [][]CrossEvent
	// pending[dstShard] holds collected events not yet due, in
	// (At, Key) order; rank[dstShard] is the monotonic class-1
	// materialisation counter.
	pending []crossHeap
	rank    []uint64
	// free[dstShard] pools xfire carriers: the coordinator pops at
	// barriers, the shard's dispatch pushes back mid-epoch.
	free [][]*xfire

	// Epoch workers (started lazily, only when more than one shard).
	workers bool
	start   []chan Time
	done    chan struct{}
	stopped bool
}

// NewShardSet builds shards engines covering nodes nodes, with the
// given conservative lookahead (the minimum cross-shard event delay;
// every cross event must fire at least lookahead cycles after the
// instant that created it). The shard count is clamped to the node
// count.
func NewShardSet(nodes, shards int, lookahead Time) *ShardSet {
	if shards < 1 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	if lookahead < 1 {
		lookahead = 1
	}
	s := &ShardSet{
		nodes:     nodes,
		lookahead: lookahead,
		engines:   make([]*Engine, shards),
		shardOf:   make([]int32, nodes),
		inboxes:   make([][]CrossEvent, shards),
		pending:   make([]crossHeap, shards),
		rank:      make([]uint64, shards),
		free:      make([][]*xfire, shards),
	}
	for i := range s.engines {
		s.engines[i] = NewEngine()
	}
	// Contiguous balanced partition: node n belongs to shard
	// n*shards/nodes, so neighbouring node ids share a shard.
	for n := 0; n < nodes; n++ {
		s.shardOf[n] = int32(n * shards / nodes)
	}
	return s
}

// Shards returns the shard (engine) count.
func (s *ShardSet) Shards() int { return len(s.engines) }

// ShardOf returns the shard owning node.
func (s *ShardSet) ShardOf(node int) int { return int(s.shardOf[node]) }

// Engine returns the engine owning node. Every component of a node
// must schedule on (and spawn processes on) this engine.
func (s *ShardSet) Engine(node int) *Engine { return s.engines[s.shardOf[node]] }

// Engines returns the per-shard engines.
func (s *ShardSet) Engines() []*Engine { return s.engines }

// Lookahead returns the conservative epoch width.
func (s *ShardSet) Lookahead() Time { return s.lookahead }

// SetDispatch installs the cross-event dispatcher. It runs on the
// destination node's engine at the event's At.
func (s *ShardSet) SetDispatch(fn func(*CrossEvent)) { s.dispatch = fn }

// Cross routes ev — created by code currently executing on node from's
// shard — to ev.Node's shard. ev.At must be at least Lookahead cycles
// after from's current time; the fabric guarantees this by
// construction (its minimum cross-node delay defines the lookahead).
func (s *ShardSet) Cross(from int, ev CrossEvent) {
	src := s.shardOf[from]
	s.inboxes[src] = append(s.inboxes[src], ev)
}

// Now returns the current simulation time. After Run returns, every
// shard's clock has been aligned to the global maximum.
func (s *ShardSet) Now() Time { return s.engines[0].Now() }

// Pending reports scheduled events across all shards, including
// undelivered cross events.
func (s *ShardSet) Pending() int {
	n := 0
	for _, e := range s.engines {
		n += e.Pending()
	}
	for i := range s.pending {
		n += s.pending[i].len()
		n += len(s.inboxes[i])
	}
	return n
}

// collect drains every shard inbox into the destination shards'
// pending heaps. Runs only at barriers.
func (s *ShardSet) collect() {
	for i := range s.inboxes {
		for _, ev := range s.inboxes[i] {
			s.pending[int(s.shardOf[ev.Node])].push(ev)
		}
		s.inboxes[i] = s.inboxes[i][:0]
	}
}

// materialise pushes every pending cross event due by end onto its
// destination engine, in (At, Key) order, with class-1 sequence
// numbers. Runs only at barriers.
func (s *ShardSet) materialise(end Time) {
	for d := range s.pending {
		h := &s.pending[d]
		for h.len() > 0 && h.a[0].At <= end {
			ev := h.pop()
			var x *xfire
			if n := len(s.free[d]); n > 0 {
				x = s.free[d][n-1]
				s.free[d] = s.free[d][:n-1]
			} else {
				x = &xfire{}
				x.fn = func() {
					s.dispatch(&x.ev)
					x.ev.Msg = nil
					s.free[d] = append(s.free[d], x)
				}
			}
			x.ev = ev
			s.engines[d].pushCross(ev.At, class1Base+s.rank[d], x.fn)
			s.rank[d]++
		}
	}
}

// runEpoch runs every shard to end. With one shard — or one usable
// CPU, where worker goroutines would only add channel round-trips per
// epoch — the shards run inline, in order (epochs are independent
// across shards, so inline execution is byte-identical to the worker
// path). Otherwise persistent workers are released and awaited through
// the epoch channels (spawning goroutines per epoch would dominate the
// barrier cost at tens of thousands of epochs per run).
func (s *ShardSet) runEpoch(end Time) {
	if len(s.engines) == 1 || runtime.GOMAXPROCS(0) == 1 {
		for _, e := range s.engines {
			e.Run(end)
		}
		return
	}
	if !s.workers {
		s.workers = true
		s.start = make([]chan Time, len(s.engines))
		s.done = make(chan struct{}, len(s.engines))
		for i := range s.engines {
			s.start[i] = make(chan Time)
			go func(e *Engine, start chan Time) {
				for end := range start {
					e.Run(end)
					s.done <- struct{}{}
				}
			}(s.engines[i], s.start[i])
		}
	}
	for _, c := range s.start {
		c <- end
	}
	for range s.engines {
		<-s.done
	}
}

// Run executes events until no work remains or the clock would pass
// horizon, in conservative epochs of Lookahead cycles. It returns the
// final simulation time (the global maximum across shards, to which
// every shard's clock is aligned). Pending cross events beyond the
// horizon survive for a later Run.
func (s *ShardSet) Run(horizon Time) Time {
	if s.stopped {
		panic("sim: Run after Stop")
	}
	for {
		s.collect()
		S := Forever
		for _, e := range s.engines {
			if t := e.nextAt(); t < S {
				S = t
			}
		}
		for i := range s.pending {
			if s.pending[i].len() > 0 && s.pending[i].a[0].At < S {
				S = s.pending[i].a[0].At
			}
		}
		if S == Forever || S > horizon {
			break
		}
		end := S + s.lookahead - 1
		if end > horizon {
			end = horizon
		}
		s.materialise(end)
		s.runEpoch(end)
	}
	max := Time(0)
	for _, e := range s.engines {
		if now := e.Now(); now > max {
			max = now
		}
	}
	for _, e := range s.engines {
		e.advanceTo(max)
	}
	return max
}

// RunAll executes events until none remain.
func (s *ShardSet) RunAll() Time { return s.Run(Forever) }

// Stop terminates the epoch workers and unwinds every shard's parked
// processes. Call once, after the final Run. Safe to call twice.
func (s *ShardSet) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	if s.workers {
		for _, c := range s.start {
			close(c)
		}
	}
	for _, e := range s.engines {
		e.Stop()
	}
}
