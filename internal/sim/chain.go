package sim

import "fmt"

// Chain is a batch-schedule helper: a self-draining event that keeps
// at most one entry in the heap no matter how much work is pending
// behind it. Arm schedules the chain's fn at an absolute time; while
// an arming is outstanding further Arms are no-ops, and the fn re-arms
// for whatever work remains. A producer feeding a FIFO of timed work
// therefore costs one heap event per batch instead of one per item.
//
// Arm times must be non-decreasing while the chain is armed (the heap
// entry cannot be moved earlier), which holds for any per-chain FIFO
// work stream. Caveat for golden-pinned simulations: a chain's firing
// acquires its (time, seq) position when Arm happens to schedule it,
// not when each unit of work was produced, so collapsing existing
// per-item events into a Chain can flip same-instant tie order against
// unrelated events (this is why the torus links do not use it — see
// the Torus type comment).
type Chain struct {
	eng   *Engine
	fire  func() // pre-built: clears armed, then runs the payload fn
	at    Time   // outstanding firing time, valid while armed
	armed bool
}

// NewChain returns a chain that runs fn each time an arming fires.
func NewChain(e *Engine, fn func()) *Chain {
	c := &Chain{eng: e}
	c.fire = func() {
		c.armed = false
		fn()
	}
	return c
}

// Init makes a zero-value chain usable in place (for chains packed
// into a slice, avoiding one heap object per chain).
func (c *Chain) Init(e *Engine, fn func()) {
	c.eng = e
	c.fire = func() {
		c.armed = false
		fn()
	}
}

// Arm schedules the chain's fn at absolute time at. While armed it is
// a no-op; arming earlier than the outstanding firing is a bug.
func (c *Chain) Arm(at Time) {
	if c.armed {
		if at < c.at {
			panic(fmt.Sprintf("sim: chain re-armed at %d before outstanding firing %d", at, c.at))
		}
		return
	}
	c.armed = true
	c.at = at
	c.eng.ScheduleAt(at, c.fire)
}

// Armed reports whether a firing is outstanding.
func (c *Chain) Armed() bool { return c.armed }
