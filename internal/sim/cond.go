package sim

// Cond is a condition variable for simulated processes. Waiters queue
// in FIFO order; Signal wakes exactly one. Because the simulation is
// single-threaded, the usual "recheck the predicate in a loop" rule
// still applies (another process may run between the signal and the
// resumption), but no mutex is required.
type Cond struct {
	eng     *Engine
	waiters FIFO[*Process]
}

// NewCond returns a condition variable bound to the engine.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Init binds a zero-value condition variable in place, for conds
// packed into a slice (one backing array instead of a heap object per
// cond). The slice must not be reallocated while waiters are queued.
func (c *Cond) Init(e *Engine) { c.eng = e }

// Wait parks the calling process until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Process) {
	c.waiters.Push(p)
	p.park()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if c.waiters.Len() == 0 {
		return
	}
	c.waiters.Pop().scheduleWake(0)
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	for c.waiters.Len() > 0 {
		c.waiters.Pop().scheduleWake(0)
	}
}

// Waiting reports the number of parked waiters.
func (c *Cond) Waiting() int { return c.waiters.Len() }
