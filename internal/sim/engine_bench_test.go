package sim

import (
	"container/heap"
	"testing"
)

// The engine's event loop is the substrate under every experiment, so
// its throughput is pinned by benchmarks: BenchmarkEngineEvents is the
// hand-rolled 4-ary heap as shipped, BenchmarkBoxedHeapBaseline is the
// container/heap + interface{} design it replaced, kept here so the
// speedup claim stays measurable (target: >=2x events/sec, 0 allocs/op
// in steady state).

// benchFanout is the number of simultaneously pending events, roughly
// matching a 16-node machine's process-wake population.
const benchFanout = 64

func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine()
	n := 0
	fn := func() { n++ }
	for i := 0; i < benchFanout; i++ {
		e.Schedule(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pop the minimum, execute it, push a replacement: one full
		// schedule+dispatch cycle per iteration at constant population.
		e.Run(e.events.a[0].at)
		e.Schedule(benchFanout, fn)
	}
	b.StopTimer()
	e.RunAll()
	if n == 0 {
		b.Fatal("no events ran")
	}
}

func BenchmarkEngineProcessSleep(b *testing.B) {
	e := NewEngine()
	rounds := b.N
	e.Spawn("sleeper", func(p *Process) {
		for i := 0; i < rounds; i++ {
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.RunAll()
	b.StopTimer()
	e.Stop()
}

// boxedEvent/boxedHeap reproduce the seed implementation: a binary
// heap through container/heap's interface{} API, boxing one event per
// push.
type boxedEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type boxedHeap []boxedEvent

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(boxedEvent)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func BenchmarkBoxedHeapBaseline(b *testing.B) {
	var h boxedHeap
	var now Time
	var seq uint64
	n := 0
	fn := func() { n++ }
	for i := 0; i < benchFanout; i++ {
		seq++
		heap.Push(&h, boxedEvent{at: Time(i), seq: seq, fn: fn})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := h[0]
		heap.Pop(&h)
		now = ev.at
		ev.fn()
		seq++
		heap.Push(&h, boxedEvent{at: now + benchFanout, seq: seq, fn: fn})
	}
	b.StopTimer()
	if n == 0 {
		b.Fatal("no events ran")
	}
}

func BenchmarkStatsCounterAdd(b *testing.B) {
	e := NewEngine()
	s := NewStats(e)
	c := s.Counter("bench.cycles")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(42)
	}
	if c.Value() == 0 {
		b.Fatal("counter did not accumulate")
	}
}

func BenchmarkStatsStringKeyAdd(b *testing.B) {
	// The pattern the interned handles replaced: concatenate a name and
	// hash it per increment.
	e := NewEngine()
	s := NewStats(e)
	name := "bus.mem0"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(name+".cycles", 42)
	}
}
