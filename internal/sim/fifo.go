package sim

// FIFO is a slice-backed queue that reuses its backing array instead
// of re-slicing it away (`q = q[1:]` leaks capacity and forces the
// next append to reallocate, which put one allocation on every
// park/wake cycle in the seed implementation). Push and Pop are
// amortised zero-alloc once the queue has reached its steady-state
// depth. The zero value is ready to use.
type FIFO[T any] struct {
	buf  []T
	head int
}

// Push appends v to the tail, first compacting live elements to the
// front when more than half the backing array is consumed prefix.
// The copy moves at most as many elements as were popped since the
// last compaction, so it is amortised O(1) per operation and keeps
// memory O(live depth) even when the queue never fully drains.
func (q *FIFO[T]) Push(v T) {
	if q.head > 0 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:]) // release references for the collector
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, v)
}

// Pop removes and returns the head. The caller must check Len first.
func (q *FIFO[T]) Pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references for the collector
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}

// Peek returns the head without removing it.
func (q *FIFO[T]) Peek() T { return q.buf[q.head] }

// Len reports the number of queued elements.
func (q *FIFO[T]) Len() int { return len(q.buf) - q.head }
