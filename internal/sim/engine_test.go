package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same time, later seq
	e.RunAll()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestScheduleZeroDelayRunsAtSameTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(7, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 7 {
		t.Fatalf("zero-delay event ran at %d, want 7", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.RunAll()
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Schedule(50, func() { ran++ })
	e.Run(10)
	if ran != 1 {
		t.Fatalf("ran %d events before horizon, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunAll()
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Spawn("sleeper", func(p *Process) {
		trace = append(trace, p.Now())
		p.Sleep(100)
		trace = append(trace, p.Now())
		p.Sleep(50)
		trace = append(trace, p.Now())
	})
	e.RunAll()
	want := []Time{0, 100, 150}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcessInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Process) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					p.Sleep(10)
				}
			})
		}
		e.RunAll()
		return order
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestCondSignalFIFO(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Process) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	e.Spawn("signaler", func(p *Process) {
		p.Sleep(10)
		if c.Waiting() != 3 {
			t.Errorf("Waiting = %d, want 3", c.Waiting())
		}
		c.Signal()
		p.Sleep(10)
		c.Broadcast()
	})
	e.RunAll()
	want := []string{"w1", "w2", "w3"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStopUnwindsParkedProcesses(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	for i := 0; i < 5; i++ {
		e.Spawn("stuck", func(p *Process) {
			c.Wait(p) // never signalled
		})
	}
	e.RunAll()
	e.Stop() // must not hang
	e.Stop() // idempotent
}

func TestStatsCounters(t *testing.T) {
	e := NewEngine()
	s := NewStats(e)
	s.Inc("x")
	s.Add("x", 4)
	s.Inc("y")
	if s.Get("x") != 5 || s.Get("y") != 1 || s.Get("zero") != 0 {
		t.Fatalf("counters wrong: x=%d y=%d", s.Get("x"), s.Get("y"))
	}
	names := s.Counters()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("Counters = %v", names)
	}
}

func TestBusyTracker(t *testing.T) {
	e := NewEngine()
	s := NewStats(e)
	b := s.Busy("bus")
	e.Schedule(10, func() { b.SetBusy() })
	e.Schedule(30, func() { b.SetIdle() })
	e.Schedule(40, func() { b.AddBusy(5) })
	e.Schedule(100, func() {})
	e.RunAll()
	if b.Total() != 25 {
		t.Fatalf("Total = %d, want 25", b.Total())
	}
	if u := b.Utilisation(); u != 0.25 {
		t.Fatalf("Utilisation = %v, want 0.25", u)
	}
}

func TestSpawnManyProcessesStress(t *testing.T) {
	e := NewEngine()
	sum := 0
	for i := 0; i < 200; i++ {
		i := i
		e.Spawn("p", func(p *Process) {
			p.Sleep(Time(i % 17))
			sum++
		})
	}
	e.RunAll()
	if sum != 200 {
		t.Fatalf("sum = %d, want 200", sum)
	}
	e.Stop()
}

func TestProcessSleepZeroYields(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Process) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Process) {
		order = append(order, "b1")
		p.Sleep(0)
		order = append(order, "b2")
	})
	e.RunAll()
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
