// Package sim provides a deterministic discrete-event simulation engine
// with cooperative coroutine-style processes.
//
// The engine is the substrate for the whole CNI reproduction: buses,
// caches, network-interface devices, and the simulated processors are
// all either event callbacks or Processes scheduled by one Engine.
//
// Determinism: events fire in (time, sequence) order, and at most one
// process goroutine runs at any instant — the engine hands control to a
// process and does not proceed until that process parks or terminates.
// Two runs with the same inputs therefore produce identical schedules.
//
// An Engine is not safe for concurrent use from outside the simulation;
// all interaction must happen from event callbacks or processes.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is the simulation clock in 200 MHz processor cycles.
type Time uint64

// Forever is a time later than any practical simulation horizon.
const Forever Time = 1<<63 - 1

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{} // the running process signals here when it parks or ends
	abort   chan struct{} // closed by Stop to unwind parked processes
	stopped bool
	nprocs  int // live process goroutines
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
		abort: make(chan struct{}),
	}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay cycles. A delay of zero runs fn after
// all work at the current instant that was scheduled earlier.
func (e *Engine) Schedule(delay Time, fn func()) {
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time at, which must not precede Now.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// Run executes events until the event heap is empty or the clock would
// pass horizon. It returns the time of the last executed event.
// Processes blocked on conditions when the heap drains remain parked;
// call Stop to unwind them.
func (e *Engine) Run(horizon Time) Time {
	if e.stopped {
		panic("sim: Run after Stop")
	}
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.at > horizon {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunAll executes events until none remain.
func (e *Engine) RunAll() Time { return e.Run(Forever) }

// Stop unwinds every parked process goroutine and marks the engine
// dead. It must be called after Run returns (never from inside the
// simulation). Safe to call more than once.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	close(e.abort)
	// Parked processes panic with errAborted when they observe the
	// closed abort channel; their wrappers decrement nprocs and signal
	// procExit, but since no event loop is running we simply wait for
	// each goroutine to acknowledge via the yield channel.
	for e.nprocs > 0 {
		<-e.yield
		e.nprocs--
	}
}
