// Package sim provides a deterministic discrete-event simulation engine
// with cooperative coroutine-style processes.
//
// The engine is the substrate for the whole CNI reproduction: buses,
// caches, network-interface devices, and the simulated processors are
// all either event callbacks or Processes scheduled by one Engine.
//
// Determinism: events fire in (time, sequence) order, and at most one
// process goroutine runs at any instant — the engine hands control to a
// process and does not proceed until that process parks or terminates.
// Two runs with the same inputs therefore produce identical schedules.
//
// An Engine is not safe for concurrent use from outside the simulation;
// all interaction must happen from event callbacks or processes.
// Distinct Engines are fully independent, so whole simulations may run
// concurrently on separate goroutines (the harness exploits this).
package sim

import "fmt"

// Time is the simulation clock in 200 MHz processor cycles.
type Time uint64

// Forever is a time later than any practical simulation horizon.
const Forever Time = 1<<63 - 1

// event is one pending occurrence. Process wakes are the inner loop of
// every simulation, so they are stored unboxed (p != nil) rather than
// as a per-wake closure: dispatching one costs no allocation and no
// indirect call through a fresh func value.
type event struct {
	at  Time
	seq uint64
	fn  func()   // used when p == nil
	p   *Process // wake this process instead of calling fn
}

// before reports whether e fires before o in deterministic
// (time, sequence) order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a hand-rolled 4-ary min-heap. Compared with
// container/heap it stores events inline (no interface{} boxing, so
// push/pop allocate nothing once the slice has warmed up) and trades
// deeper comparisons for shallower trees: a 4-ary heap halves the
// depth of a binary heap, which wins on the pop-heavy workload of a
// discrete-event loop where most inserted times are near the minimum.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

// push inserts ev, restoring heap order by sifting up.
func (h *eventHeap) push(ev event) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !h.a[i].before(&h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The caller must ensure
// the heap is non-empty.
func (h *eventHeap) pop() event {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[n] = event{} // drop fn/p references so finished events can be collected
	h.a = h.a[:n]
	h.siftDown()
	return top
}

// siftDown restores heap order from the root after a pop.
func (h *eventHeap) siftDown() {
	n := len(h.a)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		// Find the smallest of up to four children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.a[c].before(&h.a[min]) {
				min = c
			}
		}
		if !h.a[min].before(&h.a[i]) {
			return
		}
		h.a[i], h.a[min] = h.a[min], h.a[i]
		i = min
	}
}

// Engine is a discrete-event scheduler.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	horizon Time // active Run's bound; valid while events dispatch
	events  eventHeap
	yield   chan struct{} // the token returns here when no event is dispatchable
	stopped bool
	procs   []*Process // every spawned process, for Stop to unwind
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return e.events.len() }

// Scheduled reports the number of events ever scheduled on this
// engine — the denominator for per-event cost accounting (the
// steady-state allocation pins divide by it).
func (e *Engine) Scheduled() uint64 { return e.seq }

// Schedule runs fn after delay cycles. A delay of zero runs fn after
// all work at the current instant that was scheduled earlier.
func (e *Engine) Schedule(delay Time, fn func()) {
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time at, which must not precede Now.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// scheduleProc enqueues a direct process-wake event: dispatching it
// resumes p without allocating a closure.
func (e *Engine) scheduleProc(delay Time, p *Process) {
	e.seq++
	e.events.push(event{at: e.now + delay, seq: e.seq, p: p})
}

// Run executes events until the event heap is empty or the clock would
// pass horizon. It returns the time of the last executed event.
// Processes blocked on conditions when the heap drains remain parked;
// call Stop to unwind them.
//
// Scheduling uses direct handoff: resuming a process lends it the
// event-loop token, and the process keeps dispatching events itself
// when it next parks (Engine.next), handing the token straight to the
// next runnable process. Control returns here only when no event is
// dispatchable, so a chain of process wakes costs one goroutine switch
// per wake instead of a park/resume round trip through this loop.
func (e *Engine) Run(horizon Time) Time {
	if e.stopped {
		panic("sim: Run after Stop")
	}
	e.horizon = horizon
	for e.events.len() > 0 {
		if e.events.a[0].at > horizon {
			break
		}
		ev := e.events.pop()
		e.now = ev.at
		if ev.p != nil {
			ev.p.waking = false
			if ev.p.done {
				continue
			}
			ev.p.resume <- struct{}{} // lend the token to the process
			<-e.yield                 // token returned: nothing dispatchable
		} else {
			ev.fn()
		}
	}
	return e.now
}

// RunAll executes events until none remain.
func (e *Engine) RunAll() Time { return e.Run(Forever) }

// nextAt returns the time of the earliest pending event, or Forever
// when the heap is empty. The sharded coordinator reads it at epoch
// barriers to size the next conservative window.
func (e *Engine) nextAt() Time {
	if e.events.len() == 0 {
		return Forever
	}
	return e.events.a[0].at
}

// pushCross enqueues an event with an externally assigned sequence
// number. The sharded coordinator materialises cross-shard events with
// ranks above every engine-local sequence (shard.go's class-1 band),
// so the merged (time, seq) order is identical for any shard count.
func (e *Engine) pushCross(at Time, seq uint64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: cross event at %d before now %d", at, e.now))
	}
	e.events.push(event{at: at, seq: seq, fn: fn})
}

// advanceTo moves the clock forward to t without dispatching events.
// The sharded coordinator aligns every shard's clock to the global
// maximum after a run, so Now-based telemetry (busy trackers, trace
// spans) reads one consistent end time.
func (e *Engine) advanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// Stop unwinds every parked process goroutine and marks the engine
// dead. It must be called after Run returns (never from inside the
// simulation). Safe to call more than once.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	// After Run returns every live process is blocked in block()
	// waiting on its resume channel. Resuming with stopped set is the
	// poisoned handoff: block panics errAborted, and the goroutine's
	// recover acknowledges on the yield channel before exiting.
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-e.yield
	}
	e.procs = nil
}
