package sim

import "testing"

// Alloc-regression tests: the engine and stats hot paths must stay
// allocation-free in steady state so the garbage collector never
// shows up in experiment wall-clock. testing.AllocsPerRun fails these
// loudly if boxing or closure allocation creeps back in.

func TestScheduleDispatchZeroAlloc(t *testing.T) {
	e := NewEngine()
	n := 0
	fn := func() { n++ }
	// Warm the heap's backing slice so growth is excluded.
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), fn)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(1, fn)
		e.RunAll()
	})
	if allocs != 0 {
		t.Errorf("Schedule+dispatch allocates %.1f objects/op, want 0", allocs)
	}
}

func TestProcessWakeZeroAlloc(t *testing.T) {
	// A parked process's wake is a direct event (no closure); verify a
	// full sleep/wake cycle allocates nothing once the process exists.
	e := NewEngine()
	release := NewCond(e)
	e.Spawn("sleeper", func(p *Process) {
		for {
			release.Wait(p)
			p.Sleep(1)
		}
	})
	e.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		release.Signal()
		e.RunAll()
	})
	// Cond.Wait re-appends the process to the waiters slice; after
	// warm-up that append reuses capacity, so the whole cycle must be
	// allocation-free.
	if allocs != 0 {
		t.Errorf("process sleep/wake cycle allocates %.1f objects/op, want 0", allocs)
	}
	e.Stop()
}

func TestCounterAddZeroAlloc(t *testing.T) {
	e := NewEngine()
	s := NewStats(e)
	c := s.Counter("x.cycles")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(7)
		c.Inc()
	})
	if allocs != 0 {
		t.Errorf("Counter.Add allocates %.1f objects/op, want 0", allocs)
	}
}

func TestBusyTrackerZeroAlloc(t *testing.T) {
	e := NewEngine()
	s := NewStats(e)
	b := s.Busy("bus")
	allocs := testing.AllocsPerRun(1000, func() {
		b.SetBusy()
		b.SetIdle()
		b.AddBusy(3)
	})
	if allocs != 0 {
		t.Errorf("BusyTracker ops allocate %.1f objects/op, want 0", allocs)
	}
}
