package sim

import "testing"

func TestFIFOMutexExclusionAndOrder(t *testing.T) {
	e := NewEngine()
	var m FIFOMutex
	var order []string
	inside := 0
	for _, name := range []string{"a", "b", "c", "d"} {
		name := name
		e.Spawn(name, func(p *Process) {
			m.Lock(p)
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated: %d inside", inside)
			}
			order = append(order, name)
			p.Sleep(10)
			inside--
			m.Unlock()
		})
	}
	e.RunAll()
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want FIFO %v", order, want)
		}
	}
	if m.Held() {
		t.Fatal("mutex still held after all processes finished")
	}
}

func TestFIFOMutexUncontended(t *testing.T) {
	e := NewEngine()
	var m FIFOMutex
	e.Spawn("solo", func(p *Process) {
		start := p.Now()
		m.Lock(p)
		if p.Now() != start {
			t.Errorf("uncontended Lock advanced time by %d", p.Now()-start)
		}
		m.Unlock()
	})
	e.RunAll()
}

func TestFIFOMutexUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var m FIFOMutex
	m.Unlock()
}

func TestFIFOMutexQueueLen(t *testing.T) {
	e := NewEngine()
	var m FIFOMutex
	e.Spawn("holder", func(p *Process) {
		m.Lock(p)
		p.Sleep(100)
		if m.QueueLen() != 2 {
			t.Errorf("QueueLen = %d, want 2", m.QueueLen())
		}
		m.Unlock()
	})
	for i := 0; i < 2; i++ {
		e.Spawn("w", func(p *Process) {
			p.Sleep(1)
			m.Lock(p)
			m.Unlock()
		})
	}
	e.RunAll()
}
