package sim

import "testing"

func TestFIFOOrderAndLen(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if q.Len() != 10 || q.Peek() != 0 {
		t.Fatalf("Len=%d Peek=%d", q.Len(), q.Peek())
	}
	for i := 0; i < 10; i++ {
		if v := q.Pop(); v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestFIFOBoundedWhenNeverEmpty(t *testing.T) {
	// A queue oscillating between depths 1 and 2 without ever draining
	// must not grow its backing array: compaction reclaims the consumed
	// prefix.
	var q FIFO[int]
	q.Push(0)
	for i := 1; i <= 1_000_000; i++ {
		q.Push(i)
		if v := q.Pop(); v != i-1 {
			t.Fatalf("Pop = %d, want %d", v, i-1)
		}
	}
	if c := cap(q.buf); c > 16 {
		t.Fatalf("backing array grew to cap %d on a depth-2 workload", c)
	}
}

func TestFIFOZeroAllocSteadyState(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 8; i++ {
		q.Push(i)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		q.Push(1)
		q.Pop()
	})
	if allocs != 0 {
		t.Errorf("steady-state Push+Pop allocates %.1f objects/op, want 0", allocs)
	}
}
