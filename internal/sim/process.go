package sim

import "fmt"

// errAborted unwinds a parked process goroutine when the engine stops.
type errAborted struct{}

// Process is a cooperative simulated thread of control. Exactly one
// process (or event callback) executes at a time; a process gives up
// control by sleeping or waiting on a Cond, and the engine resumes it
// when its wake event fires.
type Process struct {
	eng  *Engine
	name string

	resume chan struct{}
	parked bool // blocked in park(), eligible to be woken
	waking bool // a wake event is already scheduled
	done   bool
}

// Spawn creates a process running body and schedules its first
// activation at the current time. The body runs on its own goroutine
// but never concurrently with the engine or another process.
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{eng: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errAborted); ok {
					e.yield <- struct{}{} // acknowledge Stop
					return
				}
				panic(r)
			}
		}()
		p.block() // wait for first activation
		body(p)
		p.done = true
		e.yield <- struct{}{}
	}()
	p.parked = true
	p.scheduleWake(0)
	return p
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulation time.
func (p *Process) Now() Time { return p.eng.now }

// block suspends the goroutine until resumed or the engine aborts.
func (p *Process) block() {
	select {
	case <-p.resume:
	case <-p.eng.abort:
		panic(errAborted{})
	}
}

// park yields control to the engine and suspends until woken.
// The caller must have arranged a wake (scheduleWake or a Cond).
func (p *Process) park() {
	p.parked = true
	p.eng.yield <- struct{}{}
	p.block()
	p.parked = false
}

// scheduleWake arranges for the process to resume after delay cycles.
// It is idempotent per park: a second wake for the same park is a bug.
// The wake is a direct process event, not a closure — waking a process
// allocates nothing and dispatches without an indirect func call.
func (p *Process) scheduleWake(delay Time) {
	if p.waking {
		panic(fmt.Sprintf("sim: double wake of process %q", p.name))
	}
	p.waking = true
	p.eng.scheduleProc(delay, p)
}

// runProcess transfers control to p until it parks or terminates.
func (e *Engine) runProcess(p *Process) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-e.yield
	if p.done {
		e.nprocs--
	}
}

// Sleep suspends the process for d cycles. Sleep(0) yields to events
// scheduled earlier at the current instant and resumes in order.
func (p *Process) Sleep(d Time) {
	p.scheduleWake(d)
	p.park()
}
