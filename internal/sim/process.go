package sim

import "fmt"

// errAborted unwinds a parked process goroutine when the engine stops.
type errAborted struct{}

// Process is a cooperative simulated thread of control. Exactly one
// process (or event callback) executes at a time; a process gives up
// control by sleeping or waiting on a Cond, and the engine resumes it
// when its wake event fires.
type Process struct {
	eng  *Engine
	name string

	resume chan struct{}
	parked bool // blocked in park(), eligible to be woken
	waking bool // a wake event is already scheduled
	done   bool
}

// Spawn creates a process running body and schedules its first
// activation at the current time. The body runs on its own goroutine
// but never concurrently with the engine or another process.
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{eng: e, name: name, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errAborted); ok {
					e.yield <- struct{}{} // acknowledge Stop
					return
				}
				panic(r)
			}
		}()
		p.block() // wait for first activation
		body(p)
		p.done = true
		e.next(nil) // pass the event-loop token onward
	}()
	p.parked = true
	p.scheduleWake(0)
	return p
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulation time.
func (p *Process) Now() Time { return p.eng.now }

// block suspends the goroutine until resumed. A plain channel receive
// (not a select over an abort channel) keeps the park/resume handoff
// on the runtime's direct-send fast path; Stop unwinds blocked
// processes by resuming them with the stopped flag set — a poisoned
// resume — which block converts into the unwind panic.
func (p *Process) block() {
	<-p.resume
	if p.eng.stopped {
		panic(errAborted{})
	}
}

// park gives up the event-loop token and suspends until woken.
// The caller must have arranged a wake (scheduleWake or a Cond).
// Rather than bouncing through the engine goroutine, park dispatches
// the next events itself (Engine.next): when the first dispatchable
// process wake is this process's own — the common case for short
// sleeps — park returns without any goroutine switch at all.
func (p *Process) park() {
	p.parked = true
	if !p.eng.next(p) {
		p.block()
	}
	p.parked = false
}

// scheduleWake arranges for the process to resume after delay cycles.
// It is idempotent per park: a second wake for the same park is a bug.
// The wake is a direct process event, not a closure — waking a process
// allocates nothing and dispatches without an indirect func call.
func (p *Process) scheduleWake(delay Time) {
	if p.waking {
		panic(fmt.Sprintf("sim: double wake of process %q", p.name))
	}
	p.waking = true
	p.eng.scheduleProc(delay, p)
}

// next passes the event-loop token onward after the calling process
// parks or terminates. It executes fn-events inline on the calling
// goroutine and hands the token to the first runnable process it pops;
// when the heap drains or the next event lies past the horizon the
// token returns to Run. Events still fire in exact (time, seq) order —
// only the goroutine executing the loop changes — so schedules are
// bit-identical to the central-loop formulation.
//
// When the first dispatchable process wake is self's own, next keeps
// the token and returns true: the caller continues immediately with
// zero goroutine switches. self is nil for a terminating process.
func (e *Engine) next(self *Process) bool {
	for e.events.len() > 0 {
		if e.events.a[0].at > e.horizon {
			break
		}
		ev := e.events.pop()
		e.now = ev.at
		if ev.p == nil {
			ev.fn()
			continue
		}
		ev.p.waking = false
		if ev.p.done {
			continue
		}
		if ev.p == self {
			return true
		}
		ev.p.resume <- struct{}{} // hand the token to the next process
		return false
	}
	e.yield <- struct{}{} // nothing dispatchable: token back to Run
	return false
}

// Sleep suspends the process for d cycles. Sleep(0) yields to events
// scheduled earlier at the current instant and resumes in order.
func (p *Process) Sleep(d Time) {
	p.scheduleWake(d)
	p.park()
}
