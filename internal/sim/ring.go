package sim

// Ring is a power-of-two circular queue. Unlike FIFO it never copies
// live elements to reclaim space — head and tail chase each other
// around the backing array — so sustained push/pop traffic (the torus
// flight rings push and pop on every hop) touches exactly one slot per
// operation. Push is amortised zero-alloc once the ring has reached
// its steady-state depth. The zero value is ready to use.
type Ring[T any] struct {
	buf        []T // len(buf) is zero or a power of two
	head, tail uint64
}

// Push appends v to the tail, doubling the backing array when full.
func (r *Ring[T]) Push(v T) {
	if int(r.tail-r.head) == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail&uint64(len(r.buf)-1)] = v
	r.tail++
}

// grow doubles the backing array, unwrapping the live elements into
// the front of the new one.
func (r *Ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	next := make([]T, size)
	mask := uint64(len(r.buf) - 1)
	for i, j := r.head, 0; i != r.tail; i, j = i+1, j+1 {
		next[j] = r.buf[i&mask]
	}
	r.buf = next
	r.tail -= r.head
	r.head = 0
}

// Pop removes and returns the head. The caller must check Len first.
func (r *Ring[T]) Pop() T {
	var zero T
	i := r.head & uint64(len(r.buf)-1)
	v := r.buf[i]
	r.buf[i] = zero // release references for the collector
	r.head++
	return v
}

// Peek returns the head without removing it.
func (r *Ring[T]) Peek() T { return r.buf[r.head&uint64(len(r.buf)-1)] }

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return int(r.tail - r.head) }
