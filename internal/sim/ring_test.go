package sim

import "testing"

// TestRingFIFO: order is preserved through growth and wrap-around.
func TestRingFIFO(t *testing.T) {
	var r Ring[int]
	next, want := 0, 0
	// Interleave pushes and pops so head/tail wrap the backing array
	// repeatedly while the depth forces several growths.
	for round := 0; round < 50; round++ {
		for i := 0; i < round%17+1; i++ {
			r.Push(next)
			next++
		}
		for r.Len() > round%5 {
			if got := r.Peek(); got != want {
				t.Fatalf("Peek = %d, want %d", got, want)
			}
			if got := r.Pop(); got != want {
				t.Fatalf("Pop = %d, want %d", got, want)
			}
			want++
		}
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != want {
			t.Fatalf("drain Pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d values, pushed %d", want, next)
	}
}

// TestRingSteadyStateAllocs: push/pop at steady depth allocates
// nothing once the ring has grown to capacity.
func TestRingSteadyStateAllocs(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 16; i++ {
		r.Push(i)
	}
	for r.Len() > 0 {
		r.Pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			r.Push(i)
		}
		for i := 0; i < 8; i++ {
			r.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("ring steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestChainBatchesArmings: while an arming is outstanding further Arms
// are no-ops, the fn fires at the armed time, and the fn can re-arm.
func TestChainBatchesArmings(t *testing.T) {
	e := NewEngine()
	var fired []Time
	var c *Chain
	pendingWork := 3
	c = NewChain(e, func() {
		fired = append(fired, e.Now())
		pendingWork--
		if pendingWork > 0 {
			c.Arm(e.Now() + 10)
		}
	})
	c.Arm(5)
	if !c.Armed() {
		t.Fatal("chain not armed after Arm")
	}
	// Redundant arms while outstanding must not add heap events.
	c.Arm(5)
	c.Arm(7)
	if got := e.Pending(); got != 1 {
		t.Fatalf("pending events = %d, want 1 (batched)", got)
	}
	e.RunAll()
	if len(fired) != 3 || fired[0] != 5 || fired[1] != 15 || fired[2] != 25 {
		t.Fatalf("fired at %v, want [5 15 25]", fired)
	}
	if c.Armed() {
		t.Error("chain still armed after draining")
	}
}

// TestChainRearmEarlierPanics: moving an outstanding firing earlier is
// a bug the chain reports loudly.
func TestChainRearmEarlierPanics(t *testing.T) {
	e := NewEngine()
	c := NewChain(e, func() {})
	c.Arm(10)
	defer func() {
		if recover() == nil {
			t.Error("re-arming earlier than the outstanding firing did not panic")
		}
	}()
	c.Arm(3)
}
