package sim

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket geometry. Values below histLinear are recorded
// exactly; above that, each power-of-two range is split into
// histLinear linear sub-buckets, so a bucket's width is at most
// 1/histLinear of its lower bound — a 6.25% worst-case relative
// quantile error with histLinear = 16 (DESIGN.md §8).
const (
	histLinear     = 16 // sub-buckets per power of two (and the exact range)
	histLinearBits = 4  // log2(histLinear)
	// histBuckets covers the full 64-bit Time range: the exact range
	// plus histLinear sub-buckets for each exponent 5..64.
	histBuckets = histLinear + (64-histLinearBits)*histLinear
)

// Histogram is a zero-allocation log₂-bucket latency histogram for
// simulated durations. Record is pure arithmetic on an embedded
// array — safe on the per-message timestamp path — and quantiles are
// recovered by linear interpolation inside the matching bucket,
// clamped to the exactly-tracked min/max. Merge accumulates another
// histogram, which is how per-node telemetry becomes a machine-wide
// distribution.
//
// The zero value is an empty histogram ready for use.
//
// In concurrent mode (Stats.MarkConcurrent, set by sharded machines)
// Record uses atomic adds and min/max compare-and-swap loops: every
// accumulated quantity is order-independent, so a concurrent run's
// totals are byte-identical to the same observations recorded
// serially. Readers (quantiles, merges, snapshots) remain
// single-threaded, as they are on the serial path.
type Histogram struct {
	count   uint64
	sum     uint64
	min     Time
	max     Time
	buckets [histBuckets]uint64

	concurrent bool
}

// markConcurrent switches Record to the atomic path. The min field
// needs a sentinel: serial Record detects "first observation" via
// count == 0, which races under concurrent recording.
func (h *Histogram) markConcurrent() {
	h.concurrent = true
	if h.count == 0 {
		h.min = ^Time(0)
	}
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histLinear {
		return int(v)
	}
	e := bits.Len64(v) // v in [2^(e-1), 2^e), e >= 5
	sub := int((v >> uint(e-1-histLinearBits)) & (histLinear - 1))
	return histLinear + (e-1-histLinearBits)*histLinear + sub
}

// bucketBounds returns the inclusive lower and exclusive upper value
// bounds of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < histLinear {
		return uint64(i), uint64(i) + 1
	}
	e := (i-histLinear)/histLinear + histLinearBits + 1
	sub := uint64((i - histLinear) % histLinear)
	width := uint64(1) << uint(e-1-histLinearBits)
	lo = uint64(1)<<uint(e-1) + sub*width
	return lo, lo + width
}

// Record adds one observation. It never allocates.
func (h *Histogram) Record(v Time) {
	if h.concurrent {
		h.recordConcurrent(v)
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += uint64(v)
	h.buckets[bucketIndex(uint64(v))]++
}

// recordConcurrent is Record for shards recording on concurrent
// goroutines. min starts at the markConcurrent sentinel (all ones),
// so the empty case needs no special path.
func (h *Histogram) recordConcurrent(v Time) {
	for {
		cur := atomic.LoadUint64((*uint64)(&h.min))
		if uint64(v) >= cur || atomic.CompareAndSwapUint64((*uint64)(&h.min), cur, uint64(v)) {
			break
		}
	}
	for {
		cur := atomic.LoadUint64((*uint64)(&h.max))
		if uint64(v) <= cur || atomic.CompareAndSwapUint64((*uint64)(&h.max), cur, uint64(v)) {
			break
		}
	}
	atomic.AddUint64(&h.count, 1)
	atomic.AddUint64(&h.sum, uint64(v))
	atomic.AddUint64(&h.buckets[bucketIndex(uint64(v))], 1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() Time {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() Time { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank, clamped to the exact
// min/max. The relative error bound is 1/histLinear (6.25%).
//
// Edge behaviour is exact, never interpolated: an empty histogram
// returns 0 for any q, q <= 0 (and NaN) returns Min(), and q >= 1
// returns Max().
func (h *Histogram) Quantile(q float64) Time {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if !(q > 0) { // q <= 0, and NaN (every comparison with NaN is false)
		return h.min
	}
	target := uint64(q*float64(h.count)) + 1
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := bucketBounds(i)
			frac := float64(target-cum-1) / float64(c)
			v := Time(float64(lo) + frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// Merge accumulates o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// DeltaSince returns the distribution of the observations recorded
// since prev, an earlier snapshot (value copy) of this same
// histogram. Count, sum, and buckets subtract exactly. The window's
// min/max are exact when the window extended the lifetime extremes
// (or when prev was empty); otherwise they are reconstructed from the
// delta's occupied bucket bounds, clamped to the lifetime envelope —
// within the histogram's usual quantile error bound.
func (h *Histogram) DeltaSince(prev *Histogram) Histogram {
	if prev.count == 0 {
		return *h
	}
	if h.count < prev.count {
		panic("sim: DeltaSince snapshot is not a prefix of this histogram")
	}
	var d Histogram
	d.count = h.count - prev.count
	if d.count == 0 {
		return d
	}
	d.sum = h.sum - prev.sum
	first, last := -1, -1
	for i := range h.buckets {
		c := h.buckets[i] - prev.buckets[i]
		d.buckets[i] = c
		if c != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	lo, _ := bucketBounds(first)
	_, hi := bucketBounds(last)
	d.min = Time(lo)
	if h.min < prev.min {
		d.min = h.min // the window set a new lifetime minimum: exact
	} else if d.min < h.min {
		d.min = h.min // a window sample cannot undercut the lifetime min
	}
	d.max = Time(hi - 1)
	if h.max > prev.max {
		d.max = h.max // the window set a new lifetime maximum: exact
	} else if d.max > h.max {
		d.max = h.max
	}
	return d
}

// Reset empties the histogram for reuse.
func (h *Histogram) Reset() { *h = Histogram{} }

// String renders the headline percentiles for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d p99.9=%d max=%d",
		h.count, h.Min(), h.Quantile(0.50), h.Quantile(0.90),
		h.Quantile(0.99), h.Quantile(0.999), h.max)
}
