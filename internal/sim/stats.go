package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is one interned statistics cell. Components resolve the name
// once at construction (Stats.Counter) and hold the pointer; Add/Inc on
// the handle are a plain memory increment with no map hash or string
// concatenation, so they are safe to call in the simulator's innermost
// loops.
//
// In concurrent mode (Stats.MarkConcurrent, set by sharded machines)
// the increments become atomic adds: totals are identical to the
// serial mode in any interleaving, so results stay byte-identical
// across shard counts. The value stays a plain uint64 (not an
// atomic.Uint64, which would make existing value copies vet errors).
type Counter struct {
	v          uint64
	concurrent bool
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c.concurrent {
		atomic.AddUint64(&c.v, n)
		return
	}
	c.v += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c.concurrent {
		atomic.AddUint64(&c.v, 1)
		return
	}
	c.v++
}

// Value returns the accumulated count.
func (c *Counter) Value() uint64 {
	if c.concurrent {
		return atomic.LoadUint64(&c.v)
	}
	return c.v
}

// Stats accumulates named counters and time-weighted utilisation
// trackers for a simulation run. It is the one place experiment
// harnesses read results from, so every substrate (bus, cache, NI)
// records into a Stats it is given at construction.
//
// Hot paths should intern a *Counter (or *BusyTracker) handle once and
// increment through it; the string-keyed Add/Inc/Get remain for tests
// and one-off accounting.
type Stats struct {
	eng        *Engine
	concurrent bool
	counters   map[string]*Counter
	busy       map[string]*BusyTracker
	hists      map[string]*Histogram
}

// NewStats returns an empty Stats bound to the engine's clock.
func NewStats(e *Engine) *Stats {
	return &Stats{
		eng:      e,
		counters: make(map[string]*Counter),
		busy:     make(map[string]*BusyTracker),
		hists:    make(map[string]*Histogram),
	}
}

// SetEngine rebinds the clock used by busy trackers created from now
// on. Sharded machines point it at each node's shard engine while
// building that node, so per-node trackers read their own shard's
// clock; on a serial machine it is a no-op.
func (s *Stats) SetEngine(e *Engine) { s.eng = e }

// MarkConcurrent switches every counter and histogram — existing and
// future — to atomic recording, for machines whose shards run on
// concurrent goroutines. Totals are identical to serial recording.
// Handle creation itself stays single-threaded (components intern
// handles at machine build time, before any shard runs).
func (s *Stats) MarkConcurrent() {
	s.concurrent = true
	for _, c := range s.counters {
		c.concurrent = true
	}
	for _, h := range s.hists {
		h.markConcurrent()
	}
}

// Counter returns (creating if needed) the interned counter handle for
// name. Callers on hot paths resolve once and keep the pointer.
func (s *Stats) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{concurrent: s.concurrent}
		s.counters[name] = c
	}
	return c
}

// Add increments the named counter by n.
func (s *Stats) Add(name string, n uint64) { s.Counter(name).Add(n) }

// Inc increments the named counter by one.
func (s *Stats) Inc(name string) { s.Counter(name).Inc() }

// Get returns the value of the named counter (zero if never touched).
func (s *Stats) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Counters returns the counter names in sorted order.
func (s *Stats) Counters() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Busy returns (creating if needed) the named busy tracker.
func (s *Stats) Busy(name string) *BusyTracker {
	b, ok := s.busy[name]
	if !ok {
		b = &BusyTracker{eng: s.eng}
		s.busy[name] = b
	}
	return b
}

// Histogram returns (creating if needed) the interned latency
// histogram for name. As with Counter, hot paths resolve the handle
// once and Record through the pointer.
func (s *Stats) Histogram(name string) *Histogram {
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		if s.concurrent {
			h.markConcurrent()
		}
		s.hists[name] = h
	}
	return h
}

// Histograms returns the histogram names in sorted order.
func (s *Stats) Histograms() []string {
	names := make([]string, 0, len(s.hists))
	for n := range s.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the counters, one per line, for debugging.
func (s *Stats) String() string {
	var b strings.Builder
	for _, n := range s.Counters() {
		fmt.Fprintf(&b, "%-40s %12d\n", n, s.counters[n].Value())
	}
	return b.String()
}

// BusyTracker integrates the time a resource spends busy, used for bus
// occupancy measurements (paper §5.2).
type BusyTracker struct {
	eng       *Engine
	busySince Time
	isBusy    bool
	total     Time
}

// SetBusy marks the resource busy from now.
func (b *BusyTracker) SetBusy() {
	if b.isBusy {
		return
	}
	b.isBusy = true
	b.busySince = b.eng.now
}

// SetIdle marks the resource idle from now, accumulating busy time.
func (b *BusyTracker) SetIdle() {
	if !b.isBusy {
		return
	}
	b.isBusy = false
	b.total += b.eng.now - b.busySince
}

// AddBusy accumulates d cycles of busy time directly. Substrates that
// hold a resource for a known duration may account it in one call
// instead of bracketing with SetBusy/SetIdle.
func (b *BusyTracker) AddBusy(d Time) { b.total += d }

// Total returns accumulated busy cycles (closing an open interval).
func (b *BusyTracker) Total() Time {
	if b.isBusy {
		b.total += b.eng.now - b.busySince
		b.busySince = b.eng.now
	}
	return b.total
}

// Utilisation returns busy time as a fraction of elapsed time.
func (b *BusyTracker) Utilisation() float64 {
	if b.eng.now == 0 {
		return 0
	}
	return float64(b.Total()) / float64(b.eng.now)
}
