package sim

import (
	"math"
	"testing"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := Time(0); v < histLinear; v++ {
		h.Record(v)
	}
	if h.Count() != histLinear {
		t.Fatalf("count = %d, want %d", h.Count(), histLinear)
	}
	if h.Min() != 0 || h.Max() != histLinear-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", h.Min(), h.Max(), histLinear-1)
	}
	// Values below histLinear land in exact buckets, so quantiles of a
	// uniform 0..15 population are exact.
	if got := h.Quantile(0.5); got != 8 {
		t.Errorf("p50 = %d, want 8", got)
	}
	if got := h.Quantile(1); got != histLinear-1 {
		t.Errorf("p100 = %d, want %d", got, histLinear-1)
	}
}

// TestHistogramQuantileErrorBound checks the documented 1/histLinear
// relative error across magnitudes.
func TestHistogramQuantileErrorBound(t *testing.T) {
	for _, v := range []Time{17, 100, 1000, 12345, 1 << 20, 1<<40 + 12345} {
		var h Histogram
		h.Record(v)
		got := h.Quantile(0.99)
		err := math.Abs(float64(got)-float64(v)) / float64(v)
		if err > 1.0/histLinear {
			t.Errorf("value %d: p99 = %d, relative error %.4f > %.4f", v, got, err, 1.0/histLinear)
		}
	}
}

func TestHistogramBucketBoundsRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 30, 1<<63 + 5} {
		i := bucketIndex(v)
		lo, hi := bucketBounds(i)
		if v < lo || v >= hi {
			t.Errorf("value %d maps to bucket %d with bounds [%d,%d)", v, i, lo, hi)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := Time(1); v <= 1000; v++ {
		whole.Record(v)
		if v%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatal("merged histogram differs from the directly recorded one")
	}
	if a.Mean() != whole.Mean() || a.Quantile(0.999) != whole.Quantile(0.999) {
		t.Fatal("merged summary statistics differ")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

// TestHistogramQuantileEdges pins the bug-sweep contract for the
// quantile edges: q <= 0 (and NaN) returns Min(), q >= 1 returns
// Max(), an empty histogram returns zero for every q, and no answer
// interpolates off a bucket edge past the exactly-tracked extremes.
func TestHistogramQuantileEdges(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		values []Time
		q      float64
		want   Time
	}{
		{"empty q=0", nil, 0, 0},
		{"empty q=0.5", nil, 0.5, 0},
		{"empty q=1", nil, 1, 0},
		{"empty NaN", nil, nan, 0},
		{"single q=0", []Time{7}, 0, 7},
		{"single q=0.5", []Time{7}, 0.5, 7},
		{"single q=1", []Time{7}, 1, 7},
		{"two q=0", []Time{3, 9}, 0, 3},
		{"two q=1", []Time{3, 9}, 1, 9},
		{"q<0 clamps to min", []Time{3, 9}, -0.5, 3},
		{"q>1 clamps to max", []Time{3, 9}, 1.5, 9},
		{"NaN clamps to min", []Time{3, 9}, nan, 3},
		// 1000 shares a log bucket spanning [960, 1024); without the
		// min/max clamp, q=0 would interpolate to the bucket's lower
		// bound (960) and q=1 to its upper edge, neither ever recorded.
		{"bucket lower edge", []Time{1000}, 0, 1000},
		{"bucket upper edge", []Time{1000}, 1, 1000},
		{"bucket mid", []Time{1000}, 0.5, 1000},
	}
	for _, c := range cases {
		var h Histogram
		for _, v := range c.values {
			h.Record(v)
		}
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("%s: Quantile(%v) over %v = %d, want %d", c.name, c.q, c.values, got, c.want)
		}
	}
}

// TestHistogramRecordZeroAlloc pins the per-message telemetry path at
// zero allocations (the issue's contract: Record sits on the message
// timestamp path of every fabric delivery).
func TestHistogramRecordZeroAlloc(t *testing.T) {
	var h Histogram
	v := Time(1)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v = v*7 + 3
	})
	if allocs != 0 {
		t.Errorf("Histogram.Record allocates %.1f objects/op, want 0", allocs)
	}
}

func TestStatsHistogramInterning(t *testing.T) {
	e := NewEngine()
	s := NewStats(e)
	h1 := s.Histogram("lat")
	h2 := s.Histogram("lat")
	if h1 != h2 {
		t.Fatal("Histogram should intern by name")
	}
	h1.Record(5)
	if s.Histogram("lat").Count() != 1 {
		t.Fatal("recorded observation lost")
	}
	if got := s.Histograms(); len(got) != 1 || got[0] != "lat" {
		t.Fatalf("Histograms() = %v", got)
	}
}

func TestHistogramDeltaSince(t *testing.T) {
	var h Histogram
	for _, v := range []Time{10, 100, 1000} {
		h.Record(v)
	}
	snap := h // run-boundary snapshot
	for _, v := range []Time{20, 200, 2000} {
		h.Record(v)
	}
	d := h.DeltaSince(&snap)
	if d.Count() != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count())
	}
	if got, want := d.Mean(), float64(20+200+2000)/3; got != want {
		t.Fatalf("delta mean = %v, want %v", got, want)
	}
	// The window set a new lifetime maximum, so max is exact; the
	// minimum (20, below the exact-bucket threshold's power ranges but
	// above the lifetime min of 10) must come back within the bucket
	// error bound and inside the window's real envelope.
	if d.Max() != 2000 {
		t.Fatalf("delta max = %d, want exact 2000", d.Max())
	}
	if d.Min() < 10 || d.Min() > 20 {
		t.Fatalf("delta min = %d, want within [10,20]", d.Min())
	}

	// Empty-prefix snapshot: delta is the histogram itself, exactly.
	var zero Histogram
	if full := h.DeltaSince(&zero); full != h {
		t.Fatal("delta against an empty snapshot must equal the full histogram")
	}
	// Empty window: zero-valued histogram.
	if e := h.DeltaSince(&h); e.Count() != 0 || e.Quantile(0.5) != 0 {
		t.Fatalf("empty window delta = %+v", e)
	}
}
