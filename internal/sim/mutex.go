package sim

// FIFOMutex is a strictly fair mutual-exclusion lock for simulated
// processes, used to model multiplexed buses that admit one
// outstanding transaction. Unlock hands the lock directly to the
// longest-waiting process, so arrival order equals service order.
type FIFOMutex struct {
	held    bool
	waiters FIFO[*Process]
}

// Lock blocks the process until it owns the mutex.
func (m *FIFOMutex) Lock(p *Process) {
	if !m.held {
		m.held = true
		return
	}
	m.waiters.Push(p)
	p.park() // direct handoff: the lock is ours when we resume
}

// Unlock releases the mutex or hands it to the next waiter.
func (m *FIFOMutex) Unlock() {
	if !m.held {
		panic("sim: Unlock of unheld FIFOMutex")
	}
	if m.waiters.Len() == 0 {
		m.held = false
		return
	}
	// The mutex stays held on behalf of the next waiter.
	m.waiters.Pop().scheduleWake(0)
}

// Held reports whether the mutex is currently owned.
func (m *FIFOMutex) Held() bool { return m.held }

// QueueLen reports the number of processes waiting for the mutex.
func (m *FIFOMutex) QueueLen() int { return m.waiters.Len() }
