// Package proc models the node's processor: a 200 MHz dual-issue
// SPARC-like core (paper §4.1). The model is communication-directed:
// computation is an explicit cycle cost, cachable accesses go through
// the MOESI cache, uncached device accesses go over the buses, and a
// store buffer makes uncached stores posted (with MEMBAR to drain it,
// as the paper's three-cycle CDR handshake requires).
package proc

import (
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/params"
	"repro/internal/sim"
)

// pendingStore is one store-buffer entry.
type pendingStore struct {
	dev bus.Device
	reg uint64
	val uint64
}

// CPU is the simulated processor core. All methods taking a
// *sim.Process must be called from the software process running on
// this CPU; they advance simulated time.
type CPU struct {
	ID    int
	eng   *sim.Engine
	stats *sim.Stats
	fab   *bus.Fabric
	cache *cache.Cache
	name  string

	sbQ     sim.FIFO[pendingStore]
	sbWork  *sim.Cond
	sbSpace *sim.Cond

	sbFull       *sim.Counter
	membarStalls *sim.Counter
}

// New creates a CPU with its cache and starts the store-buffer drain
// process.
func New(e *sim.Engine, st *sim.Stats, f *bus.Fabric, c *cache.Cache, id int, name string) *CPU {
	cpu := &CPU{
		ID:           id,
		eng:          e,
		stats:        st,
		fab:          f,
		cache:        c,
		name:         name,
		sbWork:       sim.NewCond(e),
		sbSpace:      sim.NewCond(e),
		sbFull:       st.Counter(name + ".sb.full"),
		membarStalls: st.Counter(name + ".membar.stall"),
	}
	e.Spawn(name+".sbdrain", cpu.drainStoreBuffer)
	return cpu
}

// Cache exposes the CPU's cache (for machine assembly and tests).
func (c *CPU) Cache() *cache.Cache { return c.cache }

// Compute advances the process by n cycles of computation.
func (c *CPU) Compute(p *sim.Process, n sim.Time) {
	if n > 0 {
		p.Sleep(n)
	}
}

// Load performs a cachable load (up to 8 bytes) at addr.
func (c *CPU) Load(p *sim.Process, addr uint64) { c.cache.Load(p, addr) }

// Store performs a cachable store (up to 8 bytes) at addr.
func (c *CPU) Store(p *sim.Process, addr uint64) { c.cache.Store(p, addr) }

// LoadRange issues word loads covering [addr, addr+bytes).
func (c *CPU) LoadRange(p *sim.Process, addr uint64, bytes int) {
	for off := 0; off < bytes; off += 8 {
		c.cache.Load(p, addr+uint64(off))
	}
}

// StoreRange issues word stores covering [addr, addr+bytes).
func (c *CPU) StoreRange(p *sim.Process, addr uint64, bytes int) {
	for off := 0; off < bytes; off += 8 {
		c.cache.Store(p, addr+uint64(off))
	}
}

// UncachedLoad performs a blocking uncached 8-byte load from a device
// register and returns the device's value. Like SPARC TSO device
// access, it first drains the store buffer so posted uncached stores
// reach the device before the load.
func (c *CPU) UncachedLoad(p *sim.Process, dev bus.Device, reg uint64) uint64 {
	c.Membar(p)
	return c.fab.UncachedLoad(p, dev, reg)
}

// UncachedStore posts an uncached 8-byte store through the store
// buffer: the processor stalls only when the buffer is full. The
// store reaches the device when the drain process issues it on the
// bus (use Membar to wait for that).
func (c *CPU) UncachedStore(p *sim.Process, dev bus.Device, reg, val uint64) {
	for c.sbQ.Len() >= params.StoreBufferDepth {
		c.sbFull.Inc()
		c.sbSpace.Wait(p)
	}
	c.sbQ.Push(pendingStore{dev, reg, val})
	c.sbWork.Signal()
	p.Sleep(params.HitCycles) // issue cost; completion is asynchronous
}

// Membar stalls until the store buffer has fully drained, including
// the store currently occupying the bus.
func (c *CPU) Membar(p *sim.Process) {
	for c.sbQ.Len() > 0 {
		c.membarStalls.Inc()
		c.sbSpace.Wait(p)
	}
}

// drainStoreBuffer is the store buffer's bus engine.
func (c *CPU) drainStoreBuffer(p *sim.Process) {
	for {
		for c.sbQ.Len() == 0 {
			c.sbWork.Wait(p)
		}
		e := c.sbQ.Peek()
		c.fab.UncachedStore(p, e.dev, e.reg, e.val)
		c.sbQ.Pop()
		c.sbSpace.Broadcast()
	}
}
