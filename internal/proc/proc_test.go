package proc

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/params"
	"repro/internal/sim"
)

// echoDev records register traffic with timestamps.
type echoDev struct {
	eng    *sim.Engine
	regs   map[uint64]uint64
	writes []sim.Time
}

func (d *echoDev) AgentName() string                    { return "dev" }
func (d *echoDev) AgentClass() params.AgentClass        { return params.ClassDevice }
func (d *echoDev) SnoopTx(tx *bus.Tx, h bool) bus.Snoop { return bus.Snoop{} }
func (d *echoDev) RegRead(reg uint64) uint64            { return d.regs[reg] }
func (d *echoDev) RegWrite(reg, val uint64) {
	d.regs[reg] = val
	d.writes = append(d.writes, d.eng.Now())
}

func rig(t *testing.T) (*sim.Engine, *CPU, *echoDev) {
	t.Helper()
	e := sim.NewEngine()
	st := sim.NewStats(e)
	f := bus.NewFabric(e, st, "t", false)
	mem := cache.NewMemory(f, "mem")
	f.AddRegion(bus.Region{Name: "dram", Base: 0, Size: 1 << 24, Home: mem, Loc: params.MemoryBus, Cachable: true})
	c := cache.New(e, st, f, "c", 4096)
	cpu := New(e, st, f, c, 0, "cpu0")
	dev := &echoDev{eng: e, regs: make(map[uint64]uint64)}
	f.Attach(dev, params.MemoryBus)
	return e, cpu, dev
}

func TestComputeAdvancesTime(t *testing.T) {
	e, cpu, _ := rig(t)
	e.Spawn("t", func(p *sim.Process) {
		start := p.Now()
		cpu.Compute(p, 123)
		if p.Now()-start != 123 {
			t.Errorf("Compute advanced %d, want 123", p.Now()-start)
		}
		cpu.Compute(p, 0) // zero compute is free
		if p.Now()-start != 123 {
			t.Error("Compute(0) advanced time")
		}
	})
	e.RunAll()
	e.Stop()
}

func TestPostedStoreReturnsImmediately(t *testing.T) {
	e, cpu, dev := rig(t)
	e.Spawn("t", func(p *sim.Process) {
		start := p.Now()
		cpu.UncachedStore(p, dev, 8, 1)
		if p.Now()-start != params.HitCycles {
			t.Errorf("posted store stalled %d cycles, want %d", p.Now()-start, params.HitCycles)
		}
	})
	e.RunAll()
	e.Stop()
	if dev.regs[8] != 1 {
		t.Error("store never drained to the device")
	}
}

func TestMembarWaitsForDrain(t *testing.T) {
	e, cpu, dev := rig(t)
	e.Spawn("t", func(p *sim.Process) {
		for i := uint64(0); i < 3; i++ {
			cpu.UncachedStore(p, dev, i, i)
		}
		cpu.Membar(p)
		if len(dev.writes) != 3 {
			t.Errorf("Membar returned with %d of 3 stores drained", len(dev.writes))
		}
	})
	e.RunAll()
	e.Stop()
}

func TestStoreBufferFullStalls(t *testing.T) {
	e, cpu, dev := rig(t)
	e.Spawn("t", func(p *sim.Process) {
		start := p.Now()
		for i := uint64(0); i < uint64(params.StoreBufferDepth)+4; i++ {
			cpu.UncachedStore(p, dev, i, i)
		}
		// The overflowing stores must have waited for bus drains (12
		// cycles each), not completed in issue time alone.
		if p.Now()-start < sim.Time(params.UncStoreMemBus) {
			t.Errorf("overflowing store buffer did not stall (took %d)", p.Now()-start)
		}
	})
	e.RunAll()
	e.Stop()
	if len(dev.writes) != params.StoreBufferDepth+4 {
		t.Errorf("drained %d stores", len(dev.writes))
	}
}

func TestUncachedLoadDrainsStoreBuffer(t *testing.T) {
	e, cpu, dev := rig(t)
	e.Spawn("t", func(p *sim.Process) {
		cpu.UncachedStore(p, dev, 8, 42)
		// TSO device access: the load must observe the prior store.
		if got := cpu.UncachedLoad(p, dev, 8); got != 42 {
			t.Errorf("load = %d, want 42 (store buffer bypassed?)", got)
		}
	})
	e.RunAll()
	e.Stop()
}

func TestLoadStoreRangeTouchesEveryWord(t *testing.T) {
	e, cpu, _ := rig(t)
	st := cpu.stats
	e.Spawn("t", func(p *sim.Process) {
		cpu.StoreRange(p, 0, 64) // one block: 1 miss + 7 hits
		cpu.LoadRange(p, 0, 64)  // 8 hits
	})
	e.RunAll()
	e.Stop()
	if st.Get("c.store.miss") != 1 || st.Get("c.store.hit") != 7 {
		t.Errorf("stores: miss=%d hit=%d", st.Get("c.store.miss"), st.Get("c.store.hit"))
	}
	if st.Get("c.load.hit") != 8 {
		t.Errorf("loads: hit=%d", st.Get("c.load.hit"))
	}
}
