package machine

import (
	"fmt"
	"testing"

	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

// pingPong runs one round-trip of a size-byte message between two
// nodes and returns the round-trip time in cycles.
func pingPong(t *testing.T, cfg params.Config, size, rounds int) sim.Time {
	t.Helper()
	m := New(cfg)
	defer m.Stop()

	const (
		hPing = 1
		hPong = 2
	)
	gotPong := 0
	m.Nodes[1].Msgr.Register(hPing, func(ctx *msg.Context) {
		ctx.M.Send(ctx.P, ctx.Src, hPong, ctx.Size, nil)
	})
	m.Nodes[0].Msgr.Register(hPong, func(ctx *msg.Context) {
		gotPong++
	})

	var start, end sim.Time
	m.Spawn(0, func(p *sim.Process, n *Node) {
		// Warm-up round to reach steady cache state.
		n.Msgr.Send(p, 1, hPing, size, nil)
		n.Msgr.PollUntil(p, func() bool { return gotPong == 1 })
		start = p.Now()
		for r := 0; r < rounds; r++ {
			n.Msgr.Send(p, 1, hPing, size, nil)
			want := 2 + r
			n.Msgr.PollUntil(p, func() bool { return gotPong == want })
		}
		end = p.Now()
	})
	m.Spawn(1, func(p *sim.Process, n *Node) {
		n.Msgr.PollUntil(p, func() bool { return gotPong == 1+rounds })
	})
	m.Run(sim.Time(1) << 40)
	if gotPong != 1+rounds {
		t.Fatalf("%s: pong count = %d, want %d (deadlock?)", cfg.Name(), gotPong, 1+rounds)
	}
	return (end - start) / sim.Time(rounds)
}

func TestPingPongAllNIsMemoryBus(t *testing.T) {
	rtts := make(map[params.NIKind]sim.Time)
	for _, ni := range params.AllNIs {
		cfg := params.Config{Nodes: 2, NI: ni, Bus: params.MemoryBus}
		rtt := pingPong(t, cfg, 64, 4)
		rtts[ni] = rtt
		t.Logf("%-10s RTT(64B) = %d cycles (%.2f us)", ni, rtt, Microseconds(rtt))
		if rtt < 2*params.NetLatency {
			t.Errorf("%s: RTT %d below network floor", ni, rtt)
		}
		if rtt > 20000 {
			t.Errorf("%s: RTT %d implausibly high", ni, rtt)
		}
	}
	// Paper Fig 6a orderings: every CNI beats NI2w; CNI4 is the worst
	// CNI; the CQ designs are the best.
	for _, ni := range []params.NIKind{params.CNI4, params.CNI16Q, params.CNI512Q, params.CNI16Qm} {
		if rtts[ni] >= rtts[params.NI2w] {
			t.Errorf("%s RTT %d should beat NI2w %d", ni, rtts[ni], rtts[params.NI2w])
		}
	}
	if rtts[params.CNI16Q] > rtts[params.CNI4] {
		t.Errorf("CNI16Q %d should not be slower than CNI4 %d", rtts[params.CNI16Q], rtts[params.CNI4])
	}
}

func TestPingPongAllNIsIOBus(t *testing.T) {
	rtts := make(map[params.NIKind]sim.Time)
	for _, ni := range []params.NIKind{params.NI2w, params.CNI4, params.CNI16Q, params.CNI512Q} {
		cfg := params.Config{Nodes: 2, NI: ni, Bus: params.IOBus}
		rtt := pingPong(t, cfg, 64, 4)
		rtts[ni] = rtt
		t.Logf("%-10s RTT(64B) = %d cycles (%.2f us)", ni, rtt, Microseconds(rtt))
	}
	for _, ni := range []params.NIKind{params.CNI4, params.CNI16Q, params.CNI512Q} {
		if rtts[ni] >= rtts[params.NI2w] {
			t.Errorf("%s RTT %d should beat NI2w %d on the I/O bus", ni, rtts[ni], rtts[params.NI2w])
		}
	}
}

func TestPingPongCacheBusNI2w(t *testing.T) {
	cfg := params.Config{Nodes: 2, NI: params.NI2w, Bus: params.CacheBus}
	rtt := pingPong(t, cfg, 64, 4)
	t.Logf("NI2w@cache RTT(64B) = %d cycles (%.2f us)", rtt, Microseconds(rtt))
	memRtt := pingPong(t, params.Config{Nodes: 2, NI: params.NI2w, Bus: params.MemoryBus}, 64, 4)
	if rtt >= memRtt {
		t.Errorf("cache-bus NI2w RTT %d should beat memory-bus %d", rtt, memRtt)
	}
}

func TestPingPongMessageSizes(t *testing.T) {
	for _, size := range []int{8, 64, 256, 1024} {
		cfg := params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}
		rtt := pingPong(t, cfg, size, 2)
		t.Logf("CNI512Q RTT(%dB) = %d cycles", size, rtt)
	}
}

func TestQm16IOBusRejected(t *testing.T) {
	cfg := params.Config{Nodes: 2, NI: params.CNI16Qm, Bus: params.IOBus}
	if err := cfg.Validate(); err == nil {
		t.Fatal("CNI16Qm on the I/O bus should be invalid")
	}
}

func TestManyNodesAllToOne(t *testing.T) {
	// Hot-spot smoke test: every node sends to node 0; exercises
	// backpressure and software flow control without deadlock.
	cfg := params.Config{Nodes: 4, NI: params.CNI16Q, Bus: params.MemoryBus}
	m := New(cfg)
	defer m.Stop()
	const hMsg = 1
	const per = 8
	got := 0
	for _, n := range m.Nodes {
		n.Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
	}
	for id := 1; id < cfg.Nodes; id++ {
		m.Spawn(id, func(p *sim.Process, n *Node) {
			for i := 0; i < per; i++ {
				n.Msgr.Send(p, 0, hMsg, 128, nil)
			}
		})
	}
	m.Spawn(0, func(p *sim.Process, n *Node) {
		n.Msgr.PollUntil(p, func() bool { return got == (cfg.Nodes-1)*per })
	})
	m.Run(sim.Time(1) << 40)
	if got != (cfg.Nodes-1)*per {
		t.Fatalf("received %d messages, want %d", got, (cfg.Nodes-1)*per)
	}
}

func TestNI2wSmallFIFOBackpressure(t *testing.T) {
	// A burst larger than NI2w's FIFO forces network backpressure and
	// the sender's software drain; everything must still arrive.
	cfg := params.Config{Nodes: 2, NI: params.NI2w, Bus: params.MemoryBus}
	m := New(cfg)
	defer m.Stop()
	const hMsg = 1
	got := 0
	m.Nodes[1].Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
	m.Nodes[0].Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
	const burst = 20
	m.Spawn(0, func(p *sim.Process, n *Node) {
		for i := 0; i < burst; i++ {
			n.Msgr.Send(p, 1, hMsg, 200, nil)
		}
	})
	m.Spawn(1, func(p *sim.Process, n *Node) {
		n.Msgr.PollUntil(p, func() bool { return got == burst })
	})
	m.Run(sim.Time(1) << 40)
	if got != burst {
		t.Fatalf("received %d, want %d", got, burst)
	}
	if m.Stats.Get("net.backpressure") == 0 {
		t.Error("expected backpressure events with NI2w's shallow FIFO")
	}
}

func TestStatsOccupancyNonzero(t *testing.T) {
	cfg := params.Config{Nodes: 2, NI: params.CNI16Qm, Bus: params.MemoryBus}
	m := New(cfg)
	defer m.Stop()
	const hMsg = 1
	got := 0
	m.Nodes[1].Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
	m.Spawn(0, func(p *sim.Process, n *Node) { n.Msgr.Send(p, 1, hMsg, 64, nil) })
	m.Spawn(1, func(p *sim.Process, n *Node) {
		n.Msgr.PollUntil(p, func() bool { return got == 1 })
	})
	m.Run(sim.Time(1) << 40)
	if m.MemBusOccupancy() == 0 {
		t.Error("memory-bus occupancy should be nonzero")
	}
	if m.Stats.Get("net.msg") != 1 {
		t.Errorf("net.msg = %d, want 1", m.Stats.Get("net.msg"))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		cfg := params.Config{Nodes: 3, NI: params.CNI512Q, Bus: params.MemoryBus}
		m := New(cfg)
		defer m.Stop()
		const hMsg = 1
		got := 0
		for _, n := range m.Nodes {
			n.Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
		}
		for id := 1; id < 3; id++ {
			m.Spawn(id, func(p *sim.Process, n *Node) {
				for i := 0; i < 5; i++ {
					n.Msgr.Send(p, 0, hMsg, 100, nil)
				}
			})
		}
		m.Spawn(0, func(p *sim.Process, n *Node) {
			n.Msgr.PollUntil(p, func() bool { return got == 10 })
		})
		return m.Run(sim.Time(1) << 40)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
	}
}

func ExampleMicroseconds() {
	fmt.Printf("%.1f", Microseconds(400))
	// Output: 2.0
}
