// Package machine assembles the paper's simulated parallel machine
// (§4.1): N nodes, each with a 200 MHz dual-issue processor, a 256 KB
// direct-mapped cache on a 100 MHz coherent memory bus, optionally a
// 50 MHz coherent I/O bus behind a bridge, and one of the five network
// interfaces; nodes are connected by a pluggable sliding-window
// interconnect — the paper's fixed-latency flat network by default,
// or a contention-modelled 2D torus (params.Config.Topology).
package machine

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/msg"
	"repro/internal/network"
	"repro/internal/nic"
	"repro/internal/params"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Node-local address map. Every node has an identical private
// layout; queue regions for device-homed NIs sit outside DRAM, the
// memory-homed CNI16Qm queue lives in pinned DRAM.
// The processor cache is 256 KB direct-mapped, so addresses collide
// when they share (addr/64) mod 4096. The bases below stagger every
// region into a distinct index range: user data gets indexes
// 0..1023, the messaging buffer 1024.., software shadows 2048..,
// the send queue 2112.., and the receive queue 2688.. — mirroring an
// operating system laying out pinned NI pages to avoid conflicting
// with itself. (Device-homed and memory-homed queues reuse the same
// index ranges; a configuration only ever has one of them.)
const (
	DRAMBase   = 0x0000_0000
	DRAMSize   = 0x1000_0000 // 256 MB
	UserBase   = 0x0100_0000 // application working set (cache indexes 0..1023)
	MsgBufBase = 0x0601_0000 // messaging-layer staging buffers (1024..)
	ShadowBase = 0x0702_0000 // CQ software shadow pointers (2048..)
	QmSendBase = 0x0802_1000 // CNI16Qm send queue, memory-homed (2112..)
	QmRecvBase = 0x0902_a000 // CNI16Qm receive queue, memory-homed (2688..)

	DevSendBase = 0x4002_1000 // device-homed send region (2112..)
	DevRecvBase = 0x4102_a000 // device-homed receive region (2688..)
	DevRegionSz = 0x0000_9000 // 36 KB window: pointers + up to 512 blocks
)

// Node is one processor + NI endpoint.
type Node struct {
	ID     int
	Fabric *bus.Fabric
	Mem    *cache.Memory
	Cache  *cache.Cache
	CPU    *proc.CPU
	NI     nic.NI
	Msgr   *msg.Messenger
}

// Machine is the whole simulated system.
type Machine struct {
	Cfg   params.Config
	Eng   *sim.Engine
	Stats *sim.Stats
	Net   network.Interconnect
	Nodes []*Node

	// shards is the conservative-lookahead engine group, non-nil only
	// when Cfg selects the sharded path (Shards >= 1, a torus, and more
	// than 16 nodes — small machines and the flat network stay on the
	// plain serial engine, byte-identically). When set, Eng is shard
	// 0's engine and each node's components are bound to the engine
	// owning that node.
	shards *sim.ShardSet

	// Rec/Smp are the telemetry recorder and sampler, nil unless
	// Cfg.Trace activates them (internal/trace).
	Rec *trace.Recorder
	Smp *trace.Sampler
}

// useShards reports whether cfg selects the sharded engine: an
// explicit Shards setting, a torus fabric (it defines the cross-shard
// lookahead), and a machine big enough that the partition is
// meaningful. Everything else runs the legacy serial engine.
func useShards(cfg params.Config) bool {
	return cfg.Shards >= 1 && cfg.Nodes > 16 && cfg.Topology == params.TopoTorus
}

// newInterconnect builds the fabric cfg.Topology selects.
func newInterconnect(cfg params.Config, eng *sim.Engine, st *sim.Stats) network.Interconnect {
	if cfg.Topology == params.TopoTorus {
		return network.NewTorus(eng, st, cfg.Nodes)
	}
	return network.New(eng, st, cfg.Nodes)
}

// New builds a machine for cfg. It panics on invalid configurations
// (use cfg.Validate first for a friendly error).
func New(cfg params.Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var shards *sim.ShardSet
	var eng *sim.Engine
	if useShards(cfg) {
		// The torus's minimum cross-node delay is one hop's latency
		// (the window-credit ack of a one-hop neighbour); link arrivals
		// are slower still (occupancy + hop latency). That bound is the
		// conservative lookahead.
		shards = sim.NewShardSet(cfg.Nodes, cfg.Shards, sim.Time(params.TorusHopLatency))
		eng = shards.Engine(0)
	} else {
		eng = sim.NewEngine()
	}
	st := sim.NewStats(eng)
	m := &Machine{
		Cfg:    cfg,
		Eng:    eng,
		Stats:  st,
		shards: shards,
		Net:    newInterconnect(cfg, eng, st),
	}
	if shards != nil {
		m.Net.(*network.Torus).AttachShards(shards)
		// Concurrent-mode stats for every sharded machine — including a
		// single shard, which executes serially: the mode changes the
		// histogram representation (empty-min sentinel, mode flag), and
		// snapshots of a one-shard reference run must compare byte-equal
		// against any other shard count.
		st.MarkConcurrent()
	}
	if cfg.Faults.Injects() {
		in := fault.New(eng, st, cfg.Nodes, cfg.Faults)
		if shards != nil {
			in.Shard()
		}
		m.Net.AttachFaults(in)
	}
	if cfg.Trace.Active() {
		m.Rec = trace.NewRecorder(eng, cfg.Nodes, cfg.Trace.Ring())
		if shards != nil {
			m.Rec.Shard(shards)
		}
		m.Net.AttachTrace(m.Rec)
	}
	for id := 0; id < cfg.Nodes; id++ {
		m.Nodes = append(m.Nodes, m.buildNode(id))
	}
	// Frames retire at the receiver, so per-node pools drain at every
	// sender while a hotspot sink hoards boxes; pooling is shared at
	// engine-ownership granularity instead. Get/put always run under
	// the owning messenger's engine, so a pool may span exactly the
	// nodes of one engine: the whole machine on the serial path, one
	// shard each on the sharded path (engines run concurrently within
	// an epoch and must never race on a pool).
	if shards == nil {
		fp := &msg.FramePool{}
		for _, n := range m.Nodes {
			n.Msgr.ShareFramePool(fp)
		}
	} else {
		pools := make([]*msg.FramePool, len(shards.Engines()))
		for id, n := range m.Nodes {
			si := shards.ShardOf(id)
			if pools[si] == nil {
				pools[si] = &msg.FramePool{}
			}
			n.Msgr.ShareFramePool(pools[si])
		}
	}
	st.SetEngine(eng)
	if cfg.Trace.SampleEvery > 0 {
		m.Smp = trace.NewSampler(eng, sim.Time(cfg.Trace.SampleEvery))
		m.registerSamples()
	}
	return m
}

// registerSamples wires the sampler's columns: fabric gauges (window
// occupancy, edge backlog, link occupancy and queue depths on the
// torus), the transport's retransmit backlog, and the hot counters as
// per-interval deltas. Probes read state; they never mutate it.
func (m *Machine) registerSamples() {
	type fabricGauges interface {
		TotalInFlight() int
		TotalPending() int
	}
	if fg, ok := m.Net.(fabricGauges); ok {
		m.Smp.Gauge("window.inflight", func() float64 { return float64(fg.TotalInFlight()) })
		m.Smp.Gauge("edge.pending", func() float64 { return float64(fg.TotalPending()) })
	}
	if t, ok := m.Net.(*network.Torus); ok {
		m.Smp.Gauge("links.busy", func() float64 {
			n := 0
			for li := 0; li < t.Links(); li++ {
				if t.LinkBusy(li) {
					n++
				}
			}
			return float64(n)
		})
		m.Smp.Gauge("links.queued", func() float64 {
			n := 0
			for li := 0; li < t.Links(); li++ {
				n += t.LinkQueueLen(li)
			}
			return float64(n)
		})
		for li := 0; li < t.Links(); li++ {
			li := li
			m.Smp.Gauge("linkq."+t.LinkName(li), func() float64 {
				return float64(t.LinkQueueLen(li))
			})
		}
	}
	m.Smp.Gauge("retx.backlog", func() float64 {
		n := 0
		for _, nd := range m.Nodes {
			n += nd.Msgr.RetxBacklog()
		}
		return float64(n)
	})
	for _, name := range []string{"net.msg", "net.bytes", "net.window.stall", "net.backpressure"} {
		m.Smp.Counter(name, m.Stats.Counter(name))
	}
	if m.Cfg.Topology == params.TopoTorus {
		m.Smp.Counter("net.torus.hop", m.Stats.Counter("net.torus.hop"))
		m.Smp.Counter("net.torus.link.wait", m.Stats.Counter("net.torus.link.wait"))
	}
	if m.Cfg.Faults.Active() {
		m.Smp.Counter("net.retransmits", m.Stats.Counter("net.retransmits"))
		m.Smp.Counter("net.acks", m.Stats.Counter("net.acks"))
	}
}

// nodeEng returns the engine owning node id: the shard engine on a
// sharded machine, the single engine otherwise.
func (m *Machine) nodeEng(id int) *sim.Engine {
	if m.shards != nil {
		return m.shards.Engine(id)
	}
	return m.Eng
}

func (m *Machine) buildNode(id int) *Node {
	cfg := m.Cfg
	eng := m.nodeEng(id)
	// Node-local busy trackers must read their own shard's clock.
	m.Stats.SetEngine(eng)
	name := fmt.Sprintf("node%d", id)
	withIO := cfg.Bus == params.IOBus
	fab := bus.NewFabric(eng, m.Stats, name, withIO)
	mem := cache.NewMemory(fab, name+".mem")
	fab.AddRegion(bus.Region{
		Name: name + ".dram", Base: DRAMBase, Size: DRAMSize,
		Home: mem, Loc: params.MemoryBus, Cachable: true,
	})
	pc := cache.New(eng, m.Stats, fab, name+".cache", params.ProcCacheBytes)
	pc.Snarf = cfg.Snarfing
	cpu := proc.New(eng, m.Stats, fab, pc, id, name+".cpu")

	sendBase, recvBase := uint64(DevSendBase), uint64(DevRecvBase)
	if cfg.NI.MemoryHomed() {
		sendBase, recvBase = QmSendBase, QmRecvBase
	}
	ni := nic.New(nic.Deps{
		Eng: eng, Stats: m.Stats, Fabric: fab, CPU: cpu, Net: m.Net,
		NodeID: id, Loc: cfg.Bus, Cfg: cfg,
		SendQBase: sendBase, RecvQBase: recvBase, ShadowBase: ShadowBase,
	})
	if cfg.NI == params.CNI4 || (cfg.NI.IsCQ() && !cfg.NI.MemoryHomed()) {
		// Device-homed cachable regions (CDRs or CQs).
		fab.AddRegion(bus.Region{
			Name: name + ".ni.send", Base: DevSendBase, Size: DevRegionSz,
			Home: ni, Loc: cfg.Bus, Cachable: true,
		})
		fab.AddRegion(bus.Region{
			Name: name + ".ni.recv", Base: DevRecvBase, Size: DevRegionSz,
			Home: ni, Loc: cfg.Bus, Cachable: true,
		})
	}
	m.Net.Register(id, ni)
	msgr := msg.New(id, cpu, ni, m.Stats, MsgBufBase, cfg.Nodes, cfg.Faults)
	if m.Rec != nil {
		msgr.AttachTrace(m.Rec)
	}
	return &Node{ID: id, Fabric: fab, Mem: mem, Cache: pc, CPU: cpu, NI: ni, Msgr: msgr}
}

// Spawn starts body as node id's application process (on the engine
// owning that node).
func (m *Machine) Spawn(id int, body func(p *sim.Process, n *Node)) {
	n := m.Nodes[id]
	m.nodeEng(id).Spawn(fmt.Sprintf("node%d.app", id), func(p *sim.Process) {
		body(p, n)
	})
}

// Sharded reports whether this machine runs on the sharded engine.
func (m *Machine) Sharded() bool { return m.shards != nil }

// Now returns the current simulated time (after Run, the global
// maximum across shards).
func (m *Machine) Now() sim.Time {
	if m.shards != nil {
		return m.shards.Now()
	}
	return m.Eng.Now()
}

// Run drains the event queue (or stops at horizon) and returns the
// final simulated time in cycles. The sampler, when configured, is
// re-armed here so back-to-back runs keep sampling (its tick stops
// itself at quiescence to let the queue drain).
func (m *Machine) Run(horizon sim.Time) sim.Time {
	if m.Smp != nil {
		m.Smp.Ensure()
	}
	if m.shards != nil {
		return m.shards.Run(horizon)
	}
	return m.Eng.Run(horizon)
}

// Stop unwinds device processes; call once after Run.
func (m *Machine) Stop() {
	if m.shards != nil {
		m.shards.Stop()
		return
	}
	m.Eng.Stop()
}

// MemBusOccupancy returns total busy cycles summed over all nodes'
// memory buses (§5.2's occupancy metric).
func (m *Machine) MemBusOccupancy() sim.Time {
	var total sim.Time
	for id := range m.Nodes {
		total += m.Stats.Busy(fmt.Sprintf("node%d.membus", id)).Total()
	}
	return total
}

// Microseconds converts cycles to microseconds at 200 MHz.
func Microseconds(cycles sim.Time) float64 {
	return float64(cycles) / params.CPUMHz
}
