package machine

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

// TestDebugTrafficBreakdown prints transaction counters for a short
// ping-pong, used to validate the per-message traffic budget against
// the paper's §2.2 accounting (one invalidation + one read miss per
// block, two head-pointer pairs per queue pass).
func TestDebugTrafficBreakdown(t *testing.T) {
	for _, kind := range []params.NIKind{params.NI2w, params.CNI16Q} {
		cfg := params.Config{Nodes: 2, NI: kind, Bus: params.MemoryBus}
		m := New(cfg)
		const (
			hPing = 1
			hPong = 2
		)
		gotPong := 0
		m.Nodes[1].Msgr.Register(hPing, func(ctx *msg.Context) {
			ctx.M.Send(ctx.P, ctx.Src, hPong, ctx.Size, nil)
		})
		m.Nodes[0].Msgr.Register(hPong, func(ctx *msg.Context) { gotPong++ })
		m.Spawn(0, func(p *sim.Process, n *Node) {
			for r := 0; r < 4; r++ {
				n.Msgr.Send(p, 1, hPing, 64, nil)
				want := r + 1
				n.Msgr.PollUntil(p, func() bool { return gotPong == want })
			}
		})
		m.Spawn(1, func(p *sim.Process, n *Node) {
			n.Msgr.PollUntil(p, func() bool { return gotPong == 4 })
		})
		end := m.Run(sim.Time(1) << 40)
		m.Stop()
		t.Logf("=== %s: 4 round trips in %d cycles ===", kind, end)
		for _, name := range m.Stats.Counters() {
			t.Logf("  %-40s %d", name, m.Stats.Get(name))
		}
	}
}
