package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestPropertyMOESIInvariants drives a three-cache system with random
// load/store sequences and checks the protocol invariants after every
// operation:
//
//   - at most one cache holds a block in M, E, or O (single owner);
//   - if any cache holds M or E, no other cache holds the block at
//     all (exclusivity);
//   - two sharers imply every copy is S or O (no silent exclusives).
func TestPropertyMOESIInvariants(t *testing.T) {
	type op struct {
		Cache uint8
		Block uint8
		Write bool
	}
	f := func(ops []op) bool {
		e := sim.NewEngine()
		r := newRig(&testing.T{}, 4096)
		caches := []*Cache{r.c0, r.c1, New(e, r.st, r.fab, "n0.c2", 4096)}
		_ = e
		ok := true
		r.run(func(p *sim.Process) {
			for _, o := range ops {
				c := caches[int(o.Cache)%len(caches)]
				addr := uint64(o.Block%32) * 64
				if o.Write {
					c.Store(p, addr)
				} else {
					c.Load(p, addr)
				}
				if !checkMOESI(caches, addr) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// checkMOESI validates the single-owner/exclusivity invariants for one
// block across the caches.
func checkMOESI(caches []*Cache, addr uint64) bool {
	owners, copies, exclusives := 0, 0, 0
	for _, c := range caches {
		switch c.StateOf(addr) {
		case Modified, Exclusive:
			owners++
			exclusives++
			copies++
		case Owned:
			owners++
			copies++
		case Shared:
			copies++
		}
	}
	if owners > 1 {
		return false
	}
	if exclusives > 0 && copies > 1 {
		return false
	}
	return true
}

// TestPropertyWritebackNeverLosesOwnership: random conflict-heavy
// traffic (two blocks aliasing each frame) must keep the invariants
// through evictions and writebacks.
func TestPropertyEvictionStorm(t *testing.T) {
	f := func(seq []uint8) bool {
		r := newRig(&testing.T{}, 1024) // 16 frames: heavy conflicts
		ok := true
		r.run(func(p *sim.Process) {
			for _, s := range seq {
				c := r.c0
				if s&1 == 1 {
					c = r.c1
				}
				// Two aliasing working sets: block b and b + 1024.
				addr := uint64(s%16)*64 + uint64(s&2)*512
				if s&4 == 4 {
					c.Store(p, addr)
				} else {
					c.Load(p, addr)
				}
				if !checkMOESI([]*Cache{r.c0, r.c1}, addr) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTimingPositive: every operation takes at least one
// cycle, and misses cost at least a bus transfer.
func TestPropertyTimingSane(t *testing.T) {
	f := func(blocks []uint8) bool {
		r := newRig(&testing.T{}, 4096)
		ok := true
		r.run(func(p *sim.Process) {
			for _, b := range blocks {
				addr := uint64(b) * 64
				before := p.Now()
				wasHit := r.c0.StateOf(addr).Valid()
				r.c0.Load(p, addr)
				d := p.Now() - before
				if d < 1 {
					ok = false
					return
				}
				if !wasHit && d < 42 {
					ok = false
					return
				}
				if wasHit && d != 1 {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
