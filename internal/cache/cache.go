package cache

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/params"
	"repro/internal/sim"
)

// line is one direct-mapped cache line (tags only: the simulation is
// timing-directed, payload bytes travel in the logical message layer).
type line struct {
	tag   uint64 // block address
	state State
}

// Cache is a direct-mapped MOESI cache attached to the memory bus.
// It serves the simulated processor's cachable loads and stores and
// snoops every coherent bus transaction.
type Cache struct {
	eng    *sim.Engine
	fabric *bus.Fabric
	name   string

	nlines    uint64
	lines     []line
	blockMask uint64

	// Interned counters: loads and stores are the innermost processor
	// operations, so the per-access bookkeeping must not hash strings.
	loadHit, loadMiss   *sim.Counter
	storeHit, storeMiss *sim.Counter
	writebacks          *sim.Counter
	snarfs, updates     *sim.Counter

	// Snarfing: load a block from an observed writeback when the
	// direct-mapped frame holds the same tag in Invalid state (§5.1.2).
	Snarf bool
}

// New creates a cache of sizeBytes with 64-byte blocks and attaches it
// to the fabric's memory bus.
func New(e *sim.Engine, st *sim.Stats, f *bus.Fabric, name string, sizeBytes int) *Cache {
	n := uint64(sizeBytes / params.BlockBytes)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("cache: size %d is not a power-of-two number of blocks", sizeBytes))
	}
	c := &Cache{
		eng:        e,
		fabric:     f,
		name:       name,
		nlines:     n,
		lines:      make([]line, n),
		blockMask:  ^uint64(params.BlockBytes - 1),
		loadHit:    st.Counter(name + ".load.hit"),
		loadMiss:   st.Counter(name + ".load.miss"),
		storeHit:   st.Counter(name + ".store.hit"),
		storeMiss:  st.Counter(name + ".store.miss"),
		writebacks: st.Counter(name + ".writeback"),
		snarfs:     st.Counter(name + ".snarf"),
		updates:    st.Counter(name + ".update"),
	}
	f.Attach(c, params.MemoryBus)
	return c
}

// AgentName implements bus.Agent.
func (c *Cache) AgentName() string { return c.name }

// AgentClass implements bus.Agent.
func (c *Cache) AgentClass() params.AgentClass { return params.ClassProc }

func (c *Cache) index(blk uint64) uint64 {
	return (blk / params.BlockBytes) & (c.nlines - 1)
}

// StateOf returns the coherence state the cache holds for addr's block
// (Invalid if absent). Exposed for tests and assertions.
func (c *Cache) StateOf(addr uint64) State {
	blk := addr & c.blockMask
	l := &c.lines[c.index(blk)]
	if l.tag == blk && l.state.Valid() {
		return l.state
	}
	return Invalid
}

// Load performs one processor load (up to 8 bytes) at addr.
// Hits cost params.HitCycles; misses evict + fill over the bus.
func (c *Cache) Load(p *sim.Process, addr uint64) {
	blk := addr & c.blockMask
	l := &c.lines[c.index(blk)]
	if l.tag == blk && l.state.Valid() {
		c.loadHit.Inc()
		p.Sleep(params.HitCycles)
		return
	}
	c.loadMiss.Inc()
	c.evict(p, l)
	res := c.fabric.Do(p, bus.Tx{Kind: bus.CR, Addr: blk, Initiator: c})
	l.tag = blk
	if res.Shared {
		l.state = Shared
	} else {
		l.state = Exclusive
	}
}

// Store performs one processor store (up to 8 bytes) at addr.
// Stores to Modified/Exclusive lines hit; anything else issues a
// coherent read-invalidate (see DESIGN.md bandwidth calibration).
func (c *Cache) Store(p *sim.Process, addr uint64) {
	blk := addr & c.blockMask
	l := &c.lines[c.index(blk)]
	if l.tag == blk {
		switch l.state {
		case Modified:
			c.storeHit.Inc()
			p.Sleep(params.HitCycles)
			return
		case Exclusive:
			c.storeHit.Inc()
			l.state = Modified
			p.Sleep(params.HitCycles)
			return
		}
	}
	c.storeMiss.Inc()
	if l.tag != blk {
		c.evict(p, l)
	}
	c.fabric.Do(p, bus.Tx{Kind: bus.CRI, Addr: blk, Initiator: c})
	l.tag = blk
	l.state = Modified
}

// evict writes back the current occupant of l if it is dirty.
func (c *Cache) evict(p *sim.Process, l *line) {
	if !l.state.Dirty() {
		l.state = Invalid
		return
	}
	c.writebacks.Inc()
	addr := l.tag
	l.state = Invalid
	c.fabric.Do(p, bus.Tx{Kind: bus.WB, Addr: addr, Initiator: c})
}

// FlushBlock writes addr's block back (if dirty) and invalidates it;
// used by tests and by software-managed flush sequences.
func (c *Cache) FlushBlock(p *sim.Process, addr uint64) {
	blk := addr & c.blockMask
	l := &c.lines[c.index(blk)]
	if l.tag != blk || !l.state.Valid() {
		return
	}
	c.evict(p, l)
}

// SnoopTx implements bus.Agent: the MOESI snooping side.
func (c *Cache) SnoopTx(tx *bus.Tx, isHome bool) bus.Snoop {
	blk := tx.Addr & c.blockMask
	l := &c.lines[c.index(blk)]
	if l.tag != blk || !l.state.Valid() {
		if tx.Kind == bus.WB && c.Snarf && l.tag == blk {
			// Data snarfing: frame already allocated to this tag, in
			// Invalid state; capture the block from the writeback.
			l.state = Shared
			c.snarfs.Inc()
			return bus.Snoop{HasCopy: true}
		}
		if tx.Kind == bus.UP && l.tag == blk {
			// Update push: refill the invalidated frame in place.
			l.state = Shared
			c.updates.Inc()
			return bus.Snoop{HasCopy: true}
		}
		return bus.Snoop{}
	}
	switch tx.Kind {
	case bus.CR:
		sn := bus.Snoop{HasCopy: true, WillSupply: l.state.CanSupply()}
		switch l.state {
		case Modified:
			l.state = Owned
		case Exclusive:
			l.state = Shared
		}
		return sn
	case bus.CRI:
		sn := bus.Snoop{HasCopy: true, WillSupply: l.state.CanSupply()}
		l.state = Invalid
		return sn
	case bus.CI:
		l.state = Invalid
		return bus.Snoop{HasCopy: true}
	case bus.WB:
		// Another agent wrote the block back to its home; our copy (if
		// we somehow held one) is unaffected under MOESI.
		return bus.Snoop{HasCopy: true}
	case bus.UP:
		// An update push refreshes our (valid) copy in place.
		return bus.Snoop{HasCopy: true}
	}
	return bus.Snoop{}
}

// Memory is the main-memory home agent on the memory bus. It supplies
// data when no cache owns a block and absorbs writebacks. Timing is
// carried entirely by the bus transfer costs (Table 2's 42-cycle
// memory-to-cache transfer equals the cache-to-cache cost).
type Memory struct {
	name string
}

// NewMemory creates the memory agent and attaches it to the fabric.
func NewMemory(f *bus.Fabric, name string) *Memory {
	m := &Memory{name: name}
	f.Attach(m, params.MemoryBus)
	return m
}

// AgentName implements bus.Agent.
func (m *Memory) AgentName() string { return m.name }

// AgentClass implements bus.Agent.
func (m *Memory) AgentClass() params.AgentClass { return params.ClassMemory }

// SnoopTx implements bus.Agent. Memory is passive: the fabric routes
// supply duty to the home when no cache owner responds.
func (m *Memory) SnoopTx(tx *bus.Tx, isHome bool) bus.Snoop {
	return bus.Snoop{}
}
