package cache

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/params"
	"repro/internal/sim"
)

// rig is a two-processor, one-memory-bus test machine: the "local
// cachable queue" configuration of the paper's Figure 2.
type rig struct {
	eng  *sim.Engine
	st   *sim.Stats
	fab  *bus.Fabric
	mem  *Memory
	c0   *Cache
	c1   *Cache
	done bool
}

func newRig(t *testing.T, cacheBytes int) *rig {
	t.Helper()
	e := sim.NewEngine()
	st := sim.NewStats(e)
	f := bus.NewFabric(e, st, "n0", false)
	m := NewMemory(f, "n0.mem")
	f.AddRegion(bus.Region{Name: "dram", Base: 0, Size: 1 << 30, Home: m, Loc: params.MemoryBus, Cachable: true})
	c0 := New(e, st, f, "n0.c0", cacheBytes)
	c1 := New(e, st, f, "n0.c1", cacheBytes)
	return &rig{eng: e, st: st, fab: f, mem: m, c0: c0, c1: c1}
}

// run executes body as a simulated process and drains the engine.
func (r *rig) run(body func(p *sim.Process)) {
	r.eng.Spawn("test", body)
	r.eng.RunAll()
}

func TestLoadMissFillsExclusive(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		start := p.Now()
		r.c0.Load(p, 0x100)
		if got := p.Now() - start; got != params.BlockMemBus {
			t.Errorf("cold miss took %d cycles, want %d", got, params.BlockMemBus)
		}
	})
	if s := r.c0.StateOf(0x100); s != Exclusive {
		t.Fatalf("state = %v, want E", s)
	}
}

func TestLoadHitCostsOneCycle(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		r.c0.Load(p, 0x100)
		start := p.Now()
		r.c0.Load(p, 0x108) // same block
		if got := p.Now() - start; got != params.HitCycles {
			t.Errorf("hit took %d cycles, want %d", got, params.HitCycles)
		}
	})
	if r.st.Get("n0.c0.load.hit") != 1 || r.st.Get("n0.c0.load.miss") != 1 {
		t.Fatalf("hit/miss counters wrong: %s", r.st)
	}
}

func TestReadSharingDowngradesToShared(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		r.c0.Load(p, 0x200) // c0: E
		r.c1.Load(p, 0x200) // c0 supplies, E->S; c1: S
	})
	if s := r.c0.StateOf(0x200); s != Shared {
		t.Fatalf("c0 state = %v, want S", s)
	}
	if s := r.c1.StateOf(0x200); s != Shared {
		t.Fatalf("c1 state = %v, want S", s)
	}
}

func TestStoreUpgradesAndInvalidates(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		r.c0.Load(p, 0x300)
		r.c1.Load(p, 0x300)
		r.c0.Store(p, 0x300) // CRI: invalidates c1
	})
	if s := r.c0.StateOf(0x300); s != Modified {
		t.Fatalf("c0 state = %v, want M", s)
	}
	if s := r.c1.StateOf(0x300); s != Invalid {
		t.Fatalf("c1 state = %v, want I", s)
	}
}

func TestStoreToExclusiveIsSilent(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		r.c0.Load(p, 0x400) // E
		start := p.Now()
		r.c0.Store(p, 0x400)
		if got := p.Now() - start; got != params.HitCycles {
			t.Errorf("E->M store took %d cycles, want %d", got, params.HitCycles)
		}
	})
	if s := r.c0.StateOf(0x400); s != Modified {
		t.Fatalf("state = %v, want M", s)
	}
}

func TestDirtySharingMakesOwned(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		r.c0.Store(p, 0x500) // c0: M
		r.c1.Load(p, 0x500)  // c0 supplies, M->O; c1: S
	})
	if s := r.c0.StateOf(0x500); s != Owned {
		t.Fatalf("c0 state = %v, want O", s)
	}
	if s := r.c1.StateOf(0x500); s != Shared {
		t.Fatalf("c1 state = %v, want S", s)
	}
}

func TestStoreToOwnedIssuesCRI(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		r.c0.Store(p, 0x600)
		r.c1.Load(p, 0x600) // c0: O, c1: S
		start := p.Now()
		r.c0.Store(p, 0x600) // O is not writable: CRI
		if got := p.Now() - start; got != params.BlockMemBus {
			t.Errorf("O store took %d cycles, want %d (full CRI)", got, params.BlockMemBus)
		}
	})
	if s := r.c1.StateOf(0x600); s != Invalid {
		t.Fatalf("c1 state = %v, want I", s)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	r := newRig(t, 4096) // 64 lines
	conflict := uint64(4096)
	r.run(func(p *sim.Process) {
		r.c0.Store(p, 0x0)     // M in line 0
		r.c0.Load(p, conflict) // conflicts with line 0: WB + CR
	})
	if r.st.Get("n0.c0.writeback") != 1 {
		t.Fatalf("writebacks = %d, want 1", r.st.Get("n0.c0.writeback"))
	}
	if s := r.c0.StateOf(0x0); s != Invalid {
		t.Fatalf("evicted block state = %v, want I", s)
	}
	if s := r.c0.StateOf(conflict); s != Exclusive {
		t.Fatalf("new block state = %v, want E", s)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		r.c0.Load(p, 0x0)
		r.c0.Load(p, 4096)
	})
	if r.st.Get("n0.c0.writeback") != 0 {
		t.Fatalf("writebacks = %d, want 0", r.st.Get("n0.c0.writeback"))
	}
}

func TestFlushBlock(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		r.c0.Store(p, 0x700)
		r.c0.FlushBlock(p, 0x700)
	})
	if s := r.c0.StateOf(0x700); s != Invalid {
		t.Fatalf("state after flush = %v, want I", s)
	}
	if r.st.Get("n0.c0.writeback") != 1 {
		t.Fatalf("writebacks = %d, want 1", r.st.Get("n0.c0.writeback"))
	}
}

func TestSnarfingCapturesWriteback(t *testing.T) {
	r := newRig(t, 4096)
	r.c1.Snarf = true
	r.run(func(p *sim.Process) {
		// c1 reads the block, then c0 takes ownership (invalidating
		// c1 but leaving the tag in the frame), dirties it, and evicts.
		r.c1.Load(p, 0x800)
		r.c0.Store(p, 0x800)
		if s := r.c1.StateOf(0x800); s != Invalid {
			t.Fatalf("c1 state = %v, want I before snarf", s)
		}
		r.c0.Load(p, 0x800+4096) // evict dirty block: WB on the bus
	})
	if s := r.c1.StateOf(0x800); s != Shared {
		t.Fatalf("c1 state = %v, want S after snarf", s)
	}
	if r.st.Get("n0.c1.snarf") != 1 {
		t.Fatalf("snarf counter = %d, want 1", r.st.Get("n0.c1.snarf"))
	}
}

// TestLocalQueueBandwidthCalibration checks the DESIGN.md calibration:
// a producer/consumer pair moving blocks through cachable memory costs
// one CRI plus one CR per block (~84 cycles => ~152 MB/s at 200 MHz),
// approximating the paper's 144 MB/s normalisation bound.
func TestLocalQueueBandwidthCalibration(t *testing.T) {
	r := newRig(t, 256*1024)
	const blocks = 64
	var start, end sim.Time
	r.run(func(p *sim.Process) {
		// Warm up one round so steady-state states (sender O, receiver S).
		for b := uint64(0); b < blocks; b++ {
			r.c0.Store(p, b*64)
			r.c1.Load(p, b*64)
		}
		start = p.Now()
		for b := uint64(0); b < blocks; b++ {
			r.c0.Store(p, b*64) // CRI 42
			r.c1.Load(p, b*64)  // CR 42, supplied cache-to-cache
		}
		end = p.Now()
	})
	perBlock := float64(end-start) / blocks
	if perBlock < 80 || perBlock > 92 {
		t.Fatalf("per-block cost = %.1f cycles, want ~84 (calibration)", perBlock)
	}
	mbps := 64.0 / perBlock * params.CPUMHz
	if mbps < 135 || mbps > 165 {
		t.Fatalf("local queue bandwidth = %.0f MB/s, want ~144-152", mbps)
	}
}

func TestBusOccupancyTracked(t *testing.T) {
	r := newRig(t, 4096)
	r.run(func(p *sim.Process) {
		r.c0.Load(p, 0x0) // one 42-cycle transaction
	})
	if got := r.st.Busy("n0.membus").Total(); got != params.BlockMemBus {
		t.Fatalf("membus busy = %d, want %d", got, params.BlockMemBus)
	}
}

func TestBusContentionSerialises(t *testing.T) {
	r := newRig(t, 4096)
	var t0, t1 sim.Time
	r.eng.Spawn("p0", func(p *sim.Process) {
		r.c0.Load(p, 0x0)
		t0 = p.Now()
	})
	r.eng.Spawn("p1", func(p *sim.Process) {
		r.c1.Load(p, 0x1000)
		t1 = p.Now()
	})
	r.eng.RunAll()
	if t0 != params.BlockMemBus {
		t.Fatalf("first transaction finished at %d, want %d", t0, params.BlockMemBus)
	}
	if t1 != 2*params.BlockMemBus {
		t.Fatalf("second transaction finished at %d, want %d (serialised)", t1, 2*params.BlockMemBus)
	}
}

func TestCacheSizeMustBePowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two size")
		}
	}()
	r := newRig(t, 4096)
	New(r.eng, r.st, r.fab, "bad", 3*64)
}
