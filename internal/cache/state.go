// Package cache implements the node's single-level, direct-mapped,
// write-allocate processor cache kept coherent by a MOESI
// write-invalidate snooping protocol (paper §2, §4.1: 256 KB,
// 64-byte address and transfer blocks, duplicated tags so snoops do
// not stall the processor), plus the main-memory home agent.
package cache

import "fmt"

// State is a MOESI coherence state.
type State uint8

const (
	// Invalid: the line holds no usable data.
	Invalid State = iota
	// Shared: read-only copy; other caches or memory may hold copies.
	Shared
	// Exclusive: read-only copy, no other cache holds one; may be
	// upgraded to Modified without a bus transaction.
	Exclusive
	// Owned: dirty copy with sharers; this cache supplies the data on
	// reads and must write it back on eviction.
	Owned
	// Modified: dirty exclusive copy.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Valid reports whether the state holds usable data.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether eviction requires a writeback.
func (s State) Dirty() bool { return s == Owned || s == Modified }

// CanSupply reports whether a snooper in this state supplies data
// cache-to-cache instead of the home.
func (s State) CanSupply() bool { return s == Modified || s == Owned || s == Exclusive }
