package params

import (
	"strings"
	"testing"
)

// TestFaultsZeroValueInert pins the off-by-default guarantee the
// conformance suite builds on: the zero value neither injects nor
// activates the transport, and validates on any machine.
func TestFaultsZeroValueInert(t *testing.T) {
	var f Faults
	if f.Injects() {
		t.Error("zero-value Faults reports Injects")
	}
	if f.Active() {
		t.Error("zero-value Faults reports Active")
	}
	if err := f.Validate(16); err != nil {
		t.Errorf("zero-value Faults fails validation: %v", err)
	}
	cfg := Config{Nodes: 2, NI: CNI512Q, Bus: MemoryBus}
	if name := cfg.Name(); strings.Contains(name, "faults") {
		t.Errorf("fault-free config name %q mentions faults", name)
	}
}

func TestFaultsActivation(t *testing.T) {
	cases := []struct {
		name            string
		f               Faults
		injects, active bool
	}{
		{"transport only", Faults{Transport: true}, false, true},
		{"drop", Faults{DropProb: 0.1}, true, true},
		{"corrupt", Faults{CorruptProb: 0.1}, true, true},
		{"dup", Faults{DupProb: 0.1}, true, true},
		{"delay", Faults{DelayProb: 0.1}, true, true},
		{"degrade", Faults{DegradeFrom: 10, DegradeUntil: 20, DegradeLatencyX: 2}, true, true},
		{"pause", Faults{Pauses: []FaultPause{{Node: 0, From: 1, Until: 2}}}, true, true},
		{"crash", Faults{Crashes: []FaultCrash{{Node: 0, At: 5}}}, true, true},
	}
	for _, c := range cases {
		if got := c.f.Injects(); got != c.injects {
			t.Errorf("%s: Injects = %v, want %v", c.name, got, c.injects)
		}
		if got := c.f.Active(); got != c.active {
			t.Errorf("%s: Active = %v, want %v", c.name, got, c.active)
		}
	}
}

func TestFaultsValidate(t *testing.T) {
	bad := []struct {
		name string
		f    Faults
	}{
		{"prob too high", Faults{DropProb: 1}},
		{"prob negative", Faults{CorruptProb: -0.1}},
		{"degrade multiplier < 1", Faults{DegradeFrom: 1, DegradeUntil: 2, DegradeLatencyX: 0.5}},
		{"degrade window inverted", Faults{DegradeFrom: 5, DegradeUntil: 5}},
		{"pause node out of range", Faults{Pauses: []FaultPause{{Node: 16, From: 1, Until: 2}}}},
		{"pause window empty", Faults{Pauses: []FaultPause{{Node: 0, From: 2, Until: 2}}}},
		{"crash node negative", Faults{Crashes: []FaultCrash{{Node: -1, At: 5}}}},
	}
	for _, c := range bad {
		if err := c.f.Validate(16); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.f)
		}
	}
	ok := Faults{
		Seed: 3, DropProb: 0.999, DupProb: 0,
		DegradeFrom: 10, DegradeUntil: 20, DegradeBandwidthX: 8,
		Pauses:  []FaultPause{{Node: 15, From: 1, Until: 2}},
		Crashes: []FaultCrash{{Node: 0, At: 0}},
	}
	if err := ok.Validate(16); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	// Config.Validate must thread fault validation through.
	cfg := Config{Nodes: 2, NI: CNI512Q, Bus: MemoryBus, Faults: Faults{DropProb: 2}}
	if err := cfg.Validate(); err == nil {
		t.Error("Config.Validate accepted an invalid fault spec")
	}
}

func TestFaultsDefaults(t *testing.T) {
	var f Faults
	if got := f.Delay(); got != FaultDelayCycles {
		t.Errorf("default Delay = %d, want %d", got, FaultDelayCycles)
	}
	if f.LatencyX() != 1 || f.BandwidthX() != 1 {
		t.Errorf("zero multipliers = %v, %v; want 1, 1", f.LatencyX(), f.BandwidthX())
	}
	f = Faults{DelayCycles: 77, DegradeLatencyX: 3, DegradeBandwidthX: 2}
	if f.Delay() != 77 || f.LatencyX() != 3 || f.BandwidthX() != 2 {
		t.Errorf("explicit knobs not honoured: %d %v %v", f.Delay(), f.LatencyX(), f.BandwidthX())
	}
	// Injecting configurations are visible in the config name (golden
	// and telemetry files must not collide with fault-free runs).
	cfg := Config{Nodes: 2, NI: CNI512Q, Bus: MemoryBus, Faults: Faults{DropProb: 0.01}}
	if name := cfg.Name(); !strings.Contains(name, "faults") {
		t.Errorf("injecting config name %q does not mention faults", name)
	}
}
