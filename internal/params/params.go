// Package params holds the timing model and experiment configuration
// for the CNI reproduction.
//
// All times are in 200 MHz processor cycles, matching the paper's
// Table 2 ("Bus Occupancy for Network Interface and Memory Access in
// Processor Cycles"): the simulated machine has a 200 MHz dual-issue
// SPARC-like processor, a 100 MHz multiplexed coherent memory bus, and
// a 50 MHz multiplexed coherent I/O bus behind an I/O bridge.
package params

import (
	"fmt"
	"strings"
)

// BusKind identifies where a network interface is attached.
type BusKind int

const (
	// CacheBus attaches the NI at the processor's cache bus: accesses
	// cost 4 cycles and consume no memory-bus bandwidth. The paper uses
	// NI2w on the cache bus as a rough performance upper bound (§5).
	CacheBus BusKind = iota
	// MemoryBus is the 100 MHz coherent memory bus.
	MemoryBus
	// IOBus is the 50 MHz coherent I/O bus behind the I/O bridge.
	IOBus
)

func (b BusKind) String() string {
	switch b {
	case CacheBus:
		return "cache"
	case MemoryBus:
		return "memory"
	case IOBus:
		return "io"
	}
	return fmt.Sprintf("BusKind(%d)", int(b))
}

// NIKind identifies one of the paper's five network interface designs
// (Table 1).
type NIKind int

const (
	// NI2w is the CM-5-like baseline: two 4-byte words of the message
	// exposed through uncachable device registers.
	NI2w NIKind = iota
	// CNI4 exposes one 256-byte network message through four cachable
	// device registers; status/control stay uncached; reuse needs the
	// explicit three-cycle handshake (§2.1).
	CNI4
	// CNI16Q is a 16-block cachable queue homed on the device.
	CNI16Q
	// CNI512Q is a 512-block cachable queue homed on the device.
	CNI512Q
	// CNI16Qm is a 512-block cachable queue homed in main memory with a
	// 16-block device cache; overflow writes back to memory (§3).
	CNI16Qm
	// DMA is this reproduction's extension: a user-level-DMA message
	// NI (SHRIMP/UDMA-like) for the comparison the paper lists as its
	// open weakness (§1). Sends post a descriptor; the device moves
	// whole messages to/from main memory; receivers are notified
	// through an interrupt-cost model. Not part of the paper's Table 1
	// taxonomy (excluded from AllNIs).
	DMA
)

func (n NIKind) String() string {
	switch n {
	case NI2w:
		return "NI2w"
	case CNI4:
		return "CNI4"
	case CNI16Q:
		return "CNI16Q"
	case CNI512Q:
		return "CNI512Q"
	case CNI16Qm:
		return "CNI16Qm"
	case DMA:
		return "DMA"
	}
	return fmt.Sprintf("NIKind(%d)", int(n))
}

// AllNIs lists the five designs in the paper's presentation order.
var AllNIs = []NIKind{NI2w, CNI4, CNI16Q, CNI512Q, CNI16Qm}

// niParseOrder drives both ParseNI and NINames, so the match table
// and the valid-values message cannot drift apart.
var niParseOrder = append(append([]NIKind{}, AllNIs...), DMA)

// NINames lists the valid CLI NI design names (paper order + DMA).
var NINames = enumNames(niParseOrder)

// ParseNI resolves a CLI NI design name (case-insensitive), failing
// with the list of valid values on a typo.
func ParseNI(s string) (NIKind, error) {
	for i, name := range NINames {
		if strings.EqualFold(s, name) {
			return niParseOrder[i], nil
		}
	}
	return 0, fmt.Errorf("params: unknown NI %q (valid: %s)", s, strings.Join(NINames, ", "))
}

// Topology selects the interconnect fabric model connecting the nodes.
type Topology int

const (
	// TopoFlat is the paper's §4.1 idealised network: topology is
	// ignored and every message takes a constant latency. The default.
	TopoFlat Topology = iota
	// TopoTorus is a 2D torus with dimension-order routing, per-link
	// FIFO arbitration, single-message-at-a-time link occupancy, and a
	// per-hop latency — the regime where the interconnect itself can be
	// the bottleneck.
	TopoTorus
)

func (t Topology) String() string {
	switch t {
	case TopoFlat:
		return "flat"
	case TopoTorus:
		return "torus"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// topoParseOrder drives both ParseTopology and TopologyNames, so the
// accepted set and the valid-values message cannot drift.
var topoParseOrder = []Topology{TopoFlat, TopoTorus}

// TopologyNames lists the valid CLI topology names.
var TopologyNames = enumNames(topoParseOrder)

// enumNames renders an enum slice's String() forms (one source of
// truth for the parse tables below).
func enumNames[T fmt.Stringer](kinds []T) []string {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return names
}

// ParseTopology resolves a CLI topology name (empty = the default
// flat fabric), failing with the list of valid values on a typo.
func ParseTopology(s string) (Topology, error) {
	if s == "" {
		return TopoFlat, nil
	}
	for i, name := range TopologyNames {
		if s == name {
			return topoParseOrder[i], nil
		}
	}
	return TopoFlat, fmt.Errorf("params: unknown topology %q (valid: %s)", s, strings.Join(TopologyNames, ", "))
}

// ArrivalKind selects a traffic generator's arrival process
// (internal/workload).
type ArrivalKind int

const (
	// ArrivalPoisson is an open-loop Poisson process: exponentially
	// distributed inter-arrival gaps at the configured offered load,
	// generated regardless of completions.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalBursty is an open-loop on/off MMPP: a two-state modulated
	// Poisson process that sends at a peak rate during exponentially
	// distributed ON periods and is silent during OFF periods, with the
	// same long-run offered load as ArrivalPoisson.
	ArrivalBursty
	// ArrivalClosed is a closed loop: per-node request/reply clients
	// that wait for each reply and think before the next request, so
	// offered load self-limits with system latency.
	ArrivalClosed
)

func (a ArrivalKind) String() string {
	switch a {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	case ArrivalClosed:
		return "closed"
	}
	return fmt.Sprintf("ArrivalKind(%d)", int(a))
}

// arrivalParseOrder drives both ParseArrival and ArrivalNames.
var arrivalParseOrder = []ArrivalKind{ArrivalPoisson, ArrivalBursty, ArrivalClosed}

// ArrivalNames lists the valid CLI arrival-process names.
var ArrivalNames = enumNames(arrivalParseOrder)

// ParseArrival resolves a CLI arrival-process name (empty = the
// default Poisson process), failing with the list of valid values on
// a typo.
func ParseArrival(s string) (ArrivalKind, error) {
	if s == "" {
		return ArrivalPoisson, nil
	}
	for i, name := range ArrivalNames {
		if s == name {
			return arrivalParseOrder[i], nil
		}
	}
	return ArrivalPoisson, fmt.Errorf("params: unknown arrival process %q (valid: %s)", s, strings.Join(ArrivalNames, ", "))
}

// MaxZipfS caps the destination skew: at s = 10 the hottest node
// already draws > 99.9% of the traffic, and far beyond that the
// float64 CDF rounds to a degenerate distribution.
const MaxZipfS = 10

// SizeWeight is one entry of a message-size mix: user messages of
// Bytes payload drawn with probability Weight / sum(Weights).
type SizeWeight struct {
	Bytes  int
	Weight int
}

// Workload configures the deterministic traffic generators
// (internal/workload): the arrival process, the per-node offered
// load, the Zipf destination skew, and the message-size mix. The
// generators run as simulated processes, so a Workload composes with
// every NI design, bus attachment, and topology.
type Workload struct {
	// Arrival selects the arrival process.
	Arrival ArrivalKind
	// Seed drives every random draw; identical seeds give
	// byte-identical runs.
	Seed uint64
	// OfferedMBps is the per-node offered load in MB/s of user payload
	// (open-loop kinds only; the closed loop self-limits).
	OfferedMBps float64
	// ZipfS is the destination skew: node d is drawn with probability
	// proportional to 1/(d+1)^ZipfS, so node 0 is the hottest. 0 is
	// uniform; Validate caps it at MaxZipfS (beyond that the CDF
	// degenerates in float64 and every draw lands on node 0).
	ZipfS float64
	// Sizes is the message-size mix; empty uses DefaultWorkload's mix.
	Sizes []SizeWeight
	// BurstOnFrac (ArrivalBursty) is the long-run fraction of time in
	// the ON state; the peak rate is OfferedMBps / BurstOnFrac.
	BurstOnFrac float64
	// BurstOnCycles (ArrivalBursty) is the mean ON-period length.
	BurstOnCycles float64
	// Clients (ArrivalClosed) is the number of request/reply clients
	// per node. Clients <= 1 runs the original one-session-per-node
	// loop; Clients > 1 (or any weight configuration below) runs the
	// aggregated weighted population model (internal/workload
	// Population), which scales to millions of clients per machine.
	Clients int
	// ThinkCycles (ArrivalClosed) is the mean think time between a
	// reply and the next request.
	ThinkCycles int
	// ClientZipfS (ArrivalClosed populations) skews the per-client
	// request weights: client c issues with weight proportional to
	// 1/(c+1)^ClientZipfS, so a small hot subset of a large population
	// carries most of the traffic. 0 is a uniform population; Validate
	// caps it at MaxZipfS like the destination skew.
	ClientZipfS float64
	// ClientWeights (ArrivalClosed populations), when non-empty, is an
	// explicit per-client weight vector: client c gets
	// ClientWeights[c mod len(ClientWeights)] (the vector tiles across
	// populations larger than itself). Overrides ClientZipfS.
	ClientWeights []float64
}

// DefaultWorkload is the reference traffic spec used by the load
// sweep: Poisson arrivals, a Zipf-hotspot destination distribution,
// and a small/medium/fragmented size mix.
func DefaultWorkload() Workload {
	return Workload{
		Arrival:       ArrivalPoisson,
		Seed:          1,
		OfferedMBps:   4,
		ZipfS:         1.1,
		Sizes:         []SizeWeight{{Bytes: 64, Weight: 6}, {Bytes: 244, Weight: 3}, {Bytes: 976, Weight: 1}},
		BurstOnFrac:   0.25,
		BurstOnCycles: 8192,
		Clients:       4,
		ThinkCycles:   2000,
	}
}

// MeanBytes returns the mix's mean user-message payload size.
func (w Workload) MeanBytes() float64 {
	var bytes, weight float64
	for _, s := range w.Sizes {
		bytes += float64(s.Bytes) * float64(s.Weight)
		weight += float64(s.Weight)
	}
	if weight == 0 {
		return 0
	}
	return bytes / weight
}

// Validate reports workload-spec errors.
func (w Workload) Validate() error {
	if w.Arrival != ArrivalPoisson && w.Arrival != ArrivalBursty && w.Arrival != ArrivalClosed {
		return fmt.Errorf("params: unknown arrival kind %v", w.Arrival)
	}
	if w.Arrival != ArrivalClosed && w.OfferedMBps <= 0 {
		return fmt.Errorf("params: open-loop workload needs OfferedMBps > 0, have %v", w.OfferedMBps)
	}
	if w.ZipfS < 0 || w.ZipfS > MaxZipfS {
		return fmt.Errorf("params: ZipfS must be in [0, %v], have %v", float64(MaxZipfS), w.ZipfS)
	}
	for _, s := range w.Sizes {
		if s.Bytes <= 0 || s.Weight <= 0 {
			return fmt.Errorf("params: size mix entries need positive bytes and weight, have %+v", s)
		}
	}
	if w.Arrival == ArrivalBursty {
		if w.BurstOnFrac <= 0 || w.BurstOnFrac > 1 {
			return fmt.Errorf("params: BurstOnFrac must be in (0,1], have %v", w.BurstOnFrac)
		}
		if w.BurstOnCycles <= 0 {
			return fmt.Errorf("params: bursty workload needs BurstOnCycles > 0, have %v", w.BurstOnCycles)
		}
	}
	if w.Arrival == ArrivalClosed && w.Clients <= 0 {
		return fmt.Errorf("params: closed-loop workload needs Clients > 0, have %d", w.Clients)
	}
	if w.ClientZipfS < 0 || w.ClientZipfS > MaxZipfS {
		return fmt.Errorf("params: ClientZipfS must be in [0, %v], have %v", float64(MaxZipfS), w.ClientZipfS)
	}
	for i, cw := range w.ClientWeights {
		if cw <= 0 {
			return fmt.Errorf("params: client weights must be positive, have %v at index %d", cw, i)
		}
	}
	return nil
}

// PopulationActive reports whether the closed loop runs the aggregated
// weighted-population model instead of the original per-session slots:
// more than one client per node, or any weight configuration. A
// Clients <= 1 spec with no weights keeps the legacy path, so existing
// single-session runs stay byte-identical.
func (w Workload) PopulationActive() bool {
	return w.Arrival == ArrivalClosed &&
		(w.Clients > 1 || w.ClientZipfS > 0 || len(w.ClientWeights) > 0)
}

// FaultPause stalls one node's NI for the cycle window [From, Until):
// arrivals queue at the fabric edge and the node's own injections
// stall until the window closes (a device hiccup — link retrain, OS
// stall — not a processor halt; the CPU keeps running).
type FaultPause struct {
	Node        int
	From, Until uint64
}

// FaultCrash kills one node's NI from cycle At onward: every message
// to or from the node is dropped at the fabric edge. The reliable
// transport's retry budget eventually declares the peer's stream dead
// and accounts undeliverable messages as such.
type FaultCrash struct {
	Node int
	At   uint64
}

// Fault-model defaults applied when a knob is left zero.
const (
	// FaultDelayCycles is the default extra in-flight delay given to a
	// reorder-selected message — several flat-network traversals, so
	// the delayed message reliably lands behind its successors.
	FaultDelayCycles = 4 * NetLatency
)

// Faults configures the deterministic fault-injection layer
// (internal/fault) and the reliable-delivery transport tier
// (internal/msg). The zero value means "off": no injector is built,
// the transport stays out of the message path, and every run is
// byte-identical to a pre-fault simulator. All randomness comes from
// Seed through a fault-private RNG stream that never touches the
// workload generators' streams.
type Faults struct {
	// Seed drives every fault draw (0 is remapped to 1). Identical
	// seeds give byte-identical fault schedules.
	Seed uint64

	// Per-message fault probabilities, evaluated once per network
	// message at the destination fabric edge, in this order (at most
	// one fires per message): drop, corrupt, duplicate, delay.
	DropProb    float64 // message vanishes in transit
	CorruptProb float64 // delivered with a checksum-detectable flip
	DupProb     float64 // delivered twice (the copy carries no window credit)
	DelayProb   float64 // held DelayCycles extra, landing out of order

	// DelayCycles is the extra in-flight time of a delay-selected
	// message; 0 uses FaultDelayCycles.
	DelayCycles uint64

	// Degraded-link window: during [DegradeFrom, DegradeUntil) every
	// link runs at LatencyX times its latency and 1/BandwidthX of its
	// bandwidth (the torus link occupancy is multiplied by BandwidthX;
	// the flat fabric has no serialisation, so only latency applies).
	// A multiplier of 0 means 1 (unchanged).
	DegradeFrom, DegradeUntil uint64
	DegradeLatencyX           float64
	DegradeBandwidthX         float64

	// Pauses and Crashes are per-node schedules.
	Pauses  []FaultPause
	Crashes []FaultCrash

	// Transport forces the reliable-delivery tier on even with no
	// faults configured, so a fault sweep's zero-fault rung measures
	// the same transport (isolating fault impact from the transport's
	// own overhead). Any injected fault enables the transport
	// implicitly.
	Transport bool
}

// Injects reports whether any fault can actually fire — i.e. whether
// the machine must build a fault injector. The zero value injects
// nothing.
func (f *Faults) Injects() bool {
	return f.DropProb > 0 || f.CorruptProb > 0 || f.DupProb > 0 || f.DelayProb > 0 ||
		f.DegradeUntil > f.DegradeFrom || len(f.Pauses) > 0 || len(f.Crashes) > 0
}

// Active reports whether the fault subsystem participates in the run
// at all (injector, reliable transport, or both). False for the zero
// value — the byte-identical off-by-default guarantee.
func (f *Faults) Active() bool { return f.Transport || f.Injects() }

// Delay returns the effective reorder delay in cycles.
func (f *Faults) Delay() uint64 {
	if f.DelayCycles > 0 {
		return f.DelayCycles
	}
	return FaultDelayCycles
}

// LatencyX returns the effective degraded-window latency multiplier.
func (f *Faults) LatencyX() float64 {
	if f.DegradeLatencyX > 1 {
		return f.DegradeLatencyX
	}
	return 1
}

// BandwidthX returns the effective degraded-window bandwidth divisor.
func (f *Faults) BandwidthX() float64 {
	if f.DegradeBandwidthX > 1 {
		return f.DegradeBandwidthX
	}
	return 1
}

// Validate reports fault-spec errors for a machine of n nodes.
func (f *Faults) Validate(nodes int) error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"DropProb", f.DropProb}, {"CorruptProb", f.CorruptProb},
		{"DupProb", f.DupProb}, {"DelayProb", f.DelayProb},
	} {
		if pr.v < 0 || pr.v >= 1 {
			return fmt.Errorf("params: fault %s must be a probability in [0, 1), have %v", pr.name, pr.v)
		}
	}
	if f.DegradeUntil > f.DegradeFrom {
		if f.DegradeLatencyX < 0 || (f.DegradeLatencyX != 0 && f.DegradeLatencyX < 1) {
			return fmt.Errorf("params: DegradeLatencyX must be >= 1 (or 0 for unchanged), have %v", f.DegradeLatencyX)
		}
		if f.DegradeBandwidthX < 0 || (f.DegradeBandwidthX != 0 && f.DegradeBandwidthX < 1) {
			return fmt.Errorf("params: DegradeBandwidthX must be >= 1 (or 0 for unchanged), have %v", f.DegradeBandwidthX)
		}
	} else if f.DegradeUntil != 0 || f.DegradeFrom != 0 {
		return fmt.Errorf("params: degrade window [%d, %d) is empty or inverted", f.DegradeFrom, f.DegradeUntil)
	}
	for _, p := range f.Pauses {
		if p.Node < 0 || p.Node >= nodes {
			return fmt.Errorf("params: pause for node %d outside [0, %d)", p.Node, nodes)
		}
		if p.Until <= p.From {
			return fmt.Errorf("params: pause window [%d, %d) for node %d is empty or inverted", p.From, p.Until, p.Node)
		}
	}
	for _, c := range f.Crashes {
		if c.Node < 0 || c.Node >= nodes {
			return fmt.Errorf("params: crash for node %d outside [0, %d)", c.Node, nodes)
		}
	}
	return nil
}

// TraceRingDefault is the per-node record-ring capacity used when
// Trace.RingSize is left zero. Records are 32 bytes, so the default
// costs 512 KB per node — big enough that a loadsweep-length run
// (~100k cycles) keeps every record, small enough to preallocate
// without thought.
const TraceRingDefault = 16384

// TraceSampleDefault is the sampling period applied when a consumer
// asks for "sampling on, default cadence" (cnisim trace / --trace
// without --sample-every).
const TraceSampleDefault = 1000

// Trace configures the telemetry subsystem (internal/trace): the
// message-lifecycle recorder and the sampled time-series. The zero
// value means "off": no recorder or sampler is built, the hot path
// pays nothing, and every run is byte-identical to a pre-trace
// simulator — the same contract Faults keeps.
type Trace struct {
	// Enabled turns on message-lifecycle recording: fixed-size records
	// at inject/admit/link/deliver/ack/retransmit hooks, written into
	// preallocated per-node rings (internal/trace.Recorder) and
	// exportable as Chrome trace-event JSON for Perfetto.
	Enabled bool
	// RingSize is the per-node record-ring capacity; 0 means
	// TraceRingDefault. When a ring wraps the oldest records are
	// overwritten (the export reports how many).
	RingSize int
	// SampleEvery, when nonzero, runs the time-series sampler every
	// SampleEvery cycles: link occupancy, queue depths, window
	// occupancy, retransmit backlog, and counter deltas, exportable as
	// columnar JSON/CSV. Sampling alone (Enabled false) still builds
	// the recorder so hook records and samples export together.
	SampleEvery uint64
}

// Active reports whether the telemetry subsystem participates in the
// run at all. False for the zero value — the byte-identical
// off-by-default guarantee.
func (t *Trace) Active() bool { return t.Enabled || t.SampleEvery > 0 }

// Ring returns the effective per-node ring capacity.
func (t *Trace) Ring() int {
	if t.RingSize > 0 {
		return t.RingSize
	}
	return TraceRingDefault
}

// Validate reports trace-spec errors.
func (t *Trace) Validate() error {
	if t.RingSize < 0 {
		return fmt.Errorf("params: trace RingSize must be >= 0, have %d", t.RingSize)
	}
	return nil
}

// TorusDims factors n nodes into the most nearly square W×H torus
// (W ≤ H, W·H = n). Any n ≥ 1 works; primes degrade to a 1×n ring.
func TorusDims(n int) (w, h int) {
	w = 1
	for (w+1)*(w+1) <= n {
		w++
	}
	for n%w != 0 {
		w--
	}
	return w, n / w
}

// QueueBlocks returns the exposed queue size in 64-byte blocks
// (Table 1's subscript). NI2w exposes two 4-byte words, reported
// as 0 blocks here; use ExposedWords for it.
func (n NIKind) QueueBlocks() int {
	switch n {
	case CNI4:
		return 4
	case CNI16Q, CNI16Qm:
		return 16
	case CNI512Q:
		return 512
	}
	return 0
}

// IsCQ reports whether the design manages its exposed region as an
// explicit memory-based queue (taxonomy placeholder X = Q or Qm).
func (n NIKind) IsCQ() bool {
	return n == CNI16Q || n == CNI512Q || n == CNI16Qm
}

// MemoryHomed reports whether the queue's home is main memory
// (taxonomy X = Qm).
func (n NIKind) MemoryHomed() bool { return n == CNI16Qm }

// Machine-wide architectural constants (paper §4.1).
const (
	// CPUMHz etc. document the clock ratios behind the cycle costs.
	CPUMHz    = 200
	MemBusMHz = 100
	IOBusMHz  = 50

	// BlockBytes is the cache/memory block and bus transfer size.
	BlockBytes = 64
	// ProcCacheBytes is the single-level direct-mapped processor cache.
	ProcCacheBytes = 256 * 1024

	// NetMsgBytes is the fixed network message size.
	NetMsgBytes = 256
	// HeaderBytes is the per-network-message header overhead.
	HeaderBytes = 12
	// MaxPayloadBytes is the user payload carried per network message.
	MaxPayloadBytes = NetMsgBytes - HeaderBytes
	// BlocksPerNetMsg is how many cache blocks a full message spans.
	BlocksPerNetMsg = NetMsgBytes / BlockBytes

	// NetLatency is the network traversal time in CPU cycles (from
	// injection of the last byte to arrival of the first).
	NetLatency = 100
	// NetWindow is the hardware sliding-window limit: messages in
	// flight per destination before the sender blocks for acks.
	NetWindow = 4

	// TorusHopLatency is the router traversal + wire time per torus
	// hop, in CPU cycles. Chosen so a few hops land near the flat
	// model's 100-cycle traversal.
	TorusHopLatency = 20
	// TorusLinkOccupancy is how long one 256-byte network message
	// holds a torus link (its serialisation time); a second message
	// wanting the same link queues behind it. 768 cycles is a
	// ~66 MB/s link at the 200 MHz processor clock — still generous
	// for the paper's era (CM-5 fat-tree links were ~20 MB/s) but
	// slow enough that converging flows contend under *sustained*
	// offered load, not just transient bursts: a node's two
	// dimension-order in-links together (2 × 256 B / 768 cyc
	// ≈ 133 MB/s) deliver below what its NI can drain, so the fabric
	// — not the endpoint — is the first bottleneck for hotspot
	// traffic, which is the regime the torus exists to expose (the
	// earlier 256-cycle calibration left every 16-node workload
	// NI-bound and the fabric irrelevant at saturation).
	TorusLinkOccupancy = 768

	// StoreBufferDepth models the processor's store buffer for posted
	// uncached stores; MEMBAR drains it.
	StoreBufferDepth = 8
	// BridgeBufferDepth is the I/O bridge's posted write/invalidate
	// queue.
	BridgeBufferDepth = 8

	// NI2wFIFOMsgs is the hardware FIFO depth (in 256-byte network
	// messages) of the baseline NI in each direction. The CM-5 NI had
	// very shallow buffering (on the order of a message or two); the
	// paper notes NI2w's "limited buffering in the device" forces
	// software message draining.
	NI2wFIFOMsgs = 2
	// CNI4DeviceFIFOMsgs is the device-internal queue behind the CDR
	// (the exposed region is a single message; Table 1).
	CNI4DeviceFIFOMsgs = 2

	// DMADescriptors is the DMA NI's descriptor ring depth (sends in
	// flight) and its receive-buffer depth in messages.
	DMADescriptors = 8
	// InterruptCycles is the receive-notification cost of the DMA NI:
	// vectoring, kernel entry/exit, and handler dispatch. 1000 cycles
	// (5 us at 200 MHz) is optimistic for mid-90s hardware — the
	// paper calls interrupts "relatively heavy-weight".
	InterruptCycles = 1000
)

// Table 2 bus occupancies, in processor cycles.
const (
	HitCycles = 1 // cached load/store hit (dual-issue 200 MHz core)

	UncLoadCacheBus = 4
	UncLoadMemBus   = 28
	UncLoadIOBus    = 48

	UncStoreCacheBus = 4
	UncStoreMemBus   = 12
	UncStoreIOBus    = 32

	// 64-byte block transfers.
	BlockMemBus      = 42 // any 64-byte transfer on the memory bus
	BlockIODevToProc = 76 // cache-to-cache, CNI -> processor, I/O bus
	BlockIOProcToDev = 62 // cache-to-cache, processor -> CNI, I/O bus

	// Invalidate-only transactions (address phase, no data). The MBus
	// calibration in DESIGN.md: stores to Shared/Owned blocks issue a
	// full coherent-read-invalidate instead, so these are used only for
	// the CNI4 explicit-clear handshake and receive-side queue-entry
	// invalidations by the device.
	InvalMemBus = 12
	InvalIOBus  = 32
)

// AgentClass classifies bus agents for transfer-cost selection.
type AgentClass int

const (
	ClassProc AgentClass = iota
	ClassDevice
	ClassMemory
)

func (c AgentClass) String() string {
	switch c {
	case ClassProc:
		return "proc"
	case ClassDevice:
		return "device"
	case ClassMemory:
		return "memory"
	}
	return fmt.Sprintf("AgentClass(%d)", int(c))
}

// BlockTransferCost returns the occupancy of a 64-byte transfer on the
// given bus with data flowing from supplier to requester.
func BlockTransferCost(bus BusKind, supplier, requester AgentClass) uint64 {
	switch bus {
	case MemoryBus:
		return BlockMemBus
	case IOBus:
		if supplier == ClassDevice {
			return BlockIODevToProc
		}
		return BlockIOProcToDev
	case CacheBus:
		return 4
	}
	panic("params: bad bus kind")
}

// UncachedLoadCost returns the round-trip cost of an 8-byte uncached
// load from a device on the given bus.
func UncachedLoadCost(bus BusKind) uint64 {
	switch bus {
	case CacheBus:
		return UncLoadCacheBus
	case MemoryBus:
		return UncLoadMemBus
	case IOBus:
		return UncLoadIOBus
	}
	panic("params: bad bus kind")
}

// UncachedStoreCost returns the occupancy of an 8-byte uncached store
// to a device on the given bus.
func UncachedStoreCost(bus BusKind) uint64 {
	switch bus {
	case CacheBus:
		return UncStoreCacheBus
	case MemoryBus:
		return UncStoreMemBus
	case IOBus:
		return UncStoreIOBus
	}
	panic("params: bad bus kind")
}

// InvalidateCost returns the occupancy of an address-only invalidation.
func InvalidateCost(bus BusKind) uint64 {
	switch bus {
	case CacheBus:
		return 4
	case MemoryBus:
		return InvalMemBus
	case IOBus:
		return InvalIOBus
	}
	panic("params: bad bus kind")
}

// Config selects a machine + NI configuration for one simulation run.
type Config struct {
	Nodes int     // number of nodes (paper: 16; microbenchmarks: 2)
	NI    NIKind  // which network interface design
	Bus   BusKind // where the NI is attached

	// Topology selects the interconnect fabric. The zero value
	// (TopoFlat) is the paper's constant-latency network; TopoTorus
	// adds link contention and per-hop latency.
	Topology Topology

	// Shards, when >= 1, runs the machine on the sharded
	// conservative-lookahead event engine with that many shards
	// (clamped to the node count): nodes partition into contiguous
	// groups, each with its own event heap, synchronised in epochs of
	// the torus hop latency (DESIGN.md §14). Results are byte-identical
	// for every Shards >= 1 value. Sharding applies only to torus
	// machines with more than 16 nodes; Flat and all paper-scale
	// (<= 16 node) runs always use the serial engine, byte-identically
	// to Shards == 0. The zero value is the serial engine everywhere.
	Shards int

	// Snarfing enables data snarfing on the processor cache: the cache
	// loads a block from an observed writeback when it has a matching
	// tag in Invalid state (§5.1.2, CNI16Qm only in the paper).
	Snarfing bool

	// UpdateProtocol enables the paper's suggested update-based
	// enhancement (§2.2, §5.1.2): after writing a receive-queue block,
	// the CNI pushes the fresh contents onto the bus so the
	// processor's invalidated copy refills in place — the receiver's
	// poll then hits, "eliminating even the cache miss". Applies to
	// the CQ designs.
	UpdateProtocol bool

	// Ablation switches for the CQ optimisations (§2.2). All false
	// reproduces the paper's CNIs.
	NoLazyPointers bool // sender re-reads head every enqueue
	NoValidBits    bool // receiver polls the tail pointer instead
	NoSenseReverse bool // receiver explicitly clears valid bits (extra ownership traffic)

	// QueueBlocksOverride, if nonzero, replaces the NI's exposed queue
	// size (for sweep ablations).
	QueueBlocksOverride int

	// NI2wFIFOOverride, if nonzero, replaces NI2wFIFOMsgs.
	NI2wFIFOOverride int

	// Workload, when non-nil, attaches a traffic-generator spec for
	// the workload/telemetry subsystem (internal/workload). nil for
	// the paper's fixed micro/macrobenchmarks; machine construction
	// ignores it.
	Workload *Workload

	// Faults configures the deterministic fault-injection layer and
	// the reliable-delivery transport (internal/fault, internal/msg).
	// The zero value is off and byte-identical to a pre-fault run.
	Faults Faults

	// Trace configures the telemetry subsystem (internal/trace):
	// message-lifecycle recording and the sampled time-series. The
	// zero value is off and byte-identical to a pre-trace run.
	Trace Trace
}

// Validate reports configuration errors, including the paper's
// structural constraints (§2.3, §5): CNI16Qm cannot be implemented on
// a coherent I/O bus, and only NI2w is considered on the cache bus.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("params: need at least 2 nodes, have %d", c.Nodes)
	}
	if c.NI == CNI16Qm && c.Bus == IOBus {
		return fmt.Errorf("params: CNI16Qm cannot live on the I/O bus (memory cannot be its coherent home there)")
	}
	if c.Bus == CacheBus && c.NI != NI2w {
		return fmt.Errorf("params: only NI2w is modelled on the cache bus")
	}
	if c.Snarfing && c.NI != CNI16Qm {
		return fmt.Errorf("params: snarfing only applies to CNI16Qm (writebacks to memory)")
	}
	if c.UpdateProtocol && !c.NI.IsCQ() {
		return fmt.Errorf("params: the update-protocol extension applies to the CQ designs")
	}
	if c.Topology != TopoFlat && c.Topology != TopoTorus {
		return fmt.Errorf("params: unknown topology %v", c.Topology)
	}
	if c.Shards < 0 {
		return fmt.Errorf("params: Shards must be >= 0, have %d", c.Shards)
	}
	if c.Shards > 1 && c.Trace.SampleEvery > 0 {
		return fmt.Errorf("params: the trace sampler reads cross-shard gauges and needs a single event loop; use Shards <= 1 with Trace.SampleEvery")
	}
	if c.Workload != nil {
		if err := c.Workload.Validate(); err != nil {
			return err
		}
	}
	if err := c.Faults.Validate(c.Nodes); err != nil {
		return err
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	return nil
}

// QueueBlocks returns the effective exposed-queue size for the run.
func (c Config) QueueBlocks() int {
	if c.QueueBlocksOverride != 0 {
		return c.QueueBlocksOverride
	}
	return c.NI.QueueBlocks()
}

// TotalQueueBlocks returns the total (memory-backed) queue capacity:
// for CNI16Qm the 512-block main-memory region; otherwise the exposed
// size.
func (c Config) TotalQueueBlocks() int {
	if c.NI == CNI16Qm {
		return 512
	}
	return c.QueueBlocks()
}

// NI2wFIFO returns the effective baseline FIFO depth in messages.
func (c Config) NI2wFIFO() int {
	if c.NI2wFIFOOverride != 0 {
		return c.NI2wFIFOOverride
	}
	return NI2wFIFOMsgs
}

// Name renders a short label like "CNI16Qm@memory" for tables.
func (c Config) Name() string {
	s := c.NI.String() + "@" + c.Bus.String()
	if c.Snarfing {
		s += "+snarf"
	}
	if c.Topology != TopoFlat {
		s += "+" + c.Topology.String()
	}
	if c.Faults.Injects() {
		s += "+faults"
	}
	if c.Trace.Active() {
		s += "+trace"
	}
	return s
}
