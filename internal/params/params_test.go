package params

import (
	"strings"
	"testing"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"one node", Config{Nodes: 1, NI: NI2w, Bus: MemoryBus}, false},
		{"two nodes ok", Config{Nodes: 2, NI: NI2w, Bus: MemoryBus}, true},
		{"Qm on io", Config{Nodes: 2, NI: CNI16Qm, Bus: IOBus}, false},
		{"Qm on memory", Config{Nodes: 2, NI: CNI16Qm, Bus: MemoryBus}, true},
		{"CNI on cache bus", Config{Nodes: 2, NI: CNI4, Bus: CacheBus}, false},
		{"NI2w on cache bus", Config{Nodes: 2, NI: NI2w, Bus: CacheBus}, true},
		{"snarf on 512Q", Config{Nodes: 2, NI: CNI512Q, Bus: MemoryBus, Snarfing: true}, false},
		{"snarf on Qm", Config{Nodes: 2, NI: CNI16Qm, Bus: MemoryBus, Snarfing: true}, true},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestQueueBlocks(t *testing.T) {
	if got := (Config{NI: CNI512Q}).QueueBlocks(); got != 512 {
		t.Errorf("CNI512Q queue = %d", got)
	}
	if got := (Config{NI: CNI16Qm}).QueueBlocks(); got != 16 {
		t.Errorf("CNI16Qm exposed queue = %d", got)
	}
	if got := (Config{NI: CNI16Qm}).TotalQueueBlocks(); got != 512 {
		t.Errorf("CNI16Qm total queue = %d", got)
	}
	if got := (Config{NI: CNI16Q, QueueBlocksOverride: 64}).QueueBlocks(); got != 64 {
		t.Errorf("override ignored: %d", got)
	}
	if NI2w.QueueBlocks() != 0 {
		t.Error("NI2w exposes words, not blocks")
	}
}

func TestTaxonomyPredicates(t *testing.T) {
	if !CNI16Q.IsCQ() || !CNI512Q.IsCQ() || !CNI16Qm.IsCQ() {
		t.Error("CQ designs misclassified")
	}
	if NI2w.IsCQ() || CNI4.IsCQ() {
		t.Error("non-CQ designs misclassified")
	}
	if !CNI16Qm.MemoryHomed() || CNI16Q.MemoryHomed() {
		t.Error("MemoryHomed wrong")
	}
}

func TestNames(t *testing.T) {
	if NI2w.String() != "NI2w" || CNI16Qm.String() != "CNI16Qm" {
		t.Error("NIKind names wrong")
	}
	if MemoryBus.String() != "memory" || IOBus.String() != "io" || CacheBus.String() != "cache" {
		t.Error("BusKind names wrong")
	}
	cfg := Config{Nodes: 2, NI: CNI16Qm, Bus: MemoryBus, Snarfing: true}
	if cfg.Name() != "CNI16Qm@memory+snarf" {
		t.Errorf("Name = %q", cfg.Name())
	}
}

func TestTable2Costs(t *testing.T) {
	// The paper's Table 2, verbatim.
	if UncachedLoadCost(CacheBus) != 4 || UncachedLoadCost(MemoryBus) != 28 || UncachedLoadCost(IOBus) != 48 {
		t.Error("uncached load costs diverge from Table 2")
	}
	if UncachedStoreCost(CacheBus) != 4 || UncachedStoreCost(MemoryBus) != 12 || UncachedStoreCost(IOBus) != 32 {
		t.Error("uncached store costs diverge from Table 2")
	}
	if BlockTransferCost(MemoryBus, ClassDevice, ClassProc) != 42 {
		t.Error("memory-bus block cost diverges from Table 2")
	}
	if BlockTransferCost(IOBus, ClassDevice, ClassProc) != 76 {
		t.Error("I/O-bus CNI->proc cost diverges from Table 2")
	}
	if BlockTransferCost(IOBus, ClassProc, ClassDevice) != 62 {
		t.Error("I/O-bus proc->CNI cost diverges from Table 2")
	}
	if BlockTransferCost(IOBus, ClassMemory, ClassDevice) != 62 {
		t.Error("memory-supplied I/O transfer should use the proc->CNI direction")
	}
}

func TestMessageGeometry(t *testing.T) {
	if MaxPayloadBytes != 244 {
		t.Errorf("MaxPayloadBytes = %d, want 244 (256 - 12)", MaxPayloadBytes)
	}
	if BlocksPerNetMsg != 4 {
		t.Errorf("BlocksPerNetMsg = %d, want 4", BlocksPerNetMsg)
	}
}

func TestNI2wFIFOOverride(t *testing.T) {
	if got := (Config{}).NI2wFIFO(); got != NI2wFIFOMsgs {
		t.Errorf("default FIFO = %d", got)
	}
	if got := (Config{NI2wFIFOOverride: 9}).NI2wFIFO(); got != 9 {
		t.Errorf("override FIFO = %d", got)
	}
}

func TestTopology(t *testing.T) {
	if TopoFlat.String() != "flat" || TopoTorus.String() != "torus" {
		t.Error("topology names drifted")
	}
	if topo, err := ParseTopology("torus"); err != nil || topo != TopoTorus {
		t.Errorf("ParseTopology(torus) = %v, %v", topo, err)
	}
	if topo, err := ParseTopology(""); err != nil || topo != TopoFlat {
		t.Errorf("ParseTopology of empty = %v, %v, want the flat default", topo, err)
	}
	if _, err := ParseTopology("hypercube"); err == nil {
		t.Error("ParseTopology accepted an unknown fabric")
	}
}

func TestValidateTopology(t *testing.T) {
	cfg := Config{Nodes: 16, NI: CNI512Q, Bus: MemoryBus, Topology: TopoTorus}
	if err := cfg.Validate(); err != nil {
		t.Errorf("torus config invalid: %v", err)
	}
	cfg.Topology = Topology(99)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown topology passed Validate")
	}
}

func TestConfigNameTopology(t *testing.T) {
	flat := Config{Nodes: 2, NI: CNI512Q, Bus: MemoryBus}
	if got := flat.Name(); got != "CNI512Q@memory" {
		t.Errorf("flat Name = %q; the default must not grow a topology suffix", got)
	}
	torus := flat
	torus.Topology = TopoTorus
	if got := torus.Name(); got != "CNI512Q@memory+torus" {
		t.Errorf("torus Name = %q", got)
	}
}

func TestParseNI(t *testing.T) {
	for _, name := range NINames {
		kind, err := ParseNI(name)
		if err != nil {
			t.Errorf("ParseNI(%q): %v", name, err)
		}
		if kind.String() != name {
			t.Errorf("ParseNI(%q) = %v", name, kind)
		}
		// Case-insensitive, like the CLI has always accepted.
		if lower, err := ParseNI(strings.ToLower(name)); err != nil || lower != kind {
			t.Errorf("ParseNI(%q) case-folding failed", strings.ToLower(name))
		}

	}
	if _, err := ParseNI("cni512q"); err != nil {
		t.Errorf("lower-case name rejected: %v", err)
	}
	if _, err := ParseNI("CNI1024Q"); err == nil {
		t.Error("bogus NI accepted")
	}
}

func TestWorkloadValidate(t *testing.T) {
	ok := DefaultWorkload()
	if err := ok.Validate(); err != nil {
		t.Fatalf("default workload invalid: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*Workload)
	}{
		{"zero open-loop rate", func(w *Workload) { w.OfferedMBps = 0 }},
		{"negative zipf", func(w *Workload) { w.ZipfS = -1 }},
		{"degenerate zipf", func(w *Workload) { w.ZipfS = MaxZipfS + 1 }},
		{"bad size entry", func(w *Workload) { w.Sizes = []SizeWeight{{Bytes: 0, Weight: 1}} }},
		{"bursty zero on-frac", func(w *Workload) { w.Arrival = ArrivalBursty; w.BurstOnFrac = 0 }},
		{"bursty zero on-cycles", func(w *Workload) { w.Arrival = ArrivalBursty; w.BurstOnCycles = 0 }},
		{"closed zero clients", func(w *Workload) { w.Arrival = ArrivalClosed; w.Clients = 0 }},
	}
	for _, c := range cases {
		w := DefaultWorkload()
		c.mod(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
}

func TestParseArrival(t *testing.T) {
	for _, name := range ArrivalNames {
		kind, err := ParseArrival(name)
		if err != nil || kind.String() != name {
			t.Errorf("ParseArrival(%q) = %v, %v", name, kind, err)
		}
	}
	if kind, err := ParseArrival(""); err != nil || kind != ArrivalPoisson {
		t.Error("empty arrival should default to poisson")
	}
	if _, err := ParseArrival("burst"); err == nil {
		t.Error("bogus arrival accepted")
	}
}
