// Package workload generates deterministic offered-load traffic on
// the simulated machine and measures how the system responds — the
// regime the paper's fixed micro/macrobenchmarks never enter.
//
// Generators run as ordinary simulated processes on top of the
// user-level messaging layer (internal/msg), so every arrival process
// composes with all five NI designs, the DMA comparator, every bus
// attachment, and both interconnect fabrics. Three arrival processes
// are modelled (params.ArrivalKind):
//
//   - open-loop Poisson: exponential inter-arrival gaps at a
//     configured per-node offered load, generated regardless of
//     completions — the process that exposes saturation;
//   - open-loop bursty (on/off MMPP): Poisson at a peak rate during
//     exponentially distributed ON periods, silent during OFF, same
//     long-run load;
//   - closed-loop: request/reply clients with think time, whose
//     offered load self-limits with system latency.
//
// Destinations are drawn from a Zipf distribution (node 0 hottest),
// sizes from a configurable mix. All randomness comes from one seed,
// and the measurement itself is free in simulated time, so a run is
// byte-for-byte reproducible.
//
// Latency telemetry is coordinated-omission-free: for the open loops
// each message is timed from its *intended* arrival instant (not from
// when a backlogged sender finally issued it) to handler dispatch at
// the destination, so sender-side queueing under overload shows up in
// the tail instead of vanishing. Closed-loop latency is the client's
// request/reply round trip.
package workload

import (
	"math"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Workload-private active-message handler ids.
const (
	hOpen = 400 + iota // open-loop sink
	hReq               // closed-loop request
	hRep               // closed-loop reply
)

const (
	// pollQuantum is how long an idle open-loop node sleeps between
	// receive-drain passes; it bounds both the added delivery latency
	// and the event count of an idle node.
	pollQuantum = 256
	// serviceCycles is the receiver's per-message bookkeeping beyond
	// reading the payload (mirrors the bandwidth microbenchmark).
	serviceCycles = 40
	// replyBytes is the closed-loop reply payload.
	replyBytes = 64
	// popIssueBatch bounds how many due population arrivals a node
	// issues before draining replies again (see addClosedPopulation).
	popIssueBatch = 64
)

// Report is one measured workload run.
type Report struct {
	// OfferedMBps is the aggregate offered load (nodes × per-node);
	// for the closed loop, which self-limits, it equals GoodputMBps.
	OfferedMBps float64
	// GoodputMBps is the aggregate user payload delivered inside the
	// measurement window.
	GoodputMBps float64
	// Sent and Delivered count user messages over the whole run
	// (including warm-up; under overload Delivered lags Sent).
	Sent, Delivered uint64
	// Latency is the end-to-end latency distribution in cycles,
	// merged across nodes, measurement window only. Open loop:
	// intended-arrival to handler dispatch; closed loop: request to
	// reply dispatch.
	Latency sim.Histogram
	// NetDelivery is the fabric's own admission-to-delivery histogram
	// ("net.delivery"), whole run — the network-layer view under the
	// same load.
	NetDelivery sim.Histogram
	// Fault and transport telemetry, whole run; all zero when
	// cfg.Faults is inactive. Drops counts frames the injector
	// consumed, Retransmits and DupSuppressed the transport's recovery
	// work, Dead the frames written off after retry-budget exhaustion.
	Drops, Retransmits, DupSuppressed, Dead uint64
	// Recovery is the send-to-ack latency distribution of frames that
	// needed at least one retransmit ("net.recovery").
	Recovery sim.Histogram
}

// gen is one node's arrival-process state. Its sampling methods are
// the steady-state arrival path and must not allocate.
type gen struct {
	rng     *apps.Rand
	bursty  bool
	meanGap float64 // long-run cycles between arrivals
	peakGap float64 // bursty: gap during an ON period
	meanOn  float64 // bursty: mean ON length
	meanOff float64 // bursty: mean OFF length
	onLeft  float64 // bursty: remaining ON time
	think   float64 // closed loop: mean think time

	dstCDF  []float64 // shared cumulative destination weights
	sizes   []params.SizeWeight
	sizeSum int
}

// exp draws an exponential variate with the given mean.
func (g *gen) exp(mean float64) float64 {
	return -mean * math.Log(1-g.rng.Float())
}

// nextGap samples the next inter-arrival gap (≥ 1 cycle).
func (g *gen) nextGap() sim.Time {
	var gap float64
	if !g.bursty {
		gap = g.exp(g.meanGap)
	} else {
		for {
			d := g.exp(g.peakGap)
			if d <= g.onLeft {
				g.onLeft -= d
				gap += d
				break
			}
			// Burn the rest of the ON period, sit out an OFF period,
			// and start a fresh ON period.
			gap += g.onLeft + g.exp(g.meanOff)
			g.onLeft = g.exp(g.meanOn)
		}
	}
	if gap < 1 {
		return 1
	}
	return sim.Time(gap)
}

// pickDst draws a Zipf destination, excluding self by rejection. The
// retry bound guards against a degenerate CDF (params.MaxZipfS keeps
// the distribution sane, but a sampler must not be able to hang): if
// every draw lands on self, fall back to the next-hottest node.
func (g *gen) pickDst(self int) int {
	for tries := 0; tries < 64; tries++ {
		u := g.rng.Float()
		// Binary search the shared CDF.
		lo, hi := 0, len(g.dstCDF)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if g.dstCDF[mid] <= u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo != self {
			return lo
		}
	}
	return (self + 1) % len(g.dstCDF)
}

// pickSize draws a payload size from the mix.
func (g *gen) pickSize() int {
	w := g.rng.Intn(g.sizeSum)
	for _, s := range g.sizes {
		w -= s.Weight
		if w < 0 {
			return s.Bytes
		}
	}
	return g.sizes[len(g.sizes)-1].Bytes
}

// run holds one measurement's shared state.
type run struct {
	m       *scenario.Machine
	wl      params.Workload
	n       int
	gens    []*gen
	warmEnd sim.Time
	endAt   sim.Time

	// stamps carries intended-arrival timestamps from the open-loop
	// sender to the destination's handler, slot src*n+dst. Per-(src,dst)
	// delivery is FIFO end to end (FIFO fabrics, in-order reassembly),
	// so a queue per slot is enough; the arena packs all n² of them
	// into one slab (see stampArena). Sharded machines instead carry
	// the stamp in the message payload (sharded below): an arena slot
	// is pushed on the source shard and popped on the destination
	// shard, which would race across shards.
	stamps *stampArena
	hists  []sim.Histogram

	// sharded mirrors scenario.Machine.Sharded for the hot paths.
	sharded bool

	// Tallies are per-node (writer = the node's own shard) and summed
	// into the Report after the run; a node's handler bumps its own
	// slot, so no two shards share a counter.
	sent      []uint64
	delivered []uint64
	winBytes  []uint64
}

// zipfCDF builds the cumulative destination distribution: node d has
// weight 1/(d+1)^s.
func zipfCDF(n int, s float64) []float64 {
	w := make([]float64, n)
	var total float64
	for d := 0; d < n; d++ {
		w[d] = math.Pow(float64(d+1), -s)
		total += w[d]
	}
	var cum float64
	for d := 0; d < n; d++ {
		cum += w[d] / total
		w[d] = cum
	}
	w[n-1] = 1 // guard against rounding
	return w
}

// newRun builds the machine and per-node generators.
func newRun(cfg params.Config, warm, measure sim.Time) *run {
	wl := params.DefaultWorkload()
	if cfg.Workload != nil {
		wl = *cfg.Workload
	}
	if len(wl.Sizes) == 0 {
		wl.Sizes = params.DefaultWorkload().Sizes
	}
	if err := wl.Validate(); err != nil {
		panic(err)
	}
	m, err := scenario.Build(cfg)
	if err != nil {
		panic(err)
	}
	r := &run{
		m:       m,
		wl:      wl,
		n:       cfg.Nodes,
		warmEnd: warm,
		endAt:   warm + measure,
	}
	r.sharded = m.Sharded()
	if !r.sharded {
		// The n² arena is a real cost at thousands of nodes (the slab
		// alone is hundreds of MB at 4096, and the GC rescans it all
		// run); sharded machines carry stamps in payloads and never
		// touch it, so don't build it.
		r.stamps = newStampArena(r.n * r.n)
	}
	r.hists = make([]sim.Histogram, r.n)
	r.sent = make([]uint64, r.n)
	r.delivered = make([]uint64, r.n)
	r.winBytes = make([]uint64, r.n)
	cdf := zipfCDF(r.n, wl.ZipfS)
	sizeSum := 0
	for _, s := range wl.Sizes {
		sizeSum += s.Weight
	}
	// Per-node mean inter-arrival gap from the offered load:
	// bytes/cycle = MB/s ÷ CPUMHz.
	meanGap := wl.MeanBytes() * params.CPUMHz / wl.OfferedMBps
	for id := 0; id < r.n; id++ {
		g := &gen{
			rng:     apps.NewRand(wl.Seed ^ uint64(id+1)*0x9E3779B97F4A7C15),
			bursty:  wl.Arrival == params.ArrivalBursty,
			meanGap: meanGap,
			think:   float64(wl.ThinkCycles),
			dstCDF:  cdf,
			sizes:   wl.Sizes,
			sizeSum: sizeSum,
		}
		if g.bursty {
			g.peakGap = meanGap * wl.BurstOnFrac
			g.meanOn = wl.BurstOnCycles
			g.meanOff = wl.BurstOnCycles * (1 - wl.BurstOnFrac) / wl.BurstOnFrac
			g.onLeft = g.exp(g.meanOn)
		}
		r.gens = append(r.gens, g)
	}
	return r
}

// Run executes cfg's workload (cfg.Workload; nil uses
// params.DefaultWorkload) for warm + measure cycles and reports
// goodput and latency telemetry from the measurement window. The run
// is stopped at the horizon — under overload, backlogged messages
// simply never count — so a run's cost is bounded no matter how far
// past saturation the offered load is.
func Run(cfg params.Config, warm, measure sim.Time) Report {
	rep, _ := runMeasured(cfg, warm, measure, false)
	return rep
}

// RunTimed is Run plus the run phase's wall-clock seconds, measured
// from scenario start to horizon and excluding machine construction —
// at thousands of nodes the O(n²) route/fault tables dominate setup,
// and the sharded-engine speedup canary must compare execution, not
// allocation. The collector is quiesced (one forced GC) before the
// clock starts, so a mark cycle triggered by construction garbage
// doesn't bleed into the timed window.
func RunTimed(cfg params.Config, warm, measure sim.Time) (Report, float64) {
	return runMeasured(cfg, warm, measure, true)
}

func runMeasured(cfg params.Config, warm, measure sim.Time, timed bool) (Report, float64) {
	r := newRun(cfg, warm, measure)
	defer r.m.Close()
	sc := scenario.New()
	if r.wl.Arrival == params.ArrivalClosed {
		r.addClosed(sc)
	} else {
		r.addOpen(sc)
	}
	var start time.Time
	if timed {
		runtime.GC()
		start = time.Now()
	}
	tr := r.m.RunUntil(sc, r.endAt)
	wall := time.Since(start).Seconds()

	var sent, delivered, winBytes uint64
	for id := 0; id < r.n; id++ {
		sent += r.sent[id]
		delivered += r.delivered[id]
		winBytes += r.winBytes[id]
	}
	rep := Report{
		OfferedMBps:   r.wl.OfferedMBps * float64(r.n),
		Sent:          sent,
		Delivered:     delivered,
		GoodputMBps:   float64(winBytes) * params.CPUMHz / float64(r.endAt-r.warmEnd),
		NetDelivery:   tr.Histogram("net.delivery"),
		Drops:         tr.Counter("net.drops"),
		Retransmits:   tr.Counter("net.retransmits"),
		DupSuppressed: tr.Counter("net.dup_suppressed"),
		Dead:          tr.Counter("net.dead"),
		Recovery:      tr.Histogram("net.recovery"),
	}
	for id := range r.hists {
		rep.Latency.Merge(&r.hists[id])
	}
	if r.wl.Arrival == params.ArrivalClosed {
		rep.OfferedMBps = rep.GoodputMBps
	}
	return rep, wall
}

// addOpen adds one open-loop program per node: it emits requests on
// its arrival schedule and drains arrivals between them.
func (r *run) addOpen(sc *scenario.Scenario) {
	for id := 0; id < r.n; id++ {
		at := id
		r.m.Endpoint(id).Handle(hOpen, func(d *scenario.Delivery) {
			// Consume the payload (the data ends up used in the
			// receiver's cache, as in the bandwidth microbenchmark).
			d.EP.Load(0x4000, d.Size)
			d.EP.Compute(serviceCycles)
			var intended sim.Time
			if r.sharded {
				intended = d.Payload.(sim.Time)
			} else {
				intended = r.stamps.Pop(d.Src*r.n + at)
			}
			r.delivered[at]++
			now := d.EP.Clock()
			if now > r.warmEnd {
				r.hists[at].Record(now - intended)
				r.winBytes[at] += uint64(d.Size)
			}
		})
	}
	for id := 0; id < r.n; id++ {
		self := id
		g := r.gens[id]
		sc.At(id, func(ep *scenario.Endpoint) {
			next := ep.Clock() + g.nextGap()
			for ep.Clock() < r.endAt {
				if ep.Clock() >= next {
					dst := g.pickDst(self)
					size := g.pickSize()
					var payload any
					if r.sharded {
						payload = next
					} else {
						r.stamps.Push(self*r.n+dst, next)
					}
					r.sent[self]++
					ep.SendTo(dst, hOpen, size, payload)
					next += g.nextGap()
					continue
				}
				ep.Drain()
				wait := next - ep.Clock()
				if wait > pollQuantum {
					wait = pollQuantum
				}
				if wait > 0 {
					ep.Sleep(wait)
				}
			}
		})
	}
}

// clientSlot is one closed-loop client session. The request carries
// the pointer and the server echoes it back, routing the reply to
// the right session; the node's single process multiplexes all of
// its sessions, because the machine model has one processor context
// per node (the NI software protocols are not reentrant).
type clientSlot struct {
	start   sim.Time
	readyAt sim.Time // think-time expiry for the next request
	pending bool
}

// addClosed adds the closed-loop servers and client multiplexers.
// Population configurations (params.Workload.PopulationActive) use the
// aggregated weighted-population arrival process; the original
// per-session slots below are kept verbatim for Clients <= 1 so
// existing single-session runs stay byte-identical.
func (r *run) addClosed(sc *scenario.Scenario) {
	if r.wl.PopulationActive() {
		r.addClosedPopulation(sc)
		return
	}
	for id := 0; id < r.n; id++ {
		at := id
		g := r.gens[id]
		ep := r.m.Endpoint(id)
		ep.Handle(hReq, func(d *scenario.Delivery) {
			d.EP.Load(0x4000, d.Size)
			d.EP.Compute(serviceCycles)
			r.delivered[at]++
			if d.EP.Clock() > r.warmEnd {
				r.winBytes[at] += uint64(d.Size)
			}
			d.EP.SendTo(d.Src, hRep, replyBytes, d.Payload)
		})
		ep.Handle(hRep, func(d *scenario.Delivery) {
			sl := d.Payload.(*clientSlot)
			sl.pending = false
			now := d.EP.Clock()
			if now > r.warmEnd {
				r.hists[at].Record(now - sl.start)
			}
			sl.readyAt = now + sim.Time(g.exp(g.think)) + 1
		})
	}
	for id := 0; id < r.n; id++ {
		self := id
		g := r.gens[id]
		sc.At(id, func(ep *scenario.Endpoint) {
			slots := make([]*clientSlot, r.wl.Clients)
			for i := range slots {
				slots[i] = &clientSlot{}
			}
			for ep.Clock() < r.endAt {
				issued := false
				for _, sl := range slots {
					if !sl.pending && ep.Clock() >= sl.readyAt {
						sl.start = ep.Clock()
						sl.pending = true
						r.sent[self]++
						ep.SendTo(g.pickDst(self), hReq, g.pickSize(), sl)
						issued = true
					}
				}
				if ep.Drain() > 0 || issued {
					continue
				}
				// Every session is thinking or awaiting a reply: sleep
				// to the next think expiry, bounded by the poll quantum
				// so pending replies are still drained promptly.
				wait := sim.Time(pollQuantum)
				for _, sl := range slots {
					if !sl.pending && sl.readyAt > ep.Clock() {
						if d := sl.readyAt - ep.Clock(); d < wait {
							wait = d
						}
					}
				}
				if wait > 0 {
					ep.Sleep(wait)
				}
			}
		})
	}
}

// popReq is one in-flight population request: the issuing client's
// weight (returned to the thinking pool on reply) and the intended
// arrival instant the round trip is timed from. Requests are recycled
// through a per-node freelist, so the steady state allocates nothing.
type popReq struct {
	weight float64
	start  sim.Time
}

// addClosedPopulation runs the closed loop as one aggregated weighted
// population per node (see Population): each node carries wl.Clients
// weighted clients behind a single arrival process, so the per-arrival
// cost is O(log Clients) and a machine can carry millions of clients.
// Latency is coordinated-omission-free: a request is timed from its
// scheduled arrival instant even when the sender was backlogged, so
// sender-side queueing under overload lands in the tail.
func (r *run) addClosedPopulation(sc *scenario.Scenario) {
	clients := r.wl.Clients
	if clients < 1 {
		clients = 1
	}
	set := NewClientSet(ClientWeights(r.wl, clients))
	pops := make([]*Population, r.n)
	free := make([][]*popReq, r.n)
	for id := 0; id < r.n; id++ {
		at := id
		ep := r.m.Endpoint(id)
		ep.Handle(hReq, func(d *scenario.Delivery) {
			d.EP.Load(0x4000, d.Size)
			d.EP.Compute(serviceCycles)
			r.delivered[at]++
			if d.EP.Clock() > r.warmEnd {
				r.winBytes[at] += uint64(d.Size)
			}
			d.EP.SendTo(d.Src, hRep, replyBytes, d.Payload)
		})
		ep.Handle(hRep, func(d *scenario.Delivery) {
			pr := d.Payload.(*popReq)
			now := d.EP.Clock()
			if now > r.warmEnd {
				r.hists[at].Record(now - pr.start)
			}
			pops[at].Return(pr.weight, now)
			free[at] = append(free[at], pr)
		})
	}
	for id := 0; id < r.n; id++ {
		self := id
		g := r.gens[id]
		sc.At(id, func(ep *scenario.Endpoint) {
			pop := set.Population(g.think, g.rng, ep.Clock())
			pops[self] = pop
			for ep.Clock() < r.endAt {
				issued := false
				// Issue the arrivals that have come due — a blocked send
				// advances the clock, and the arrivals that backed up
				// behind it keep their scheduled start stamps. The batch
				// cap matters under deep overload: when arrivals come due
				// faster than sends complete, an uncapped loop would
				// never yield to Drain and no node would ever serve a
				// request.
				for b := 0; b < popIssueBatch && pop.NextAt() <= ep.Clock(); b++ {
					var pr *popReq
					if n := len(free[self]); n > 0 {
						pr = free[self][n-1]
						free[self] = free[self][:n-1]
					} else {
						pr = &popReq{}
					}
					pr.start = pop.NextAt()
					pr.weight = pop.Take()
					r.sent[self]++
					ep.SendTo(g.pickDst(self), hReq, g.pickSize(), pr)
					issued = true
				}
				if ep.Drain() > 0 || issued {
					continue
				}
				wait := sim.Time(pollQuantum)
				if next := pop.NextAt(); next > ep.Clock() && next-ep.Clock() < wait {
					wait = next - ep.Clock()
				}
				if wait > 0 {
					ep.Sleep(wait)
				}
			}
		})
	}
}
