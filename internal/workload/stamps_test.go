package workload

import (
	"testing"

	"repro/internal/sim"
)

// TestStampArenaFIFO: the arena preserves per-slot FIFO order through
// the ring→spill overflow boundary and back, and slots are independent.
func TestStampArenaFIFO(t *testing.T) {
	a := newStampArena(4)
	// Drive slot 1 well past the ring capacity while interleaving
	// pushes on slot 2, popping in waves to cross the refill path.
	next := sim.Time(100)
	want := []sim.Time{}
	for i := 0; i < 3*stampCap; i++ {
		a.Push(1, next)
		a.Push(2, next*10)
		want = append(want, next)
		next++
	}
	if got := a.Len(1); got != 3*stampCap {
		t.Fatalf("Len(1) = %d, want %d", got, 3*stampCap)
	}
	for i, w := range want {
		if got := a.Pop(1); got != w {
			t.Fatalf("Pop(1) #%d = %d, want %d", i, got, w)
		}
	}
	if got := a.Len(1); got != 0 {
		t.Fatalf("Len(1) after drain = %d, want 0", got)
	}
	// Slot 2 was untouched by slot 1's traffic.
	if got := a.Pop(2); got != 1000 {
		t.Fatalf("Pop(2) = %d, want 1000", got)
	}
}

// TestStampArenaSteadyStateAllocs: window-depth push/pop traffic — the
// workload hot path — allocates nothing.
func TestStampArenaSteadyStateAllocs(t *testing.T) {
	a := newStampArena(16)
	var next sim.Time
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < stampCap/2; i++ {
			a.Push(5, next)
			next++
		}
		for i := 0; i < stampCap/2; i++ {
			a.Pop(5)
		}
	})
	if allocs != 0 {
		t.Errorf("stamp arena steady state allocates %.1f objects/op, want 0", allocs)
	}
}
