package workload

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/params"
	"repro/internal/sim"
)

func popCfg(clients int, zipfS float64) params.Config {
	wl := params.DefaultWorkload()
	wl.Arrival = params.ArrivalClosed
	wl.Clients = clients
	wl.ClientZipfS = zipfS
	return params.Config{Nodes: 16, NI: params.CNI512Q, Bus: params.MemoryBus, Workload: &wl}
}

// TestPopulationDeterministic: the aggregated-population closed loop
// keeps the subsystem's bit-for-bit reproducibility, even at a
// population far beyond what per-session slots could simulate.
func TestPopulationDeterministic(t *testing.T) {
	t.Parallel()
	cfg := popCfg(100_000, 1.0)
	a := Run(cfg, 10_000, 40_000)
	b := Run(cfg, 10_000, 40_000)
	if a != b {
		t.Errorf("two identical population runs differ:\n  a: %+v\n  b: %+v", a, b)
	}
	if a.Latency.Count() == 0 {
		t.Error("population run recorded no latency samples")
	}
	if a.OfferedMBps != a.GoodputMBps {
		t.Errorf("closed loop should self-limit: offered %v != goodput %v", a.OfferedMBps, a.GoodputMBps)
	}
}

// TestPopulationScalesOfferedLoad: a larger thinking population drives
// more traffic (until the system binds), and a huge population still
// completes — the per-arrival cost is O(log clients), not O(clients).
func TestPopulationScalesOfferedLoad(t *testing.T) {
	t.Parallel()
	run := func(clients int) Report {
		cfg := popCfg(clients, 0)
		// A long think time keeps the small population below the NI's
		// saturation knee, so more clients must mean more goodput.
		cfg.Workload.ThinkCycles = 50_000
		return Run(cfg, 10_000, 40_000)
	}
	small, big := run(8), run(64)
	if big.GoodputMBps <= small.GoodputMBps {
		t.Errorf("64 clients/node should outrun 8: %v <= %v", big.GoodputMBps, small.GoodputMBps)
	}
	huge := Run(popCfg(1_000_000, 0), 5_000, 20_000)
	if huge.Delivered == 0 {
		t.Error("million-client population delivered nothing")
	}
}

// TestPopulationLegacyPathPreserved: Clients <= 1 with no weight
// configuration must keep using the original per-session slot path
// bit for bit (the PopulationActive gate).
func TestPopulationLegacyPathPreserved(t *testing.T) {
	t.Parallel()
	wl := params.DefaultWorkload()
	wl.Arrival = params.ArrivalClosed
	wl.Clients = 1
	if wl.PopulationActive() {
		t.Fatal("Clients=1 without weights must not activate the population model")
	}
	wl.Clients = 2
	if !wl.PopulationActive() {
		t.Error("Clients=2 should activate the population model")
	}
	wl.Clients = 1
	wl.ClientZipfS = 0.8
	if !wl.PopulationActive() {
		t.Error("a weight configuration should activate the population model")
	}
}

// TestClientWeights: the params spec renders to the right vectors.
func TestClientWeights(t *testing.T) {
	t.Parallel()
	wl := params.Workload{}
	u := ClientWeights(wl, 4)
	for i, w := range u {
		if w != 1 {
			t.Errorf("uniform weight[%d] = %v, want 1", i, w)
		}
	}
	wl.ClientZipfS = 1.0
	z := ClientWeights(wl, 4)
	for i := 1; i < len(z); i++ {
		if z[i] >= z[i-1] {
			t.Errorf("zipf weights must decrease: w[%d]=%v >= w[%d]=%v", i, z[i], i-1, z[i-1])
		}
	}
	wl.ClientWeights = []float64{3, 1}
	tiled := ClientWeights(wl, 5)
	want := []float64{3, 1, 3, 1, 3}
	for i := range want {
		if tiled[i] != want[i] {
			t.Errorf("tiled weight[%d] = %v, want %v (explicit vector must override zipf)", i, tiled[i], want[i])
		}
	}
}

// TestPopulationWeightAccounting exercises the arrival process
// directly: size-biased draws conserve weight, an exhausted population
// parks at Forever, and Return restarts it.
func TestPopulationWeightAccounting(t *testing.T) {
	t.Parallel()
	set := NewClientSet([]float64{5, 3, 2})
	if set.Clients() != 3 || set.TotalWeight() != 10 {
		t.Fatalf("set shape wrong: %d clients, total %v", set.Clients(), set.TotalWeight())
	}
	p := set.Population(1000, apps.NewRand(42), 0)
	var taken float64
	for p.NextAt() != sim.Forever {
		if taken >= set.TotalWeight() {
			break
		}
		taken += p.Take()
	}
	if p.thinkingW > 1e-9 {
		// Draws are size-biased from the full population, so the pool
		// drains to zero only once the cumulative takes cover it; the
		// invariant that matters is the clamp and the Forever park.
		t.Logf("thinking weight after drain: %v", p.thinkingW)
	}
	if p.NextAt() != sim.Forever {
		t.Fatalf("fully issued population should park at Forever, next at %v", p.NextAt())
	}
	p.Return(5, 12345)
	if p.NextAt() == sim.Forever || p.NextAt() <= 12345 {
		t.Errorf("Return must restart arrivals after now, next at %v", p.NextAt())
	}
	if p.thinkingW > set.TotalWeight() {
		t.Errorf("thinking weight %v exceeds total %v", p.thinkingW, set.TotalWeight())
	}
}

// TestPopulationZipfSkewsIssuers: with a strong skew the hottest
// client's weight dominates draws, so the mean issued weight is well
// above the population mean.
func TestPopulationZipfSkewsIssuers(t *testing.T) {
	t.Parallel()
	weights := ClientWeights(params.Workload{ClientZipfS: 1.2}, 1000)
	set := NewClientSet(weights)
	p := set.Population(1e12, apps.NewRand(7), 0) // think huge: pool never empties
	var sum float64
	const draws = 4096
	for i := 0; i < draws; i++ {
		w := p.Take()
		sum += w
		p.Return(w, p.NextAt())
	}
	mean := set.TotalWeight() / float64(set.Clients())
	if sum/draws < 4*mean {
		t.Errorf("size-biased zipf draws mean %v, want well above population mean %v", sum/draws, mean)
	}
}

// TestPopulationArrivalPathZeroAlloc pins Take/Return/NextAt — the
// steady-state population arrival path — at zero allocations,
// extending the generator alloc sweep to the population model.
func TestPopulationArrivalPathZeroAlloc(t *testing.T) {
	set := NewClientSet(ClientWeights(params.Workload{ClientZipfS: 0.9}, 100_000))
	p := set.Population(2000, apps.NewRand(3), 0)
	var now sim.Time
	allocs := testing.AllocsPerRun(1000, func() {
		now += 100
		w := p.Take()
		p.Return(w, now)
		_ = p.NextAt()
	})
	if allocs != 0 {
		t.Errorf("population arrival path allocates %.1f objects/op, want 0", allocs)
	}
}
