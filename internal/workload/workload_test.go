package workload

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func openCfg(arrival params.ArrivalKind, topo params.Topology, mbps float64) params.Config {
	wl := params.DefaultWorkload()
	wl.Arrival = arrival
	wl.OfferedMBps = mbps
	return params.Config{Nodes: 16, NI: params.CNI16Q, Bus: params.MemoryBus, Topology: topo, Workload: &wl}
}

// TestRunDeterministic pins the subsystem's core contract: a fixed
// seed reproduces the run bit for bit, including every histogram
// bucket.
func TestRunDeterministic(t *testing.T) {
	t.Parallel()
	for _, arrival := range []params.ArrivalKind{params.ArrivalPoisson, params.ArrivalBursty, params.ArrivalClosed} {
		cfg := openCfg(arrival, params.TopoTorus, 6)
		a := Run(cfg, 10_000, 30_000)
		b := Run(cfg, 10_000, 30_000)
		if a != b {
			t.Errorf("%v: two identical runs differ:\n  a: %+v\n  b: %+v", arrival, a.Latency.String(), b.Latency.String())
		}
		if a.Latency.Count() == 0 {
			t.Errorf("%v: no latency samples recorded", arrival)
		}
		if a.GoodputMBps <= 0 {
			t.Errorf("%v: no goodput measured", arrival)
		}
	}
}

// TestSeedChangesSchedule guards against the seed being ignored.
func TestSeedChangesSchedule(t *testing.T) {
	t.Parallel()
	cfg := openCfg(params.ArrivalPoisson, params.TopoFlat, 6)
	a := Run(cfg, 10_000, 30_000)
	wl2 := *cfg.Workload
	wl2.Seed = 99
	cfg.Workload = &wl2
	b := Run(cfg, 10_000, 30_000)
	if a == b {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestOpenLoopComposesEverywhere smoke-tests the generator over every
// NI design (including DMA) on both fabrics.
func TestOpenLoopComposesEverywhere(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("composition sweep in -short mode")
	}
	nis := append(append([]params.NIKind{}, params.AllNIs...), params.DMA)
	for _, ni := range nis {
		for _, topo := range []params.Topology{params.TopoFlat, params.TopoTorus} {
			wl := params.DefaultWorkload()
			wl.OfferedMBps = 4
			cfg := params.Config{Nodes: 16, NI: ni, Bus: params.MemoryBus, Topology: topo, Workload: &wl}
			rep := Run(cfg, 10_000, 30_000)
			if rep.Delivered == 0 || rep.Latency.Count() == 0 {
				t.Errorf("%s/%s: no traffic delivered (sent %d, delivered %d)", ni, topo, rep.Sent, rep.Delivered)
			}
		}
	}
}

// TestClosedLoopSelfLimits: closed-loop offered load equals goodput
// and grows with the client population.
func TestClosedLoopSelfLimits(t *testing.T) {
	t.Parallel()
	run := func(clients int) Report {
		wl := params.DefaultWorkload()
		wl.Arrival = params.ArrivalClosed
		wl.Clients = clients
		cfg := params.Config{Nodes: 16, NI: params.CNI512Q, Bus: params.MemoryBus, Workload: &wl}
		return Run(cfg, 10_000, 40_000)
	}
	one, four := run(1), run(4)
	if one.OfferedMBps != one.GoodputMBps {
		t.Errorf("closed loop should self-limit: offered %v != goodput %v", one.OfferedMBps, one.GoodputMBps)
	}
	if four.GoodputMBps <= one.GoodputMBps {
		t.Errorf("4 clients/node should outrun 1: %v <= %v", four.GoodputMBps, one.GoodputMBps)
	}
}

// TestBurstyMatchesLongRunRate: the MMPP's long-run offered load
// matches Poisson's within sampling noise, while its burstiness
// inflates the latency tail at equal load.
func TestBurstyMatchesLongRunRate(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("long windows in -short mode")
	}
	pois := Run(openCfg(params.ArrivalPoisson, params.TopoFlat, 4), 20_000, 400_000)
	burst := Run(openCfg(params.ArrivalBursty, params.TopoFlat, 4), 20_000, 400_000)
	lo, hi := 0.7*pois.GoodputMBps, 1.3*pois.GoodputMBps
	if burst.GoodputMBps < lo || burst.GoodputMBps > hi {
		t.Errorf("bursty long-run goodput %v outside [%v, %v] of poisson's", burst.GoodputMBps, lo, hi)
	}
	if burst.Latency.Quantile(0.99) <= pois.Latency.Quantile(0.99) {
		t.Errorf("bursty p99 %d should exceed poisson p99 %d at equal load",
			burst.Latency.Quantile(0.99), pois.Latency.Quantile(0.99))
	}
}

// TestZipfSkewConcentratesTraffic: with a strong skew the hot node
// receives a disproportionate share.
func TestZipfSkewConcentratesTraffic(t *testing.T) {
	t.Parallel()
	cdf := zipfCDF(16, 1.1)
	if cdf[15] != 1 {
		t.Fatalf("CDF must end at 1, got %v", cdf[15])
	}
	hotShare := cdf[0]
	if hotShare < 0.25 || hotShare > 0.45 {
		t.Errorf("Zipf(1.1) hot share = %v, want ~0.34", hotShare)
	}
	uniform := zipfCDF(16, 0)
	if uniform[0] < 0.06 || uniform[0] > 0.07 {
		t.Errorf("Zipf(0) should be uniform, first share = %v", uniform[0])
	}
}

// TestSerialSteadyStateZeroAlloc pins the engine-gating contract from
// the allocation side: the serial ≤16-node path — the machine every
// golden and BENCH canary runs on — must stay at 0 allocs/event in
// steady state. The machine is warmed past capacity growth (event
// heap, stamp FIFOs, pending slices), then advanced window by window
// with no scenario bookkeeping; any per-message boxing or closure
// creep on the inject→deliver→record path fails this loudly.
func TestSerialSteadyStateZeroAlloc(t *testing.T) {
	cfg := openCfg(params.ArrivalPoisson, params.TopoTorus, 6)
	r := newRun(cfg, 10_000, 10_000_000)
	defer r.m.Close()
	if r.m.Sharded() {
		t.Fatal("16-node torus must gate onto the serial engine")
	}
	sc := scenario.New()
	r.addOpen(sc)
	r.m.RunUntil(sc, 50_000)
	// Warm further with throwaway windows: FIFO rings, map buckets,
	// and free lists grow toward their steady-state capacity over the
	// first few hundred thousand cycles; measuring before they settle
	// reports residual growth as per-window allocation.
	next := sim.Time(50_000)
	for next < 400_000 {
		next += 2_000
		r.m.Advance(next)
	}
	before := r.m.EventsScheduled()
	allocs := testing.AllocsPerRun(100, func() {
		next += 2_000
		r.m.Advance(next)
	})
	events := r.m.EventsScheduled() - before
	if events == 0 {
		t.Fatal("steady-state windows dispatched no events")
	}
	if allocs != 0 {
		t.Errorf("serial steady state allocates %.2f objects per 2k-cycle window (%d events total), want 0 allocs/event",
			allocs, events)
	}
}

// TestGeneratorArrivalPathZeroAlloc pins the steady-state arrival
// path — gap sampling, destination pick, size pick, and the
// timestamp queue — at zero allocations, extending the PR 1/2 alloc
// sweep to the new subsystem.
func TestGeneratorArrivalPathZeroAlloc(t *testing.T) {
	wl := params.DefaultWorkload()
	g := &gen{
		rng:     apps.NewRand(7),
		meanGap: 1500,
		dstCDF:  zipfCDF(16, wl.ZipfS),
		sizes:   wl.Sizes,
		sizeSum: 10,
	}
	var stamps sim.FIFO[sim.Time]
	// Warm the FIFO to steady-state capacity.
	for i := 0; i < 64; i++ {
		stamps.Push(sim.Time(i))
	}
	for stamps.Len() > 0 {
		stamps.Pop()
	}
	sink := 0
	allocs := testing.AllocsPerRun(1000, func() {
		stamps.Push(g.nextGap())
		sink += g.pickDst(3) + g.pickSize()
		stamps.Pop()
	})
	if allocs != 0 {
		t.Errorf("poisson arrival path allocates %.1f objects/op, want 0", allocs)
	}
	g.bursty = true
	g.peakGap = 300
	g.meanOn = 4000
	g.meanOff = 12000
	allocs = testing.AllocsPerRun(1000, func() {
		stamps.Push(g.nextGap())
		stamps.Pop()
	})
	if allocs != 0 {
		t.Errorf("bursty arrival path allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}

// TestNetDeliveryTelemetry: the fabric-level histogram sees every
// delivered network message.
func TestNetDeliveryTelemetry(t *testing.T) {
	t.Parallel()
	rep := Run(openCfg(params.ArrivalPoisson, params.TopoTorus, 6), 10_000, 30_000)
	if rep.NetDelivery.Count() == 0 {
		t.Fatal("net.delivery histogram recorded nothing")
	}
	// Fabric delivery latency on the torus is at least one hop's
	// serialisation + wire time.
	if min := rep.NetDelivery.Min(); min < params.TorusHopLatency {
		t.Errorf("torus delivery min %d below a single hop latency", min)
	}
}
