package workload

import (
	"bytes"
	"testing"

	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// shardCfg builds a traced torus workload configuration at the given
// node and shard count; faults adds the full injector menu (drops,
// corruption, duplicates, delays, a degrade window, a pause, and a
// crash) so the determinism check covers the fault path too.
func shardCfg(nodes, shards int, faults bool) params.Config {
	wl := params.DefaultWorkload()
	wl.OfferedMBps = 4
	cfg := params.Config{
		Nodes: nodes, NI: params.CNI16Q, Bus: params.MemoryBus,
		Topology: params.TopoTorus, Shards: shards, Workload: &wl,
		Trace: params.Trace{Enabled: true, RingSize: 512},
	}
	if faults {
		cfg.Faults = params.Faults{
			Seed: 11, DropProb: 0.02, CorruptProb: 0.01, DupProb: 0.01,
			DelayProb: 0.02, DegradeFrom: 4000, DegradeUntil: 8000,
			DegradeLatencyX: 2, DegradeBandwidthX: 2,
			Pauses:  []params.FaultPause{{Node: 3, From: 3000, Until: 5000}},
			Crashes: []params.FaultCrash{{Node: 7, At: 11000}},
		}
	}
	return cfg
}

// runTraced is Run plus a byte export of the lifecycle rings, so the
// shard-count comparison covers every record and timestamp, not just
// the aggregate report.
func runTraced(t *testing.T, cfg params.Config, warm, measure sim.Time) (Report, []byte) {
	t.Helper()
	r := newRun(cfg, warm, measure)
	defer r.m.Close()
	sc := scenario.New()
	r.addOpen(sc)
	tr := r.m.RunUntil(sc, r.endAt)
	var sent, delivered, winBytes uint64
	for id := 0; id < r.n; id++ {
		sent += r.sent[id]
		delivered += r.delivered[id]
		winBytes += r.winBytes[id]
	}
	rep := Report{
		Sent: sent, Delivered: delivered,
		GoodputMBps: float64(winBytes) * params.CPUMHz / float64(r.endAt-r.warmEnd),
		NetDelivery: tr.Histogram("net.delivery"),
		Drops:       tr.Counter("net.drops"),
		Retransmits: tr.Counter("net.retransmits"),
		Recovery:    tr.Histogram("net.recovery"),
	}
	for id := range r.hists {
		rep.Latency.Merge(&r.hists[id])
	}
	var buf bytes.Buffer
	if _, err := trace.WriteChrome(&buf, trace.Capture{Label: "shard", Rec: r.m.TraceRecorder()}); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	return rep, buf.Bytes()
}

// TestShardDeterminism is the tentpole's contract: the shard count
// never changes results. A single-shard ShardSet executes serially
// (no worker goroutines, one heap) and is the reference ordering;
// 2/4/8 shards must reproduce its workload report AND its per-node
// lifecycle trace byte for byte, with the full fault menu active.
func TestShardDeterminism(t *testing.T) {
	t.Parallel()
	sizes := []int{64, 256}
	if !testing.Short() {
		sizes = append(sizes, 1024)
	}
	for _, nodes := range sizes {
		for _, faults := range []bool{false, true} {
			ref, refTrace := runTraced(t, shardCfg(nodes, 1, faults), 2000, 10_000)
			if ref.Delivered == 0 {
				t.Fatalf("nodes=%d faults=%v: reference run delivered nothing", nodes, faults)
			}
			for _, shards := range []int{2, 4, 8} {
				got, gotTrace := runTraced(t, shardCfg(nodes, shards, faults), 2000, 10_000)
				if got != ref {
					t.Errorf("nodes=%d faults=%v shards=%d: report diverges from serial\n  ref: %+v\n  got: %+v",
						nodes, faults, shards, ref, got)
				}
				if !bytes.Equal(gotTrace, refTrace) {
					t.Errorf("nodes=%d faults=%v shards=%d: lifecycle trace diverges from serial (ref %d bytes, got %d bytes)",
						nodes, faults, shards, len(refTrace), len(gotTrace))
				}
			}
		}
	}
}

// TestShardGatingStaysSerial pins the gate: small machines and the
// flat fabric ignore Shards and run the legacy serial engine, so
// every pre-sharding golden stays byte-identical.
func TestShardGatingStaysSerial(t *testing.T) {
	t.Parallel()
	wl := params.DefaultWorkload()
	wl.OfferedMBps = 4
	small := params.Config{Nodes: 16, NI: params.CNI16Q, Bus: params.MemoryBus,
		Topology: params.TopoTorus, Shards: 4, Workload: &wl}
	m, err := scenario.Build(small)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sharded() {
		t.Error("16-node torus with Shards=4 must stay on the serial engine")
	}
	m.Close()
	flat := params.Config{Nodes: 64, NI: params.CNI16Q, Bus: params.MemoryBus,
		Topology: params.TopoFlat, Shards: 4, Workload: &wl}
	m, err = scenario.Build(flat)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sharded() {
		t.Error("flat fabric with Shards=4 must stay on the serial engine")
	}
	m.Close()
}
