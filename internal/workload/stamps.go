package workload

import "repro/internal/sim"

// stampCap is the per-slot ring capacity of the stamp arena. The
// sliding window bounds in-flight messages per (src,dst) to four, so
// eight covers the common case of delivered-but-not-yet-handled
// messages; deeper bursts overflow to the per-slot spill FIFO.
const stampCap = 8

// stampArena interns the n² per-(src,dst) intended-arrival timestamp
// FIFOs into one slab: slot s occupies slab[s*stampCap:(s+1)*stampCap]
// as a small ring addressed by parallel head/count byte arrays. One
// backing array replaces n² queue headers each owning its own heap
// block, so the sender/handler hot path touches two contiguous byte
// arrays and one slab instead of scattered FIFO state, and steady-state
// push/pop allocates nothing.
//
// FIFO order across the spill boundary: a push lands in the ring only
// while the spill is empty (otherwise it would overtake the spilled
// entries), and each pop refills the ring from the spill, so the ring
// always holds the oldest entries.
type stampArena struct {
	slab  []sim.Time
	head  []uint8 // ring index of the oldest entry
	count []uint8 // live ring entries
	spill []sim.FIFO[sim.Time]
}

// newStampArena returns an arena with the given slot count.
func newStampArena(slots int) *stampArena {
	return &stampArena{
		slab:  make([]sim.Time, slots*stampCap),
		head:  make([]uint8, slots),
		count: make([]uint8, slots),
		spill: make([]sim.FIFO[sim.Time], slots),
	}
}

// Push appends t to slot's FIFO.
func (a *stampArena) Push(slot int, t sim.Time) {
	if int(a.count[slot]) < stampCap && a.spill[slot].Len() == 0 {
		i := (int(a.head[slot]) + int(a.count[slot])) % stampCap
		a.slab[slot*stampCap+i] = t
		a.count[slot]++
		return
	}
	a.spill[slot].Push(t)
}

// Pop removes and returns the oldest entry in slot's FIFO. The caller
// must check Len first.
func (a *stampArena) Pop(slot int) sim.Time {
	t := a.slab[slot*stampCap+int(a.head[slot])]
	a.head[slot] = uint8((int(a.head[slot]) + 1) % stampCap)
	a.count[slot]--
	for a.spill[slot].Len() > 0 && int(a.count[slot]) < stampCap {
		i := (int(a.head[slot]) + int(a.count[slot])) % stampCap
		a.slab[slot*stampCap+i] = a.spill[slot].Pop()
		a.count[slot]++
	}
	return t
}

// Len reports the number of queued entries in slot's FIFO.
func (a *stampArena) Len(slot int) int {
	return int(a.count[slot]) + a.spill[slot].Len()
}
