package workload

import (
	"math"

	"repro/internal/apps"
	"repro/internal/params"
	"repro/internal/sim"
)

// Population aggregates one node's N weighted closed-loop clients into
// a single arrival process, so a node can carry thousands — or, across
// a machine, millions — of simulated clients without one simulated
// session per client.
//
// The model: each client thinks for an exponentially distributed time
// (mean ThinkCycles ÷ its weight) and then issues one request, waiting
// for the reply before thinking again. Exponential think times are
// memoryless, so the aggregate arrival process while total weight W is
// thinking is Poisson with rate W/think — the population keeps one
// next-arrival timestamp instead of per-client timers, and each
// arrival draws the issuing client size-biased from the weight CDF.
// Issued weight leaves the thinking pool until Return, so the
// population self-limits exactly like individually simulated clients:
// as replies lag, less weight is thinking and the arrival rate falls.
//
// One deliberate aggregation: the issuing client is drawn from the
// full population, not the currently thinking subset. Tracking the
// thinking subset would cost per-client state again; with populations
// that are large relative to the in-flight count the bias is
// negligible, and the weight conservation above keeps the aggregate
// rate exact either way. All draws come from the node's seeded
// generator, so runs are byte-for-byte reproducible.
type Population struct {
	set       *ClientSet
	think     float64
	rng       *apps.Rand
	thinkingW float64
	nextAt    sim.Time
}

// ClientSet is the shared shape of a client population: the per-client
// weights and their cumulative distribution. Build one per machine and
// hand it to every node's Population — the slices are read-only after
// construction, so sharing costs nothing and a million-client set is
// stored once.
type ClientSet struct {
	weights []float64
	cdf     []float64
	total   float64
}

// NewClientSet builds the shared population shape from a per-client
// weight vector (every weight must be positive).
func NewClientSet(weights []float64) *ClientSet {
	s := &ClientSet{weights: weights, cdf: make([]float64, len(weights))}
	for _, w := range weights {
		s.total += w
	}
	cum := 0.0
	for i, w := range weights {
		cum += w / s.total
		s.cdf[i] = cum
	}
	if n := len(s.cdf); n > 0 {
		s.cdf[n-1] = 1 // guard against rounding
	}
	return s
}

// Clients returns the population size.
func (s *ClientSet) Clients() int { return len(s.weights) }

// TotalWeight returns the summed client weight.
func (s *ClientSet) TotalWeight() float64 { return s.total }

// ClientWeights renders params.Workload's population spec as an
// explicit weight vector of length clients: the tiled ClientWeights
// vector when set, else Zipf(ClientZipfS) weights (client 0 hottest),
// else a uniform population.
func ClientWeights(wl params.Workload, clients int) []float64 {
	w := make([]float64, clients)
	for i := range w {
		switch {
		case len(wl.ClientWeights) > 0:
			w[i] = wl.ClientWeights[i%len(wl.ClientWeights)]
		case wl.ClientZipfS > 0:
			w[i] = math.Pow(float64(i+1), -wl.ClientZipfS)
		default:
			w[i] = 1
		}
	}
	return w
}

// Population binds one node's arrival state to the shared set. think
// is the mean think time of a unit-weight client; the first arrival is
// scheduled from now.
func (s *ClientSet) Population(think float64, rng *apps.Rand, now sim.Time) *Population {
	p := &Population{set: s, think: think, rng: rng, thinkingW: s.total, nextAt: sim.Forever}
	p.schedule(now)
	return p
}

// gap draws the next inter-arrival gap at the current thinking rate.
func (p *Population) gap() sim.Time {
	g := -p.think / p.thinkingW * math.Log(1-p.rng.Float())
	if g < 1 {
		return 1
	}
	return sim.Time(g)
}

// schedule sets the next arrival from now, or parks the process when
// no weight is thinking (every client is awaiting a reply).
func (p *Population) schedule(now sim.Time) {
	if p.thinkingW <= 0 {
		p.nextAt = sim.Forever
		return
	}
	p.nextAt = now + p.gap()
}

// NextAt returns the next client arrival instant (sim.Forever while
// the whole population is awaiting replies).
func (p *Population) NextAt() sim.Time { return p.nextAt }

// Take commits the arrival due at NextAt: it draws the issuing client
// size-biased from the weight CDF, removes that weight from the
// thinking pool, schedules the following arrival, and returns the
// issued weight (the caller hands it back via Return when the reply
// lands). Take must only be called when NextAt is due; the steady
// state path does not allocate.
func (p *Population) Take() float64 {
	u := p.rng.Float()
	lo, hi := 0, len(p.set.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.set.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w := p.set.weights[lo]
	at := p.nextAt
	p.thinkingW -= w
	if p.thinkingW < 0 {
		p.thinkingW = 0
	}
	p.schedule(at)
	return w
}

// Return hands an issued client's weight back to the thinking pool
// when its reply has been handled; if the population was fully parked
// this restarts the arrival process from now.
func (p *Population) Return(w float64, now sim.Time) {
	p.thinkingW += w
	if p.thinkingW > p.set.total {
		p.thinkingW = p.set.total
	}
	if p.nextAt == sim.Forever {
		p.schedule(now)
	}
}
