package fault

import (
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
)

func newInj(seed uint64, f params.Faults) (*sim.Engine, *sim.Stats, *Injector) {
	e := sim.NewEngine()
	st := sim.NewStats(e)
	f.Seed = seed
	return e, st, New(e, st, 4, f)
}

// TestPlanDeterministic pins the fault stream's reproducibility: two
// injectors with the same seed draw identical plan sequences, and a
// different seed diverges.
func TestPlanDeterministic(t *testing.T) {
	f := params.Faults{DropProb: 0.1, CorruptProb: 0.1, DupProb: 0.1, DelayProb: 0.1}
	_, _, a := newInj(7, f)
	_, _, b := newInj(7, f)
	_, _, c := newInj(8, f)
	same, diff := true, false
	for i := 0; i < 4096; i++ {
		pa, pb, pc := a.Plan(0, 1), b.Plan(0, 1), c.Plan(0, 1)
		if pa != pb {
			same = false
		}
		if pa != pc {
			diff = true
		}
	}
	if !same {
		t.Error("same seed drew different fault plans")
	}
	if !diff {
		t.Error("different seeds drew identical fault plans over 4096 draws")
	}
}

// TestPlanAtMostOneFault pins the decision order contract: a plan
// carries at most one fault even with every knob turned up.
func TestPlanAtMostOneFault(t *testing.T) {
	_, _, in := newInj(3, params.Faults{DropProb: 0.5, CorruptProb: 0.5, DupProb: 0.5, DelayProb: 0.5})
	for i := 0; i < 4096; i++ {
		pl := in.Plan(0, 1)
		n := 0
		for _, b := range []bool{pl.Drop, pl.Corrupt, pl.Dup, pl.Delay > 0} {
			if b {
				n++
			}
		}
		if n > 1 {
			t.Fatalf("draw %d selected %d faults at once: %+v", i, n, pl)
		}
	}
}

// TestPlanRate sanity-checks the drop probability and its counter over
// a seeded run (deterministic, so the bounds cannot flake).
func TestPlanRate(t *testing.T) {
	_, st, in := newInj(11, params.Faults{DropProb: 0.25})
	const draws = 20000
	drops := 0
	for i := 0; i < draws; i++ {
		if in.Plan(0, 1).Drop {
			drops++
		}
	}
	if lo, hi := int(0.22*draws), int(0.28*draws); drops < lo || drops > hi {
		t.Errorf("drop rate 0.25 produced %d/%d drops, want within [%d, %d]", drops, draws, lo, hi)
	}
	if got := st.Get("net.drops"); got != uint64(drops) {
		t.Errorf("net.drops = %d, want %d", got, drops)
	}
}

// TestDegradeWindow pins the time-windowed link degradation: latency
// and occupancy scale only while the window is open.
func TestDegradeWindow(t *testing.T) {
	e, _, in := newInj(1, params.Faults{
		DropProb:    0.001, // any injecting knob validates; degrade rides along
		DegradeFrom: 100, DegradeUntil: 200,
		DegradeLatencyX: 3, DegradeBandwidthX: 2,
	})
	check := func(at sim.Time, lat, occ sim.Time) {
		e.Schedule(at, func() {
			if got := in.Latency(10); got != lat {
				t.Errorf("t=%d: Latency(10) = %d, want %d", at, got, lat)
			}
			if got := in.Occupancy(8); got != occ {
				t.Errorf("t=%d: Occupancy(8) = %d, want %d", at, got, occ)
			}
		})
	}
	check(99, 10, 8)
	check(100, 30, 16)
	check(199, 30, 16)
	check(200, 10, 8)
	e.RunAll()
}

// TestPauseSchedule walks two pause windows: Paused flips inside each
// window, PauseEnd names the close, and expired windows retire.
func TestPauseSchedule(t *testing.T) {
	e, _, in := newInj(1, params.Faults{Pauses: []params.FaultPause{
		{Node: 1, From: 300, Until: 400}, // out of order on purpose
		{Node: 1, From: 100, Until: 200},
	}})
	type probe struct {
		at     sim.Time
		paused bool
		end    sim.Time
	}
	probes := []probe{
		{50, false, 0}, {100, true, 200}, {199, true, 200},
		{200, false, 0}, {250, false, 0},
		{300, true, 400}, {399, true, 400}, {450, false, 0},
	}
	for _, pr := range probes {
		pr := pr
		e.Schedule(pr.at, func() {
			if got := in.Paused(1); got != pr.paused {
				t.Errorf("t=%d: Paused = %v, want %v", pr.at, got, pr.paused)
			}
			if pr.paused {
				if got := in.PauseEnd(1); got != pr.end {
					t.Errorf("t=%d: PauseEnd = %d, want %d", pr.at, got, pr.end)
				}
			}
			if in.Paused(0) {
				t.Errorf("t=%d: node 0 has no schedule but reports paused", pr.at)
			}
		})
	}
	e.RunAll()
}

// TestCrashSchedule pins the crash edge: dead from At onward, and the
// earliest of several entries wins.
func TestCrashSchedule(t *testing.T) {
	e, _, in := newInj(1, params.Faults{Crashes: []params.FaultCrash{
		{Node: 2, At: 500}, {Node: 2, At: 800},
	}})
	e.Schedule(499, func() {
		if in.Crashed(2) {
			t.Error("t=499: crashed before its schedule")
		}
	})
	e.Schedule(500, func() {
		if !in.Crashed(2) {
			t.Error("t=500: not crashed at its schedule")
		}
		if in.Crashed(0) {
			t.Error("node 0 has no crash but reports crashed")
		}
	})
	e.RunAll()
}

// TestPlanZeroAlloc pins the per-message fault decision at zero
// allocations — it sits on every delivery when injection is enabled.
func TestPlanZeroAlloc(t *testing.T) {
	_, _, in := newInj(5, params.Faults{DropProb: 0.01, CorruptProb: 0.01})
	allocs := testing.AllocsPerRun(1000, func() { in.Plan(0, 1) })
	if allocs != 0 {
		t.Errorf("Plan allocates %.2f objects/op, want 0", allocs)
	}
}
