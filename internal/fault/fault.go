// Package fault is the deterministic, seeded fault-injection layer.
// An Injector is built once per machine (only when the configuration
// actually injects faults — params.Faults.Injects) and hooked into
// the interconnect's shared endpoints core, so every fabric (flat,
// torus, and anything added later) gets the same fault model for
// free:
//
//   - per-message drop / corrupt / duplicate / delay decisions, drawn
//     at the destination fabric edge from a fault-private RNG stream;
//   - a time-windowed link degradation (latency ×k, bandwidth ÷k)
//     consulted by the fabrics' transit models;
//   - per-node pause and crash schedules consulted at the fabric's
//     injection and delivery edges.
//
// Determinism: the injector's RNG is seeded from params.Faults.Seed
// alone and is consulted only on the fault path, so it can neither
// perturb nor observe the workload generators' streams — two runs
// with the same seeds are byte-identical, and changing the fault seed
// never changes what the workload offered.
package fault

import (
	"repro/internal/params"
	"repro/internal/sim"
)

// Plan is the per-message fault decision, drawn once per network
// message at the destination edge. At most one fault fires.
type Plan struct {
	Drop    bool
	Corrupt bool
	Dup     bool
	// Delay is the extra in-flight time of a delay-selected message
	// (0 = none): it lands behind messages injected after it.
	Delay sim.Time
}

// Injector is one machine's fault source. It is consulted from event
// callbacks and device processes only (never concurrently), like
// every other simulator component.
type Injector struct {
	eng *sim.Engine
	f   params.Faults
	rng uint64 // xorshift64* state, fault-private

	// rngs, when non-nil (sharded machines), replaces the single rng
	// with one independent stream per destination node: per-message
	// plans are drawn at the destination edge, so per-destination
	// streams make each node's draw sequence a function of its own
	// delivery order alone — deterministic for any shard count, and
	// race-free across shards. Serial machines keep the single stream
	// byte-identically.
	rngs []uint64

	// Per-node schedules, resolved to index-addressed slices so the
	// per-delivery checks are branch-plus-load, not list walks.
	pauseFrom, pauseUntil []sim.Time // earliest pending pause window
	pauses                [][]params.FaultPause
	crashAt               []sim.Time // sim.Forever = never

	drops      *sim.Counter
	corrupted  *sim.Counter
	dups       *sim.Counter
	delayed    *sim.Counter
	paused     *sim.Counter
	crashDrops *sim.Counter
}

// New builds an injector for an n-node machine. The caller has
// validated f (params.Config.Validate).
func New(eng *sim.Engine, st *sim.Stats, n int, f params.Faults) *Injector {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	in := &Injector{
		eng: eng,
		f:   f,
		// Mix the seed so nearby seeds start in distant states, and
		// with a constant distinct from the workload generators'
		// (apps.NewRand remaps through the raw seed; the fault stream
		// must differ even for an identical seed value).
		rng:        seed*0xA24BAED4963EE407 + 0x9FB21C651E98DF25,
		pauseFrom:  make([]sim.Time, n),
		pauseUntil: make([]sim.Time, n),
		pauses:     make([][]params.FaultPause, n),
		crashAt:    make([]sim.Time, n),
		drops:      st.Counter("net.drops"),
		corrupted:  st.Counter("net.corrupted"),
		dups:       st.Counter("net.dups"),
		delayed:    st.Counter("net.delayed"),
		paused:     st.Counter("net.paused"),
		crashDrops: st.Counter("net.crash.drops"),
	}
	for i := range in.crashAt {
		in.crashAt[i] = sim.Forever
	}
	for _, c := range f.Crashes {
		if at := sim.Time(c.At); at < in.crashAt[c.Node] {
			in.crashAt[c.Node] = at
		}
	}
	for _, p := range f.Pauses {
		in.pauses[p.Node] = append(in.pauses[p.Node], p)
	}
	for node := range in.pauses {
		in.nextPause(node)
	}
	return in
}

// nextPause loads node's earliest not-yet-expired pause window into
// the flat lookup slices (and removes it from the pending list).
func (in *Injector) nextPause(node int) {
	in.pauseFrom[node], in.pauseUntil[node] = 0, 0
	best := -1
	for i, p := range in.pauses[node] {
		if best < 0 || p.From < in.pauses[node][best].From {
			best = i
		}
	}
	if best < 0 {
		return
	}
	p := in.pauses[node][best]
	in.pauses[node] = append(in.pauses[node][:best], in.pauses[node][best+1:]...)
	in.pauseFrom[node], in.pauseUntil[node] = sim.Time(p.From), sim.Time(p.Until)
}

// Shard switches the injector to per-destination RNG streams for the
// sharded engine (see the rngs field). Call before any draw.
func (in *Injector) Shard() {
	seed := in.f.Seed
	if seed == 0 {
		seed = 1
	}
	in.rngs = make([]uint64, len(in.crashAt))
	for d := range in.rngs {
		// Per-destination stream: the same mix as the shared stream,
		// further split by a destination-salted multiplier so nearby
		// nodes start in distant states.
		in.rngs[d] = (seed+uint64(d)*0x9E3779B97F4A7C15)*0xA24BAED4963EE407 + 0x9FB21C651E98DF25
	}
}

// step advances one xorshift64* state and returns a draw in [0, 1).
func step(s *uint64) float64 {
	*s ^= *s >> 12
	*s ^= *s << 25
	*s ^= *s >> 27
	return float64((*s*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
}

// rand returns the next fault draw in [0, 1) from the shared stream.
func (in *Injector) rand() float64 { return step(&in.rng) }

// randAt returns the next fault draw for a message arriving at dst:
// dst's own stream on a sharded machine, the shared stream otherwise.
func (in *Injector) randAt(dst int) float64 {
	if in.rngs != nil {
		return step(&in.rngs[dst])
	}
	return in.rand()
}

// Plan draws the per-message fault decision for a (src, dst) network
// message arriving now. The probability knobs are checked in a fixed
// order and each consumes a draw only when its knob is set, so a
// configuration's draw sequence is stable.
func (in *Injector) Plan(src, dst int) (pl Plan) {
	f := &in.f
	if f.DropProb > 0 && in.randAt(dst) < f.DropProb {
		pl.Drop = true
		in.drops.Inc()
		return pl
	}
	if f.CorruptProb > 0 && in.randAt(dst) < f.CorruptProb {
		pl.Corrupt = true
		in.corrupted.Inc()
		return pl
	}
	if f.DupProb > 0 && in.randAt(dst) < f.DupProb {
		pl.Dup = true
		in.dups.Inc()
		return pl
	}
	if f.DelayProb > 0 && in.randAt(dst) < f.DelayProb {
		pl.Delay = sim.Time(f.Delay())
		in.delayed.Inc()
	}
	return pl
}

// inDegradeAt reports whether now falls in the degraded-link window.
func (in *Injector) inDegradeAt(now sim.Time) bool {
	return now >= sim.Time(in.f.DegradeFrom) && now < sim.Time(in.f.DegradeUntil)
}

// LatencyAt scales a transit latency by the degraded-window multiplier
// when the window is open at now (the observing shard's clock).
func (in *Injector) LatencyAt(now, d sim.Time) sim.Time {
	if in.inDegradeAt(now) {
		return sim.Time(float64(d) * in.f.LatencyX())
	}
	return d
}

// Latency is LatencyAt at the engine's current time (serial machines).
func (in *Injector) Latency(d sim.Time) sim.Time { return in.LatencyAt(in.eng.Now(), d) }

// OccupancyAt scales a link serialisation time by the degraded-window
// bandwidth divisor when the window is open at now.
func (in *Injector) OccupancyAt(now, d sim.Time) sim.Time {
	if in.inDegradeAt(now) {
		return sim.Time(float64(d) * in.f.BandwidthX())
	}
	return d
}

// Occupancy is OccupancyAt at the engine's current time.
func (in *Injector) Occupancy(d sim.Time) sim.Time { return in.OccupancyAt(in.eng.Now(), d) }

// PausedAt reports whether node's NI is inside a pause window at now
// (the clock of the shard executing node — pause state is only ever
// consulted from node's own shard). Expired windows are retired as a
// side effect, so the flat lookup stays O(1) per call.
func (in *Injector) PausedAt(node int, now sim.Time) bool {
	for in.pauseUntil[node] != 0 && now >= in.pauseUntil[node] {
		in.nextPause(node)
	}
	return in.pauseUntil[node] != 0 && now >= in.pauseFrom[node]
}

// Paused is PausedAt at the engine's current time (serial machines).
func (in *Injector) Paused(node int) bool { return in.PausedAt(node, in.eng.Now()) }

// PauseEnd returns when node's current pause window closes. Only
// meaningful right after Paused(node) returned true.
func (in *Injector) PauseEnd(node int) sim.Time { return in.pauseUntil[node] }

// CrashedAt reports whether node's NI is dead at now (the observing
// shard's clock; crash times are immutable after construction, so any
// shard may ask).
func (in *Injector) CrashedAt(node int, now sim.Time) bool { return now >= in.crashAt[node] }

// Crashed is CrashedAt at the engine's current time (serial machines).
func (in *Injector) Crashed(node int) bool { return in.CrashedAt(node, in.eng.Now()) }

// NoteCrashDrop counts a message dropped because an end of its path
// crashed; the fabric edge calls it alongside the drop.
func (in *Injector) NoteCrashDrop() {
	in.crashDrops.Inc()
	in.drops.Inc()
}

// NotePaused counts a delivery stall caused by a paused destination.
func (in *Injector) NotePaused() { in.paused.Inc() }
