package msg

import (
	"testing"

	"repro/internal/network"
	"repro/internal/params"
)

// TestHeaderRoundTrip pins the wire codec: every field the 12-byte
// layout represents survives encode→decode, for data and ack frames.
func TestHeaderRoundTrip(t *testing.T) {
	cases := []network.Msg{
		{Src: 0, Dst: 1, Size: 0, Handler: 0},
		{Src: 3, Dst: 14, Size: 244, Handler: 200, Seq: 1},
		{Src: 65535, Dst: 0, Size: 65535, Handler: 255, Seq: 1<<32 - 1},
		{Src: 5, Dst: 6, IsAck: true, Ack: 42},
		{Src: 5, Dst: 6, IsAck: true, Ack: 0},
	}
	for _, want := range cases {
		var b [params.HeaderBytes]byte
		EncodeHeader(&want, &b)
		var got network.Msg
		DecodeHeader(&b, &got)
		if got.Src != want.Src || got.Dst != want.Dst || got.Size != want.Size ||
			got.Handler != want.Handler || got.IsAck != want.IsAck ||
			got.Seq != want.Seq || got.Ack != want.Ack {
			t.Errorf("round trip %+v -> %+v", want, got)
		}
	}
}

// TestChecksumDetectsSingleByteChange pins the transport's corruption
// detection: flipping any single header byte to any other value
// changes the Fletcher-32 sum (the property the doc comment claims).
func TestChecksumDetectsSingleByteChange(t *testing.T) {
	m := network.Msg{Src: 3, Dst: 7, Size: 128, Handler: 9, Seq: 77}
	var b [params.HeaderBytes]byte
	EncodeHeader(&m, &b)
	base := Fletcher32(b[:])
	for i := range b {
		orig := b[i]
		for delta := 1; delta < 256; delta += 37 { // sampled deltas per byte
			b[i] = orig + byte(delta)
			if Fletcher32(b[:]) == base {
				t.Fatalf("byte %d changed %#x->%#x left the checksum unchanged", i, orig, b[i])
			}
		}
		b[i] = orig
	}
	if Fletcher32(b[:]) != base {
		t.Fatal("restoring the header changed the checksum")
	}
}

// TestChecksumCatchesInjectedCorruption pins the fault-model contract:
// the injector's checksum scramble (XOR with network.CorruptMask)
// never matches the recomputed header checksum.
func TestChecksumCatchesInjectedCorruption(t *testing.T) {
	m := network.Msg{Src: 1, Dst: 2, Size: 64, Handler: 5, Seq: 12}
	m.Checksum = HeaderChecksum(&m)
	if m.Checksum != HeaderChecksum(&m) {
		t.Fatal("checksum not reproducible")
	}
	m.Checksum ^= network.CorruptMask
	if m.Checksum == HeaderChecksum(&m) {
		t.Fatal("corruption mask produced a valid checksum")
	}
}

// TestWireZeroAlloc pins the codec and checksum at zero allocations —
// the transport stamps and verifies every frame with them.
func TestWireZeroAlloc(t *testing.T) {
	m := network.Msg{Src: 1, Dst: 2, Size: 64, Handler: 5, Seq: 12}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Checksum = HeaderChecksum(&m)
	})
	if allocs != 0 {
		t.Errorf("HeaderChecksum allocates %.2f objects/op, want 0", allocs)
	}
}

// FuzzChecksum fuzzes the codec + checksum pipeline: decode→encode is
// the identity on canonicalised headers, and any single-byte
// corruption of the encoded header is detected by Fletcher-32.
func FuzzChecksum(f *testing.F) {
	f.Add(uint16(0), uint16(1), uint16(64), byte(5), byte(0), uint32(1), byte(3), byte(0x80))
	f.Add(uint16(15), uint16(3), uint16(244), byte(200), byte(1), uint32(1<<31), byte(11), byte(1))
	f.Fuzz(func(t *testing.T, src, dst, size uint16, handler, flags byte, seq uint32, pos, delta byte) {
		var b [params.HeaderBytes]byte
		m := network.Msg{
			Src: int(src), Dst: int(dst), Size: int(size),
			Handler: int(handler), Seq: uint64(seq),
		}
		if flags&1 != 0 {
			m.IsAck, m.Ack, m.Seq = true, uint64(seq), 0
		}
		EncodeHeader(&m, &b)
		var rt network.Msg
		DecodeHeader(&b, &rt)
		var b2 [params.HeaderBytes]byte
		EncodeHeader(&rt, &b2)
		if b != b2 {
			t.Fatalf("decode->encode not the identity: % x vs % x", b, b2)
		}
		sum := Fletcher32(b[:])
		i := int(pos) % len(b)
		if delta == 0 {
			delta = 1
		}
		b[i] += delta
		if Fletcher32(b[:]) == sum {
			t.Fatalf("single-byte corruption at %d (delta %d) undetected", i, delta)
		}
	})
}
