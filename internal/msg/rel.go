package msg

import (
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Reliable-delivery transport (the tier above the fabric's sliding
// window, which is link-level credit flow control and deliberately
// recovers nothing). Enabled per machine by params.Faults.Active():
// any injected fault turns it on, and Faults.Transport forces it on
// for fault-free baseline runs. The design is a classic
// sequence-and-retransmit protocol kept deliberately small:
//
//   - every data frame on a (src, dst) stream carries a contiguous
//     1-based sequence number and a header checksum;
//   - the receiver delivers in order, buffers out-of-order frames,
//     suppresses duplicates, discards checksum failures, and returns
//     cumulative acks (batched, with a short delayed-ack timeout);
//   - the sender keeps a bounded unacked queue per peer, retransmits
//     the head on timeout with exponential backoff, and after
//     RelRetxBudget consecutive unacknowledged retransmits declares
//     the stream dead — every queued and future frame to that peer is
//     accounted in net.dead rather than retried forever.
//
// There are no timer processes: the paper's interface is polling-only
// (§3, no interrupts), so timers are checked lazily on every Send and
// Poll, which the messaging layer already requires applications to
// call to make progress.
const (
	// RelMaxUnacked is the per-peer stream window (frames).
	RelMaxUnacked = 32
	// RelRetxBase is the initial (and minimum) retransmit timeout in
	// cycles — a few unloaded round trips. Once acks flow, the timeout
	// adapts to the measured ack round trip (srtt + 4·rttvar, RFC
	// 6298 style), because a loaded torus legitimately delivers slower
	// than any fixed constant and a too-tight timer melts down into
	// spurious-retransmit storms.
	RelRetxBase = 4096
	// RelRetxInit is the pre-sample timeout a fresh stream starts at —
	// deliberately loose (a loaded torus ack round trip fits under it)
	// because a too-tight first-frame timer costs one spurious
	// retransmit per stream before the estimator has data.
	RelRetxInit = 16384
	// RelRtoMax caps the adapted/backed-off timeout.
	RelRtoMax = 1 << 19
	// RelRetxBackoff doubles the timeout per consecutive retransmit.
	RelRetxBackoff = 2
	// RelRetxBudget is the consecutive-retransmit limit after which a
	// stream is declared dead.
	RelRetxBudget = 8
	// RelAckBatch acks every Nth in-order delivery immediately.
	RelAckBatch = 4
	// RelAckDelayCycles bounds how long a partial ack batch may wait.
	RelAckDelayCycles = 512
	// RelNiRetryCycles is the retry delay when the NI refuses a
	// transport frame (retransmit or ack).
	RelNiRetryCycles = 64
	// RelChecksumCycles is the processor cost of stamping or verifying
	// a frame checksum (incremental/hardware-assisted, not a full
	// 256-byte software sum).
	RelChecksumCycles = 16
	// RelBookkeepCycles is the processor cost of ack bookkeeping.
	RelBookkeepCycles = 4
)

// relEntry is one sent-but-unacked data frame. Only the queue head is
// ever retransmitted, so retransmit state lives on the peer, not here.
type relEntry struct {
	m         *network.Msg
	firstSent sim.Time
}

// relPeer is the per-peer stream state, both halves.
type relPeer struct {
	// Sender half: frames we sent to the peer.
	nextSeq  uint64 // next sequence number to assign (1-based)
	unacked  sim.FIFO[relEntry]
	rto      sim.Time // current retransmit timeout
	srtt     int64    // smoothed ack round trip (0 = no sample yet)
	rttvar   int64    // round-trip variance estimate
	deadline sim.Time // head frame's retransmit deadline
	retries  int      // consecutive head retransmits without progress
	headRetx bool     // head frame has been retransmitted
	lastRetx sim.Time // when the stream last retransmitted (0 = never)
	dead     bool     // retry budget exhausted; sends are blackholed

	// Receiver half: frames the peer sent us.
	expect      uint64 // next in-order sequence number expected
	ooo         map[uint64]*network.Msg
	pendingAcks int      // in-order deliveries since the last ack
	ackDeadline sim.Time // 0 = no partial batch waiting
	ackDue      bool     // an ack send was refused; retry on tick
}

// rel is one node's transport endpoint.
type rel struct {
	ms    *Messenger
	peers []relPeer
	// next caches the earliest pending timer (retransmit, delayed ack,
	// NI retry) so the per-Poll tick is a single comparison when
	// nothing is due.
	next sim.Time

	retransmits *sim.Counter
	dupSupp     *sim.Counter
	acks        *sim.Counter
	checksumBad *sim.Counter
	deadFrames  *sim.Counter
	oooBuffered *sim.Counter
	// recovery records send-to-ack latency of frames that needed at
	// least one retransmit ("net.recovery" in Stats).
	recovery *sim.Histogram
}

// newRel builds the transport endpoint for a node in an n-node
// machine. Counters are machine-global (shared Stats handles).
func newRel(ms *Messenger, n int, st *sim.Stats) *rel {
	r := &rel{
		ms:          ms,
		peers:       make([]relPeer, n),
		next:        sim.Forever,
		retransmits: st.Counter("net.retransmits"),
		dupSupp:     st.Counter("net.dup_suppressed"),
		acks:        st.Counter("net.acks"),
		checksumBad: st.Counter("net.checksum_fail"),
		deadFrames:  st.Counter("net.dead"),
		oooBuffered: st.Counter("net.ooo_buffered"),
		recovery:    st.Histogram("net.recovery"),
	}
	for i := range r.peers {
		r.peers[i].nextSeq = 1
		r.peers[i].expect = 1
		r.peers[i].rto = RelRetxInit
	}
	return r
}

// arm lowers the cached earliest-timer bound.
func (r *rel) arm(at sim.Time) {
	if at < r.next {
		r.next = at
	}
}

// peerDead reports whether dst's stream exhausted its retry budget.
func (r *rel) peerDead(dst int) bool { return r.peers[dst].dead }

// tick runs every due timer. Called from Send and Poll; the fast path
// (nothing due) is one comparison.
func (r *rel) tick(p *sim.Process) {
	if p.Now() < r.next {
		return
	}
	r.next = sim.Forever
	for i := range r.peers {
		r.tickPeer(p, i)
	}
}

// tickPeer flushes a due or refused ack and runs the retransmit timer
// for one peer, re-arming the timer cache with whatever remains.
func (r *rel) tickPeer(p *sim.Process, peer int) {
	pe := &r.peers[peer]
	if pe.ackDue || (pe.ackDeadline != 0 && p.Now() >= pe.ackDeadline) {
		r.sendAck(p, peer, pe)
	} else if pe.ackDeadline != 0 {
		r.arm(pe.ackDeadline)
	}
	if pe.dead || pe.unacked.Len() == 0 {
		return
	}
	if p.Now() < pe.deadline {
		r.arm(pe.deadline)
		return
	}
	if pe.retries >= RelRetxBudget {
		r.streamDead(pe)
		return
	}
	// Timeout: retransmit the head (acks are cumulative, so the head
	// is the only frame the receiver can be missing first). A fresh
	// copy goes out — the original pointer may still be queued in the
	// fabric or the NI, and the fabric restamps SentAt on admission.
	mm := *pe.unacked.Peek().m
	mm.Dup = false
	r.ms.cpu.Compute(p, RelChecksumCycles)
	// Restamp: the sender checksums from its own buffer, so an injected
	// corruption of the in-flight frame never poisons the retransmit.
	mm.Checksum = HeaderChecksum(&mm)
	if r.ms.ni.TrySend(p, &mm) {
		pe.retries++
		pe.headRetx = true
		pe.lastRetx = p.Now()
		r.retransmits.Inc()
		if r.ms.rec != nil {
			r.ms.rec.Note(r.ms.node, trace.KRetx, mm.Seq, -1, int32(mm.Src), int32(mm.Dst), uint8(mm.Frag), 0)
		}
		if pe.rto *= RelRetxBackoff; pe.rto > RelRtoMax {
			pe.rto = RelRtoMax
		}
		pe.deadline = p.Now() + pe.rto
	} else {
		// NI full: try again shortly without burning a retry.
		pe.deadline = p.Now() + RelNiRetryCycles
	}
	r.arm(pe.deadline)
}

// streamDead gives up on a peer: the retry budget is exhausted, so
// every queued frame (and every future send) is accounted in net.dead
// instead of being retried forever, and the application proceeds.
func (r *rel) streamDead(pe *relPeer) {
	pe.dead = true
	r.deadFrames.Add(uint64(pe.unacked.Len()))
	for pe.unacked.Len() > 0 {
		pe.unacked.Pop()
	}
	pe.deadline = sim.Forever
}

// sendData stamps transport sequencing onto a data frame and hands it
// to the NI. Sequence numbers commit only on NI acceptance, so a
// refused TrySend leaves no gap in the stream. Frames to a dead peer
// report success and are accounted in net.dead.
func (r *rel) sendData(p *sim.Process, m *network.Msg) bool {
	r.tick(p)
	pe := &r.peers[m.Dst]
	if pe.dead {
		r.deadFrames.Inc()
		return true
	}
	m.Seq = pe.nextSeq
	r.ms.cpu.Compute(p, RelChecksumCycles)
	m.Checksum = HeaderChecksum(m)
	if !r.ms.ni.TrySend(p, m) {
		return false
	}
	pe.nextSeq++
	pe.unacked.Push(relEntry{m: m, firstSent: p.Now()})
	if pe.unacked.Len() == 1 {
		// New head: fresh timer at the adapted timeout (the estimator
		// survives queue drains).
		pe.retries = 0
		pe.headRetx = false
		pe.deadline = p.Now() + pe.rto
		r.arm(pe.deadline)
	}
	return true
}

// waitWindow blocks until dst's stream window has space (or the
// stream dies). With wait false it reports the verdict instead of
// blocking, preserving TrySend's one-attempt contract.
func (r *rel) waitWindow(p *sim.Process, dst int, wait bool) bool {
	pe := &r.peers[dst]
	for pe.unacked.Len() >= RelMaxUnacked && !pe.dead {
		if !wait {
			return false
		}
		r.ms.sendBlocks.Inc()
		r.tick(p)
		if !r.ms.drainOne(p) {
			r.ms.cpu.Compute(p, PollLoopCycles)
		}
	}
	return true
}

// onAckFrame handles a received ack frame (from Poll or a blocked
// send's drain — ack processing never touches the NI, so it is safe
// in both).
func (r *rel) onAckFrame(p *sim.Process, m *network.Msg) {
	r.ms.cpu.Compute(p, RelChecksumCycles)
	if m.Checksum != HeaderChecksum(m) {
		r.checksumBad.Inc()
		return
	}
	r.onAck(p, m.Src, m.Ack)
}

// onAck applies a cumulative ack from peer: every unacked frame with
// Seq <= ack is done. Progress resets the retransmit state and feeds
// the round-trip estimator.
func (r *rel) onAck(p *sim.Process, peer int, ack uint64) {
	pe := &r.peers[peer]
	r.ms.cpu.Compute(p, RelBookkeepCycles)
	progress := false
	sample := int64(-1)
	for pe.unacked.Len() > 0 && pe.unacked.Peek().m.Seq <= ack {
		e := pe.unacked.Pop()
		if pe.headRetx {
			// Only the head is ever retransmitted, so the flag always
			// describes the first frame popped by this ack. Per Karn's
			// rule its round trip is ambiguous and normally unsampled —
			// except to seed an empty estimator, where first-send-to-ack
			// is a safe over-estimate (errs toward a looser timer).
			r.recovery.Record(p.Now() - e.firstSent)
			pe.headRetx = false
			if pe.srtt == 0 {
				sample = int64(p.Now() - e.firstSent)
			}
		} else if e.firstSent > pe.lastRetx {
			// Later pops were sent later, so the last one is the
			// tightest round-trip sample this ack offers — but only
			// frames sent after the stream's last retransmit qualify. A
			// frame that sat head-of-line-blocked behind a dropped head
			// is acked a full recovery late; sampling that stall as a
			// round trip would peg the estimator at the cap and turn
			// every later drop into a maximum-length outage.
			sample = int64(p.Now() - e.firstSent)
		}
		progress = true
	}
	if !progress {
		return
	}
	if sample >= 0 {
		pe.updateRTO(sample)
	}
	pe.retries = 0
	if pe.unacked.Len() > 0 {
		pe.deadline = p.Now() + pe.rto
		r.arm(pe.deadline)
	}
}

// updateRTO folds an ack round-trip sample into the RFC 6298-style
// estimator: rto = srtt + 4·rttvar, floored at RelRetxBase and capped
// at RelRtoMax. The sample includes the receiver's ack batching
// delay, which is exactly what the timer must outwait.
func (pe *relPeer) updateRTO(sample int64) {
	if pe.srtt == 0 {
		pe.srtt = sample
		pe.rttvar = sample / 2
	} else {
		d := sample - pe.srtt
		if d < 0 {
			d = -d
		}
		pe.rttvar += (d - pe.rttvar) / 4
		pe.srtt += (sample - pe.srtt) / 8
	}
	rto := pe.srtt + 4*pe.rttvar
	if rto < RelRetxBase {
		rto = RelRetxBase
	}
	if rto > RelRtoMax {
		rto = RelRtoMax
	}
	pe.rto = sim.Time(rto)
}

// onData runs a received data frame through the sequence check. It
// reports whether the frame is the next in-order delivery; a false
// return means the transport consumed it (duplicate, out-of-order
// buffered, or checksum failure).
func (r *rel) onData(p *sim.Process, m *network.Msg) bool {
	r.ms.cpu.Compute(p, RelChecksumCycles)
	if m.Checksum != HeaderChecksum(m) {
		// Injected corruption: discard; the sender's timeout recovers.
		r.checksumBad.Inc()
		return false
	}
	pe := &r.peers[m.Src]
	switch {
	case m.Seq == pe.expect:
		pe.expect++
		pe.pendingAcks++
		return true
	case m.Seq < pe.expect:
		// Duplicate (fault-injected, or a retransmit racing its ack):
		// suppress, and re-ack so a sender missing the ack advances.
		r.dupSupp.Inc()
		r.sendAck(p, m.Src, pe)
		return false
	default:
		if pe.ooo == nil {
			pe.ooo = make(map[uint64]*network.Msg)
		}
		if _, dup := pe.ooo[m.Seq]; dup {
			r.dupSupp.Inc()
		} else {
			pe.ooo[m.Seq] = m
			r.oooBuffered.Inc()
		}
		// Ack immediately: tells the sender where the stream stands.
		r.sendAck(p, m.Src, pe)
		return false
	}
}

// nextReady releases the next in-order frame freed up by a delivery,
// if the out-of-order buffer holds it.
func (r *rel) nextReady(src int) *network.Msg {
	pe := &r.peers[src]
	if pe.ooo == nil {
		return nil
	}
	m, ok := pe.ooo[pe.expect]
	if !ok {
		return nil
	}
	delete(pe.ooo, pe.expect)
	pe.expect++
	pe.pendingAcks++
	return m
}

// ackProgress closes out a Poll's delivery batch: a full batch acks
// now, a partial one starts (or keeps) the delayed-ack timer.
func (r *rel) ackProgress(p *sim.Process, peer int) {
	pe := &r.peers[peer]
	if pe.pendingAcks >= RelAckBatch {
		r.sendAck(p, peer, pe)
		return
	}
	if pe.pendingAcks > 0 && pe.ackDeadline == 0 {
		pe.ackDeadline = p.Now() + RelAckDelayCycles
		r.arm(pe.ackDeadline)
	}
}

// sendAck emits a cumulative ack frame to peer. Refusal by the NI
// marks the ack due and retries on a later tick — acks are pure
// control traffic and must never block the caller.
func (r *rel) sendAck(p *sim.Process, peer int, pe *relPeer) {
	a := &network.Msg{
		Src: r.ms.node, Dst: peer,
		IsAck: true, Ack: pe.expect - 1,
		Blocks: 1, FragTotal: 1,
	}
	r.ms.cpu.Compute(p, RelChecksumCycles)
	a.Checksum = HeaderChecksum(a)
	if !r.ms.ni.TrySend(p, a) {
		pe.ackDue = true
		r.arm(p.Now() + RelNiRetryCycles)
		return
	}
	pe.ackDue = false
	pe.pendingAcks = 0
	pe.ackDeadline = 0
	r.acks.Inc()
	if r.ms.rec != nil {
		r.ms.rec.Note(r.ms.node, trace.KAck, a.Ack, -1, int32(a.Src), int32(a.Dst), 0, trace.FlagAck)
	}
}
