package msg_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

func twoNode(t *testing.T) *machine.Machine {
	t.Helper()
	return machine.New(params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus})
}

func TestFragmentationCounts(t *testing.T) {
	cases := map[int]uint64{
		0:    1,
		8:    1,
		244:  1,
		245:  2,
		1024: 5,
		4096: 17,
	}
	for size, frags := range cases {
		m := twoNode(t)
		const h = 100
		got := 0
		m.Nodes[1].Msgr.Register(h, func(ctx *msg.Context) {
			got++
			if ctx.Size != size {
				t.Errorf("size %d: handler saw %d", size, ctx.Size)
			}
		})
		m.Spawn(0, func(p *sim.Process, n *machine.Node) { n.Msgr.Send(p, 1, h, size, nil) })
		m.Spawn(1, func(p *sim.Process, n *machine.Node) {
			n.Msgr.PollUntil(p, func() bool { return got == 1 })
		})
		m.Run(sim.Forever)
		m.Stop()
		if got != 1 {
			t.Fatalf("size %d: handler ran %d times, want 1 (after reassembly)", size, got)
		}
		if nm := m.Stats.Get("net.msg"); nm != frags {
			t.Errorf("size %d: %d network messages, want %d", size, nm, frags)
		}
	}
}

func TestPayloadDelivered(t *testing.T) {
	m := twoNode(t)
	const h = 100
	var got any
	m.Nodes[1].Msgr.Register(h, func(ctx *msg.Context) { got = ctx.Payload })
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		n.Msgr.Send(p, 1, h, 32, "hello")
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return got != nil })
	})
	m.Run(sim.Forever)
	m.Stop()
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
}

func TestHandlerSeesSource(t *testing.T) {
	m := machine.New(params.Config{Nodes: 3, NI: params.CNI512Q, Bus: params.MemoryBus})
	const h = 100
	var srcs []int
	m.Nodes[0].Msgr.Register(h, func(ctx *msg.Context) { srcs = append(srcs, ctx.Src) })
	for id := 1; id <= 2; id++ {
		m.Spawn(id, func(p *sim.Process, n *machine.Node) {
			n.Msgr.Send(p, 0, h, 16, nil)
		})
	}
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return len(srcs) == 2 })
	})
	m.Run(sim.Forever)
	m.Stop()
	seen := map[int]bool{}
	for _, s := range srcs {
		seen[s] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("sources = %v", srcs)
	}
}

func TestSelfSendPanics(t *testing.T) {
	m := twoNode(t)
	caught := false
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		defer func() { caught = recover() != nil }()
		n.Msgr.Send(p, 0, 100, 8, nil)
	})
	m.Run(sim.Forever)
	m.Stop()
	if !caught {
		t.Fatal("self-send should panic")
	}
}

func TestUnknownHandlerPanics(t *testing.T) {
	m := twoNode(t)
	caught := false
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		n.Msgr.Send(p, 1, 999, 8, nil)
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		defer func() { caught = recover() != nil }()
		n.Msgr.PollUntil(p, func() bool { return false })
	})
	m.Run(sim.Forever)
	m.Stop()
	if !caught {
		t.Fatal("dispatch to unregistered handler should panic")
	}
}

func TestInterleavedSendersReassembleCorrectly(t *testing.T) {
	// Two senders stream multi-fragment messages to one receiver; the
	// (src, id) reassembly keys must keep them separate.
	m := machine.New(params.Config{Nodes: 3, NI: params.CNI512Q, Bus: params.MemoryBus})
	const h = 100
	var sizes []int
	m.Nodes[0].Msgr.Register(h, func(ctx *msg.Context) { sizes = append(sizes, ctx.Size) })
	const per = 5
	for id := 1; id <= 2; id++ {
		id := id
		m.Spawn(id, func(p *sim.Process, n *machine.Node) {
			for i := 0; i < per; i++ {
				n.Msgr.Send(p, 0, h, 500+id, nil) // 3 fragments each
			}
		})
	}
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return len(sizes) == 2*per })
	})
	m.Run(sim.Forever)
	m.Stop()
	count := map[int]int{}
	for _, s := range sizes {
		count[s]++
	}
	if count[501] != per || count[502] != per {
		t.Fatalf("reassembly mixed streams: %v", count)
	}
}

func TestDrainAvailable(t *testing.T) {
	m := twoNode(t)
	const h = 100
	got := 0
	m.Nodes[1].Msgr.Register(h, func(ctx *msg.Context) { got++ })
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < 6; i++ {
			n.Msgr.Send(p, 1, h, 32, nil)
		}
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		n.CPU.Compute(p, 30000) // let everything arrive
		n.Msgr.DrainAvailable(p)
	})
	m.Run(sim.Forever)
	m.Stop()
	if got != 6 {
		t.Fatalf("drained %d, want 6", got)
	}
}

func TestSentReceivedCounters(t *testing.T) {
	m := twoNode(t)
	const h = 100
	got := 0
	m.Nodes[1].Msgr.Register(h, func(ctx *msg.Context) { got++ })
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < 3; i++ {
			n.Msgr.Send(p, 1, h, 16, nil)
		}
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return got == 3 })
	})
	m.Run(sim.Forever)
	m.Stop()
	if m.Nodes[0].Msgr.Sent != 3 {
		t.Errorf("Sent = %d", m.Nodes[0].Msgr.Sent)
	}
	if m.Nodes[1].Msgr.Received != 3 {
		t.Errorf("Received = %d", m.Nodes[1].Msgr.Received)
	}
}

// TestTrySendMultiFragment pins TrySend's commit semantics: a
// multi-fragment message that is admitted is delivered whole (the
// remaining fragments ride the blocking path), a refused one leaves
// no partial state behind, and ids stay consistent with later Sends.
func TestTrySendMultiFragment(t *testing.T) {
	m := twoNode(t)
	const h = 100
	got := 0
	m.Nodes[1].Msgr.Register(h, func(ctx *msg.Context) {
		got++
		if ctx.Size != 1024 {
			t.Errorf("handler saw size %d, want 1024", ctx.Size)
		}
	})
	ok := false
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		ok = n.Msgr.TrySend(p, 1, h, 1024, nil) // 5 fragments
		n.Msgr.Send(p, 1, h, 1024, nil)
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return got == 2 })
	})
	m.Run(sim.Forever)
	m.Stop()
	if !ok {
		t.Fatal("TrySend on an empty 512-block CQ should be admitted")
	}
	if got != 2 || m.Nodes[0].Msgr.Sent != 2 || m.Nodes[1].Msgr.Received != 2 {
		t.Fatalf("got %d, Sent %d, Received %d; want 2 each",
			got, m.Nodes[0].Msgr.Sent, m.Nodes[1].Msgr.Received)
	}
}

// TestTrySendRefusal fills NI2w's two-message FIFO with no consumer:
// TrySend must refuse instead of spinning, and must not count a
// refused message as sent.
func TestTrySendRefusal(t *testing.T) {
	m := machine.New(params.Config{Nodes: 2, NI: params.NI2w, Bus: params.MemoryBus})
	const h = 100
	accepted := 0
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < 32; i++ {
			if !n.Msgr.TrySend(p, 1, h, 32, nil) {
				break
			}
			accepted++
		}
	})
	m.Run(sim.Forever)
	m.Stop()
	if accepted == 0 || accepted >= 32 {
		t.Fatalf("accepted = %d, want backpressure in (0,32)", accepted)
	}
	if m.Nodes[0].Msgr.Sent != uint64(accepted) {
		t.Fatalf("Sent = %d, want %d", m.Nodes[0].Msgr.Sent, accepted)
	}
}
