package msg_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

// The reliable-transport behavior suite runs small two-node machines
// with fault injection turned on and checks the end-to-end contract:
// every user message is delivered exactly once, in order, or is
// accounted dead after the retry budget — never lost silently.

const relTestMsgs = 300

// runRelPair streams relTestMsgs payload-numbered messages 0->1 under
// f and returns the delivered payload order plus the machine for
// counter checks. Both nodes poll to the horizon so the lazy
// transport timers on both sides keep ticking.
func runRelPair(t *testing.T, f params.Faults, horizon sim.Time) ([]int, *machine.Machine) {
	t.Helper()
	m := machine.New(params.Config{
		Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus, Faults: f,
	})
	const h = 100
	var order []int
	m.Nodes[1].Msgr.Register(h, func(ctx *msg.Context) { order = append(order, ctx.Payload.(int)) })
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < relTestMsgs; i++ {
			n.Msgr.Send(p, 1, h, 32, i)
		}
		n.Msgr.PollUntil(p, func() bool { return false })
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return false })
	})
	m.Run(horizon)
	m.Stop()
	return order, m
}

// checkExactlyOnceInOrder asserts the delivered payloads are exactly
// 0..relTestMsgs-1 in order.
func checkExactlyOnceInOrder(t *testing.T, order []int) {
	t.Helper()
	if len(order) != relTestMsgs {
		t.Fatalf("delivered %d messages, want %d", len(order), relTestMsgs)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order broken: payload %d at position %d", v, i)
		}
	}
}

func TestFaultTransportCleanPathHasNoRetransmits(t *testing.T) {
	order, m := runRelPair(t, params.Faults{Transport: true}, 2_000_000)
	checkExactlyOnceInOrder(t, order)
	for _, c := range []string{"net.retransmits", "net.dup_suppressed", "net.checksum_fail", "net.dead"} {
		if got := m.Stats.Get(c); got != 0 {
			t.Errorf("fault-free transport run: %s = %d, want 0", c, got)
		}
	}
}

func TestFaultTransportRecoversDrops(t *testing.T) {
	order, m := runRelPair(t, params.Faults{Seed: 2, DropProb: 0.05, Transport: true}, 4_000_000)
	checkExactlyOnceInOrder(t, order)
	if m.Stats.Get("net.drops") == 0 {
		t.Fatal("drop rate 0.05 injected no drops")
	}
	if m.Stats.Get("net.retransmits") == 0 {
		t.Error("drops recovered without retransmits?")
	}
	if m.Stats.Get("net.dead") != 0 {
		t.Errorf("net.dead = %d on a recoverable run, want 0", m.Stats.Get("net.dead"))
	}
	if m.Stats.Histogram("net.recovery").Count() == 0 {
		t.Error("net.recovery histogram recorded no recovered frames")
	}
}

func TestFaultTransportRecoversCorruption(t *testing.T) {
	order, m := runRelPair(t, params.Faults{Seed: 2, CorruptProb: 0.05, Transport: true}, 4_000_000)
	checkExactlyOnceInOrder(t, order)
	if m.Stats.Get("net.corrupted") == 0 {
		t.Fatal("corrupt rate 0.05 injected no corruption")
	}
	if m.Stats.Get("net.checksum_fail") == 0 {
		t.Error("injected corruption never failed a checksum")
	}
}

func TestFaultTransportSuppressesDuplicates(t *testing.T) {
	order, m := runRelPair(t, params.Faults{Seed: 2, DupProb: 0.2, Transport: true}, 4_000_000)
	checkExactlyOnceInOrder(t, order)
	if m.Stats.Get("net.dups") == 0 {
		t.Fatal("dup rate 0.2 injected no duplicates")
	}
	if m.Stats.Get("net.dup_suppressed") == 0 {
		t.Error("injected duplicates never suppressed")
	}
}

func TestFaultTransportReordersDelayedFrames(t *testing.T) {
	order, m := runRelPair(t, params.Faults{
		Seed: 2, DelayProb: 0.2, DelayCycles: 2000, Transport: true,
	}, 4_000_000)
	checkExactlyOnceInOrder(t, order)
	if m.Stats.Get("net.delayed") == 0 {
		t.Fatal("delay rate 0.2 injected no delays")
	}
	if m.Stats.Get("net.ooo_buffered") == 0 {
		t.Error("delayed frames never arrived out of order (reorder path untested)")
	}
}

// TestFaultTransportStreamDeath crashes the receiver mid-stream: the
// sender must exhaust its retry budget, declare the stream dead,
// account every unacknowledged and later frame in net.dead, and keep
// running (a dead peer never wedges the sender).
func TestFaultTransportStreamDeath(t *testing.T) {
	f := params.Faults{
		Transport: true,
		Crashes:   []params.FaultCrash{{Node: 1, At: 10_000}},
	}
	order, m := runRelPair(t, f, 8_000_000)
	delivered := uint64(len(order))
	if delivered == 0 || delivered >= relTestMsgs {
		t.Fatalf("delivered %d, want some but not all of %d", delivered, relTestMsgs)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("pre-crash delivery out of order: payload %d at %d", v, i)
		}
	}
	dead := m.Stats.Get("net.dead")
	if dead == 0 {
		t.Fatal("crashed peer produced no dead-stream accounting")
	}
	// Every user frame is either delivered or dead — none lost silently.
	// (Single-fragment sends: one frame per message. A few frames can be
	// both delivered and later declared dead — delivered just before the
	// crash, ack lost — so the sum may exceed the total.)
	if delivered+dead < relTestMsgs {
		t.Errorf("delivered %d + dead %d < %d sent: frames lost without accounting",
			delivered, dead, relTestMsgs)
	}
	if m.Stats.Get("net.crash.drops") == 0 {
		t.Error("crash produced no crash drops")
	}
}

// TestFaultTransportTrySendRefusalLeavesNoGap pins sendData's
// commit-on-acceptance: a refused TrySend must not burn a sequence
// number, or the stream would stall waiting for a frame that was
// never sent. NI2w's two-deep FIFO with no consumer forces refusals.
func TestFaultTransportTrySendRefusalLeavesNoGap(t *testing.T) {
	m := machine.New(params.Config{
		Nodes: 2, NI: params.NI2w, Bus: params.MemoryBus,
		Faults: params.Faults{Transport: true},
	})
	const h = 100
	var order []int
	m.Nodes[1].Msgr.Register(h, func(ctx *msg.Context) { order = append(order, ctx.Payload.(int)) })
	accepted := 0
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < 40; i++ {
			if n.Msgr.TrySend(p, 1, h, 32, i) {
				accepted++
			}
		}
		// The blocking path must still work after refusals.
		n.Msgr.Send(p, 1, h, 32, 40)
		n.Msgr.PollUntil(p, func() bool { return false })
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		n.Msgr.PollUntil(p, func() bool { return false })
	})
	m.Run(2_000_000)
	m.Stop()
	if accepted == 0 || accepted >= 40 {
		t.Fatalf("accepted = %d, want refusals in (0,40)", accepted)
	}
	if len(order) != accepted+1 {
		t.Fatalf("delivered %d, want %d accepted + 1 blocking send", len(order), accepted)
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("delivery order broken at %d: %v", i, order)
		}
	}
	if m.Stats.Get("net.dead") != 0 {
		t.Error("refusals must not kill the stream")
	}
}
