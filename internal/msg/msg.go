// Package msg is the Tempest-like user-level messaging layer
// (paper §4.1): active messages sent and received by user code with
// no interrupts, fragmented into fixed 256-byte network messages with
// a 12-byte header, plus the software flow control the paper
// describes — when a send blocks, the processor extracts incoming
// messages from the NI and buffers them in user space to avoid
// deadlock (except CNI16Qm, whose receive queue overflows to memory
// in hardware, but the drain path is identical and simply never finds
// the NI refusing).
package msg

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/nic"
	"repro/internal/params"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Software-path costs in processor cycles. The messaging layer's
// control code is a handful of instructions around each operation.
const (
	// PollLoopCycles is the loop overhead of one poll iteration.
	PollLoopCycles = 4
	// DispatchCycles is the active-message handler dispatch cost
	// (header decode plus indirect call).
	DispatchCycles = 10
)

// Context is what an active-message handler receives.
type Context struct {
	P   *sim.Process
	CPU *proc.CPU
	M   *Messenger
	Src int // sending node
	// Size is the full user-message payload size in bytes.
	Size int
	// Payload is the logical content the sender attached.
	Payload any
}

// Handler is an active-message handler, run on the receiving node's
// process during a Poll.
type Handler func(ctx *Context)

// partialKey identifies an in-reassembly user message.
type partialKey struct {
	src int
	id  uint64
}

type partial struct {
	got     int
	total   int
	size    int
	handler int
	payload any
}

// Messenger is one node's messaging endpoint.
type Messenger struct {
	node int
	cpu  *proc.CPU
	ni   nic.NI

	handlers map[int]Handler
	// swBuf holds messages drained from the NI by flow control,
	// dispatched on later polls before new NI traffic.
	swBuf   []*network.Msg
	partial map[partialKey]*partial
	nextID  uint64
	bufAddr uint64 // user-space staging buffer for copies

	// Sent/Received count dispatched user messages (diagnostics).
	Sent     uint64
	Received uint64

	sendBlocks *sim.Counter
	swBuffered *sim.Counter

	// rel is the reliable-delivery transport, nil unless the machine's
	// fault configuration activates it (params.Faults.Active). When
	// nil the message path is bit-identical to a pre-transport build.
	rel *rel

	// Free lists for the per-message boxes that escape through
	// interface calls (frames through nic.NI, contexts through
	// Handler): without them every user message costs several heap
	// allocations, which the steady-state alloc pin forbids. Frames
	// are pooled only on the fault-free path — with the transport on,
	// an admitted frame lives in retransmit buffers past delivery and
	// must stay heap-owned. Contexts and partials never outlive accept
	// and pool unconditionally; free lists (not single slots) keep
	// nested dispatch from a draining handler safe.
	frames      *FramePool
	partialFree []*partial
	ctxFree     []*Context

	// rec is the lifecycle recorder, nil unless the machine's trace
	// configuration activates it (params.Trace.Active). Hooks behind
	// nil checks, same contract as rel: nil is bit-identical to a
	// pre-trace build.
	rec *trace.Recorder
}

// New creates a messenger for a node of an n-node machine. bufAddr is
// a node-private DRAM address used as the user-level staging buffer;
// f decides whether the reliable-delivery transport engages.
func New(node int, cpu *proc.CPU, ni nic.NI, st *sim.Stats, bufAddr uint64, n int, f params.Faults) *Messenger {
	prefix := fmt.Sprintf("node%d.msg", node)
	ms := &Messenger{
		node:       node,
		cpu:        cpu,
		ni:         ni,
		handlers:   make(map[int]Handler),
		partial:    make(map[partialKey]*partial),
		bufAddr:    bufAddr,
		frames:     &FramePool{},
		sendBlocks: st.Counter(prefix + ".send.block"),
		swBuffered: st.Counter(prefix + ".swbuffered"),
	}
	if f.Active() {
		ms.rel = newRel(ms, n, st)
	}
	return ms
}

// AttachTrace hooks the lifecycle recorder into the messaging layer:
// user-message dispatch and the reliable tier's ack/retransmit
// events. Never called means fully disabled and bit-identical.
func (ms *Messenger) AttachTrace(rec *trace.Recorder) { ms.rec = rec }

// RetxBacklog reports the reliable tier's sent-but-unacked frame
// count summed over all peers (0 with the transport off) — the trace
// sampler's retransmit-backlog gauge.
func (ms *Messenger) RetxBacklog() int {
	if ms.rel == nil {
		return 0
	}
	total := 0
	for i := range ms.rel.peers {
		total += ms.rel.peers[i].unacked.Len()
	}
	return total
}

// Node returns the node id.
func (ms *Messenger) Node() int { return ms.node }

// NI exposes the underlying network interface (diagnostics).
func (ms *Messenger) NI() nic.NI { return ms.ni }

// Register installs the handler for id. Handlers must be registered
// before traffic flows; re-registration replaces.
func (ms *Messenger) Register(id int, h Handler) { ms.handlers[id] = h }

// Send transmits a user message of size bytes to dst, invoking handler
// there. It blocks (in simulated time) until every fragment is handed
// to the NI, draining incoming messages to user space whenever the NI
// cannot accept (software flow control, §4.1).
func (ms *Messenger) Send(p *sim.Process, dst, handler, size int, payload any) {
	ms.sendFrags(p, dst, handler, size, payload, true)
}

// TrySend is Send without the blocking flow control: it attempts to
// hand the message's first fragment to the NI exactly once and
// reports whether the send was admitted. On refusal nothing was sent
// (the failed admission check's processor cost is still charged, as
// on hardware) and the caller decides how to back off. Once the first
// fragment is admitted the send is committed: any remaining fragments
// go through the same blocking flow-control path Send uses, so a
// multi-fragment message is never left half-sent.
func (ms *Messenger) TrySend(p *sim.Process, dst, handler, size int, payload any) bool {
	return ms.sendFrags(p, dst, handler, size, payload, false)
}

// sendFrags fragments and transmits one user message. With block
// false the first fragment gets exactly one admission attempt and a
// refusal abandons the whole send (reported false); once the first
// fragment is admitted — or always, with block true — the remaining
// fragments ride the blocking flow control.
func (ms *Messenger) sendFrags(p *sim.Process, dst, handler, size int, payload any, block bool) bool {
	if dst == ms.node {
		panic("msg: self-send not supported; use local queues")
	}
	// Claim the id up front: a blocking send can yield mid-flight, and
	// another process on the same node must never reuse it. A refused
	// TrySend burns its id, which is harmless — ids only need to be
	// unique per (src, dst) stream.
	id := ms.nextID
	ms.nextID++
	frags := (size + params.MaxPayloadBytes - 1) / params.MaxPayloadBytes
	if frags < 1 {
		frags = 1
	}
	for f := 0; f < frags; f++ {
		fsize := params.MaxPayloadBytes
		if f == frags-1 {
			fsize = size - f*params.MaxPayloadBytes
		}
		m := ms.getMsg()
		*m = network.Msg{
			Src:        ms.node,
			Dst:        dst,
			Handler:    handler,
			Size:       fsize,
			Blocks:     network.MsgBlocks(fsize),
			Payload:    payload,
			Frag:       f,
			FragTotal:  frags,
			ID:         id,
			TotalBytes: size,
		}
		// Read the fragment out of the user buffer (cached, mostly hits).
		ms.cpu.LoadRange(p, ms.bufAddr+uint64(f*params.MaxPayloadBytes), fsize)
		// Reliable transport: wait for stream-window space first. A
		// TrySend first fragment gets one non-blocking check; committed
		// fragments block like the NI flow control below.
		if ms.rel != nil && !ms.rel.waitWindow(p, dst, block || f > 0) {
			return false
		}
		for tries := 0; !ms.trySendFrame(p, m); tries++ {
			if !block && f == 0 {
				ms.putMsg(m) // refused before admission: the NI holds no reference
				return false
			}
			ms.sendBlocks.Inc()
			// §4.1 flow control: a blocked sender extracts incoming
			// messages and buffers them in user space. "Blocked" means
			// persistently refused, not one transient failure — so the
			// first retry just spins, avoiding needless double
			// handling of messages the NI could still hold.
			if tries == 0 || !ms.drainOne(p) {
				ms.cpu.Compute(p, PollLoopCycles)
			}
		}
	}
	ms.Sent++
	return true
}

// trySendFrame hands one network message to the NI, going through the
// reliable transport's sequencing when it is on.
func (ms *Messenger) trySendFrame(p *sim.Process, m *network.Msg) bool {
	if ms.rel != nil {
		return ms.rel.sendData(p, m)
	}
	return ms.ni.TrySend(p, m)
}

// drainOne pulls one message out of the NI into the user-space buffer
// (no dispatch — that happens on a later Poll). Returns false if the
// NI had nothing.
func (ms *Messenger) drainOne(p *sim.Process) bool {
	m := ms.ni.TryRecv(p)
	if m == nil {
		return false
	}
	if ms.rel != nil && m.IsAck {
		// Acks are transport control traffic: processed on the spot
		// (ack bookkeeping never touches the NI, so this is safe even
		// inside a blocked send) and never surfaced to user space.
		ms.rel.onAckFrame(p, m)
		return true
	}
	// Copy into the user-space buffer.
	ms.cpu.StoreRange(p, ms.bufAddr+uint64(len(ms.swBuf)%64)*params.NetMsgBytes, m.Size+params.HeaderBytes)
	ms.swBuf = append(ms.swBuf, m)
	ms.swBuffered.Inc()
	return true
}

// Poll checks for one incoming network message — software buffer
// first, then the NI — and dispatches its handler if it completes a
// user message. It reports whether a network message was consumed.
func (ms *Messenger) Poll(p *sim.Process) bool {
	ms.cpu.Compute(p, PollLoopCycles)
	if ms.rel != nil {
		ms.rel.tick(p)
	}
	var m *network.Msg
	if len(ms.swBuf) > 0 {
		m = ms.swBuf[0]
		ms.swBuf = ms.swBuf[1:]
		// Re-read from the user-space buffer (cached).
		ms.cpu.LoadRange(p, ms.bufAddr, m.Size+params.HeaderBytes)
	} else if m = ms.ni.TryRecv(p); m == nil {
		return false
	} else if ms.rel != nil && m.IsAck {
		ms.rel.onAckFrame(p, m)
		return true
	} else {
		// Copy payload from the NI queue image to the user buffer.
		ms.cpu.StoreRange(p, ms.bufAddr, m.Size)
	}
	if ms.rel != nil {
		return ms.relDeliver(p, m)
	}
	ms.accept(p, m)
	ms.putMsg(m) // fault-free path: nothing references the frame past accept
	return true
}

// FramePool recycles network frame boxes across the messengers that
// share it. Exactly one engine may touch a pool: serial machines
// share one pool machine-wide (frames retire at the receiver, so
// per-node pools would drain at every sender while a hotspot sink
// hoards them), and sharded machines keep one pool per node so
// concurrent shard engines never race on it.
type FramePool struct{ free []*network.Msg }

// ShareFramePool points the messenger at a shared pool; call before
// any traffic.
func (ms *Messenger) ShareFramePool(fp *FramePool) { ms.frames = fp }

// getMsg pops a recycled frame box, or allocates one on a cold pool.
func (ms *Messenger) getMsg() *network.Msg {
	fp := ms.frames
	n := len(fp.free)
	if n == 0 {
		return new(network.Msg)
	}
	m := fp.free[n-1]
	fp.free = fp.free[:n-1]
	return m
}

// putMsg recycles a dead frame. With the reliable transport active
// frames outlive delivery in retransmit and reorder buffers, so the
// pool is bypassed and the collector owns them as before.
func (ms *Messenger) putMsg(m *network.Msg) {
	if ms.rel != nil {
		return
	}
	m.Payload = nil // don't pin user payloads while pooled
	ms.frames.free = append(ms.frames.free, m)
}

// relDeliver runs a data frame through the receive-side transport:
// sequence check, in-order dispatch, release of any buffered
// successors it unblocks, then ack batching.
func (ms *Messenger) relDeliver(p *sim.Process, m *network.Msg) bool {
	if !ms.rel.onData(p, m) {
		return true // consumed by the transport (dup/out-of-order/corrupt)
	}
	ms.accept(p, m)
	for next := ms.rel.nextReady(m.Src); next != nil; next = ms.rel.nextReady(m.Src) {
		ms.accept(p, next)
	}
	ms.rel.ackProgress(p, m.Src)
	return true
}

// accept reassembles and dispatches.
func (ms *Messenger) accept(p *sim.Process, m *network.Msg) {
	k := partialKey{m.Src, m.ID}
	pa, ok := ms.partial[k]
	if !ok {
		if n := len(ms.partialFree); n > 0 {
			pa = ms.partialFree[n-1]
			ms.partialFree = ms.partialFree[:n-1]
		} else {
			pa = new(partial)
		}
		*pa = partial{total: m.FragTotal, handler: m.Handler, payload: m.Payload, size: m.TotalBytes}
		ms.partial[k] = pa
	}
	pa.got++
	if pa.got < pa.total {
		return
	}
	delete(ms.partial, k)
	ms.Received++
	if ms.rec != nil {
		ms.rec.Note(ms.node, trace.KUserDeliver, m.ID, -1, int32(m.Src), int32(ms.node), 0, 0)
	}
	h, ok := ms.handlers[pa.handler]
	if !ok {
		panic(fmt.Sprintf("msg: node %d has no handler %d", ms.node, pa.handler))
	}
	src, size, payload := m.Src, pa.size, pa.payload
	pa.payload = nil
	ms.partialFree = append(ms.partialFree, pa)
	ms.cpu.Compute(p, DispatchCycles)
	ctx := ms.getCtx()
	*ctx = Context{P: p, CPU: ms.cpu, M: ms, Src: src, Size: size, Payload: payload}
	h(ctx)
	ms.putCtx(ctx)
}

// getCtx/putCtx recycle dispatch contexts. A Context is valid only
// for the duration of the handler call; handlers copy what they keep.
func (ms *Messenger) getCtx() *Context {
	n := len(ms.ctxFree)
	if n == 0 {
		return new(Context)
	}
	c := ms.ctxFree[n-1]
	ms.ctxFree = ms.ctxFree[:n-1]
	return c
}

func (ms *Messenger) putCtx(c *Context) {
	c.Payload = nil
	ms.ctxFree = append(ms.ctxFree, c)
}

// PollUntil polls until pred is true, advancing simulated time each
// iteration (handlers run inline and typically change pred's inputs).
func (ms *Messenger) PollUntil(p *sim.Process, pred func() bool) {
	for !pred() {
		ms.Poll(p)
	}
}

// DrainAvailable dispatches everything currently available without
// blocking; returns the number of network messages consumed.
func (ms *Messenger) DrainAvailable(p *sim.Process) int {
	n := 0
	for ms.Poll(p) {
		n++
	}
	return n
}
