package msg

import (
	"encoding/binary"

	"repro/internal/network"
	"repro/internal/params"
)

// Wire codec for the 12-byte network-message header
// (params.HeaderBytes). The simulator carries header fields as Go
// struct fields, not bytes; this codec pins down the layout they
// would occupy on the wire so the transport checksum covers a
// concrete byte string and the codec round-trip is fuzzable.
//
// Layout (little endian):
//
//	[0:2]  src node
//	[2:4]  dst node
//	[4:6]  payload size in bytes
//	[6]    active-message handler index
//	[7]    flags (bit 0: ack frame)
//	[8:12] low 32 bits of the stream sequence number
//	       (the cumulative ack number on ack frames)
const (
	wireFlagAck = 1 << 0
)

// EncodeHeader packs m's header fields into b.
func EncodeHeader(m *network.Msg, b *[params.HeaderBytes]byte) {
	binary.LittleEndian.PutUint16(b[0:], uint16(m.Src))
	binary.LittleEndian.PutUint16(b[2:], uint16(m.Dst))
	binary.LittleEndian.PutUint16(b[4:], uint16(m.Size))
	b[6] = byte(m.Handler)
	seq := m.Seq
	if m.IsAck {
		b[7] = wireFlagAck
		seq = m.Ack
	} else {
		b[7] = 0
	}
	binary.LittleEndian.PutUint32(b[8:], uint32(seq))
}

// DecodeHeader unpacks a wire header into m, inverting EncodeHeader
// for every field the layout can represent.
func DecodeHeader(b *[params.HeaderBytes]byte, m *network.Msg) {
	m.Src = int(binary.LittleEndian.Uint16(b[0:]))
	m.Dst = int(binary.LittleEndian.Uint16(b[2:]))
	m.Size = int(binary.LittleEndian.Uint16(b[4:]))
	m.Handler = int(b[6])
	m.IsAck = b[7]&wireFlagAck != 0
	seq := uint64(binary.LittleEndian.Uint32(b[8:]))
	if m.IsAck {
		m.Ack, m.Seq = seq, 0
	} else {
		m.Seq, m.Ack = seq, 0
	}
}

// Fletcher32 computes the Fletcher-32 checksum of data (interpreted
// as little-endian 16-bit words; an odd trailing byte is zero-padded).
// Any single-byte change to a 12-byte header changes the sum: a
// one-byte edit perturbs a 16-bit word by less than 65535, which
// cannot vanish modulo 65535.
func Fletcher32(data []byte) uint32 {
	var sum1, sum2 uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum1 = (sum1 + uint32(data[i]) + uint32(data[i+1])<<8) % 65535
		sum2 = (sum2 + sum1) % 65535
	}
	if len(data)%2 == 1 {
		sum1 = (sum1 + uint32(data[len(data)-1])) % 65535
		sum2 = (sum2 + sum1) % 65535
	}
	return sum2<<16 | sum1
}

// HeaderChecksum returns the transport checksum for m: Fletcher-32
// over the encoded wire header. The buffer lives on the stack, so
// stamping or verifying a frame allocates nothing.
func HeaderChecksum(m *network.Msg) uint32 {
	var b [params.HeaderBytes]byte
	EncodeHeader(m, &b)
	return Fletcher32(b[:])
}
