package nic_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/params"
)

func TestDMADeliversMessages(t *testing.T) {
	cfg := params.Config{Nodes: 2, NI: params.DMA, Bus: params.MemoryBus}
	m := sendN(t, cfg, 20, 100)
	if m.Stats.Get("node1.ni.recv.msg") != 20 {
		t.Errorf("recv.msg = %d", m.Stats.Get("node1.ni.recv.msg"))
	}
}

func TestDMAConstantDescriptorCost(t *testing.T) {
	// Descriptor traffic (uncached stores) must not scale with message
	// size: a 4-fragment message posts one descriptor.
	small := sendN(t, params.Config{Nodes: 2, NI: params.DMA, Bus: params.MemoryBus}, 6, 8)
	big := sendN(t, params.Config{Nodes: 2, NI: params.DMA, Bus: params.MemoryBus}, 6, 900)
	s := small.Stats.Get("unc.store.memory")
	b := big.Stats.Get("unc.store.memory")
	if b > s*2 {
		t.Errorf("descriptor stores scale with size: small=%d big=%d", s, b)
	}
}

func TestDMAInterruptCostDominatesSmallMessages(t *testing.T) {
	dma := apps.RoundTrip(params.Config{Nodes: 2, NI: params.DMA, Bus: params.MemoryBus}, 16, 3)
	cni := apps.RoundTrip(params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}, 16, 3)
	if dma < cni+2*params.InterruptCycles {
		t.Errorf("16B DMA RTT %d should exceed CNI %d by ~2 interrupts", dma, cni)
	}
}

func TestDMACompetitiveAtBulkSizes(t *testing.T) {
	// At 4KB the DMA NI must beat NI2w decisively on both metrics and
	// come within 2x of the CNI (the paper's breakeven discussion).
	ni2w := apps.RoundTrip(params.Config{Nodes: 2, NI: params.NI2w, Bus: params.MemoryBus}, 4096, 2)
	dma := apps.RoundTrip(params.Config{Nodes: 2, NI: params.DMA, Bus: params.MemoryBus}, 4096, 2)
	cni := apps.RoundTrip(params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}, 4096, 2)
	if dma >= ni2w {
		t.Errorf("4KB: DMA RTT %d should beat NI2w %d", dma, ni2w)
	}
	if dma > 2*cni {
		t.Errorf("4KB: DMA RTT %d should be within 2x of CNI %d", dma, cni)
	}
}

func TestDMAReceiverReadsMissToMemory(t *testing.T) {
	// DMA deposits to DRAM: the receiver's reads of the payload must
	// miss (the cache-cold delivery problem CNIs avoid).
	m := sendN(t, params.Config{Nodes: 2, NI: params.DMA, Bus: params.MemoryBus}, 10, 200)
	misses := m.Stats.Get("node1.cache.load.miss")
	if misses < 10*3 { // 200+12 bytes = 4 blocks, most cold each time
		t.Errorf("receiver load misses = %d, want >= 30 (DRAM delivery)", misses)
	}
	_ = machine.Microseconds(0)
}
