// Package nic implements the paper's five network interface devices
// (Table 1):
//
//	NI2w     — CM-5-like baseline; two words exposed via uncachable
//	           device registers and hardware FIFOs.
//	CNI4     — one 256-byte message exposed through four cachable
//	           device registers (CDRs); reuse via the explicit
//	           three-cycle handshake (§2.1).
//	CNI16Q   — 16-block cachable queue homed on the device (§2.2, §3).
//	CNI512Q  — 512-block cachable queue homed on the device.
//	CNI16Qm  — 512-block cachable queue homed in main memory with a
//	           16-block device cache; overflow writes back to memory.
//
// Each NI is simultaneously three things: a bus agent (it snoops the
// coherence protocol — that is the paper's whole point), a network
// port, and a processor-side software protocol (the exact sequence of
// cached/uncached operations a send or receive performs, which this
// package executes against the simulated CPU so that every bus
// transaction the paper counts actually happens on the simulated bus).
//
// Logical message payloads ride alongside the timing model: the
// simulated memory system carries coherence state, not bytes, so the
// *network.Msg object is "staged" at the device when the software
// commit operation executes. This modelling shortcut is documented in
// DESIGN.md and does not change any bus traffic.
package nic

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/network"
	"repro/internal/params"
	"repro/internal/proc"
	"repro/internal/sim"
)

// Device register offsets (device-local, uncachable).
const (
	RegSendStatus uint64 = 0x00 // nonzero: NI can accept a message
	RegSendData   uint64 = 0x08 // NI2w: message words are stored here
	RegSendCommit uint64 = 0x10 // commit / "message ready" signal
	RegRecvStatus uint64 = 0x18 // nonzero: a message is available
	RegRecvData   uint64 = 0x20 // NI2w: message words are read here
	RegRecvPop    uint64 = 0x28 // CNI4: explicit pop / CDR clear
)

// NI is one node's network interface: device side plus the
// processor-side send/receive software protocol.
type NI interface {
	bus.Device
	network.Port

	// Kind identifies the design (Table 1).
	Kind() params.NIKind

	// TrySend attempts to hand one network message to the NI, executing
	// the design's processor-side send protocol on the calling process.
	// It returns false (after the cost of the failed admission check)
	// when the NI cannot currently accept; the messaging layer then
	// runs software flow control (§4.1) and retries.
	TrySend(p *sim.Process, m *network.Msg) bool

	// TryRecv attempts to extract one message, executing the design's
	// processor-side receive protocol (including the poll). It returns
	// nil (after the poll cost) when no message is available.
	TryRecv(p *sim.Process) *network.Msg
}

// Deps bundles what every NI needs from the node.
type Deps struct {
	Eng    *sim.Engine
	Stats  *sim.Stats
	Fabric *bus.Fabric
	CPU    *proc.CPU
	Net    network.Interconnect
	NodeID int
	Loc    params.BusKind
	Cfg    params.Config

	// SendQBase/RecvQBase are block-aligned base addresses of the send
	// and receive queue regions (pointer blocks + entry blocks). The
	// machine package allocates them and installs bus regions.
	SendQBase uint64
	RecvQBase uint64
	// ShadowBase is a node-private DRAM address used for the software's
	// per-queue shadow pointers and scratch variables.
	ShadowBase uint64
}

// name returns the canonical stats prefix for node id's NI.
func (d *Deps) name() string { return fmt.Sprintf("node%d.ni", d.NodeID) }

// niCounters are the per-NI interned stats handles, resolved once at
// construction so send/receive hot paths never concatenate or hash a
// stats key. The first four are common to every design; the rest are
// CQ-specific and interned by newCNIQ only.
type niCounters struct {
	sendFull, sendMsg          *sim.Counter
	recvPollEmpty, recvMsg     *sim.Counter
	sendHintPull, sendPull     *sim.Counter
	recvHeadRefresh, recvQFull *sim.Counter
	recvOverflowWB, recvUpdate *sim.Counter
}

// counters interns the counters every NI design records.
func (d *Deps) counters() niCounters {
	name := d.name()
	return niCounters{
		sendFull:      d.Stats.Counter(name + ".send.full"),
		sendMsg:       d.Stats.Counter(name + ".send.msg"),
		recvPollEmpty: d.Stats.Counter(name + ".recv.poll.empty"),
		recvMsg:       d.Stats.Counter(name + ".recv.msg"),
	}
}

// New constructs the NI selected by d.Cfg.
func New(d Deps) NI {
	switch d.Cfg.NI {
	case params.NI2w:
		return newNI2w(d)
	case params.CNI4:
		return newCNI4(d)
	case params.CNI16Q, params.CNI512Q:
		return newCNIQ(d, false)
	case params.CNI16Qm:
		return newCNIQ(d, true)
	case params.DMA:
		return newDMA(d)
	}
	panic("nic: unknown NI kind")
}

// Queue-region geometry shared by the CQ designs: block 0 holds the
// head pointer, block 1 the tail pointer, entries follow, one network
// message (4 blocks) per entry.
const (
	headPtrBlock = 0
	tailPtrBlock = 1
	entryBlock0  = 2
)

// entryAddr returns the address of block b of entry e in the queue
// region at base.
func entryAddr(base uint64, e, b int) uint64 {
	return base + uint64(entryBlock0+e*params.BlocksPerNetMsg+b)*params.BlockBytes
}

// headAddr returns the head-pointer block address for a queue region.
func headAddr(base uint64) uint64 { return base + headPtrBlock*params.BlockBytes }

// QueueRegionBytes returns the size of one CQ region (pointers +
// entries) for a queue of qblocks message blocks.
func QueueRegionBytes(qblocks int) uint64 {
	return uint64(entryBlock0+qblocks) * params.BlockBytes
}
