package nic

import (
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/network"
	"repro/internal/params"
	"repro/internal/sim"
)

// cniq implements the cachable-queue network interfaces: CNI16Q and
// CNI512Q (queues homed on the device) and CNI16Qm (queue homed in
// main memory with a 16-block device cache; receive-side overflow
// writes back to memory, §3).
//
// Queue layout per direction (see nic.go): one head-pointer block, one
// tail-pointer block, then fixed 4-block entries, one network message
// each. The timing-relevant state is which agent caches which block;
// the functional queue content is tracked directly.
//
// The three CQ optimisations (§2.2) appear as concrete traffic:
//
//   - valid bits: the processor polls the head entry's first block —
//     a cache hit while the queue is quiet — never the tail pointer;
//   - sense reverse: the receiver never writes the entry to clear it,
//     so consuming a message generates no ownership transfer;
//   - lazy pointers: the producer side (processor for the send queue,
//     device for the receive queue) re-reads the consumer's head
//     pointer only when its shadow copy says the queue is full.
//
// All three can be disabled through params.Config for ablations.
type cniq struct {
	d        Deps
	kind     params.NIKind
	name     string
	ctr      niCounters
	memHomed bool
	entries  int // entries per direction

	// ---- send queue: processor produces, device consumes ----
	sendTailPos   uint64                 // software tail (monotonic)
	sendShadow    uint64                 // software shadow of the device head
	sendHeadPos   uint64                 // device head (monotonic)
	sendStageQ    sim.FIFO[*network.Msg] // committed by software, awaiting RegWrite
	sendCommitted sim.FIFO[*network.Msg] // message-ready received, awaiting pull
	sendPulled    map[uint64]bool        // block already at the device (hint pull / WB)
	sendHints     sim.FIFO[uint64]       // virtual-polling pull hints (block addrs)
	injectFIFO    sim.FIFO[*network.Msg]
	sendWork      *sim.Cond
	injectWork    *sim.Cond
	injectSpace   *sim.Cond

	// ---- receive queue: device produces, processor consumes ----
	recvTailPos  uint64                 // device tail (monotonic)
	recvShadow   uint64                 // device shadow of the processor head
	recvProcHead uint64                 // processor head (monotonic)
	recvStage    sim.FIFO[*network.Msg] // accepted from the wire, awaiting entry write
	recvEntries  sim.FIFO[*network.Msg] // visible to the processor
	recvWork     *sim.Cond
	recvHeadMove *sim.Cond // snooped CRI on the head-pointer block

	// procCopies tracks which of this NI's blocks the processor cache
	// holds, so the device knows when publishing requires invalidation.
	procCopies map[uint64]bool

	// dc is CNI16Qm's receive-side device cache (nil otherwise).
	dc *devCache
	// live marks receive-queue blocks holding a message the processor
	// has not yet read. The device observes consumption for free by
	// snooping the processor's coherent reads of its queue blocks, so
	// evicting a dead (already-consumed) block needs no writeback —
	// only live blocks "overflow to main memory" (§3, §5.1.2).
	live map[uint64]bool
}

const (
	injectFIFOCap = 2 // pulled messages awaiting injection
	recvStageCap  = 2 // hardware landing buffers before queue entries
)

func newCNIQ(d Deps, memHomed bool) *cniq {
	qblocks := d.Cfg.QueueBlocks()
	total := d.Cfg.TotalQueueBlocks()
	n := &cniq{
		d:            d,
		kind:         d.Cfg.NI,
		name:         d.name(),
		ctr:          d.counters(),
		memHomed:     memHomed,
		entries:      total / params.BlocksPerNetMsg,
		sendPulled:   make(map[uint64]bool),
		procCopies:   make(map[uint64]bool),
		live:         make(map[uint64]bool),
		sendWork:     sim.NewCond(d.Eng),
		injectWork:   sim.NewCond(d.Eng),
		injectSpace:  sim.NewCond(d.Eng),
		recvWork:     sim.NewCond(d.Eng),
		recvHeadMove: sim.NewCond(d.Eng),
	}
	n.ctr.sendHintPull = d.Stats.Counter(n.name + ".send.hintpull")
	n.ctr.sendPull = d.Stats.Counter(n.name + ".send.pull")
	n.ctr.recvHeadRefresh = d.Stats.Counter(n.name + ".recv.headrefresh")
	n.ctr.recvQFull = d.Stats.Counter(n.name + ".recv.qfull")
	n.ctr.recvOverflowWB = d.Stats.Counter(n.name + ".recv.overflowWB")
	n.ctr.recvUpdate = d.Stats.Counter(n.name + ".recv.update")
	if memHomed {
		n.dc = newDevCache(qblocks) // 16-block receive cache
		n.dc.pin(n.sendHeadAddr())  // device-owned pointer blocks
		n.dc.pin(n.recvTailAddr())
	}
	d.Fabric.Attach(n, d.Loc)
	d.Eng.Spawn(n.name+".send", n.sendEngine)
	d.Eng.Spawn(n.name+".inject", n.injector)
	d.Eng.Spawn(n.name+".recv", n.recvEngine)
	return n
}

func (n *cniq) Kind() params.NIKind { return n.kind }

// AgentName implements bus.Agent.
func (n *cniq) AgentName() string { return n.name }

// AgentClass implements bus.Agent.
func (n *cniq) AgentClass() params.AgentClass { return params.ClassDevice }

// Address helpers.
func (n *cniq) sendEntryAddr(pos uint64, b int) uint64 {
	return entryAddr(n.d.SendQBase, int(pos%uint64(n.entries)), b)
}
func (n *cniq) recvEntryAddr(pos uint64, b int) uint64 {
	return entryAddr(n.d.RecvQBase, int(pos%uint64(n.entries)), b)
}
func (n *cniq) sendHeadAddr() uint64 { return headAddr(n.d.SendQBase) }
func (n *cniq) recvHeadAddr() uint64 { return headAddr(n.d.RecvQBase) }
func (n *cniq) recvTailAddr() uint64 {
	return n.d.RecvQBase + tailPtrBlock*params.BlockBytes
}

func (n *cniq) inSendEntries(addr uint64) bool {
	lo := entryAddr(n.d.SendQBase, 0, 0)
	hi := entryAddr(n.d.SendQBase, n.entries, 0)
	return addr >= lo && addr < hi
}

func (n *cniq) inRegion(addr uint64) bool {
	size := QueueRegionBytes(n.entries * params.BlocksPerNetMsg)
	return (addr >= n.d.SendQBase && addr < n.d.SendQBase+size) ||
		(addr >= n.d.RecvQBase && addr < n.d.RecvQBase+size)
}

// SnoopTx implements bus.Agent: coherence is how the device watches
// the processor (virtual polling) and vice versa.
func (n *cniq) SnoopTx(tx *bus.Tx, isHome bool) bus.Snoop {
	if !n.inRegion(tx.Addr) {
		return bus.Snoop{}
	}
	var sn bus.Snoop
	if n.memHomed {
		sn = n.snoopDevCache(tx)
	} else {
		// Device-homed: the home always "has" the block, which forces
		// the processor to install Shared so its writes stay visible.
		sn = bus.Snoop{HasCopy: true}
	}
	switch tx.Kind {
	case bus.CR:
		n.procCopies[tx.Addr] = true
		if tx.Initiator != bus.Agent(n) {
			// The processor fetched the block: the message data has
			// left the device; the copy here is dead weight.
			n.live[tx.Addr] = false
		}
	case bus.CRI:
		// The processor took exclusive ownership: it holds the block.
		n.procCopies[tx.Addr] = true
		if n.inSendEntries(tx.Addr) {
			n.sendPulled[tx.Addr] = false
			n.virtualPollHint(tx.Addr)
		}
		if tx.Addr == n.recvHeadAddr() {
			// The processor is advancing the receive head: wake the
			// receive engine if it is waiting for space.
			n.recvHeadMove.Signal()
		}
	case bus.CI:
		n.procCopies[tx.Addr] = false
	case bus.WB:
		if !n.memHomed && isHome && n.inSendEntries(tx.Addr) {
			// The processor evicted a dirty send-queue block to its
			// home (us): the data is here, no pull needed.
			n.sendPulled[tx.Addr] = true
		}
	}
	return sn
}

// virtualPollHint implements §3's virtual-polling variant: queues fill
// in FIFO order, so an invalidation for block k+1 of a message implies
// the processor finished writing block k; the device pulls it early.
func (n *cniq) virtualPollHint(addr uint64) {
	off := addr - entryAddr(n.d.SendQBase, 0, 0)
	blockInEntry := (off / params.BlockBytes) % params.BlocksPerNetMsg
	if blockInEntry == 0 {
		return
	}
	prev := addr - params.BlockBytes
	if !n.sendPulled[prev] {
		n.sendHints.Push(prev)
		n.sendWork.Signal()
	}
}

// RegRead implements bus.Device. The CQ designs expose no polled
// status registers; reads exist for diagnostics.
func (n *cniq) RegRead(reg uint64) uint64 {
	switch reg {
	case RegSendStatus:
		return n.sendHeadPos
	case RegRecvStatus:
		return n.recvTailPos
	}
	return 0
}

// RegWrite implements bus.Device: the only control write is the
// message-ready signal (§3).
func (n *cniq) RegWrite(reg, val uint64) {
	if reg != RegSendCommit {
		return
	}
	if n.sendStageQ.Len() == 0 {
		panic("cniq: message-ready with no staged message")
	}
	n.sendCommitted.Push(n.sendStageQ.Pop())
	n.sendWork.Signal()
}

// TrySend implements NI: the CQ send protocol (§3): check for space
// using the lazy shadow head, write the message into the entry with
// cached stores, bump the private tail, and post the message-ready
// uncached store.
func (n *cniq) TrySend(p *sim.Process, m *network.Msg) bool {
	cpu := n.d.CPU
	// Software full check against the shadow head (a private cached
	// variable: a hit).
	cpu.Load(p, n.d.ShadowBase)
	full := n.sendTailPos-n.sendShadow >= uint64(n.entries)
	if full || n.d.Cfg.NoLazyPointers {
		// Re-read the real head pointer (a miss whenever the device
		// has advanced it since we last looked).
		cpu.Load(p, n.sendHeadAddr())
		n.sendShadow = n.sendHeadPos
		if n.sendTailPos-n.sendShadow >= uint64(n.entries) {
			n.ctr.sendFull.Inc()
			return false
		}
	}
	// Write the message (header + payload + valid word in block 0).
	for b := 0; b < m.Blocks; b++ {
		base := n.sendEntryAddr(n.sendTailPos, b)
		bytes := params.BlockBytes
		if b == m.Blocks-1 {
			bytes = m.Size + params.HeaderBytes - b*params.BlockBytes
		}
		cpu.StoreRange(p, base, bytes)
	}
	// Advance the private tail (hit) and signal message-ready.
	cpu.Store(p, n.d.ShadowBase+8)
	n.sendTailPos++
	n.sendStageQ.Push(m)
	cpu.UncachedStore(p, n, RegSendCommit, 1)
	n.ctr.sendMsg.Inc()
	return true
}

// sendEngine is the device's pull side: it services virtual-polling
// hints eagerly and drains committed messages into the inject FIFO,
// advancing the send head pointer.
func (n *cniq) sendEngine(p *sim.Process) {
	for {
		if n.sendHints.Len() > 0 {
			addr := n.sendHints.Pop()
			if !n.sendPulled[addr] {
				n.d.Fabric.Do(p, bus.Tx{Kind: bus.CR, Addr: addr, Initiator: n})
				n.sendPulled[addr] = true
				n.ctr.sendHintPull.Inc()
			}
			continue
		}
		if n.sendCommitted.Len() == 0 {
			n.sendWork.Wait(p)
			continue
		}
		m := n.sendCommitted.Peek()
		for b := 0; b < m.Blocks; b++ {
			addr := n.sendEntryAddr(n.sendHeadPos, b)
			if !n.sendPulled[addr] {
				n.d.Fabric.Do(p, bus.Tx{Kind: bus.CR, Addr: addr, Initiator: n})
				n.ctr.sendPull.Inc()
			}
		}
		// Entry consumed: forget pull state for its blocks.
		for b := 0; b < params.BlocksPerNetMsg; b++ {
			delete(n.sendPulled, n.sendEntryAddr(n.sendHeadPos, b))
		}
		n.sendCommitted.Pop()
		for n.injectFIFO.Len() >= injectFIFOCap {
			n.injectSpace.Wait(p)
		}
		n.injectFIFO.Push(m)
		n.injectWork.Signal()
		n.sendHeadPos++
		n.publishPointer(p, n.sendHeadAddr())
	}
}

// publishPointer performs the bus work for a device write to a
// pointer block: invalidate the processor's copy if it holds one.
// (For the memory-homed design the pointer blocks are pinned in the
// device, so the write itself stays internal either way.)
func (n *cniq) publishPointer(p *sim.Process, addr uint64) {
	if n.procCopies[addr] {
		n.d.Fabric.Do(p, bus.Tx{Kind: bus.CI, Addr: addr, Initiator: n})
		n.procCopies[addr] = false
	}
	if n.memHomed {
		n.dc.setState(addr, cache.Modified) // re-own the pinned line
	}
}

// injector drains the inject FIFO into the network.
func (n *cniq) injector(p *sim.Process) {
	for {
		for n.injectFIFO.Len() == 0 {
			n.injectWork.Wait(p)
		}
		m := n.injectFIFO.Peek()
		n.d.Net.Inject(p, m)
		n.injectFIFO.Pop()
		n.injectSpace.Signal()
	}
}

// NetDeliver implements network.Port: accept into the landing buffers.
func (n *cniq) NetDeliver(m *network.Msg) bool {
	if n.recvStage.Len() >= recvStageCap {
		return false
	}
	n.recvStage.Push(m)
	n.recvWork.Signal()
	return true
}

// recvEngine writes arrived messages into receive-queue entries:
// lazy full check against the processor head, one block write per
// used block (invalidation traffic + CNI16Qm device-cache handling),
// valid word last.
func (n *cniq) recvEngine(p *sim.Process) {
	for {
		if n.recvStage.Len() == 0 {
			n.recvWork.Wait(p)
			continue
		}
		m := n.recvStage.Peek()
		for n.recvTailPos-n.recvShadow >= uint64(n.entries) {
			// Shadow says full: refresh by reading the processor's head
			// pointer block (lazy pointers, device side).
			n.d.Fabric.Do(p, bus.Tx{Kind: bus.CR, Addr: n.recvHeadAddr(), Initiator: n})
			n.ctr.recvHeadRefresh.Inc()
			n.recvShadow = n.recvProcHead
			if n.recvTailPos-n.recvShadow >= uint64(n.entries) {
				// Truly full: sleep until the snooped coherence traffic
				// says the processor advanced its head (the refresh
				// above downgraded the processor's copy, so the next
				// head increment is a bus-visible invalidation).
				n.ctr.recvQFull.Inc()
				n.recvHeadMove.Wait(p)
			}
		}
		// Write payload blocks first, the valid word (block 0) last, so
		// a racing poll sees the old sense until the entry is complete.
		for i := 1; i < m.Blocks; i++ {
			n.devWriteBlock(p, n.recvEntryAddr(n.recvTailPos, i))
			if n.d.Cfg.UpdateProtocol {
				n.pushUpdate(p, n.recvEntryAddr(n.recvTailPos, i))
			}
		}
		if n.d.Cfg.NoValidBits {
			// Ablation: receiver polls the tail pointer instead, so the
			// device must publish it for every message.
			n.devWriteBlock(p, n.recvTailAddr())
		}
		n.devWriteBlock(p, n.recvEntryAddr(n.recvTailPos, 0))
		if n.d.Cfg.UpdateProtocol {
			n.pushUpdate(p, n.recvEntryAddr(n.recvTailPos, 0))
		}
		n.recvStage.Pop()
		n.recvEntries.Push(m)
		n.recvTailPos++
		n.d.Net.Unblock(n.d.NodeID)
	}
}

// devWriteBlock performs the bus work for the device writing one of
// its queue blocks.
func (n *cniq) devWriteBlock(p *sim.Process, addr uint64) {
	if n.memHomed {
		// Memory-homed: the device cache takes ownership. Evict the
		// victim first — a live victim (unread message) is the §5.1.2
		// overflow writeback; a dead one is dropped silently. The write
		// itself needs a bus invalidation only when the processor holds
		// a copy (the device's duplicate snoop tags tell it; the device
		// is the only writer of these blocks, so a silent upgrade is
		// safe and mirrors the device-homed accounting).
		if victim, dirty := n.dc.ensure(addr); dirty && n.live[victim] {
			n.d.Fabric.Do(p, bus.Tx{Kind: bus.WB, Addr: victim, Initiator: n})
			n.ctr.recvOverflowWB.Inc()
		}
		if n.procCopies[addr] && !n.d.Cfg.UpdateProtocol {
			n.d.Fabric.Do(p, bus.Tx{Kind: bus.CI, Addr: addr, Initiator: n})
			n.procCopies[addr] = false
		}
		n.live[addr] = true
		n.dc.setState(addr, cache.Modified)
		return
	}
	// Device-homed: the write is internal; invalidate the processor's
	// stale copy if it holds one. Under the update-protocol extension
	// the subsequent push refreshes the copy instead of invalidating.
	if n.procCopies[addr] && !n.d.Cfg.UpdateProtocol {
		n.d.Fabric.Do(p, bus.Tx{Kind: bus.CI, Addr: addr, Initiator: n})
		n.procCopies[addr] = false
	}
}

// pushUpdate implements the optional update-protocol extension: after
// writing a block, broadcast the fresh contents so the processor's
// invalidated frame refills and its next poll hits.
func (n *cniq) pushUpdate(p *sim.Process, addr uint64) {
	n.d.Fabric.Do(p, bus.Tx{Kind: bus.UP, Addr: addr, Initiator: n})
	n.procCopies[addr] = true
	if n.memHomed {
		// The processor now shares the block: our dirty copy is Owned.
		if n.dc.stateOf(addr) == cache.Modified {
			n.dc.setState(addr, cache.Owned)
		}
	}
	n.ctr.recvUpdate.Inc()
}

// TryRecv implements NI: the CQ receive protocol (§2.2, §3): poll the
// head entry's valid word (a hit while nothing changed), read the
// message blocks, advance the head pointer.
func (n *cniq) TryRecv(p *sim.Process) *network.Msg {
	cpu := n.d.CPU
	if n.d.Cfg.NoValidBits {
		cpu.Load(p, n.recvTailAddr())
	} else {
		cpu.Load(p, n.recvEntryAddr(n.recvProcHead, 0))
	}
	if n.recvEntries.Len() == 0 {
		n.ctr.recvPollEmpty.Inc()
		return nil
	}
	m := n.recvEntries.Peek()
	// Read the rest of the message: remainder of block 0, then the
	// other blocks (one miss each, supplied by the device or memory).
	first := m.Size + params.HeaderBytes
	if first > params.BlockBytes {
		first = params.BlockBytes
	}
	if n.d.Cfg.NoValidBits {
		cpu.LoadRange(p, n.recvEntryAddr(n.recvProcHead, 0), first)
	} else if first > 8 {
		cpu.LoadRange(p, n.recvEntryAddr(n.recvProcHead, 0)+8, first-8)
	}
	for b := 1; b < m.Blocks; b++ {
		bytes := params.BlockBytes
		if b == m.Blocks-1 {
			bytes = m.Size + params.HeaderBytes - b*params.BlockBytes
		}
		cpu.LoadRange(p, n.recvEntryAddr(n.recvProcHead, b), bytes)
	}
	if n.d.Cfg.NoSenseReverse {
		// Ablation: explicitly clear the valid word, which transfers
		// ownership of the block to the processor (the cost sense
		// reverse eliminates).
		cpu.Store(p, n.recvEntryAddr(n.recvProcHead, 0))
	}
	n.recvEntries.Pop()
	n.recvProcHead++
	// Advance the head pointer (a hit while the device isn't looking;
	// one CRI per device refresh otherwise).
	cpu.Store(p, n.recvHeadAddr())
	n.ctr.recvMsg.Inc()
	return m
}
