package nic

import (
	"repro/internal/bus"
	"repro/internal/network"
	"repro/internal/params"
	"repro/internal/sim"
)

// cni4 exposes exactly one 256-byte network message in each direction
// through four cachable device registers (CDR blocks) homed on the
// device (§2.1, §3). Status and control registers stay uncached.
//
// Send: the processor polls the uncached send status until the CDR is
// free, writes the message into the CDR blocks with ordinary cached
// stores (each block's first store is a coherent read-invalidate the
// device observes), and posts an uncached "message ready" store. The
// device then pulls the blocks out of the processor cache with
// coherent reads and injects.
//
// Receive: the device loads the next message into the receive CDR and
// raises the uncached receive status. The processor polls the status,
// reads the message with cached loads (one miss per block, supplied
// cache-to-cache by the device), then executes the explicit
// three-cycle handshake: an uncached pop store, a MEMBAR to push it
// out, and a status re-read; the device invalidates the CDR blocks
// from the processor cache before showing the next message.
type cni4 struct {
	d    Deps
	name string
	ctr  niCounters

	// Send side.
	sendBusy   bool // CDR occupied by a message being composed/pulled
	sendStaged *network.Msg
	sendFIFO   []*network.Msg // pulled, awaiting injection
	sendCap    int
	sendWork   *sim.Cond
	injectWork *sim.Cond

	// Receive side.
	recvFIFO    []*network.Msg // arrived, behind the CDR
	recvCap     int
	recvCur     *network.Msg // message currently exposed in the CDR
	recvReady   bool         // status register value
	recvPopReq  bool         // processor posted the pop store
	recvWork    *sim.Cond
	procCDRCopy [params.BlocksPerNetMsg]bool // proc caches recv CDR block?
}

func newCNI4(d Deps) *cni4 {
	n := &cni4{
		d:          d,
		name:       d.name(),
		ctr:        d.counters(),
		sendCap:    params.CNI4DeviceFIFOMsgs,
		recvCap:    params.CNI4DeviceFIFOMsgs,
		sendWork:   sim.NewCond(d.Eng),
		injectWork: sim.NewCond(d.Eng),
		recvWork:   sim.NewCond(d.Eng),
	}
	d.Fabric.Attach(n, d.Loc)
	d.Eng.Spawn(n.name+".send", n.sendEngine)
	d.Eng.Spawn(n.name+".recv", n.recvEngine)
	d.Eng.Spawn(n.name+".inject", n.injector)
	return n
}

func (n *cni4) Kind() params.NIKind { return params.CNI4 }

// AgentName implements bus.Agent.
func (n *cni4) AgentName() string { return n.name }

// AgentClass implements bus.Agent.
func (n *cni4) AgentClass() params.AgentClass { return params.ClassDevice }

// sendBlock returns the address of send-CDR block b.
func (n *cni4) sendBlock(b int) uint64 {
	return n.d.SendQBase + uint64(b)*params.BlockBytes
}

// recvBlock returns the address of receive-CDR block b.
func (n *cni4) recvBlock(b int) uint64 {
	return n.d.RecvQBase + uint64(b)*params.BlockBytes
}

// SnoopTx implements bus.Agent. The device is the home for both CDR
// regions: it tracks processor copies of the receive CDR (so the pop
// handshake knows what to invalidate) and observes the processor
// taking ownership of send CDR blocks.
func (n *cni4) SnoopTx(tx *bus.Tx, isHome bool) bus.Snoop {
	for b := 0; b < params.BlocksPerNetMsg; b++ {
		if tx.Addr == n.recvBlock(b) {
			switch tx.Kind {
			case bus.CR:
				n.procCDRCopy[b] = true
			case bus.CRI, bus.CI:
				n.procCDRCopy[b] = false
			}
			// The device is the home: report a copy so the processor
			// installs Shared and its next write is bus-visible.
			return bus.Snoop{HasCopy: true}
		}
		if tx.Addr == n.sendBlock(b) {
			return bus.Snoop{HasCopy: true}
		}
	}
	return bus.Snoop{}
}

// RegRead implements bus.Device.
func (n *cni4) RegRead(reg uint64) uint64 {
	switch reg {
	case RegSendStatus:
		if !n.sendBusy && len(n.sendFIFO) < n.sendCap {
			return 1
		}
		return 0
	case RegRecvStatus:
		if n.recvReady {
			return uint64(n.recvCur.Blocks)
		}
		return 0
	}
	return 0
}

// RegWrite implements bus.Device.
func (n *cni4) RegWrite(reg, val uint64) {
	switch reg {
	case RegSendCommit:
		if n.sendStaged == nil {
			panic("cni4: commit without staged message")
		}
		n.sendWork.Signal()
	case RegRecvPop:
		if !n.recvReady {
			panic("cni4: pop with no exposed message")
		}
		n.recvPopReq = true
		n.recvReady = false
		n.recvWork.Signal()
	}
}

// TrySend implements NI: the CNI4 send protocol.
func (n *cni4) TrySend(p *sim.Process, m *network.Msg) bool {
	if n.d.CPU.UncachedLoad(p, n, RegSendStatus) == 0 {
		n.ctr.sendFull.Inc()
		return false
	}
	n.sendBusy = true
	// Write header + payload into the CDR blocks with cached stores.
	for b := 0; b < m.Blocks; b++ {
		base := n.sendBlock(b)
		bytes := params.BlockBytes
		if b == m.Blocks-1 {
			bytes = m.Size + params.HeaderBytes - b*params.BlockBytes
		}
		n.d.CPU.StoreRange(p, base, bytes)
	}
	n.sendStaged = m
	n.d.CPU.UncachedStore(p, n, RegSendCommit, uint64(m.Blocks))
	n.ctr.sendMsg.Inc()
	return true
}

// sendEngine pulls committed messages out of the processor cache.
func (n *cni4) sendEngine(p *sim.Process) {
	for {
		for n.sendStaged == nil {
			n.sendWork.Wait(p)
		}
		m := n.sendStaged
		for b := 0; b < m.Blocks; b++ {
			n.d.Fabric.Do(p, bus.Tx{Kind: bus.CR, Addr: n.sendBlock(b), Initiator: n})
		}
		n.sendStaged = nil
		n.sendFIFO = append(n.sendFIFO, m)
		n.sendBusy = false
		n.injectWork.Signal()
	}
}

// injector drains pulled messages into the network.
func (n *cni4) injector(p *sim.Process) {
	for {
		for len(n.sendFIFO) == 0 {
			n.injectWork.Wait(p)
		}
		m := n.sendFIFO[0]
		n.d.Net.Inject(p, m)
		n.sendFIFO = n.sendFIFO[1:]
	}
}

// TryRecv implements NI: poll the uncached status; on success read the
// CDR blocks and run the explicit clear handshake.
func (n *cni4) TryRecv(p *sim.Process) *network.Msg {
	blocks := n.d.CPU.UncachedLoad(p, n, RegRecvStatus)
	if blocks == 0 {
		n.ctr.recvPollEmpty.Inc()
		return nil
	}
	m := n.recvCur
	for b := 0; b < m.Blocks; b++ {
		base := n.recvBlock(b)
		bytes := params.BlockBytes
		if b == m.Blocks-1 {
			bytes = m.Size + params.HeaderBytes - b*params.BlockBytes
		}
		n.d.CPU.LoadRange(p, base, bytes)
	}
	// Three-cycle handshake (§2.1): (1) explicit clear via uncached
	// store; (2) MEMBAR so the device sees it; (3) the device
	// invalidates the CDR and only then raises status for the next
	// message, which the next poll observes.
	n.d.CPU.UncachedStore(p, n, RegRecvPop, 1)
	n.d.CPU.Membar(p)
	n.ctr.recvMsg.Inc()
	return m
}

// recvEngine loads arrived messages into the CDR and performs the
// device half of the clear handshake.
func (n *cni4) recvEngine(p *sim.Process) {
	for {
		for !(n.recvPopReq || (n.recvCur == nil && len(n.recvFIFO) > 0)) {
			n.recvWork.Wait(p)
		}
		if n.recvPopReq {
			n.recvPopReq = false
			// Invalidate the processor's cached copies of the CDR.
			for b := 0; b < params.BlocksPerNetMsg; b++ {
				if n.procCDRCopy[b] {
					n.d.Fabric.Do(p, bus.Tx{Kind: bus.CI, Addr: n.recvBlock(b), Initiator: n})
					n.procCDRCopy[b] = false
				}
			}
			n.recvCur = nil
			n.d.Net.Unblock(n.d.NodeID)
		}
		if n.recvCur == nil && len(n.recvFIFO) > 0 {
			n.recvCur = n.recvFIFO[0]
			n.recvFIFO = n.recvFIFO[1:]
			// Loading the CDR is device-internal (the device is home).
			n.recvReady = true
		}
	}
}

// NetDeliver implements network.Port.
func (n *cni4) NetDeliver(m *network.Msg) bool {
	if len(n.recvFIFO) >= n.recvCap {
		return false
	}
	n.recvFIFO = append(n.recvFIFO, m)
	n.recvWork.Signal()
	return true
}
