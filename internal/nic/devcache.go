package nic

import (
	"repro/internal/bus"
	"repro/internal/cache"
)

// devCache is CNI16Qm's small on-device cache for its memory-homed
// queue blocks (§3: "caches up to 16 cache blocks on the network
// interface device, and overflows to main memory as necessary").
// It is fully associative with FIFO replacement — deterministic and
// close enough to the paper's unspecified policy; pinned lines (the
// device-owned pointer blocks) never evict.
type devCache struct {
	capacity int
	lines    map[uint64]cache.State
	order    []uint64 // unpinned lines in insertion order
	pinned   map[uint64]bool
}

func newDevCache(capBlocks int) *devCache {
	return &devCache{
		capacity: capBlocks,
		lines:    make(map[uint64]cache.State),
		pinned:   make(map[uint64]bool),
	}
}

// pin installs addr as a permanently resident Modified line (used for
// the device-owned pointer blocks).
func (c *devCache) pin(addr uint64) {
	c.lines[addr] = cache.Modified
	c.pinned[addr] = true
}

// stateOf returns the line state (Invalid when absent).
func (c *devCache) stateOf(addr uint64) cache.State {
	return c.lines[addr]
}

// setState updates an existing line's state.
func (c *devCache) setState(addr uint64, st cache.State) {
	c.lines[addr] = st
}

// invalidate drops the line (pinned lines go Invalid but stay pinned;
// the device re-owns them on its next publish).
func (c *devCache) invalidate(addr uint64) {
	if c.pinned[addr] {
		c.lines[addr] = cache.Invalid
		return
	}
	delete(c.lines, addr)
	for i, a := range c.order {
		if a == addr {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// ensure allocates a frame for addr, evicting the oldest unpinned
// line if the cache is at capacity. It reports the victim and whether
// the victim was dirty (needs a writeback before reuse).
func (c *devCache) ensure(addr uint64) (victim uint64, dirtyEvict bool) {
	if _, ok := c.lines[addr]; ok {
		return 0, false
	}
	if c.pinned[addr] {
		c.lines[addr] = cache.Invalid
		return 0, false
	}
	if len(c.order) >= c.capacity {
		victim = c.order[0]
		c.order = c.order[1:]
		st := c.lines[victim]
		delete(c.lines, victim)
		dirtyEvict = st.Dirty()
	}
	c.lines[addr] = cache.Invalid
	c.order = append(c.order, addr)
	return victim, dirtyEvict
}

// used reports resident unpinned lines (diagnostics).
func (c *devCache) used() int { return len(c.order) }

// snoopDevCache is the MOESI snooping side of the device cache.
func (n *cniq) snoopDevCache(tx *bus.Tx) bus.Snoop {
	st := n.dc.stateOf(tx.Addr)
	if !st.Valid() {
		return bus.Snoop{}
	}
	switch tx.Kind {
	case bus.CR:
		sn := bus.Snoop{HasCopy: true, WillSupply: st.CanSupply()}
		switch st {
		case cache.Modified:
			n.dc.setState(tx.Addr, cache.Owned)
		case cache.Exclusive:
			n.dc.setState(tx.Addr, cache.Shared)
		}
		return sn
	case bus.CRI:
		sn := bus.Snoop{HasCopy: true, WillSupply: st.CanSupply()}
		n.dc.invalidate(tx.Addr)
		return sn
	case bus.CI:
		n.dc.invalidate(tx.Addr)
		return bus.Snoop{HasCopy: true}
	}
	return bus.Snoop{}
}
