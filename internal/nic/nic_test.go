package nic_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

// sendN runs a one-way stream of n size-byte messages from node 0 to
// node 1 on a fresh machine and returns the machine for stat checks.
func sendN(t *testing.T, cfg params.Config, n, size int) *machine.Machine {
	t.Helper()
	m := machine.New(cfg)
	const hMsg = 1
	got := 0
	m.Nodes[1].Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
	m.Nodes[0].Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
	m.Spawn(0, func(p *sim.Process, nd *machine.Node) {
		for i := 0; i < n; i++ {
			nd.Msgr.Send(p, 1, hMsg, size, nil)
		}
	})
	m.Spawn(1, func(p *sim.Process, nd *machine.Node) {
		nd.Msgr.PollUntil(p, func() bool { return got == n })
	})
	m.Run(sim.Time(1) << 42)
	m.Stop()
	if got != n {
		t.Fatalf("%s: delivered %d of %d messages", cfg.Name(), got, n)
	}
	return m
}

func TestEveryNIDeliversEveryMessage(t *testing.T) {
	for _, ni := range params.AllNIs {
		for _, b := range []params.BusKind{params.MemoryBus, params.IOBus} {
			cfg := params.Config{Nodes: 2, NI: ni, Bus: b}
			if cfg.Validate() != nil {
				continue
			}
			sendN(t, cfg, 25, 100)
		}
	}
	sendN(t, params.Config{Nodes: 2, NI: params.NI2w, Bus: params.CacheBus}, 25, 100)
}

func TestNI2wUsesOnlyUncachedAccess(t *testing.T) {
	m := sendN(t, params.Config{Nodes: 2, NI: params.NI2w, Bus: params.MemoryBus}, 10, 64)
	if m.Stats.Get("unc.load.memory") == 0 || m.Stats.Get("unc.store.memory") == 0 {
		t.Error("NI2w should poll and store uncached")
	}
	// The only coherent traffic is the messaging layer touching its
	// user buffer, never NI queues: no device-supplied transfers.
	if m.Stats.Get("node1.ni.recv.msg") != 10 {
		t.Errorf("recv.msg = %d", m.Stats.Get("node1.ni.recv.msg"))
	}
}

func TestNI2wWordCountScalesWithSize(t *testing.T) {
	// An 8-byte payload is 20 header+payload bytes = 3 words; 244 bytes
	// is 32 words. Uncached stores per message should scale.
	small := sendN(t, params.Config{Nodes: 2, NI: params.NI2w, Bus: params.MemoryBus}, 4, 8)
	big := sendN(t, params.Config{Nodes: 2, NI: params.NI2w, Bus: params.MemoryBus}, 4, 244)
	s := small.Stats.Get("unc.store.memory")
	b := big.Stats.Get("unc.store.memory")
	if b <= s*3 {
		t.Errorf("244B messages should cost far more uncached stores: small=%d big=%d", s, b)
	}
}

func TestCNI4HandshakeInvalidates(t *testing.T) {
	m := sendN(t, params.Config{Nodes: 2, NI: params.CNI4, Bus: params.MemoryBus}, 10, 64)
	// Each received message's pop triggers device CI transactions on
	// the CDR blocks the processor cached (one block for 64+12 bytes
	// ... two blocks).
	if m.Stats.Get("tx.CI") < 10 {
		t.Errorf("tx.CI = %d, want >= 10 (explicit clear handshake)", m.Stats.Get("tx.CI"))
	}
}

func TestCNI4SendPullsBlocks(t *testing.T) {
	m := sendN(t, params.Config{Nodes: 2, NI: params.CNI4, Bus: params.MemoryBus}, 8, 200)
	// 200+12 bytes = 4 blocks per message; the device pulls each with a
	// coherent read. Plus the receiver's fills.
	if m.Stats.Get("tx.CR") < 8*4 {
		t.Errorf("tx.CR = %d, want >= 32", m.Stats.Get("tx.CR"))
	}
}

func TestCQPollIsCachedWhileIdle(t *testing.T) {
	// A receiver polling an empty CQ must hit in its cache: run a
	// machine with no traffic and let node 1 poll many times.
	cfg := params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}
	m := machine.New(cfg)
	m.Spawn(1, func(p *sim.Process, nd *machine.Node) {
		for i := 0; i < 100; i++ {
			if got := nd.NI.TryRecv(p); got != nil {
				t.Error("unexpected message")
			}
		}
	})
	m.Run(sim.Time(1) << 40)
	m.Stop()
	hits := m.Stats.Get("node1.cache.load.hit")
	misses := m.Stats.Get("node1.cache.load.miss")
	if misses > 1 {
		t.Errorf("idle polling missed %d times, want <= 1 (first touch only)", misses)
	}
	if hits < 99 {
		t.Errorf("idle polling hit %d times, want >= 99", hits)
	}
}

func TestCQValidBitTrafficBudget(t *testing.T) {
	// §2.2: "each block of a message requires one invalidation, to
	// obtain write permission for the sender, and one read miss, to
	// fetch the block for the receiver." For n 64-byte-payload
	// messages (2 blocks each) in steady state that is ~2n CRIs from
	// the sender and ~2n CRs for receiver fills plus 2n device pulls.
	n := 16
	m := sendN(t, params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}, n, 64)
	cri := int(m.Stats.Get("tx.CRI"))
	if cri < 2*n-4 || cri > 2*n+8 {
		t.Errorf("tx.CRI = %d, want ~%d (one invalidation per block)", cri, 2*n)
	}
	// Sense reverse means the receiver never writes queue entries: the
	// receiver-side store misses should stay O(1), not O(n).
	misses := m.Stats.Get("node1.cache.store.miss")
	if misses > 6 {
		t.Errorf("receiver store misses = %d, want O(1) (sense reverse)", misses)
	}
}

func TestVirtualPollingPipelinesPulls(t *testing.T) {
	// Multi-block messages should trigger hint pulls (invalidation of
	// block k+1 pulls block k early).
	m := sendN(t, params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}, 8, 244)
	if m.Stats.Get("node0.ni.send.hintpull") == 0 {
		t.Error("expected virtual-polling hint pulls for 4-block messages")
	}
}

func TestQmOverflowWritesBack(t *testing.T) {
	// Flood CNI16Qm's 16-block receive cache: a burst of 4-block
	// messages with a receiver that only drains at the end. The device
	// must spill to memory.
	cfg := params.Config{Nodes: 2, NI: params.CNI16Qm, Bus: params.MemoryBus}
	m := machine.New(cfg)
	const hMsg = 1
	got := 0
	m.Nodes[1].Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
	const burst = 12
	m.Spawn(0, func(p *sim.Process, nd *machine.Node) {
		for i := 0; i < burst; i++ {
			nd.Msgr.Send(p, 1, hMsg, 244, nil)
		}
	})
	m.Spawn(1, func(p *sim.Process, nd *machine.Node) {
		// Stay busy while the burst lands, then drain.
		nd.CPU.Compute(p, 100000)
		nd.Msgr.PollUntil(p, func() bool { return got == burst })
	})
	m.Run(sim.Time(1) << 42)
	m.Stop()
	if got != burst {
		t.Fatalf("got %d of %d", got, burst)
	}
	if m.Stats.Get("node1.ni.recv.overflowWB") == 0 {
		t.Error("expected device-cache overflow writebacks to memory")
	}
}

func TestQmNoBackpressureUnderBurst(t *testing.T) {
	// The same burst must not back up into the network for CNI16Qm
	// (its queue overflows to memory), unlike CNI16Q.
	run := func(ni params.NIKind) uint64 {
		cfg := params.Config{Nodes: 2, NI: ni, Bus: params.MemoryBus}
		m := machine.New(cfg)
		const hMsg = 1
		got := 0
		m.Nodes[1].Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
		const burst = 12
		m.Spawn(0, func(p *sim.Process, nd *machine.Node) {
			for i := 0; i < burst; i++ {
				nd.Msgr.Send(p, 1, hMsg, 244, nil)
			}
		})
		m.Spawn(1, func(p *sim.Process, nd *machine.Node) {
			nd.CPU.Compute(p, 100000)
			nd.Msgr.PollUntil(p, func() bool { return got == burst })
		})
		m.Run(sim.Time(1) << 42)
		m.Stop()
		return m.Stats.Get("net.backpressure")
	}
	if bp := run(params.CNI16Qm); bp != 0 {
		t.Errorf("CNI16Qm backpressure = %d, want 0 (overflow to memory)", bp)
	}
	if bp := run(params.CNI16Q); bp == 0 {
		t.Error("CNI16Q should hit backpressure under a 12-message burst")
	}
}

func TestSnarfingReducesReceiverMisses(t *testing.T) {
	// Snarfing only pays off once the receive queue wraps (the
	// processor's direct-mapped frames then hold the entry blocks'
	// tags in Invalid state) and the device cache is overflowing, so
	// stream enough 4-block messages to lap the 128-entry queue with
	// a consumer that lags slightly.
	run := func(snarf bool) (snarfs, misses uint64) {
		cfg := params.Config{Nodes: 2, NI: params.CNI16Qm, Bus: params.MemoryBus, Snarfing: snarf}
		m := machine.New(cfg)
		const hMsg = 1
		got := 0
		m.Nodes[1].Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
		const nmsg = 160
		m.Spawn(0, func(p *sim.Process, nd *machine.Node) {
			for i := 0; i < nmsg; i++ {
				nd.Msgr.Send(p, 1, hMsg, 244, nil)
			}
		})
		m.Spawn(1, func(p *sim.Process, nd *machine.Node) {
			for got < nmsg {
				nd.CPU.Compute(p, 300) // lag behind the sender
				nd.Msgr.Poll(p)
			}
		})
		m.Run(sim.Time(1) << 42)
		m.Stop()
		if got != nmsg {
			t.Fatalf("got %d", got)
		}
		return m.Stats.Get("node1.cache.snarf"), m.Stats.Get("node1.cache.load.miss")
	}
	s0, m0 := run(false)
	s1, m1 := run(true)
	if s0 != 0 {
		t.Errorf("snarf counter = %d without snarfing", s0)
	}
	if s1 == 0 {
		t.Error("snarfing enabled but never captured a writeback")
	}
	if m1 >= m0 {
		t.Errorf("snarfing should reduce receiver misses: %d -> %d", m0, m1)
	}
}

func TestLazyPointerAblationAddsMisses(t *testing.T) {
	base := sendN(t, params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}, 30, 64)
	noLazy := sendN(t, params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus, NoLazyPointers: true}, 30, 64)
	b := base.Stats.Get("node0.cache.load.miss")
	n := noLazy.Stats.Get("node0.cache.load.miss")
	if n <= b {
		t.Errorf("disabling lazy pointers should add sender misses: base=%d nolazy=%d", b, n)
	}
}

func TestValidBitAblationAddsTailMisses(t *testing.T) {
	base := sendN(t, params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}, 30, 64)
	noVB := sendN(t, params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus, NoValidBits: true}, 30, 64)
	b := base.Stats.Get("tx.CI")
	n := noVB.Stats.Get("tx.CI")
	if n <= b {
		t.Errorf("tail-pointer polling should add device invalidations: base=%d novb=%d", b, n)
	}
}

func TestSenseReverseAblationAddsOwnershipTraffic(t *testing.T) {
	base := sendN(t, params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}, 30, 64)
	noSR := sendN(t, params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus, NoSenseReverse: true}, 30, 64)
	b := base.Stats.Get("node1.cache.store.miss")
	n := noSR.Stats.Get("node1.cache.store.miss")
	if n < b+25 {
		t.Errorf("explicit clears should cost ~1 ownership transfer per message: base=%d nosr=%d", b, n)
	}
}

func TestQueueSizeOverride(t *testing.T) {
	// A CNI512Q constrained to 16 blocks behaves like CNI16Q: bursts
	// hit backpressure.
	cfg := params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus, QueueBlocksOverride: 16}
	m := machine.New(cfg)
	const hMsg = 1
	got := 0
	m.Nodes[1].Msgr.Register(hMsg, func(ctx *msg.Context) { got++ })
	m.Spawn(0, func(p *sim.Process, nd *machine.Node) {
		for i := 0; i < 12; i++ {
			nd.Msgr.Send(p, 1, hMsg, 244, nil)
		}
	})
	m.Spawn(1, func(p *sim.Process, nd *machine.Node) {
		nd.CPU.Compute(p, 100000)
		nd.Msgr.PollUntil(p, func() bool { return got == 12 })
	})
	m.Run(sim.Time(1) << 42)
	m.Stop()
	if got != 12 {
		t.Fatalf("got %d", got)
	}
	if m.Stats.Get("net.backpressure") == 0 {
		t.Error("16-block override should backpressure like CNI16Q")
	}
}
