package nic

import (
	"repro/internal/bus"
	"repro/internal/network"
	"repro/internal/params"
	"repro/internal/sim"
)

// ni2w is the conventional baseline modelled after the Thinking
// Machines CM-5 NI (§3): all accesses to the NI queues are uncachable,
// the device exposes two 4-byte words of the message, and the hardware
// send/receive FIFOs are shallow. Sends poll an uncached status
// register, then write the message word-by-word with uncached stores;
// receives poll an uncached status register, then read the message
// word-by-word with uncached loads (the final read implicitly pops,
// clear-on-read).
type ni2w struct {
	d    Deps
	name string
	ctr  niCounters

	sendFIFO []*network.Msg // committed, awaiting injection
	sendCap  int
	stageQ   []*network.Msg // composed, commit store still in flight

	recvFIFO []*network.Msg
	recvCap  int

	injectWork *sim.Cond
}

func newNI2w(d Deps) *ni2w {
	n := &ni2w{
		d:          d,
		name:       d.name(),
		ctr:        d.counters(),
		sendCap:    d.Cfg.NI2wFIFO(),
		recvCap:    d.Cfg.NI2wFIFO(),
		injectWork: sim.NewCond(d.Eng),
	}
	d.Fabric.Attach(n, d.Loc)
	d.Eng.Spawn(n.name+".inject", n.injector)
	return n
}

func (n *ni2w) Kind() params.NIKind { return params.NI2w }

// AgentName implements bus.Agent.
func (n *ni2w) AgentName() string { return n.name }

// AgentClass implements bus.Agent.
func (n *ni2w) AgentClass() params.AgentClass { return params.ClassDevice }

// SnoopTx implements bus.Agent; NI2w holds no cachable state.
func (n *ni2w) SnoopTx(tx *bus.Tx, isHome bool) bus.Snoop { return bus.Snoop{} }

// RegRead implements bus.Device.
func (n *ni2w) RegRead(reg uint64) uint64 {
	switch reg {
	case RegSendStatus:
		if len(n.sendFIFO)+len(n.stageQ) < n.sendCap {
			return 1
		}
		return 0
	case RegRecvStatus:
		if len(n.recvFIFO) == 0 {
			return 0
		}
		return uint64(network.MsgWords(n.recvFIFO[0].Size))
	case RegRecvData:
		// Word data; values are carried logically, so return a token.
		return 1
	}
	return 0
}

// RegWrite implements bus.Device.
func (n *ni2w) RegWrite(reg, val uint64) {
	switch reg {
	case RegSendData:
		// Word writes land in the outgoing hardware FIFO; the message
		// object itself is attached at commit.
	case RegSendCommit:
		if len(n.stageQ) == 0 {
			panic("ni2w: commit without staged message")
		}
		if len(n.sendFIFO) >= n.sendCap {
			panic("ni2w: send FIFO overflow (software skipped the status check)")
		}
		n.sendFIFO = append(n.sendFIFO, n.stageQ[0])
		n.stageQ = n.stageQ[1:]
		n.injectWork.Signal()
	}
}

// TrySend implements the CM-5-like send: one uncached status load, and
// if there is room, MsgWords uncached stores plus a commit store.
func (n *ni2w) TrySend(p *sim.Process, m *network.Msg) bool {
	if n.d.CPU.UncachedLoad(p, n, RegSendStatus) == 0 {
		n.ctr.sendFull.Inc()
		return false
	}
	words := network.MsgWords(m.Size)
	for w := 0; w < words; w++ {
		n.d.CPU.UncachedStore(p, n, RegSendData, uint64(w))
	}
	n.stageQ = append(n.stageQ, m)
	n.d.CPU.UncachedStore(p, n, RegSendCommit, 1)
	// The CM-5 send checks send_ok after pushing (a failed push would
	// retry); the check is an uncached load that also serialises the
	// posted stores. Our admission check above reserved the slot, so
	// the read simply confirms.
	n.d.CPU.UncachedLoad(p, n, RegSendStatus)
	n.ctr.sendMsg.Inc()
	return true
}

// TryRecv implements the CM-5-like receive: an uncached status poll;
// on success, word-by-word uncached loads, the last of which pops the
// hardware FIFO.
func (n *ni2w) TryRecv(p *sim.Process) *network.Msg {
	words := n.d.CPU.UncachedLoad(p, n, RegRecvStatus)
	if words == 0 {
		n.ctr.recvPollEmpty.Inc()
		return nil
	}
	for w := uint64(0); w < words; w++ {
		n.d.CPU.UncachedLoad(p, n, RegRecvData)
	}
	m := n.recvFIFO[0]
	n.recvFIFO = n.recvFIFO[1:]
	n.ctr.recvMsg.Inc()
	// Clear-on-read freed a FIFO slot: let blocked arrivals in.
	n.d.Net.Unblock(n.d.NodeID)
	return m
}

// NetDeliver implements network.Port: accept into the hardware FIFO if
// there is room.
func (n *ni2w) NetDeliver(m *network.Msg) bool {
	if len(n.recvFIFO) >= n.recvCap {
		return false
	}
	n.recvFIFO = append(n.recvFIFO, m)
	return true
}

// injector drains the send FIFO into the network.
func (n *ni2w) injector(p *sim.Process) {
	for {
		for len(n.sendFIFO) == 0 {
			n.injectWork.Wait(p)
		}
		m := n.sendFIFO[0]
		n.d.Net.Inject(p, m) // blocks while the sliding window is full
		n.sendFIFO = n.sendFIFO[1:]
	}
}
