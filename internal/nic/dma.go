package nic

import (
	"repro/internal/bus"
	"repro/internal/network"
	"repro/internal/params"
	"repro/internal/sim"
)

// dmaNI is the reproduction's DMA comparator (params.DMA): a
// user-level-DMA messaging interface in the spirit of SHRIMP's UDMA.
// The paper names the missing DMA comparison as its open weakness
// (§1), and predicts the trade-off this model exhibits:
//
//   - Send: the processor posts a four-word descriptor (uncached
//     stores) and is done — constant CPU cost regardless of size. The
//     device then pulls the message out of the source node's memory
//     system a block at a time.
//
//   - Receive: the device deposits arriving messages directly into
//     main memory (invalidating stale cached copies) and notifies the
//     process with an interrupt (params.InterruptCycles). The
//     processor's subsequent reads miss to memory — DMA delivers to
//     DRAM, not into the cache, which is exactly the gap CNIs close.
type dmaNI struct {
	d    Deps
	name string
	ctr  niCounters

	sendQ      []*network.Msg // posted descriptors awaiting pull+inject
	sendStageQ []*network.Msg // descriptor stores still in flight
	recvFIFO   []*network.Msg // arrived, awaiting deposit to memory
	deposited  []*network.Msg // in memory, awaiting processor pickup
	pending    int            // completions not yet taken (interrupt coalescing)

	sendWork *sim.Cond
	recvWork *sim.Cond

	// Ring cursors: successive messages occupy successive buffer
	// slots, as real descriptor rings do (reusing one address would
	// let reads spuriously hit leftovers of the previous message).
	sendSeq uint64
	recvSeq uint64
	readSeq uint64
}

// dmaRingSlots is the buffer ring length in network-message slots.
const dmaRingSlots = 32

// slotAddr returns the DRAM address of block b of ring slot seq.
func slotAddr(seq uint64, b int) uint64 {
	return machineUserBuf + ((seq%dmaRingSlots)*params.BlocksPerNetMsg+uint64(b))*params.BlockBytes
}

func newDMA(d Deps) *dmaNI {
	n := &dmaNI{
		d:        d,
		name:     d.name(),
		ctr:      d.counters(),
		sendWork: sim.NewCond(d.Eng),
		recvWork: sim.NewCond(d.Eng),
	}
	d.Fabric.Attach(n, d.Loc)
	d.Eng.Spawn(n.name+".send", n.sendEngine)
	d.Eng.Spawn(n.name+".recv", n.recvEngine)
	return n
}

func (n *dmaNI) Kind() params.NIKind { return params.DMA }

// AgentName implements bus.Agent.
func (n *dmaNI) AgentName() string { return n.name }

// AgentClass implements bus.Agent.
func (n *dmaNI) AgentClass() params.AgentClass { return params.ClassDevice }

// SnoopTx implements bus.Agent: the DMA engine holds no cachable
// state; its transfers are explicit bus transactions.
func (n *dmaNI) SnoopTx(tx *bus.Tx, isHome bool) bus.Snoop { return bus.Snoop{} }

// RegRead implements bus.Device.
func (n *dmaNI) RegRead(reg uint64) uint64 {
	switch reg {
	case RegSendStatus:
		if len(n.sendQ)+len(n.sendStageQ) < params.DMADescriptors {
			return 1
		}
		return 0
	case RegRecvStatus:
		return uint64(n.pending)
	}
	return 0
}

// RegWrite implements bus.Device.
func (n *dmaNI) RegWrite(reg, val uint64) {
	switch reg {
	case RegSendCommit:
		if len(n.sendStageQ) == 0 {
			panic("dma: descriptor commit without staged message")
		}
		n.sendQ = append(n.sendQ, n.sendStageQ[0])
		n.sendStageQ = n.sendStageQ[1:]
		n.sendWork.Signal()
	case RegRecvPop:
		if n.pending == 0 {
			panic("dma: pop with no completion")
		}
		n.pending--
	}
}

// TrySend posts a DMA descriptor: one status check plus four uncached
// stores (source, length, destination, go) — once per *user* message.
// The device fragments into network messages itself, so fragments
// after the first cost the processor nothing: that constant
// initiation cost is DMA's whole advantage.
func (n *dmaNI) TrySend(p *sim.Process, m *network.Msg) bool {
	if m.Frag > 0 {
		// The descriptor already covers this fragment; the device just
		// needs ring space.
		if len(n.sendQ)+len(n.sendStageQ) >= params.DMADescriptors {
			return false
		}
		n.sendQ = append(n.sendQ, m)
		n.sendWork.Signal()
		return true
	}
	if n.d.CPU.UncachedLoad(p, n, RegSendStatus) == 0 {
		n.ctr.sendFull.Inc()
		return false
	}
	n.d.CPU.UncachedStore(p, n, RegSendData, 0) // source address
	n.d.CPU.UncachedStore(p, n, RegSendData, 1) // length
	n.d.CPU.UncachedStore(p, n, RegSendData, 2) // destination
	n.sendStageQ = append(n.sendStageQ, m)
	n.d.CPU.UncachedStore(p, n, RegSendCommit, 1) // go
	n.ctr.sendMsg.Inc()
	return true
}

// sendEngine pulls posted messages from the node's memory system
// (cache-to-cache when the data is still cached, else from memory)
// and injects them.
func (n *dmaNI) sendEngine(p *sim.Process) {
	for {
		for len(n.sendQ) == 0 {
			n.sendWork.Wait(p)
		}
		m := n.sendQ[0]
		for b := 0; b < m.Blocks; b++ {
			n.d.Fabric.Do(p, bus.Tx{Kind: bus.CR, Addr: slotAddr(n.sendSeq, b), Initiator: n})
		}
		n.sendSeq++
		n.d.Net.Inject(p, m)
		n.sendQ = n.sendQ[1:]
	}
}

// machineUserBuf is the DRAM address the DMA engine reads/writes; the
// exact location only matters for cache-state effects (the messaging
// layer's buffer region).
const machineUserBuf = 0x0601_0000

// NetDeliver implements network.Port.
func (n *dmaNI) NetDeliver(m *network.Msg) bool {
	if len(n.recvFIFO) >= params.DMADescriptors {
		return false
	}
	n.recvFIFO = append(n.recvFIFO, m)
	n.recvWork.Signal()
	return true
}

// recvEngine deposits arrived messages into main memory and raises a
// completion (the interrupt is charged to the processor at pickup).
func (n *dmaNI) recvEngine(p *sim.Process) {
	for {
		for len(n.recvFIFO) == 0 {
			n.recvWork.Wait(p)
		}
		m := n.recvFIFO[0]
		for b := 0; b < m.Blocks; b++ {
			// Invalidate any stale processor copy, then write the
			// block to memory.
			addr := slotAddr(n.recvSeq, b)
			n.d.Fabric.Do(p, bus.Tx{Kind: bus.CI, Addr: addr, Initiator: n})
			n.d.Fabric.Do(p, bus.Tx{Kind: bus.WB, Addr: addr, Initiator: n})
		}
		n.recvSeq++
		n.recvFIFO = n.recvFIFO[1:]
		n.deposited = append(n.deposited, m)
		n.pending++
		n.d.Net.Unblock(n.d.NodeID)
	}
}

// TryRecv picks up one completed message: status poll, interrupt
// dispatch cost, then reads of the DMA'd data that miss to memory.
func (n *dmaNI) TryRecv(p *sim.Process) *network.Msg {
	if n.d.CPU.UncachedLoad(p, n, RegRecvStatus) == 0 {
		n.ctr.recvPollEmpty.Inc()
		return nil
	}
	m := n.deposited[0]
	n.deposited = n.deposited[1:]
	if m.Frag == 0 {
		// Interrupt-style notification, once per user message
		// (vector + kernel entry/exit + dispatch).
		n.d.CPU.Compute(p, params.InterruptCycles)
	}
	// Read the message out of main memory: cold misses, since DMA
	// deposited to DRAM (invalidating any cached copies).
	for b := 0; b < m.Blocks; b++ {
		bytes := params.BlockBytes
		if b == m.Blocks-1 {
			bytes = m.Size + params.HeaderBytes - b*params.BlockBytes
		}
		n.d.CPU.LoadRange(p, slotAddr(n.readSeq, b), bytes)
	}
	n.readSeq++
	n.d.CPU.UncachedStore(p, n, RegRecvPop, 1)
	n.ctr.recvMsg.Inc()
	return m
}
