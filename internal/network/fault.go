package network

import (
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CorruptMask is XORed into a message's checksum by an injected
// corruption. The fault model is "ideal checksum": any corruption is
// detectable, so scrambling the checksum itself (rather than payload
// bytes the simulator doesn't carry) models a frame whose contents no
// longer match its checksum with detection probability 1.
const CorruptMask uint32 = 0xDEAD_BEEF

// AttachFaults hooks the injector into the shared fabric edge. Both
// fabrics inherit it: all per-message fault decisions are evaluated
// once, at the destination edge (arrive), which keeps the model
// fabric-agnostic; the fabrics themselves only consult the injector
// for the time-varying degrade window in their transit models.
func (ep *endpoints) AttachFaults(in *fault.Injector) {
	ep.inj = in
	ep.pauseWake = make([]bool, ep.n)
}

// passFaults applies the per-message fault decision to m at the
// destination edge. It reports whether m should continue to delivery;
// a false return means m was consumed here (dropped, or rescheduled
// for delayed arrival).
//
// Dropped messages still return their window credit: the sliding
// window models link-level credit flow control the fabric owns, so
// losing a data frame does not leak a credit — end-to-end reliability
// is the messaging transport's job, which is exactly the layering the
// retransmit tier depends on (a lost frame must not wedge the window).
func (ep *endpoints) passFaults(m *Msg) bool {
	in := ep.inj
	if m.Dup {
		// A duplicate copy was planned once already; it is delivered
		// as-is (never dropped, corrupted, or re-duplicated).
		return true
	}
	// Fault decisions execute on the destination's shard, so every
	// clock comparison uses the destination engine's now (on a serial
	// machine engAt is the one engine, byte-identically).
	eng := ep.engAt(m.Dst)
	now := eng.Now()
	if in.CrashedAt(m.Src, now) || in.CrashedAt(m.Dst, now) {
		in.NoteCrashDrop()
		if ep.rec != nil {
			ep.noteMsg(m.Dst, trace.KDrop, -1, m)
		}
		ep.scheduleAck(m)
		return false
	}
	pl := in.Plan(m.Src, m.Dst)
	if pl.Drop {
		if ep.rec != nil {
			ep.noteMsg(m.Dst, trace.KDrop, -1, m)
		}
		ep.scheduleAck(m)
		return false
	}
	if pl.Corrupt {
		m.Checksum ^= CorruptMask
	}
	if pl.Dup {
		d := *m
		d.Dup = true
		eng.Schedule(0, func() { ep.arrive(&d) })
	}
	if pl.Delay > 0 {
		// Reordering: m lands Delay cycles late, behind messages that
		// arrived after it. Push directly (re-entering arrive would
		// draw a second fault plan for the same message).
		eng.Schedule(pl.Delay, func() {
			ep.arrivals[m.Dst].Push(m)
			ep.drain(m.Dst)
		})
		return false
	}
	return true
}

// stallPaused parks dst's arrival queue for the remainder of dst's
// pause window and arranges a single drain retry when it closes.
func (ep *endpoints) stallPaused(dst int) {
	ep.inj.NotePaused()
	if ep.pauseWake[dst] {
		return
	}
	ep.pauseWake[dst] = true
	ep.engAt(dst).ScheduleAt(ep.inj.PauseEnd(dst), func() {
		ep.pauseWake[dst] = false
		ep.drain(dst)
	})
}

// admitFaults stalls the sending device process while its own node is
// paused — a paused NI neither delivers nor injects.
func (ep *endpoints) admitFaults(p *sim.Process, m *Msg) {
	for ep.inj.PausedAt(m.Src, p.Now()) {
		ep.inj.NotePaused()
		p.Sleep(ep.inj.PauseEnd(m.Src) - p.Now())
	}
}
