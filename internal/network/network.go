// Package network models the machine's interconnect fabric. The
// fabric is pluggable behind the Interconnect interface; two
// implementations exist:
//
//   - Flat (New) — the paper's §4.1 idealised network: topology is
//     ignored, every message takes a constant 100 processor cycles
//     from injection of the last byte at the source to arrival of the
//     first byte at the destination. The default.
//   - Torus (NewTorus) — a 2D torus with dimension-order routing,
//     per-link FIFO arbitration, single-message-at-a-time link
//     occupancy, and a per-hop latency, for experiments where the
//     interconnect itself is the bottleneck.
//
// Both share the paper's framing: network messages are a fixed 256
// bytes, and hardware flow control is an end-to-end sliding window —
// a node may have up to four messages in flight per destination
// before the sender blocks waiting for acknowledgements.
package network

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Msg is one fixed-size network message. Payload semantics belong to
// the messaging layer; the network only routes and times it.
type Msg struct {
	Src, Dst int
	// Handler is the active-message handler index (carried in the
	// 12-byte header along with Size and sequencing).
	Handler int
	// Size is the user-payload byte count in this network message
	// (≤ params.MaxPayloadBytes).
	Size int
	// Blocks is how many 64-byte blocks of NI queue space the message
	// occupies (header + payload, rounded up).
	Blocks int
	// Payload carries app-level data end to end.
	Payload any
	// Frag/FragTotal sequence multi-network-message user messages.
	Frag, FragTotal int
	// ID is the sender-local user-message id fragments share.
	ID uint64
	// TotalBytes is the full user-message payload size.
	TotalBytes int
	// SentAt is stamped by the fabric at admission (after any
	// sliding-window stall) and drives the delivery-latency telemetry;
	// it costs nothing in simulated time.
	SentAt sim.Time

	// Seq is the reliable-transport per-(src,dst) stream sequence
	// number, 1-based; 0 means the frame is unsequenced (transport off,
	// or an ack frame).
	Seq uint64
	// IsAck marks a transport-level cumulative-acknowledgement frame
	// (Seq-free; its Ack field is the highest contiguously received
	// data sequence number).
	IsAck bool
	// Ack carries the cumulative acknowledgement on IsAck frames.
	Ack uint64
	// Checksum covers the header fields end to end (msg.HeaderChecksum);
	// injected corruption scrambles it and the transport's verify
	// rejects the frame.
	Checksum uint32
	// Dup marks a fault-injected duplicate copy. Internal to the fabric
	// edge: duplicates return no window credit and are never re-planned
	// for faults.
	Dup bool

	// xkey is the sharded engine's deterministic merge tiebreak,
	// assigned per admission (sharded machines only): the source node
	// in the high bits over a per-source monotonic stamp. Every cross-
	// shard event derived from this message carries it by value, so
	// (time, xkey, kind) totally orders cross events independently of
	// shard count. Zero on serial machines.
	xkey uint64
}

// MsgBlocks returns the queue blocks consumed by a network message
// carrying size payload bytes.
func MsgBlocks(size int) int {
	b := (size + params.HeaderBytes + params.BlockBytes - 1) / params.BlockBytes
	if b < 1 {
		b = 1
	}
	if b > params.BlocksPerNetMsg {
		panic(fmt.Sprintf("network: payload %d exceeds one network message", size))
	}
	return b
}

// MsgWords returns the number of 8-byte words (header + payload) the
// message occupies, for uncached word-at-a-time NIs.
func MsgWords(size int) int {
	return (size + params.HeaderBytes + 7) / 8
}

// Port is a network endpoint — one node's NI. Delivery is push-based:
// the network offers a message and the port either accepts it
// (returning true, which triggers the ack that opens the sender's
// window) or refuses it (buffer full), in which case the message
// waits at the head of the port's arrival queue and is re-offered
// when the port calls Unblock.
type Port interface {
	// NetDeliver offers an arrived message to the NI.
	NetDeliver(m *Msg) bool
}

// Interconnect is the fabric connecting the ports. NI devices inject;
// the fabric times the traversal, delivers through Port.NetDeliver,
// and returns window credits to senders.
type Interconnect interface {
	// Register binds node id's port. Must be called before traffic
	// flows.
	Register(id int, p Port)
	// Nodes returns the node count.
	Nodes() int
	// CanInject reports whether src may inject to dst without
	// blocking on the sliding window.
	CanInject(src, dst int) bool
	// Inject sends m, blocking the calling (device) process while the
	// sliding window to m.Dst is full. Delivery is attempted on
	// arrival and retried when the destination port unblocks.
	Inject(p *sim.Process, m *Msg)
	// Unblock tells the fabric that dst's NI freed buffer space; any
	// waiting arrivals are re-offered.
	Unblock(dst int)
	// Pending reports undelivered arrivals at dst (diagnostics).
	Pending(dst int) int
	// InFlight reports unacked messages from src to dst (diagnostics).
	InFlight(src, dst int) int
	// AttachFaults hooks a fault injector into the fabric edge. When
	// never called the fault path is fully disabled and the fabric's
	// behaviour is bit-identical to a build without the fault layer.
	AttachFaults(in *fault.Injector)
	// AttachTrace hooks a lifecycle recorder into the fabric edge.
	// Same contract as AttachFaults: never called means fully
	// disabled, bit-identical behaviour; attached, it records and
	// changes nothing.
	AttachTrace(rec *trace.Recorder)
}

var (
	_ Interconnect = (*Flat)(nil)
	_ Interconnect = (*Torus)(nil)
)

// endpoints is the edge every fabric shares: per-(src,dst)
// sliding-window admission, per-destination arrival queues with
// backpressure, and window-credit acknowledgements. Implementations
// embed it and supply the transit model between admit and arrive.
type endpoints struct {
	eng    *sim.Engine
	window int
	n      int

	// Per-(src,dst) window state is struct-of-arrays, indexed by
	// slot = src*n+dst: flat parallel slices (counts in int32, conds
	// packed by value) rather than n² little heap objects, so the
	// admit/ack path walks two arrays.
	ports    []Port
	inFlight []int32 // inFlight[slot] counts unacked messages
	// windowFree[slot] signals senders blocked on a full window.
	windowFree []sim.Cond
	// arrivals[dst] holds messages the port refused, FIFO.
	arrivals []sim.FIFO[*Msg]

	windowStalls *sim.Counter
	msgs         *sim.Counter
	bytes        *sim.Counter
	backpressure *sim.Counter
	// deliveryHist records admission-to-acceptance latency per
	// delivered message ("net.delivery" in Stats): transit plus any
	// queueing at links and at the destination port. Pure telemetry —
	// recording consumes no simulated time.
	deliveryHist *sim.Histogram

	// ackFns[slot] is the pre-built window-credit-return callback, so
	// acking a message schedules an existing func value instead of
	// allocating a fresh closure per message.
	ackFns []func()
	// ackLatency returns the credit-return delay for an accepted
	// message (set once by the embedding fabric).
	ackLatency func(m *Msg) sim.Time

	// inj is the fault injector, nil when faults are off — the zero-
	// fault path pays one nil check per arrival and nothing else.
	inj *fault.Injector
	// rec is the lifecycle recorder, nil when tracing is off — the
	// untraced path pays one nil check per hook site and nothing else.
	rec *trace.Recorder
	// pauseWake[dst] records that a drain-retry event is already
	// scheduled for dst's current pause window.
	pauseWake []bool

	// sh is the sharded engine coordinator, nil on serial machines —
	// the serial path pays one nil check per hook site and is
	// byte-identical to a build without the sharded layer. When set,
	// eng is shard 0's engine and per-node work runs on engAt(node).
	sh *sim.ShardSet
	// stamp[src] is the per-source admission counter behind Msg.xkey
	// (sharded machines only). Written only at admission, which runs
	// on src's shard.
	stamp []uint64
}

// Cross-event kinds routed through sim.ShardSet (sharded machines).
const (
	xkArrive = iota // torus link arrival: Msg lands at Node for routing
	xkAck           // window-credit return for slot (Node, Aux)
)

// engAt returns the engine owning node: the single engine on a serial
// machine, node's shard engine on a sharded one.
func (ep *endpoints) engAt(node int) *sim.Engine {
	if ep.sh == nil {
		return ep.eng
	}
	return ep.sh.Engine(node)
}

// attachShards switches the edge to sharded operation. The embedding
// fabric wires the dispatch side.
func (ep *endpoints) attachShards(sh *sim.ShardSet) {
	ep.sh = sh
	ep.stamp = make([]uint64, ep.n)
}

// scheduleAck returns m's window credit to the sender after the ack
// latency. On a sharded machine a cross-node credit travels through
// the deterministic-merge inboxes to the source's shard (the window
// state and any process blocked on it live there); same-node credits,
// and everything on a serial machine, schedule locally. The ack event
// carries the slot in (Node, Aux) rather than holding m, whose buffer
// the transport may recycle once delivery completes.
func (ep *endpoints) scheduleAck(m *Msg) {
	if ep.sh != nil && m.Src != m.Dst {
		eng := ep.sh.Engine(m.Dst)
		ep.sh.Cross(m.Dst, sim.CrossEvent{
			At:   eng.Now() + ep.ackLatency(m),
			Key:  m.xkey<<1 | 1,
			Kind: xkAck,
			Node: int32(m.Src),
			Aux:  int32(m.Dst),
		})
		return
	}
	ep.engAt(m.Dst).Schedule(ep.ackLatency(m), ep.ackFns[m.Src*ep.n+m.Dst])
}

// init wires the shared edge state for n nodes.
func (ep *endpoints) init(e *sim.Engine, st *sim.Stats, n int, ackLatency func(*Msg) sim.Time) {
	ep.eng = e
	ep.window = params.NetWindow
	ep.n = n
	ep.ports = make([]Port, n)
	ep.inFlight = make([]int32, n*n)
	ep.arrivals = make([]sim.FIFO[*Msg], n)
	ep.windowStalls = st.Counter("net.window.stall")
	ep.msgs = st.Counter("net.msg")
	ep.bytes = st.Counter("net.bytes")
	ep.backpressure = st.Counter("net.backpressure")
	ep.deliveryHist = st.Histogram("net.delivery")
	ep.windowFree = make([]sim.Cond, n*n)
	ep.ackFns = make([]func(), n*n)
	for i := range ep.windowFree {
		ep.windowFree[i].Init(e)
		slot := i
		ep.ackFns[i] = func() {
			ep.inFlight[slot]--
			ep.windowFree[slot].Signal()
		}
	}
	ep.ackLatency = ackLatency
}

// Register binds node id's port.
func (ep *endpoints) Register(id int, p Port) { ep.ports[id] = p }

// Nodes returns the node count.
func (ep *endpoints) Nodes() int { return ep.n }

// CanInject reports whether src may inject to dst without blocking.
func (ep *endpoints) CanInject(src, dst int) bool {
	return int(ep.inFlight[src*ep.n+dst]) < ep.window
}

// admit blocks p while the window to m.Dst is full, then charges the
// message against the window and the traffic counters.
func (ep *endpoints) admit(p *sim.Process, m *Msg) {
	if ep.rec != nil {
		ep.noteMsg(m.Src, trace.KInject, -1, m)
	}
	if ep.inj != nil {
		ep.admitFaults(p, m)
	}
	slot := m.Src*ep.n + m.Dst
	for int(ep.inFlight[slot]) >= ep.window {
		ep.windowStalls.Inc()
		ep.windowFree[slot].Wait(p)
	}
	ep.inFlight[slot]++
	ep.msgs.Inc()
	ep.bytes.Add(uint64(m.Size + params.HeaderBytes))
	m.SentAt = p.Now()
	if ep.sh != nil {
		// The merge tiebreak: source node over a per-source monotonic
		// stamp, assigned on the source's shard. Re-admissions (the
		// transport's retransmits) re-stamp; in-flight cross events
		// copied the old value and are unaffected.
		ep.stamp[m.Src]++
		m.xkey = uint64(m.Src+1)<<40 | ep.stamp[m.Src]&(1<<40-1)
	}
	if ep.rec != nil {
		ep.noteMsg(m.Src, trace.KAdmit, -1, m)
	}
}

// arrive queues m at the destination and attempts delivery.
func (ep *endpoints) arrive(m *Msg) {
	if ep.inj != nil && !ep.passFaults(m) {
		return
	}
	ep.arrivals[m.Dst].Push(m)
	ep.drain(m.Dst)
}

// drain offers queued messages to the port in order until it refuses.
func (ep *endpoints) drain(dst int) {
	if ep.inj != nil && ep.inj.PausedAt(dst, ep.engAt(dst).Now()) {
		ep.stallPaused(dst)
		return
	}
	port := ep.ports[dst]
	for ep.arrivals[dst].Len() > 0 {
		m := ep.arrivals[dst].Peek()
		if !port.NetDeliver(m) {
			ep.backpressure.Inc()
			return
		}
		ep.arrivals[dst].Pop()
		if ep.rec != nil {
			ep.noteMsg(dst, trace.KDeliver, -1, m)
		}
		if m.Dup {
			// The original copy already returned this message's window
			// credit; a duplicate must not return it twice.
			continue
		}
		ep.deliveryHist.Record(ep.engAt(dst).Now() - m.SentAt)
		// Return the window credit to the sender after the ack latency.
		ep.scheduleAck(m)
	}
}

// Unblock re-offers waiting arrivals after dst's NI freed space.
func (ep *endpoints) Unblock(dst int) { ep.drain(dst) }

// Pending reports undelivered arrivals at dst (diagnostics).
func (ep *endpoints) Pending(dst int) int { return ep.arrivals[dst].Len() }

// InFlight reports unacked messages from src to dst (diagnostics).
func (ep *endpoints) InFlight(src, dst int) int { return int(ep.inFlight[src*ep.n+dst]) }

// DeliveryLatency exposes the fabric's delivery-latency histogram
// (also reachable as the "net.delivery" histogram in Stats).
func (ep *endpoints) DeliveryLatency() *sim.Histogram { return ep.deliveryHist }

// TotalInFlight sums unacked messages over every (src, dst) window —
// the sliding-window occupancy gauge the trace sampler reads.
func (ep *endpoints) TotalInFlight() int {
	total := 0
	for _, v := range ep.inFlight {
		total += int(v)
	}
	return total
}

// TotalPending sums undelivered arrivals over every destination — the
// fabric-edge backlog gauge the trace sampler reads.
func (ep *endpoints) TotalPending() int {
	total := 0
	for i := range ep.arrivals {
		total += ep.arrivals[i].Len()
	}
	return total
}

// Flat is the paper's fixed-latency network (§4.1): topology is
// ignored and transit takes a constant latency regardless of load.
type Flat struct {
	endpoints
	latency sim.Time

	// transit holds in-flight messages in injection order. Latency is
	// constant, so arrival events fire in the same order and the
	// pre-built arriveFn pops the matching message — no per-message
	// closure is allocated.
	transit  sim.FIFO[*Msg]
	arriveFn func()
}

// New creates the default flat (contention-free) network for n nodes.
func New(e *sim.Engine, st *sim.Stats, n int) *Flat {
	f := &Flat{latency: params.NetLatency}
	f.init(e, st, n, func(*Msg) sim.Time { return f.latency })
	f.arriveFn = func() { f.arrive(f.transit.Pop()) }
	return f
}

// Inject sends m, blocking the calling (device) process while the
// sliding window to m.Dst is full. Transit takes the network latency;
// delivery is attempted on arrival and retried when the destination
// port unblocks.
func (f *Flat) Inject(p *sim.Process, m *Msg) {
	f.admit(p, m)
	if f.inj != nil {
		// Fault mode: the degrade window makes latency time-varying, so
		// the constant-latency transit FIFO (which relies on arrivals
		// firing in injection order) cannot be used. Schedule a
		// per-message closure instead; the allocation is the price of
		// running with faults on.
		f.eng.Schedule(f.inj.Latency(f.latency), func() { f.arrive(m) })
		return
	}
	f.transit.Push(m)
	f.eng.Schedule(f.latency, f.arriveFn)
}
