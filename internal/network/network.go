// Package network models the machine's interconnect (paper §4.1):
// topology is ignored, network messages are a fixed 256 bytes, every
// message takes 100 processor cycles from injection of the last byte
// at the source to arrival of the first byte at the destination, and
// hardware flow control is a sliding window — a node may have up to
// four messages in flight per destination before the sender blocks
// waiting for acknowledgements.
package network

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/sim"
)

// Msg is one fixed-size network message. Payload semantics belong to
// the messaging layer; the network only routes and times it.
type Msg struct {
	Src, Dst int
	// Handler is the active-message handler index (carried in the
	// 12-byte header along with Size and sequencing).
	Handler int
	// Size is the user-payload byte count in this network message
	// (≤ params.MaxPayloadBytes).
	Size int
	// Blocks is how many 64-byte blocks of NI queue space the message
	// occupies (header + payload, rounded up).
	Blocks int
	// Payload carries app-level data end to end.
	Payload any
	// Frag/FragTotal sequence multi-network-message user messages.
	Frag, FragTotal int
	// ID is the sender-local user-message id fragments share.
	ID uint64
	// TotalBytes is the full user-message payload size.
	TotalBytes int
}

// MsgBlocks returns the queue blocks consumed by a network message
// carrying size payload bytes.
func MsgBlocks(size int) int {
	b := (size + params.HeaderBytes + params.BlockBytes - 1) / params.BlockBytes
	if b < 1 {
		b = 1
	}
	if b > params.BlocksPerNetMsg {
		panic(fmt.Sprintf("network: payload %d exceeds one network message", size))
	}
	return b
}

// MsgWords returns the number of 8-byte words (header + payload) the
// message occupies, for uncached word-at-a-time NIs.
func MsgWords(size int) int {
	return (size + params.HeaderBytes + 7) / 8
}

// Port is a network endpoint — one node's NI. Delivery is push-based:
// the network offers a message and the port either accepts it
// (returning true, which triggers the ack that opens the sender's
// window) or refuses it (buffer full), in which case the message
// waits at the head of the port's arrival queue and is re-offered
// when the port calls Unblock.
type Port interface {
	// NetDeliver offers an arrived message to the NI.
	NetDeliver(m *Msg) bool
}

// Network connects the ports. Inject is called by NI devices.
type Network struct {
	eng     *sim.Engine
	latency sim.Time
	window  int

	ports []Port
	// inFlight[src*n+dst] counts unacked messages.
	inFlight []int
	// windowFree signals senders blocked on a full window.
	windowFree []*sim.Cond
	// arrivals[dst] holds messages the port refused, FIFO.
	arrivals [][]*Msg
	n        int

	windowStalls *sim.Counter
	msgs         *sim.Counter
	bytes        *sim.Counter
	backpressure *sim.Counter

	// ackFns[slot] is the pre-built window-credit-return callback, so
	// acking a message schedules an existing func value instead of
	// allocating a fresh closure per message.
	ackFns []func()
}

// New creates a network for n nodes.
func New(e *sim.Engine, st *sim.Stats, n int) *Network {
	nw := &Network{
		eng:          e,
		latency:      params.NetLatency,
		window:       params.NetWindow,
		ports:        make([]Port, n),
		inFlight:     make([]int, n*n),
		arrivals:     make([][]*Msg, n),
		n:            n,
		windowStalls: st.Counter("net.window.stall"),
		msgs:         st.Counter("net.msg"),
		bytes:        st.Counter("net.bytes"),
		backpressure: st.Counter("net.backpressure"),
	}
	nw.windowFree = make([]*sim.Cond, n*n)
	nw.ackFns = make([]func(), n*n)
	for i := range nw.windowFree {
		nw.windowFree[i] = sim.NewCond(e)
		slot := i
		nw.ackFns[i] = func() {
			nw.inFlight[slot]--
			nw.windowFree[slot].Signal()
		}
	}
	return nw
}

// Register binds node id's port. Must be called before traffic flows.
func (nw *Network) Register(id int, p Port) { nw.ports[id] = p }

// Nodes returns the node count.
func (nw *Network) Nodes() int { return nw.n }

// CanInject reports whether src may inject to dst without blocking.
func (nw *Network) CanInject(src, dst int) bool {
	return nw.inFlight[src*nw.n+dst] < nw.window
}

// Inject sends m, blocking the calling (device) process while the
// sliding window to m.Dst is full. Transit takes the network latency;
// delivery is attempted on arrival and retried when the destination
// port unblocks.
func (nw *Network) Inject(p *sim.Process, m *Msg) {
	slot := m.Src*nw.n + m.Dst
	for nw.inFlight[slot] >= nw.window {
		nw.windowStalls.Inc()
		nw.windowFree[slot].Wait(p)
	}
	nw.inFlight[slot]++
	nw.msgs.Inc()
	nw.bytes.Add(uint64(m.Size + params.HeaderBytes))
	nw.eng.Schedule(nw.latency, func() { nw.arrive(m) })
}

// arrive queues m at the destination and attempts delivery.
func (nw *Network) arrive(m *Msg) {
	nw.arrivals[m.Dst] = append(nw.arrivals[m.Dst], m)
	nw.drain(m.Dst)
}

// drain offers queued messages to the port in order until it refuses.
func (nw *Network) drain(dst int) {
	port := nw.ports[dst]
	for len(nw.arrivals[dst]) > 0 {
		m := nw.arrivals[dst][0]
		if !port.NetDeliver(m) {
			nw.backpressure.Inc()
			return
		}
		nw.arrivals[dst] = nw.arrivals[dst][1:]
		nw.ack(m)
	}
}

// Unblock tells the network that dst's NI freed buffer space; any
// waiting arrivals are re-offered.
func (nw *Network) Unblock(dst int) { nw.drain(dst) }

// ack returns the window credit to the sender after the return
// latency.
func (nw *Network) ack(m *Msg) {
	nw.eng.Schedule(nw.latency, nw.ackFns[m.Src*nw.n+m.Dst])
}

// Pending reports undelivered arrivals at dst (diagnostics).
func (nw *Network) Pending(dst int) int { return len(nw.arrivals[dst]) }

// InFlight reports unacked messages from src to dst (diagnostics).
func (nw *Network) InFlight(src, dst int) int { return nw.inFlight[src*nw.n+dst] }
