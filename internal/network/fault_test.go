package network

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/params"
	"repro/internal/sim"
)

// faultRig builds a fabric with an injector attached and open ports.
func faultRig(c implCase, f params.Faults) (*sim.Engine, *sim.Stats, Interconnect, []*fakePort) {
	e, st, ic, ports := confRig(c)
	ic.AttachFaults(fault.New(e, st, c.nodes, f))
	return e, st, ic, ports
}

// TestFaultDropReturnsCredit pins the layering contract on both
// fabrics: a dropped frame must still return its window credit (the
// sliding window is link-level flow control, not reliability), so a
// lossy link can never wedge the sender.
func TestFaultDropReturnsCredit(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		e, st, ic, ports := faultRig(c, params.Faults{DropProb: 1, Seed: 5})
		dst := c.nodes - 1
		const sends = 2 * params.NetWindow
		e.Spawn("src", func(p *sim.Process) {
			for i := 0; i < sends; i++ {
				ic.Inject(p, &Msg{Src: 0, Dst: dst, Size: 8, Blocks: 1})
			}
		})
		e.RunAll()
		if len(ports[dst].got) != 0 {
			t.Fatalf("delivered %d messages at drop rate 1, want 0", len(ports[dst].got))
		}
		if got := st.Get("net.drops"); got != sends {
			t.Errorf("net.drops = %d, want %d", got, sends)
		}
		if got := ic.InFlight(0, dst); got != 0 {
			t.Errorf("InFlight = %d after drops, want 0 (credit leaked)", got)
		}
	})
}

// TestFaultCorruptScramblesChecksum pins the ideal-checksum corruption
// model: the frame is delivered, but its checksum no longer matches.
func TestFaultCorruptScramblesChecksum(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		e, st, ic, ports := faultRig(c, params.Faults{CorruptProb: 1, Seed: 5})
		dst := c.nodes - 1
		e.Spawn("src", func(p *sim.Process) {
			ic.Inject(p, &Msg{Src: 0, Dst: dst, Size: 8, Blocks: 1, Checksum: 41})
		})
		e.RunAll()
		if len(ports[dst].got) != 1 {
			t.Fatalf("delivered %d, want 1", len(ports[dst].got))
		}
		if got := ports[dst].got[0].Checksum; got != 41^CorruptMask {
			t.Errorf("checksum = %#x, want %#x", got, 41^CorruptMask)
		}
		if st.Get("net.corrupted") != 1 {
			t.Error("net.corrupted did not advance")
		}
	})
}

// TestFaultDuplicateDeliversTwice pins duplication: the copy arrives
// marked Dup, is never re-planned, and returns no second credit.
func TestFaultDuplicateDeliversTwice(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		e, st, ic, ports := faultRig(c, params.Faults{DupProb: 1, Seed: 5})
		dst := c.nodes - 1
		e.Spawn("src", func(p *sim.Process) {
			ic.Inject(p, &Msg{Src: 0, Dst: dst, Size: 8, Blocks: 1, ID: 9})
		})
		e.RunAll()
		if len(ports[dst].got) != 2 {
			t.Fatalf("delivered %d copies, want 2", len(ports[dst].got))
		}
		if ports[dst].got[0].Dup || !ports[dst].got[1].Dup {
			t.Errorf("Dup marks = %v, %v; want original first, copy marked",
				ports[dst].got[0].Dup, ports[dst].got[1].Dup)
		}
		if st.Get("net.dups") != 1 {
			t.Error("net.dups did not advance")
		}
		if got := ic.InFlight(0, dst); got != 0 {
			t.Errorf("InFlight = %d, want 0 (duplicate returned an extra credit?)", got)
		}
	})
}

// TestFaultDelayLandsLate pins the delay fault: the frame arrives its
// extra delay later than the fabric's nominal latency, and a trailing
// undelayed frame can overtake it (reordering).
func TestFaultDelayLandsLate(t *testing.T) {
	e, st, ic, ports := faultRig(implCase{"flat", 2, func(e *sim.Engine, st *sim.Stats, n int) Interconnect {
		return New(e, st, n)
	}}, params.Faults{DelayProb: 1, DelayCycles: 300, Seed: 5})
	e.Spawn("src", func(p *sim.Process) {
		ic.Inject(p, &Msg{Src: 0, Dst: 1, Size: 8, Blocks: 1})
	})
	e.Schedule(params.NetLatency+299, func() {
		if len(ports[1].got) != 0 {
			t.Error("delayed frame arrived before latency+delay")
		}
	})
	e.RunAll()
	if len(ports[1].got) != 1 {
		t.Fatalf("delivered %d, want 1", len(ports[1].got))
	}
	if st.Get("net.delayed") != 1 {
		t.Error("net.delayed did not advance")
	}
}

// TestFaultPauseStallsDelivery pins the pause fault at the delivery
// edge: arrivals for a paused node queue up and drain when the window
// closes, in order.
func TestFaultPauseStallsDelivery(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		dst := c.nodes - 1
		const until = 5000
		e, st, ic, ports := faultRig(c, params.Faults{
			// An empty plan set still builds an injector when a pause
			// schedule exists (params.Faults.Injects).
			Pauses: []params.FaultPause{{Node: dst, From: 1, Until: until}},
		})
		e.Spawn("src", func(p *sim.Process) {
			p.Sleep(10) // inside the pause window
			for i := 0; i < 3; i++ {
				ic.Inject(p, &Msg{Src: 0, Dst: dst, Size: 8, Blocks: 1, ID: uint64(i)})
			}
		})
		e.Schedule(until-1, func() {
			if len(ports[dst].got) != 0 {
				t.Error("paused node accepted deliveries inside the window")
			}
		})
		e.RunAll()
		if len(ports[dst].got) != 3 {
			t.Fatalf("delivered %d after resume, want 3", len(ports[dst].got))
		}
		for i, m := range ports[dst].got {
			if m.ID != uint64(i) {
				t.Fatalf("resume delivered out of order: id %d at %d", m.ID, i)
			}
		}
		if st.Get("net.paused") == 0 {
			t.Error("net.paused did not advance")
		}
	})
}

// TestFaultPauseStallsInjection pins the pause fault at the injection
// edge: a paused node's own sends sleep until the window closes.
func TestFaultPauseStallsInjection(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		const until = 3000
		e, _, ic, _ := faultRig(c, params.Faults{
			Pauses: []params.FaultPause{{Node: 0, From: 0, Until: until}},
		})
		var sentAt sim.Time
		e.Spawn("src", func(p *sim.Process) {
			ic.Inject(p, &Msg{Src: 0, Dst: c.nodes - 1, Size: 8, Blocks: 1})
			sentAt = p.Now()
		})
		e.RunAll()
		if sentAt < until {
			t.Fatalf("paused node injected at %d, want >= %d", sentAt, until)
		}
	})
}

// TestFaultCrashDropsBothDirections pins the crash fault: frames to
// and from a crashed node vanish at the edge (credits intact), and the
// dedicated counter separates them from probabilistic drops.
func TestFaultCrashDropsBothDirections(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		dead := c.nodes - 1
		e, st, ic, ports := faultRig(c, params.Faults{
			Crashes: []params.FaultCrash{{Node: dead, At: 0}},
		})
		e.Spawn("src", func(p *sim.Process) {
			ic.Inject(p, &Msg{Src: 0, Dst: dead, Size: 8, Blocks: 1})
		})
		e.Spawn("dead", func(p *sim.Process) {
			ic.Inject(p, &Msg{Src: dead, Dst: 0, Size: 8, Blocks: 1})
		})
		e.RunAll()
		if n := len(ports[dead].got) + len(ports[0].got); n != 0 {
			t.Fatalf("delivered %d messages through a crashed node, want 0", n)
		}
		if got := st.Get("net.crash.drops"); got != 2 {
			t.Errorf("net.crash.drops = %d, want 2", got)
		}
		if ic.InFlight(0, dead) != 0 || ic.InFlight(dead, 0) != 0 {
			t.Error("crash drops leaked window credits")
		}
	})
}

// TestFaultEnabledAllocBudget pins the fault-enabled delivery path's
// allocation budget. Fault mode trades the prebuilt-callback scheme
// for per-message closures (variable latency breaks the FIFO-order
// assumption), so it cannot be zero-alloc like the fault-free path
// (TestInjectDeliverAckZeroAlloc) — but it must stay bounded.
func TestFaultEnabledAllocBudget(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		e := sim.NewEngine()
		st := sim.NewStats(e)
		ic := c.build(e, st, c.nodes)
		ic.AttachFaults(fault.New(e, st, c.nodes, params.Faults{DropProb: 0.01, Seed: 9}))
		port := &countingPort{}
		for i := 0; i < c.nodes; i++ {
			ic.Register(i, port)
		}
		dst := c.nodes - 1
		m := &Msg{Src: 0, Dst: dst, Size: 64, Blocks: 2}
		kick := sim.NewCond(e)
		e.Spawn("src", func(p *sim.Process) {
			for {
				kick.Wait(p)
				for i := 0; i < params.NetWindow; i++ {
					ic.Inject(p, m)
				}
			}
		})
		e.RunAll()
		for i := 0; i < 8; i++ {
			kick.Signal()
			e.RunAll()
		}
		allocs := testing.AllocsPerRun(200, func() {
			kick.Signal()
			e.RunAll()
		})
		// Budget: NetWindow messages per run, ~2 closures each (transit +
		// arrival) plus occasional fault bookkeeping.
		if budget := float64(3 * params.NetWindow); allocs > budget {
			t.Errorf("%s fault-enabled delivery allocates %.2f objects/run, budget %.0f",
				c.name, allocs, budget)
		}
		if port.n == 0 {
			t.Fatal("no messages delivered")
		}
		e.Stop()
	})
}
