package network

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The conformance suite runs every Interconnect implementation
// through the shared edge contract: push-based delivery with
// backpressure and in-order redelivery, window-stall accounting, ack
// only after acceptance, and the Pending/InFlight diagnostics.

type implCase struct {
	name  string
	nodes int
	build func(e *sim.Engine, st *sim.Stats, n int) Interconnect
}

func implementations() []implCase {
	return []implCase{
		{"flat", 2, func(e *sim.Engine, st *sim.Stats, n int) Interconnect { return New(e, st, n) }},
		// A 2x2 torus: node 0 -> node 3 crosses two links, so the
		// conformance paths exercise multi-hop forwarding too.
		{"torus", 4, func(e *sim.Engine, st *sim.Stats, n int) Interconnect { return NewTorus(e, st, n) }},
	}
}

// confRig builds an implementation with controllable ports on every
// node.
func confRig(c implCase) (*sim.Engine, *sim.Stats, Interconnect, []*fakePort) {
	e := sim.NewEngine()
	st := sim.NewStats(e)
	ic := c.build(e, st, c.nodes)
	ports := make([]*fakePort, c.nodes)
	for i := range ports {
		ports[i] = &fakePort{accept: true}
		ic.Register(i, ports[i])
	}
	return e, st, ic, ports
}

func forEachImpl(t *testing.T, f func(t *testing.T, c implCase)) {
	for _, c := range implementations() {
		t.Run(c.name, func(t *testing.T) { f(t, c) })
	}
}

func TestConformanceDelivery(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		e, st, ic, ports := confRig(c)
		dst := c.nodes - 1
		e.Spawn("src", func(p *sim.Process) {
			for i := 0; i < 3; i++ {
				ic.Inject(p, &Msg{Src: 0, Dst: dst, Size: 64, Blocks: 2, ID: uint64(i)})
			}
		})
		e.RunAll()
		if len(ports[dst].got) != 3 {
			t.Fatalf("delivered %d messages, want 3", len(ports[dst].got))
		}
		for i, m := range ports[dst].got {
			if m.ID != uint64(i) {
				t.Fatalf("out of order: got id %d at position %d", m.ID, i)
			}
		}
		if got := st.Get("net.msg"); got != 3 {
			t.Errorf("net.msg = %d, want 3", got)
		}
		if ic.Nodes() != c.nodes {
			t.Errorf("Nodes() = %d, want %d", ic.Nodes(), c.nodes)
		}
	})
}

func TestConformanceBackpressure(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		e, st, ic, ports := confRig(c)
		dst := c.nodes - 1
		ports[dst].accept = false
		e.Spawn("src", func(p *sim.Process) {
			for i := 0; i < 3; i++ {
				ic.Inject(p, &Msg{Src: 0, Dst: dst, Size: 8, Blocks: 1, ID: uint64(i)})
			}
		})
		e.RunAll()
		if len(ports[dst].got) != 0 {
			t.Fatal("refused messages were delivered")
		}
		if got := ic.Pending(dst); got != 3 {
			t.Fatalf("Pending(%d) = %d, want 3", dst, got)
		}
		if got := ic.InFlight(0, dst); got != 3 {
			t.Fatalf("InFlight = %d, want 3 (no ack while refused)", got)
		}
		if st.Get("net.backpressure") == 0 {
			t.Error("backpressure counter did not advance")
		}
		// Open the port and unblock: arrival order preserved, credits
		// return.
		ports[dst].accept = true
		e.Schedule(0, func() { ic.Unblock(dst) })
		e.RunAll()
		if len(ports[dst].got) != 3 {
			t.Fatalf("delivered %d after unblock, want 3", len(ports[dst].got))
		}
		for i, m := range ports[dst].got {
			if m.ID != uint64(i) {
				t.Fatalf("redelivery out of order: got %d at %d", m.ID, i)
			}
		}
		if got := ic.Pending(dst); got != 0 {
			t.Errorf("Pending = %d after drain, want 0", got)
		}
		if got := ic.InFlight(0, dst); got != 0 {
			t.Errorf("InFlight = %d after acks, want 0", got)
		}
	})
}

func TestConformanceWindowStall(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		e, st, ic, _ := confRig(c)
		dst := c.nodes - 1
		var injected int
		e.Spawn("src", func(p *sim.Process) {
			for i := 0; i < params.NetWindow+2; i++ {
				if i < params.NetWindow && !ic.CanInject(0, dst) {
					t.Errorf("CanInject false with %d in flight", i)
				}
				ic.Inject(p, &Msg{Src: 0, Dst: dst, Size: 8, Blocks: 1})
				injected++
			}
		})
		// After the window fills, CanInject must report false until an
		// ack returns.
		e.Schedule(1, func() {
			if ic.CanInject(0, dst) {
				t.Error("CanInject true with a full window")
			}
		})
		e.RunAll()
		if injected != params.NetWindow+2 {
			t.Fatalf("injected %d, want %d", injected, params.NetWindow+2)
		}
		if st.Get("net.window.stall") == 0 {
			t.Error("window stall counter did not advance")
		}
		if got := ic.InFlight(0, dst); got != 0 {
			t.Errorf("InFlight = %d after run, want 0", got)
		}
	})
}

// TestConformanceWindowIsPerDestination checks a full window to one
// destination does not block traffic to another on either fabric.
func TestConformanceWindowIsPerDestination(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		// Build with 4 nodes so a distinct second destination exists on
		// every fabric.
		e := sim.NewEngine()
		st := sim.NewStats(e)
		ic := c.build(e, st, 4)
		for i := 0; i < 4; i++ {
			ic.Register(i, &fakePort{accept: true})
		}
		var done sim.Time
		e.Spawn("src", func(p *sim.Process) {
			for i := 0; i < params.NetWindow; i++ {
				ic.Inject(p, &Msg{Src: 0, Dst: 1, Size: 8, Blocks: 1})
			}
			ic.Inject(p, &Msg{Src: 0, Dst: 3, Size: 8, Blocks: 1})
			done = p.Now()
		})
		e.RunAll()
		if done != 0 {
			t.Fatalf("cross-destination send blocked until %d, want 0", done)
		}
	})
}

// countingPort accepts everything and only counts, so delivery in the
// alloc test cannot allocate.
type countingPort struct{ n int }

func (c *countingPort) NetDeliver(m *Msg) bool { c.n++; return true }

// TestInjectDeliverAckZeroAlloc pins the steady-state
// inject->deliver->ack cycle at zero allocations for both fabrics
// (DESIGN.md §5): transit bookkeeping rides pre-built event callbacks
// and capacity-reusing FIFOs, never per-message closures.
func TestInjectDeliverAckZeroAlloc(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		e := sim.NewEngine()
		st := sim.NewStats(e)
		ic := c.build(e, st, c.nodes)
		port := &countingPort{}
		for i := 0; i < c.nodes; i++ {
			ic.Register(i, port)
		}
		dst := c.nodes - 1
		m := &Msg{Src: 0, Dst: dst, Size: 64, Blocks: 2}
		kick := sim.NewCond(e)
		e.Spawn("src", func(p *sim.Process) {
			for {
				kick.Wait(p)
				for i := 0; i < params.NetWindow; i++ {
					ic.Inject(p, m)
				}
			}
		})
		e.RunAll()
		// Warm the FIFO backing arrays and the event heap.
		for i := 0; i < 8; i++ {
			kick.Signal()
			e.RunAll()
		}
		allocs := testing.AllocsPerRun(200, func() {
			kick.Signal()
			e.RunAll()
		})
		if allocs != 0 {
			t.Errorf("%s inject->deliver->ack allocates %.2f objects/op, want 0", c.name, allocs)
		}
		if port.n == 0 {
			t.Fatal("no messages delivered")
		}
		e.Stop()
	})
}

// TestTorusFaultPathZeroAlloc pins the fault-enabled torus hot path at
// zero allocations per event, like the fault-free pin above: with an
// injector attached (degrade window active so the per-message
// occupancy/latency scaling actually runs), per-message arrivals ride
// pending entries drained by pre-built per-link callbacks instead of
// per-message closures.
func TestTorusFaultPathZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	st := sim.NewStats(e)
	tor := NewTorus(e, st, 4)
	tor.AttachFaults(fault.New(e, st, 4, params.Faults{
		Seed:              1,
		DegradeUntil:      1 << 40, // degraded for the whole run
		DegradeLatencyX:   2,
		DegradeBandwidthX: 2,
	}))
	port := &countingPort{}
	for i := 0; i < 4; i++ {
		tor.Register(i, port)
	}
	m := &Msg{Src: 0, Dst: 3, Size: 64, Blocks: 2}
	kick := sim.NewCond(e)
	e.Spawn("src", func(p *sim.Process) {
		for {
			kick.Wait(p)
			for i := 0; i < params.NetWindow; i++ {
				tor.Inject(p, m)
			}
		}
	})
	e.RunAll()
	// Warm the pending slices, queue backing arrays, and event heap.
	for i := 0; i < 8; i++ {
		kick.Signal()
		e.RunAll()
	}
	allocs := testing.AllocsPerRun(200, func() {
		kick.Signal()
		e.RunAll()
	})
	if allocs != 0 {
		t.Errorf("fault-enabled torus inject->deliver->ack allocates %.2f objects/op, want 0", allocs)
	}
	if port.n == 0 {
		t.Fatal("no messages delivered")
	}
	e.Stop()
}

// TestTraceHotPathZeroAlloc pins the recorder-attached steady-state
// inject->deliver->ack cycle at zero allocations per event on both
// fabrics — the telemetry tentpole's enabled-cost half (DESIGN.md
// §12): hooks write fixed-size records into preallocated per-node
// rings through prebuilt callbacks, never closures or boxing.
func TestTraceHotPathZeroAlloc(t *testing.T) {
	forEachImpl(t, func(t *testing.T, c implCase) {
		e := sim.NewEngine()
		st := sim.NewStats(e)
		ic := c.build(e, st, c.nodes)
		rec := trace.NewRecorder(e, c.nodes, 256)
		ic.AttachTrace(rec)
		port := &countingPort{}
		for i := 0; i < c.nodes; i++ {
			ic.Register(i, port)
		}
		dst := c.nodes - 1
		m := &Msg{Src: 0, Dst: dst, Size: 64, Blocks: 2}
		kick := sim.NewCond(e)
		e.Spawn("src", func(p *sim.Process) {
			for {
				kick.Wait(p)
				for i := 0; i < params.NetWindow; i++ {
					ic.Inject(p, m)
				}
			}
		})
		e.RunAll()
		// Warm the FIFO backing arrays and the event heap; the rings are
		// preallocated, and small enough here that the steady state wraps
		// them (wrapping must not allocate either).
		for i := 0; i < 8; i++ {
			kick.Signal()
			e.RunAll()
		}
		allocs := testing.AllocsPerRun(200, func() {
			kick.Signal()
			e.RunAll()
		})
		if allocs != 0 {
			t.Errorf("%s traced inject->deliver->ack allocates %.2f objects/op, want 0", c.name, allocs)
		}
		if rec.Len(0) == 0 || rec.Len(dst) == 0 {
			t.Fatal("recorder captured nothing")
		}
		if rec.Overwritten() == 0 {
			t.Error("steady state should have wrapped the 256-record rings")
		}
		e.Stop()
	})
}

// TestTraceFaultPathZeroAlloc pins the combination: recorder attached
// AND fault injector active (drop hooks live on the fault path), still
// zero allocations per event on the torus.
func TestTraceFaultPathZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	st := sim.NewStats(e)
	tor := NewTorus(e, st, 4)
	tor.AttachFaults(fault.New(e, st, 4, params.Faults{
		Seed:              1,
		DegradeUntil:      1 << 40,
		DegradeLatencyX:   2,
		DegradeBandwidthX: 2,
	}))
	tor.AttachTrace(trace.NewRecorder(e, 4, 256))
	port := &countingPort{}
	for i := 0; i < 4; i++ {
		tor.Register(i, port)
	}
	m := &Msg{Src: 0, Dst: 3, Size: 64, Blocks: 2}
	kick := sim.NewCond(e)
	e.Spawn("src", func(p *sim.Process) {
		for {
			kick.Wait(p)
			for i := 0; i < params.NetWindow; i++ {
				tor.Inject(p, m)
			}
		}
	})
	e.RunAll()
	for i := 0; i < 8; i++ {
		kick.Signal()
		e.RunAll()
	}
	allocs := testing.AllocsPerRun(200, func() {
		kick.Signal()
		e.RunAll()
	})
	if allocs != 0 {
		t.Errorf("traced fault-enabled torus allocates %.2f objects/op, want 0", allocs)
	}
	if port.n == 0 {
		t.Fatal("no messages delivered")
	}
	e.Stop()
}

// TestFlatScheduleUnchanged pins the flat fabric's timing contract
// (the paper's numbers depend on it): constant latency, ack after the
// same return latency.
func TestFlatScheduleUnchanged(t *testing.T) {
	e, nw, ports := rig(2)
	var ackAt sim.Time
	e.Spawn("src", func(p *sim.Process) {
		nw.Inject(p, &Msg{Src: 0, Dst: 1, Size: 8, Blocks: 1})
		for nw.InFlight(0, 1) != 0 {
			p.Sleep(1)
		}
		ackAt = p.Now()
	})
	e.RunAll()
	if len(ports[1].got) != 1 {
		t.Fatal("not delivered")
	}
	if want := sim.Time(2 * params.NetLatency); ackAt != want {
		t.Fatalf("window credit returned at %d, want %d", ackAt, want)
	}
}

func ExampleInterconnect() {
	e := sim.NewEngine()
	st := sim.NewStats(e)
	var ic Interconnect = NewTorus(e, st, 16)
	fmt.Println(ic.Nodes())
	// Output: 16
}
