package network

import (
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
)

// fakePort is a controllable network.Port.
type fakePort struct {
	accept bool
	got    []*Msg
}

func (f *fakePort) NetDeliver(m *Msg) bool {
	if !f.accept {
		return false
	}
	f.got = append(f.got, m)
	return true
}

func rig(n int) (*sim.Engine, *Flat, []*fakePort) {
	e := sim.NewEngine()
	st := sim.NewStats(e)
	nw := New(e, st, n)
	ports := make([]*fakePort, n)
	for i := range ports {
		ports[i] = &fakePort{accept: true}
		nw.Register(i, ports[i])
	}
	return e, nw, ports
}

func TestMsgBlocks(t *testing.T) {
	cases := map[int]int{
		0:   1, // header only
		8:   1, // 20 bytes
		52:  1, // exactly one block with header
		53:  2,
		116: 2,
		244: 4, // full message
	}
	for size, want := range cases {
		if got := MsgBlocks(size); got != want {
			t.Errorf("MsgBlocks(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestMsgBlocksPanicsOnOversize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized payload")
		}
	}()
	MsgBlocks(params.MaxPayloadBytes + 1)
}

func TestMsgWords(t *testing.T) {
	if got := MsgWords(8); got != 3 { // 20 bytes -> 3 dwords
		t.Errorf("MsgWords(8) = %d, want 3", got)
	}
	if got := MsgWords(244); got != 32 {
		t.Errorf("MsgWords(244) = %d, want 32", got)
	}
}

func TestDeliveryAfterLatency(t *testing.T) {
	e, nw, ports := rig(2)
	var sent sim.Time
	arrived := sim.Forever
	e.Spawn("src", func(p *sim.Process) {
		sent = p.Now()
		nw.Inject(p, &Msg{Src: 0, Dst: 1, Size: 64, Blocks: 2})
	})
	e.Schedule(params.NetLatency-1, func() {
		if len(ports[1].got) != 0 {
			t.Error("message arrived before the network latency elapsed")
		}
	})
	e.Schedule(params.NetLatency, func() {
		// Arrival events were scheduled after this check at the same
		// instant, so re-check one cycle later.
		e.Schedule(1, func() {
			if len(ports[1].got) == 1 {
				arrived = params.NetLatency
			}
		})
	})
	e.RunAll()
	if len(ports[1].got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(ports[1].got))
	}
	if arrived-sent != params.NetLatency {
		t.Fatalf("latency = %d, want %d", arrived-sent, params.NetLatency)
	}
}

func TestWindowBlocksFifthMessage(t *testing.T) {
	e, nw, _ := rig(2)
	var times []sim.Time
	e.Spawn("src", func(p *sim.Process) {
		for i := 0; i < params.NetWindow+1; i++ {
			nw.Inject(p, &Msg{Src: 0, Dst: 1, Size: 8, Blocks: 1})
			times = append(times, p.Now())
		}
	})
	e.RunAll()
	// The first four injections are immediate; the fifth waits for the
	// first ack (latency out + latency back).
	for i := 0; i < params.NetWindow; i++ {
		if times[i] != 0 {
			t.Fatalf("injection %d at %d, want 0", i, times[i])
		}
	}
	if times[params.NetWindow] != 2*params.NetLatency {
		t.Fatalf("fifth injection at %d, want %d", times[params.NetWindow], 2*params.NetLatency)
	}
}

func TestWindowIsPerDestination(t *testing.T) {
	e, nw, _ := rig(3)
	var done sim.Time
	e.Spawn("src", func(p *sim.Process) {
		for i := 0; i < params.NetWindow; i++ {
			nw.Inject(p, &Msg{Src: 0, Dst: 1, Size: 8, Blocks: 1})
		}
		// A different destination must not block.
		nw.Inject(p, &Msg{Src: 0, Dst: 2, Size: 8, Blocks: 1})
		done = p.Now()
	})
	e.RunAll()
	if done != 0 {
		t.Fatalf("cross-destination send blocked until %d, want 0", done)
	}
}

func TestBackpressureRedeliversInOrder(t *testing.T) {
	e, nw, ports := rig(2)
	ports[1].accept = false
	e.Spawn("src", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			nw.Inject(p, &Msg{Src: 0, Dst: 1, Size: 8, Blocks: 1, ID: uint64(i)})
		}
	})
	e.Run(sim.Time(10_000))
	if len(ports[1].got) != 0 {
		t.Fatal("refused messages were delivered")
	}
	if nw.Pending(1) != 3 {
		t.Fatalf("pending = %d, want 3", nw.Pending(1))
	}
	// Open the port and unblock: arrival order preserved.
	ports[1].accept = true
	e.Schedule(0, func() { nw.Unblock(1) })
	e.RunAll()
	if len(ports[1].got) != 3 {
		t.Fatalf("delivered %d after unblock, want 3", len(ports[1].got))
	}
	for i, m := range ports[1].got {
		if m.ID != uint64(i) {
			t.Fatalf("out of order: got %d at %d", m.ID, i)
		}
	}
}

func TestAckOnlyAfterAcceptance(t *testing.T) {
	e, nw, ports := rig(2)
	ports[1].accept = false
	e.Spawn("src", func(p *sim.Process) {
		nw.Inject(p, &Msg{Src: 0, Dst: 1, Size: 8, Blocks: 1})
	})
	e.RunAll()
	if nw.InFlight(0, 1) != 1 {
		t.Fatalf("in-flight = %d, want 1 (no ack while refused)", nw.InFlight(0, 1))
	}
	ports[1].accept = true
	e.Schedule(0, func() { nw.Unblock(1) })
	e.RunAll()
	if nw.InFlight(0, 1) != 0 {
		t.Fatalf("in-flight = %d after acceptance+ack, want 0", nw.InFlight(0, 1))
	}
}

func TestNetworkStats(t *testing.T) {
	e, nw, _ := rig(2)
	st := sim.NewStats(e)
	_ = st
	e.Spawn("src", func(p *sim.Process) {
		nw.Inject(p, &Msg{Src: 0, Dst: 1, Size: 100, Blocks: 2})
	})
	e.RunAll()
	if nw.Nodes() != 2 {
		t.Fatalf("Nodes = %d", nw.Nodes())
	}
}
