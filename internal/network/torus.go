package network

import (
	"repro/internal/params"
	"repro/internal/sim"
)

// Output-link direction indices at each torus router.
const (
	dirXPos = iota
	dirXNeg
	dirYPos
	dirYNeg
	numDirs
)

// torusLink is one unidirectional router-to-router channel. A link
// carries one message at a time (occupancy = serialisation of the
// 256-byte message); contenders queue in FIFO order. Messages that
// have finished serialising remain "on the wire" for the hop latency,
// tracked in flight — transmissions are pipelined, so flight can hold
// more than one message, but they always arrive in transmit order.
type torusLink struct {
	busy   bool
	queue  sim.FIFO[*Msg] // waiting for the link, FIFO arbitration
	flight sim.FIFO[*Msg] // serialised, in hop-latency flight
}

// Torus is a W×H 2D torus with dimension-order (x then y) routing and
// store-and-forward switching. Each hop costs the link occupancy
// (serialisation) plus the hop latency; a busy link queues messages,
// which is where load-dependent latency comes from. End-to-end flow
// control is the same sliding window as the flat network; window
// credits return on a contention-free path in hop-count time (acks
// are a few bytes and are not modelled as consuming link bandwidth).
type Torus struct {
	endpoints
	w, h      int
	hopLat    sim.Time
	occupancy sim.Time
	links     []torusLink // links[node*numDirs+dir]

	// Pre-built per-link event callbacks (no per-message closures).
	releaseFns []func()
	arriveFns  []func()

	hops      *sim.Counter
	linkWaits *sim.Counter
}

// NewTorus creates a 2D torus for n nodes, factored into the most
// nearly square W×H grid (params.TorusDims).
func NewTorus(e *sim.Engine, st *sim.Stats, n int) *Torus {
	w, h := params.TorusDims(n)
	t := &Torus{
		w:         w,
		h:         h,
		hopLat:    params.TorusHopLatency,
		occupancy: params.TorusLinkOccupancy,
		links:     make([]torusLink, n*numDirs),
	}
	t.init(e, st, n, func(m *Msg) sim.Time {
		return sim.Time(t.HopCount(m.Src, m.Dst)) * t.hopLat
	})
	t.hops = st.Counter("net.torus.hop")
	t.linkWaits = st.Counter("net.torus.link.wait")
	t.releaseFns = make([]func(), n*numDirs)
	t.arriveFns = make([]func(), n*numDirs)
	for i := range t.links {
		li := i
		t.releaseFns[i] = func() { t.release(li) }
		t.arriveFns[i] = func() { t.linkArrive(li) }
	}
	return t
}

// Dims returns the torus width and height.
func (t *Torus) Dims() (w, h int) { return t.w, t.h }

// coords maps a node id to grid coordinates (row-major).
func (t *Torus) coords(id int) (x, y int) { return id % t.w, id / t.w }

// HopCount returns the dimension-order path length between two nodes
// (minimal in each dimension, wrapping around the torus).
func (t *Torus) HopCount(src, dst int) int {
	sx, sy := t.coords(src)
	dx, dy := t.coords(dst)
	fx := (dx - sx + t.w) % t.w
	if fx > t.w-fx {
		fx = t.w - fx
	}
	fy := (dy - sy + t.h) % t.h
	if fy > t.h-fy {
		fy = t.h - fy
	}
	return fx + fy
}

// nextDir returns the dimension-order output direction at node cur
// for a message to dst, or -1 when cur == dst. Ties between the two
// wrap directions go to the positive link.
func (t *Torus) nextDir(cur, dst int) int {
	cx, cy := t.coords(cur)
	dx, dy := t.coords(dst)
	if cx != dx {
		fwd := (dx - cx + t.w) % t.w
		if fwd <= t.w-fwd {
			return dirXPos
		}
		return dirXNeg
	}
	if cy != dy {
		fwd := (dy - cy + t.h) % t.h
		if fwd <= t.h-fwd {
			return dirYPos
		}
		return dirYNeg
	}
	return -1
}

// neighbor returns the node on the far end of node's dir output link.
func (t *Torus) neighbor(node, dir int) int {
	x, y := t.coords(node)
	switch dir {
	case dirXPos:
		x = (x + 1) % t.w
	case dirXNeg:
		x = (x - 1 + t.w) % t.w
	case dirYPos:
		y = (y + 1) % t.h
	case dirYNeg:
		y = (y - 1 + t.h) % t.h
	}
	return y*t.w + x
}

// Inject sends m, blocking the calling (device) process while the
// sliding window to m.Dst is full, then starts the hop-by-hop
// traversal at the source router.
func (t *Torus) Inject(p *sim.Process, m *Msg) {
	t.admit(p, m)
	t.forward(m, m.Src)
}

// forward routes m one step from node: eject if this is the
// destination, otherwise claim (or queue on) the dimension-order
// output link.
func (t *Torus) forward(m *Msg, node int) {
	dir := t.nextDir(node, m.Dst)
	if dir < 0 {
		t.arrive(m)
		return
	}
	li := node*numDirs + dir
	if t.links[li].busy {
		t.linkWaits.Inc()
		t.links[li].queue.Push(m)
		return
	}
	t.transmit(li, m)
}

// transmit serialises m onto link li: the link is held for the
// occupancy, and m reaches the next router occupancy+hopLat later.
func (t *Torus) transmit(li int, m *Msg) {
	lk := &t.links[li]
	lk.busy = true
	t.hops.Inc()
	if t.inj != nil {
		// Fault mode: the degrade window scales occupancy and hop
		// latency over time, so the per-link flight FIFO (which relies
		// on arrivals firing in transmit order) cannot be used. The
		// release path is safe — the busy flag serialises it — but the
		// arrival needs a per-message closure.
		occ := t.inj.Occupancy(t.occupancy)
		next := t.neighbor(li/numDirs, li%numDirs)
		t.eng.Schedule(occ, t.releaseFns[li])
		t.eng.Schedule(occ+t.inj.Latency(t.hopLat), func() { t.forward(m, next) })
		return
	}
	lk.flight.Push(m)
	t.eng.Schedule(t.occupancy, t.releaseFns[li])
	t.eng.Schedule(t.occupancy+t.hopLat, t.arriveFns[li])
}

// release frees link li after a serialisation completes and starts
// the next queued message, if any.
func (t *Torus) release(li int) {
	lk := &t.links[li]
	lk.busy = false
	if lk.queue.Len() > 0 {
		t.transmit(li, lk.queue.Pop())
	}
}

// linkArrive lands the oldest in-flight message on link li at the
// downstream router and routes it onward.
func (t *Torus) linkArrive(li int) {
	m := t.links[li].flight.Pop()
	t.forward(m, t.neighbor(li/numDirs, li%numDirs))
}
