package network

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Output-link direction indices at each torus router.
const (
	dirXPos = iota
	dirXNeg
	dirYPos
	dirYNeg
	numDirs
)

// pendTx is one fault-mode transmission in flight on a link: the
// degrade window makes per-message latency time-varying, so arrivals
// can complete out of FIFO order and each entry carries its own
// arrival time. Entries are kept in transmit order; the drain fn
// selects min-(at, transmit order), which is exactly the order the
// per-message events fire in.
type pendTx struct {
	m    *Msg
	next int
	at   sim.Time
}

// Torus is a W×H 2D torus with dimension-order (x then y) routing and
// store-and-forward switching. Each hop costs the link occupancy
// (serialisation) plus the hop latency; a busy link queues messages,
// which is where load-dependent latency comes from. End-to-end flow
// control is the same sliding window as the flat network; window
// credits return on a contention-free path in hop-count time (acks
// are a few bytes and are not modelled as consuming link bandwidth).
//
// Hot state is struct-of-arrays: every per-link quantity lives in a
// parallel index-addressed slice (li = node*numDirs+dir) instead of a
// per-link struct full of queue headers — a busy bitset, waiting-queue
// heads, flight rings — and routing reads precomputed tables rather
// than redoing coordinate arithmetic per hop.
//
// The event cadence (a release and an arrival per hop, both created
// at transmit time) is deliberately unchanged. Batched variants that
// collapse the pair into one self-draining event per link (sim.Chain)
// were built and measured: simulated timestamps stay exact, but the
// collapsed event necessarily allocates its sequence number at a
// different instant than the release it replaces, which flips
// (time, seq) tie order between same-cycle arrivals at contended
// links and drifts the pinned goldens (probe RTT moved ~5% under a
// saturating all-to-all background). Byte-identical goldens pin the
// cadence; the struct-of-arrays layout is where the fabric's cycles
// go instead.
type Torus struct {
	endpoints
	w, h      int
	hopLat    sim.Time
	occupancy sim.Time

	// Per-link SoA hot state, shared by both modes: busy bitset,
	// FIFO waiting queues, and pre-built release callbacks.
	busyBits   []uint64
	queues     []sim.FIFO[*Msg]
	releaseFns []func()
	// busyB replaces the bitset on sharded machines (allocated by
	// AttachShards): a bitset word packs 64 links, so two shards
	// flipping bits in the same word would be a read-modify-write race.
	// One byte per link keeps each byte single-writer (a link's busy
	// state is only touched by the shard owning its router); serial
	// machines keep the denser bitset.
	busyB []uint8
	// flight[li] holds serialised messages in hop-latency flight;
	// constant per-link delay means arrivals fire in transmit order,
	// landed by the pre-built arriveFns (fault-free path only).
	flight    []sim.Ring[*Msg]
	arriveFns []func()
	// downstream[li] is the node on the far end of link li, and
	// routeDir[cur*n+dst] the dimension-order output direction
	// (-1 at the destination) — both precomputed so the per-hop path
	// does no coordinate arithmetic.
	downstream []int32
	routeDir   []int8

	// Fault-mode state, allocated by AttachFaults only. The degrade
	// window scales occupancy and latency per message, so arrivals can
	// complete out of FIFO order; they are carried in pending entries
	// drained by the pre-built faultArriveFns (no per-message
	// closures).
	pending        [][]pendTx
	faultArriveFns []func()

	hops      *sim.Counter
	linkWaits *sim.Counter
}

// NewTorus creates a 2D torus for n nodes, factored into the most
// nearly square W×H grid (params.TorusDims).
func NewTorus(e *sim.Engine, st *sim.Stats, n int) *Torus {
	w, h := params.TorusDims(n)
	t := &Torus{
		w:          w,
		h:          h,
		hopLat:     params.TorusHopLatency,
		occupancy:  params.TorusLinkOccupancy,
		busyBits:   make([]uint64, (n*numDirs+63)/64),
		flight:     make([]sim.Ring[*Msg], n*numDirs),
		queues:     make([]sim.FIFO[*Msg], n*numDirs),
		releaseFns: make([]func(), n*numDirs),
		arriveFns:  make([]func(), n*numDirs),
	}
	t.init(e, st, n, func(m *Msg) sim.Time {
		return sim.Time(t.HopCount(m.Src, m.Dst)) * t.hopLat
	})
	t.hops = st.Counter("net.torus.hop")
	t.linkWaits = st.Counter("net.torus.link.wait")
	t.downstream = make([]int32, n*numDirs)
	for li := range t.downstream {
		t.downstream[li] = int32(t.neighbor(li/numDirs, li%numDirs))
		li := li
		t.releaseFns[li] = func() { t.release(li) }
		t.arriveFns[li] = func() { t.linkArrive(li) }
	}
	t.routeDir = make([]int8, n*n)
	for cur := 0; cur < n; cur++ {
		for dst := 0; dst < n; dst++ {
			t.routeDir[cur*n+dst] = int8(t.nextDir(cur, dst))
		}
	}
	return t
}

// Dims returns the torus width and height.
func (t *Torus) Dims() (w, h int) { return t.w, t.h }

// coords maps a node id to grid coordinates (row-major).
func (t *Torus) coords(id int) (x, y int) { return id % t.w, id / t.w }

// HopCount returns the dimension-order path length between two nodes
// (minimal in each dimension, wrapping around the torus).
func (t *Torus) HopCount(src, dst int) int {
	sx, sy := t.coords(src)
	dx, dy := t.coords(dst)
	fx := (dx - sx + t.w) % t.w
	if fx > t.w-fx {
		fx = t.w - fx
	}
	fy := (dy - sy + t.h) % t.h
	if fy > t.h-fy {
		fy = t.h - fy
	}
	return fx + fy
}

// nextDir returns the dimension-order output direction at node cur
// for a message to dst, or -1 when cur == dst. Ties between the two
// wrap directions go to the positive link. (Used to build routeDir;
// the per-hop path reads the table.)
func (t *Torus) nextDir(cur, dst int) int {
	cx, cy := t.coords(cur)
	dx, dy := t.coords(dst)
	if cx != dx {
		fwd := (dx - cx + t.w) % t.w
		if fwd <= t.w-fwd {
			return dirXPos
		}
		return dirXNeg
	}
	if cy != dy {
		fwd := (dy - cy + t.h) % t.h
		if fwd <= t.h-fwd {
			return dirYPos
		}
		return dirYNeg
	}
	return -1
}

// neighbor returns the node on the far end of node's dir output link.
func (t *Torus) neighbor(node, dir int) int {
	x, y := t.coords(node)
	switch dir {
	case dirXPos:
		x = (x + 1) % t.w
	case dirXNeg:
		x = (x - 1 + t.w) % t.w
	case dirYPos:
		y = (y + 1) % t.h
	case dirYNeg:
		y = (y - 1 + t.h) % t.h
	}
	return y*t.w + x
}

// AttachShards switches the torus to the sharded conservative-
// lookahead engine: link releases stay on the owning node's shard
// (claiming a link, queueing behind it, and freeing it are all local
// to its router), while link arrivals and cross-node window credits
// travel through the coordinator's deterministic-merge inboxes. The
// minimum cross event delay — a credit's one-hop latency — equals the
// hop latency, which is exactly the ShardSet's lookahead.
//
// Every link arrival is routed through the inboxes even when both
// routers share a shard: the canonical (time, key) merge order must
// not depend on where the shard boundaries fall, or the shard count
// would change results.
func (t *Torus) AttachShards(sh *sim.ShardSet) {
	t.attachShards(sh)
	t.busyB = make([]uint8, t.n*numDirs)
	sh.SetDispatch(func(ev *sim.CrossEvent) {
		if ev.Kind == xkAck {
			slot := int(ev.Node)*t.n + int(ev.Aux)
			t.inFlight[slot]--
			t.windowFree[slot].Signal()
			return
		}
		t.forward(ev.Msg.(*Msg), int(ev.Node))
	})
}

// AttachFaults hooks the injector in and switches the links to
// per-message arrival bookkeeping (see the fault-mode fields).
func (t *Torus) AttachFaults(in *fault.Injector) {
	t.endpoints.AttachFaults(in)
	n := t.n
	t.pending = make([][]pendTx, n*numDirs)
	t.faultArriveFns = make([]func(), n*numDirs)
	for li := 0; li < n*numDirs; li++ {
		li := li
		t.faultArriveFns[li] = func() { t.faultArrive(li) }
	}
}

// Inject sends m, blocking the calling (device) process while the
// sliding window to m.Dst is full, then starts the hop-by-hop
// traversal at the source router.
func (t *Torus) Inject(p *sim.Process, m *Msg) {
	t.admit(p, m)
	t.forward(m, m.Src)
}

// forward routes m one step from node: eject if this is the
// destination, otherwise claim (or queue on) the dimension-order
// output link.
func (t *Torus) forward(m *Msg, node int) {
	dir := t.routeDir[node*t.n+m.Dst]
	if dir < 0 {
		t.arrive(m)
		return
	}
	li := node*numDirs + int(dir)
	if t.busy(li) {
		t.linkWaits.Inc()
		if t.rec != nil {
			t.noteMsg(node, trace.KLinkWait, int32(li), m)
		}
		t.queues[li].Push(m)
		return
	}
	t.transmit(li, m)
}

// transmit serialises m onto link li: the link is held for the
// occupancy, and m reaches the next router occupancy+hopLat later.
// Both events are created here, at transmit time, in release-then-
// arrive order — the cadence the goldens pin (see the type comment).
func (t *Torus) transmit(li int, m *Msg) {
	t.setBusy(li)
	t.hops.Inc()
	if t.rec != nil {
		t.noteMsg(li/numDirs, trace.KLinkTx, int32(li), m)
	}
	if t.inj != nil {
		t.faultTransmit(li, m)
		return
	}
	if t.sh != nil {
		// Sharded: the release is local to the link's router; the
		// arrival crosses to the downstream router's shard carrying the
		// message itself (the flight ring cannot be popped from another
		// shard). Transmit runs on the owner's shard, so its engine is
		// the current one.
		eng := t.sh.Engine(li / numDirs)
		eng.Schedule(t.occupancy, t.releaseFns[li])
		t.sh.Cross(li/numDirs, sim.CrossEvent{
			At:   eng.Now() + t.occupancy + t.hopLat,
			Key:  m.xkey << 1,
			Kind: xkArrive,
			Node: t.downstream[li],
			Msg:  m,
		})
		return
	}
	t.flight[li].Push(m)
	t.eng.Schedule(t.occupancy, t.releaseFns[li])
	t.eng.Schedule(t.occupancy+t.hopLat, t.arriveFns[li])
}

// release frees link li after a serialisation completes and starts
// the next queued message, if any.
func (t *Torus) release(li int) {
	t.clearBusy(li)
	if t.rec != nil {
		t.rec.Note(li/numDirs, trace.KLinkFree, 0, int32(li), -1, -1, 0, 0)
	}
	if t.queues[li].Len() > 0 {
		t.transmit(li, t.queues[li].Pop())
	}
}

// linkArrive lands the oldest in-flight message on link li at the
// downstream router and routes it onward.
func (t *Torus) linkArrive(li int) {
	t.forward(t.flight[li].Pop(), int(t.downstream[li]))
}

// Links returns the output-link count (node count × four directions)
// — link index li = node*4 + direction.
func (t *Torus) Links() int { return t.n * numDirs }

// LinkBusy reports whether link li is currently serialising a message
// (the trace sampler's occupancy gauge).
func (t *Torus) LinkBusy(li int) bool { return t.busy(li) }

// LinkQueueLen reports how many messages wait behind link li (the
// trace sampler's queue-depth gauge).
func (t *Torus) LinkQueueLen(li int) int { return t.queues[li].Len() }

// LinkName renders link li's stable label, e.g. "n3.y+".
func (t *Torus) LinkName(li int) string {
	dirs := [numDirs]string{"x+", "x-", "y+", "y-"}
	return fmt.Sprintf("n%d.%s", li/numDirs, dirs[li%numDirs])
}

// busy reports / sets / clears link li's busy state: one byte per
// link on sharded machines, a bit in the packed bitset otherwise.
func (t *Torus) busy(li int) bool {
	if t.busyB != nil {
		return t.busyB[li] != 0
	}
	return t.busyBits[li>>6]&(1<<(li&63)) != 0
}

func (t *Torus) setBusy(li int) {
	if t.busyB != nil {
		t.busyB[li] = 1
		return
	}
	t.busyBits[li>>6] |= 1 << (li & 63)
}

func (t *Torus) clearBusy(li int) {
	if t.busyB != nil {
		t.busyB[li] = 0
		return
	}
	t.busyBits[li>>6] &^= 1 << (li & 63)
}

// faultTransmit is transmit's fault-mode tail: the degrade window
// scales occupancy and hop latency per message, so the flight ring
// (which relies on arrivals firing in transmit order) cannot be used;
// the arrival is carried in a pending entry drained by the pre-built
// per-link fn — no per-message closure.
func (t *Torus) faultTransmit(li int, m *Msg) {
	eng := t.engAt(li / numDirs)
	now := eng.Now()
	occ := t.inj.OccupancyAt(now, t.occupancy)
	next := int(t.downstream[li])
	eng.Schedule(occ, t.releaseFns[li])
	at := now + occ + t.inj.LatencyAt(now, t.hopLat)
	if t.sh != nil {
		// Sharded fault mode: the arrival crosses like the fault-free
		// path; the destination shard's (time, key) pending heap plays
		// the per-link pending list's role.
		t.sh.Cross(li/numDirs, sim.CrossEvent{
			At: at, Key: m.xkey << 1, Kind: xkArrive,
			Node: t.downstream[li], Msg: m,
		})
		return
	}
	t.pending[li] = append(t.pending[li], pendTx{m, next, at})
	eng.ScheduleAt(at, t.faultArriveFns[li])
}

// faultArrive lands the pending transmission whose arrival event is
// firing now: the one with the minimum arrival time, oldest first on
// ties — the (time, seq) order its per-message events fire in.
func (t *Torus) faultArrive(li int) {
	pend := t.pending[li]
	best := 0
	for i := 1; i < len(pend); i++ {
		if pend[i].at < pend[best].at {
			best = i
		}
	}
	e := pend[best]
	copy(pend[best:], pend[best+1:])
	pend[len(pend)-1] = pendTx{}
	t.pending[li] = pend[:len(pend)-1]
	t.forward(e.m, e.next)
}
