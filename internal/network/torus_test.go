package network

import (
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
)

func torusRig(n int) (*sim.Engine, *Torus, []*fakePort) {
	e := sim.NewEngine()
	st := sim.NewStats(e)
	tw := NewTorus(e, st, n)
	ports := make([]*fakePort, n)
	for i := range ports {
		ports[i] = &fakePort{accept: true}
		tw.Register(i, ports[i])
	}
	return e, tw, ports
}

func TestTorusDims(t *testing.T) {
	cases := map[int][2]int{
		2:  {1, 2},
		4:  {2, 2},
		6:  {2, 3},
		9:  {3, 3},
		12: {3, 4},
		16: {4, 4},
		7:  {1, 7}, // prime: degrades to a ring
	}
	for n, want := range cases {
		w, h := params.TorusDims(n)
		if w != want[0] || h != want[1] {
			t.Errorf("TorusDims(%d) = %dx%d, want %dx%d", n, w, h, want[0], want[1])
		}
	}
}

func TestTorusHopCount(t *testing.T) {
	_, tw, _ := torusRig(16) // 4x4
	cases := []struct{ src, dst, hops int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // x wraparound: (0,0) -> (3,0) is one hop back
		{0, 2, 2},  // x tie: two hops either way
		{0, 4, 1},  // one y hop
		{0, 12, 1}, // y wraparound
		{0, 10, 4}, // antipode (2,2): the diameter
		{5, 15, 4},
	}
	for _, c := range cases {
		if got := tw.HopCount(c.src, c.dst); got != c.hops {
			t.Errorf("HopCount(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
	// Symmetric by construction (minimal in each dimension).
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if tw.HopCount(src, dst) != tw.HopCount(dst, src) {
				t.Fatalf("HopCount asymmetric for (%d,%d)", src, dst)
			}
		}
	}
}

// TestTorusDimensionOrderPath follows nextDir hop by hop and checks
// the walk is x-first, minimal, and lands on the destination.
func TestTorusDimensionOrderPath(t *testing.T) {
	_, tw, _ := torusRig(16)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			cur, hops, yStarted := src, 0, false
			for cur != dst {
				dir := tw.nextDir(cur, dst)
				if dir < 0 {
					t.Fatalf("nextDir(%d,%d) = -1 before arrival", cur, dst)
				}
				if dir == dirYPos || dir == dirYNeg {
					yStarted = true
				} else if yStarted {
					t.Fatalf("route %d->%d went back to x after y", src, dst)
				}
				cur = tw.neighbor(cur, dir)
				hops++
				if hops > 8 {
					t.Fatalf("route %d->%d did not terminate", src, dst)
				}
			}
			if hops != tw.HopCount(src, dst) {
				t.Fatalf("route %d->%d took %d hops, HopCount says %d", src, dst, hops, tw.HopCount(src, dst))
			}
		}
	}
}

// TestTorusUnloadedLatency pins the store-and-forward timing: each
// hop costs occupancy + hop latency, so a k-hop message arrives at
// k*(occupancy+hopLat).
func TestTorusUnloadedLatency(t *testing.T) {
	e, tw, ports := torusRig(16)
	dst := 10 // 4 hops from node 0
	var arrived sim.Time
	ports[dst].accept = true
	e.Spawn("src", func(p *sim.Process) {
		tw.Inject(p, &Msg{Src: 0, Dst: dst, Size: 64, Blocks: 2})
	})
	e.Spawn("watch", func(p *sim.Process) {
		for len(ports[dst].got) == 0 {
			p.Sleep(1)
		}
		arrived = p.Now()
	})
	e.RunAll()
	perHop := sim.Time(params.TorusLinkOccupancy + params.TorusHopLatency)
	want := 4 * perHop
	// The watcher polls each cycle, so allow its 1-cycle granularity.
	if arrived != want && arrived != want+1 {
		t.Fatalf("4-hop message arrived at %d, want ~%d", arrived, want)
	}
}

// TestTorusLinkContentionSerialises injects two messages that need
// the same first link at the same instant: the second must wait out
// the first's serialisation, so the deliveries are spaced by the link
// occupancy.
func TestTorusLinkContentionSerialises(t *testing.T) {
	e, tw, ports := torusRig(16)
	dst := 2 // two +x hops from node 0
	e.Spawn("src", func(p *sim.Process) {
		tw.Inject(p, &Msg{Src: 0, Dst: dst, Size: 8, Blocks: 1, ID: 1})
		tw.Inject(p, &Msg{Src: 0, Dst: dst, Size: 8, Blocks: 1, ID: 2})
	})
	var t1, t2 sim.Time
	e.Spawn("watch", func(p *sim.Process) {
		for len(ports[dst].got) < 1 {
			p.Sleep(1)
		}
		t1 = p.Now()
		for len(ports[dst].got) < 2 {
			p.Sleep(1)
		}
		t2 = p.Now()
	})
	e.RunAll()
	if ports[dst].got[0].ID != 1 || ports[dst].got[1].ID != 2 {
		t.Fatal("FIFO link arbitration broke message order")
	}
	gap := t2 - t1
	if gap != params.TorusLinkOccupancy {
		t.Fatalf("contended deliveries spaced %d cycles apart, want the %d-cycle link occupancy", gap, params.TorusLinkOccupancy)
	}
}

// TestTorusDisjointFlowsDoNotInteract checks two flows with no shared
// link see identical timing alone and together.
func TestTorusDisjointFlowsDoNotInteract(t *testing.T) {
	arrival := func(withOther bool) sim.Time {
		e, tw, ports := torusRig(16)
		e.Spawn("src", func(p *sim.Process) {
			tw.Inject(p, &Msg{Src: 0, Dst: 1, Size: 8, Blocks: 1})
		})
		if withOther {
			e.Spawn("other", func(p *sim.Process) {
				// (2,1) -> (3,1): +x link in row 1, disjoint from 0->1.
				tw.Inject(p, &Msg{Src: 6, Dst: 7, Size: 8, Blocks: 1})
			})
		}
		var at sim.Time
		e.Spawn("watch", func(p *sim.Process) {
			for len(ports[1].got) == 0 {
				p.Sleep(1)
			}
			at = p.Now()
		})
		e.RunAll()
		return at
	}
	alone, together := arrival(false), arrival(true)
	if alone != together {
		t.Fatalf("disjoint flow changed arrival time: %d alone vs %d together", alone, together)
	}
}
