package network

import (
	"repro/internal/trace"
)

// AttachTrace hooks the lifecycle recorder into the shared fabric
// edge. Both fabrics inherit it. When never called the trace path is
// fully disabled — the hot path pays one nil check per hook site and
// the fabric's behaviour is bit-identical to a build without the
// telemetry layer (the same contract AttachFaults keeps). Recording
// consumes no simulated time and schedules nothing, so an attached
// recorder is pure observation: counters, latencies, and delivered
// counts are unchanged.
func (ep *endpoints) AttachTrace(rec *trace.Recorder) { ep.rec = rec }

// msgFlags condenses a message's ack/dup markers into record flags.
func msgFlags(m *Msg) uint8 {
	var f uint8
	if m.IsAck {
		f |= trace.FlagAck
	}
	if m.Dup {
		f |= trace.FlagDup
	}
	return f
}

// traceID returns the record id for m: the user-message id for data
// frames, the cumulative ack value for transport ack frames (data ids
// and ack values live in different namespaces; the ack flag keeps the
// export from conflating them).
func traceID(m *Msg) uint64 {
	if m.IsAck {
		return m.Ack
	}
	return m.ID
}

// noteMsg records one message-scoped lifecycle event on node's ring.
// Callers gate on ep.rec != nil so the disabled path stays a single
// branch.
func (ep *endpoints) noteMsg(node int, k trace.Kind, link int32, m *Msg) {
	ep.rec.Note(node, k, traceID(m), link, int32(m.Src), int32(m.Dst), uint8(m.Frag), msgFlags(m))
}
