package dcn

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/params"
)

func rpcCfg(topo params.Topology) params.Config {
	return params.Config{Nodes: 16, NI: params.CNI512Q, Bus: params.MemoryBus, Topology: topo}
}

// quickSpec is a small population at moderate load, sized so a short
// window carries a few hundred calls.
func quickSpec() RPCSpec {
	s := DefaultRPCSpec()
	s.Clients = 10_000
	s.ThinkCycles = 10_000_000
	return s
}

// TestRPCDeterministic pins the core contract: same seed, same bytes,
// across both fabrics.
func TestRPCDeterministic(t *testing.T) {
	t.Parallel()
	for _, topo := range []params.Topology{params.TopoFlat, params.TopoTorus} {
		a, err := RunRPC(rpcCfg(topo), quickSpec(), 20_000, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunRPC(rpcCfg(topo), quickSpec(), 20_000, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%v: two identical RPC runs differ:\n  a: %+v\n  b: %+v", topo, a, b)
		}
		if a.Completed == 0 || a.Latency.Count() == 0 {
			t.Errorf("%v: no calls completed (report %+v)", topo, a)
		}
	}
}

// TestRPCSeedMatters guards against the seed being ignored.
func TestRPCSeedMatters(t *testing.T) {
	t.Parallel()
	a, _ := RunRPC(rpcCfg(params.TopoFlat), quickSpec(), 20_000, 200_000)
	s2 := quickSpec()
	s2.Seed = 99
	b, _ := RunRPC(rpcCfg(params.TopoFlat), s2, 20_000, 200_000)
	if a == b {
		t.Fatal("different seeds produced identical RPC runs")
	}
}

// TestRPCStragglerGrowsWithFanout: waiting for the slowest of k
// magnifies the tail — fan-out 1 has no join spread at all, fan-out 8
// a strictly positive one.
func TestRPCStragglerGrowsWithFanout(t *testing.T) {
	t.Parallel()
	run := func(k int) RPCReport {
		s := quickSpec()
		s.Tiers[0].Fanout = k
		rep, err := RunRPC(rpcCfg(params.TopoFlat), s, 20_000, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	one, eight := run(1), run(8)
	if one.Straggler.Max() != 0 {
		t.Errorf("fan-out 1 join spread must be zero, max %d", one.Straggler.Max())
	}
	if eight.Straggler.Quantile(0.99) <= 0 {
		t.Errorf("fan-out 8 join spread should be positive, p99 %d", eight.Straggler.Quantile(0.99))
	}
	if eight.Latency.Quantile(0.99) <= one.Latency.Quantile(0.99) {
		t.Errorf("fan-out 8 p99 %d should exceed fan-out 1 p99 %d",
			eight.Latency.Quantile(0.99), one.Latency.Quantile(0.99))
	}
}

// TestRPCMultiTierFansOut: a two-tier call multiplies sub-requests
// and still joins correctly.
func TestRPCMultiTierFansOut(t *testing.T) {
	t.Parallel()
	s := quickSpec()
	s.Tiers = []Tier{
		{Fanout: 2, ServiceCycles: 300, ReqBytes: 128, RepBytes: 256},
		{Fanout: 3, ServiceCycles: 300, ReqBytes: 96, RepBytes: 192},
	}
	rep, err := RunRPC(rpcCfg(params.TopoFlat), s, 20_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no two-tier calls completed")
	}
	// Every issued call fans 2 tier-0 legs, each of which fans 3 more.
	// Hedges are off, so the fan-out counter is exact for issued work
	// (trailing calls may still be mid-flight at the horizon).
	if rep.Issued > 0 && rep.Hedges != 0 {
		t.Errorf("hedges fired with Hedge=0: %d", rep.Hedges)
	}
}

// TestRPCHedgingFires: eligible stragglers get duplicated, first
// reply wins, and the run stays deterministic.
func TestRPCHedgingFires(t *testing.T) {
	t.Parallel()
	s := quickSpec()
	s.Hedge = 0.9
	s.HedgeAfterCycles = 2_000
	s.Tiers[0].ServiceCycles = 3_000 // service slow enough to trip the trigger
	a, err := RunRPC(rpcCfg(params.TopoFlat), s, 20_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hedges == 0 {
		t.Fatal("no hedges fired despite 0.9 eligibility and a tight trigger")
	}
	if a.HedgeWins > a.Hedges {
		t.Errorf("hedge wins %d exceed hedges %d", a.HedgeWins, a.Hedges)
	}
	b, _ := RunRPC(rpcCfg(params.TopoFlat), s, 20_000, 200_000)
	if a != b {
		t.Error("hedged runs are not deterministic")
	}
}

// TestRPCOverloadQueues: a tight inflight cap under heavy offered
// load queues arrivals and goodput falls below offered.
func TestRPCOverloadQueues(t *testing.T) {
	t.Parallel()
	s := quickSpec()
	s.ThinkCycles = 100_000 // ~100x the moderate arrival rate
	s.MaxInflight = 2
	rep, err := RunRPC(rpcCfg(params.TopoFlat), s, 20_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queued == 0 {
		t.Error("overload with MaxInflight=2 queued nothing")
	}
	if rep.GoodputKRPS >= rep.OfferedKRPS {
		t.Errorf("goodput %v should fall below offered %v under overload", rep.GoodputKRPS, rep.OfferedKRPS)
	}
}

// TestIncastSpec: the storage preset is a valid fan-in shape with
// bulk replies.
func TestIncastSpec(t *testing.T) {
	t.Parallel()
	s := IncastSpec(8, 4096)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Tiers[0].Fanout != 8 || s.Tiers[0].RepBytes != 4096 || s.Tiers[0].ReqBytes >= s.Tiers[0].RepBytes {
		t.Errorf("incast shape wrong: %+v", s.Tiers[0])
	}
}

// TestRPCValidation: malformed specs are rejected with the PR 3/5
// style messages.
func TestRPCValidation(t *testing.T) {
	t.Parallel()
	base := DefaultRPCSpec()
	bad := []func(*RPCSpec){
		func(s *RPCSpec) { s.Clients = 0 },
		func(s *RPCSpec) { s.ThinkCycles = 0 },
		func(s *RPCSpec) { s.Tiers = nil },
		func(s *RPCSpec) { s.Tiers[0].Fanout = 0 },
		func(s *RPCSpec) { s.Hedge = 1 },
		func(s *RPCSpec) { s.Hedge = -0.1 },
		func(s *RPCSpec) { s.Hedge = 0.5; s.HedgeAfterCycles = 0 },
		func(s *RPCSpec) { s.MaxInflight = 0 },
		func(s *RPCSpec) { s.ClientZipfS = -1 },
	}
	for i, mutate := range bad {
		s := base
		s.Tiers = append([]Tier{}, base.Tiers...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: bad spec validated: %+v", i, s)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
}

// TestCollectiveSchedules: every schedule completes on 16 nodes with
// the right step count and traffic volume.
func TestCollectiveSchedules(t *testing.T) {
	t.Parallel()
	want := map[Schedule]struct {
		steps int
		msgs  uint64
	}{
		RingAllreduce: {steps: 30, msgs: 16 * 30},
		RDAllreduce:   {steps: 4, msgs: 16 * 4},
		Alltoall:      {steps: 15, msgs: 16 * 15},
		Broadcast:     {steps: 4, msgs: 15},
	}
	for _, sch := range Schedules() {
		rep, err := RunCollective(rpcCfg(params.TopoTorus), CollectiveSpec{Schedule: sch, Bytes: 16 * 1024})
		if err != nil {
			t.Fatalf("%s: %v", sch, err)
		}
		w := want[sch]
		if rep.Steps != w.steps {
			t.Errorf("%s: %d steps, want %d", sch, rep.Steps, w.steps)
		}
		if rep.Msgs != w.msgs {
			t.Errorf("%s: %d msgs, want %d", sch, rep.Msgs, w.msgs)
		}
		if rep.CompletionCycles <= 0 {
			t.Errorf("%s: completion %d, want > 0", sch, rep.CompletionCycles)
		}
		if len(rep.PerStep) == 0 {
			t.Errorf("%s: no per-step stats", sch)
		}
		for _, st := range rep.PerStep {
			if st.Skew != st.MaxEnd-st.MinEnd || st.Skew < 0 {
				t.Errorf("%s step %d: inconsistent skew %+v", sch, st.Step, st)
			}
		}
	}
}

// TestCollectiveDeterministic: byte-identical reports across runs
// (JSON compared, PerStep included).
func TestCollectiveDeterministic(t *testing.T) {
	t.Parallel()
	run := func() CollectiveReport {
		rep, err := RunCollective(rpcCfg(params.TopoTorus), DefaultCollectiveSpec())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		t.Errorf("collective runs differ:\n  a: %s\n  b: %s", aj, bj)
	}
}

// TestCollectiveRingChunking: the ring moves 1/n chunks, so its moved
// bytes are 2(n-1)/n of the vector per node.
func TestCollectiveRingChunking(t *testing.T) {
	t.Parallel()
	bytes := 16 * 1024
	rep, err := RunCollective(rpcCfg(params.TopoFlat), CollectiveSpec{Schedule: RingAllreduce, Bytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := uint64(16 * 30 * (bytes / 16))
	if rep.MovedBytes != wantBytes {
		t.Errorf("ring moved %d bytes, want %d", rep.MovedBytes, wantBytes)
	}
}

// TestParseSchedule: typos list the valid values.
func TestParseSchedule(t *testing.T) {
	t.Parallel()
	if _, err := ParseSchedule("ring-allreduce"); err != nil {
		t.Fatal(err)
	}
	_, err := ParseSchedule("ring")
	if err == nil {
		t.Fatal("typo accepted")
	}
	for _, sch := range Schedules() {
		if !strings.Contains(err.Error(), string(sch)) {
			t.Errorf("error %q should list %q", err, sch)
		}
	}
}
