package dcn

import (
	"fmt"
	"math/bits"

	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// CollectiveSpec configures one collective run.
type CollectiveSpec struct {
	// Schedule picks the algorithm.
	Schedule Schedule
	// Bytes is each node's contribution: the vector length for the
	// allreduces and broadcast, the total per-node exchange volume for
	// alltoall. Chunked schedules move Bytes/n per step (floored at
	// one byte).
	Bytes int
}

// DefaultCollectiveSpec is a 64KiB-per-node ring allreduce.
func DefaultCollectiveSpec() CollectiveSpec {
	return CollectiveSpec{Schedule: RingAllreduce, Bytes: 64 * 1024}
}

// Validate rejects malformed specs (the machine-dependent
// power-of-two check happens in RunCollective, which knows n).
func (s CollectiveSpec) Validate() error {
	if _, err := ParseSchedule(string(s.Schedule)); err != nil {
		return err
	}
	if s.Bytes < 1 {
		return fmt.Errorf("dcn: collective Bytes must be >= 1, have %d", s.Bytes)
	}
	return nil
}

// StepStat is one schedule step's completion spread across the
// participating nodes.
type StepStat struct {
	// Step indexes the schedule step.
	Step int
	// MinEnd and MaxEnd bracket when participants finished the step.
	MinEnd, MaxEnd sim.Time
	// Skew is MaxEnd - MinEnd: how far the slowest participant
	// straggled behind the fastest.
	Skew sim.Time
}

// CollectiveReport is one collective run's result.
type CollectiveReport struct {
	// Schedule, Nodes, and Bytes echo the configuration.
	Schedule Schedule
	Nodes    int
	Bytes    int
	// Steps is the schedule length.
	Steps int
	// CompletionCycles is start to the last node's finish.
	CompletionCycles sim.Time
	// CompletionMicros converts CompletionCycles at params.CPUMHz.
	CompletionMicros float64
	// PerStep is the per-step completion spread; MaxSkew is the
	// largest per-step skew (the schedule's straggler exposure).
	PerStep []StepStat
	MaxSkew sim.Time
	// Msgs and MovedBytes count the schedule's traffic (from the
	// coll.* counters).
	Msgs, MovedBytes uint64
}

// collRun is one collective's shared state.
type collRun struct {
	m     *scenario.Machine
	n     int
	steps int
	// stepEnd[node][step] is when node finished the step; done[node][step]
	// marks participation (broadcast nodes idle in early rounds).
	stepEnd [][]sim.Time
	done    [][]bool
	recvd   []int

	cMsgs  *sim.Counter
	cBytes *sim.Counter
	cSteps *sim.Counter
}

// mark records node finishing step now.
func (r *collRun) mark(node, step int, now sim.Time) {
	r.stepEnd[node][step] = now
	r.done[node][step] = true
	r.cSteps.Inc()
}

// waitRecv polls node until it has received at least need messages.
func (r *collRun) waitRecv(ep *scenario.Endpoint, node, need int) {
	ep.PollUntil(func() bool { return r.recvd[node] >= need })
}

// RunCollective executes one collective schedule on cfg's machine and
// reports its completion time and per-step skew. The schedule runs
// once from a quiet machine, so the report is a clean algorithmic
// fingerprint of the NI + fabric combination; coll.* counters record
// the traffic volume.
func RunCollective(cfg params.Config, spec CollectiveSpec) (CollectiveReport, error) {
	m, err := scenario.Build(cfg)
	if err != nil {
		return CollectiveReport{}, err
	}
	defer m.Close()
	return RunCollectiveOn(m, spec)
}

// RunCollectiveOn is RunCollective on a caller-built (fresh) machine;
// the caller keeps ownership, so trace recorders and counters stay
// inspectable after the run, and Close is the caller's job.
func RunCollectiveOn(m *scenario.Machine, spec CollectiveSpec) (CollectiveReport, error) {
	if err := spec.Validate(); err != nil {
		return CollectiveReport{}, err
	}
	n := m.Nodes()
	pow2 := n&(n-1) == 0
	if spec.Schedule == RDAllreduce && !pow2 {
		return CollectiveReport{}, fmt.Errorf("dcn: %s requires a power-of-two node count, have %d", RDAllreduce, n)
	}
	r := &collRun{
		m:      m,
		n:      n,
		recvd:  make([]int, n),
		cMsgs:  m.Stats().Counter("coll.msgs"),
		cBytes: m.Stats().Counter("coll.bytes"),
		cSteps: m.Stats().Counter("coll.steps"),
	}
	switch spec.Schedule {
	case RingAllreduce:
		r.steps = 2 * (n - 1)
	case RDAllreduce:
		r.steps = bits.Len(uint(n - 1))
	case Alltoall:
		r.steps = n - 1
	case Broadcast:
		r.steps = bits.Len(uint(n - 1))
	}
	if r.steps == 0 {
		r.steps = 1 // single-node degenerate case
	}
	r.stepEnd = make([][]sim.Time, n)
	r.done = make([][]bool, n)
	for i := range r.stepEnd {
		r.stepEnd[i] = make([]sim.Time, r.steps)
		r.done[i] = make([]bool, r.steps)
	}
	chunk := spec.Bytes / n
	if chunk < 1 {
		chunk = 1
	}
	for id := 0; id < n; id++ {
		node := id
		m.Endpoint(id).Handle(hColl, func(d *scenario.Delivery) {
			// Touching the payload models the combine/copy work at the
			// receiver; the reduce itself is memory-bound here.
			d.EP.Load(0x4000, d.Size)
			r.cMsgs.Inc()
			r.cBytes.Add(uint64(d.Size))
			r.recvd[node]++
		})
	}
	sc := scenario.New()
	start := m.Clock()
	for id := 0; id < n; id++ {
		self := id
		switch spec.Schedule {
		case RingAllreduce:
			sc.At(id, func(ep *scenario.Endpoint) {
				right := (self + 1) % r.n
				for s := 0; s < r.steps; s++ {
					ep.SendTo(right, hColl, chunk, nil)
					r.waitRecv(ep, self, s+1)
					r.mark(self, s, ep.Clock())
				}
			})
		case RDAllreduce:
			sc.At(id, func(ep *scenario.Endpoint) {
				for s := 0; s < r.steps; s++ {
					partner := self ^ (1 << s)
					ep.SendTo(partner, hColl, spec.Bytes, nil)
					r.waitRecv(ep, self, s+1)
					r.mark(self, s, ep.Clock())
				}
			})
		case Alltoall:
			sc.At(id, func(ep *scenario.Endpoint) {
				for s := 0; s < r.steps; s++ {
					var partner int
					if pow2 {
						partner = self ^ (s + 1)
					} else {
						partner = (self + s + 1) % r.n
					}
					ep.SendTo(partner, hColl, chunk, nil)
					r.waitRecv(ep, self, s+1)
					r.mark(self, s, ep.Clock())
				}
			})
		case Broadcast:
			sc.At(id, func(ep *scenario.Endpoint) {
				// Binomial tree: node 0 starts with the data; in round s
				// every holder below 2^s forwards to its +2^s peer, and a
				// node joins in the round matching its highest set bit.
				joinRound := -1
				if self != 0 {
					joinRound = bits.Len(uint(self)) - 1
				}
				for s := 0; s < r.steps; s++ {
					if s == joinRound {
						r.waitRecv(ep, self, 1)
						r.mark(self, s, ep.Clock())
					}
					if (self == 0 || s > joinRound) && self < 1<<s {
						if dst := self + 1<<s; dst < r.n {
							ep.SendTo(dst, hColl, spec.Bytes, nil)
							r.mark(self, s, ep.Clock())
						}
					}
				}
			})
		}
	}
	m.RunUntil(sc, sim.Forever)

	rep := CollectiveReport{
		Schedule:   spec.Schedule,
		Nodes:      n,
		Bytes:      spec.Bytes,
		Steps:      r.steps,
		Msgs:       r.cMsgs.Value(),
		MovedBytes: r.cBytes.Value(),
	}
	for s := 0; s < r.steps; s++ {
		st := StepStat{Step: s}
		seen := false
		for node := 0; node < n; node++ {
			if !r.done[node][s] {
				continue
			}
			end := r.stepEnd[node][s]
			if !seen || end < st.MinEnd {
				st.MinEnd = end
			}
			if !seen || end > st.MaxEnd {
				st.MaxEnd = end
			}
			seen = true
		}
		if !seen {
			continue
		}
		st.Skew = st.MaxEnd - st.MinEnd
		rep.PerStep = append(rep.PerStep, st)
		if st.Skew > rep.MaxSkew {
			rep.MaxSkew = st.Skew
		}
		if st.MaxEnd-start > rep.CompletionCycles {
			rep.CompletionCycles = st.MaxEnd - start
		}
	}
	rep.CompletionMicros = float64(rep.CompletionCycles) / params.CPUMHz
	return rep, nil
}
