// Package dcn is the datacenter scenario pack: service-style traffic
// expressed as ordinary scenario/Endpoint consumers, so every
// experiment composes with all five NI designs, the DMA comparator,
// and both interconnect fabrics exactly like the paper's own
// benchmarks.
//
// Two families are modelled:
//
//   - RPC fan-out/fan-in (RunRPC): front-end calls that touch k
//     backends per tier — optionally through multiple tiers — with
//     exponential per-tier service times, a straggler-aware join at
//     the caller, optional hedged duplicates for tail cutting, and an
//     incast preset (small requests, bulk replies) for storage-style
//     reads. Offered load comes from a weighted aggregated client
//     population (internal/workload.Population), so millions of
//     simulated clients run on 16–256 simulated nodes.
//
//   - Collective schedules (RunCollective): ring and
//     recursive-doubling allreduce, pairwise-exchange alltoall, and a
//     binomial broadcast tree, each a scripted step schedule emitting
//     a completion time and per-step skew report.
//
// Everything is deterministic: all randomness derives from the spec
// seed through apps.Rand streams, and measurement is free in
// simulated time, so a run is byte-for-byte reproducible.
package dcn

import (
	"fmt"
	"strings"
)

// Dcn-private active-message handler ids (workload owns 400+; the dcn
// pack starts at 500).
const (
	hRPCReq = 500 + iota // RPC sub-request (any tier)
	hRPCRep              // RPC sub-reply
	hColl                // collective step payload
)

// Schedule names one collective algorithm.
type Schedule string

const (
	// RingAllreduce is the bandwidth-optimal ring: 2(n-1) steps of
	// 1/n-sized chunks (reduce-scatter then allgather).
	RingAllreduce Schedule = "ring-allreduce"
	// RDAllreduce is recursive doubling: log2(n) exchanges of the full
	// vector (latency-optimal; requires a power-of-two node count).
	RDAllreduce Schedule = "rd-allreduce"
	// Alltoall is a pairwise exchange: n-1 rounds, each node trading
	// a 1/n chunk with one partner per round (XOR partners on
	// power-of-two machines, ring offsets otherwise).
	Alltoall Schedule = "alltoall"
	// Broadcast is a binomial tree from node 0: ceil(log2(n)) rounds,
	// doubling the holder set each round.
	Broadcast Schedule = "broadcast"
)

// Schedules lists every collective schedule in display order.
func Schedules() []Schedule {
	return []Schedule{RingAllreduce, RDAllreduce, Alltoall, Broadcast}
}

// ParseSchedule resolves a CLI spelling, listing the valid values on
// a typo.
func ParseSchedule(s string) (Schedule, error) {
	for _, sch := range Schedules() {
		if s == string(sch) {
			return sch, nil
		}
	}
	names := make([]string, 0, len(Schedules()))
	for _, sch := range Schedules() {
		names = append(names, string(sch))
	}
	return "", fmt.Errorf("dcn: unknown schedule %q (valid: %s)", s, strings.Join(names, ", "))
}
