package dcn

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	// rpcPollQuantum bounds an idle front-end's sleep between drain
	// passes (mirrors internal/workload's poll quantum).
	rpcPollQuantum = 256
	// rpcIssueBatch bounds how many due arrivals a front-end issues
	// before draining replies again, so deep overload cannot starve
	// the serving side (see workload.addClosedPopulation).
	rpcIssueBatch = 64
	// rpcRetryCycles is how long a front-end sleeps before retrying a
	// refused leg admission when it has nothing to drain.
	rpcRetryCycles = 16
)

// Tier describes one hop of a fan-out call: every caller at this hop
// contacts Fanout servers, each of which spends an exponentially
// distributed service time (mean ServiceCycles) before fanning out to
// the next tier (if any) and eventually replying.
type Tier struct {
	// Fanout is how many backends each caller touches (>= 1).
	Fanout int
	// ServiceCycles is the mean exponential per-request service time
	// charged at the server before it replies or fans out.
	ServiceCycles int
	// ReqBytes and RepBytes size the request and reply payloads.
	ReqBytes, RepBytes int
}

// RPCSpec configures one RPC fan-out measurement.
type RPCSpec struct {
	// Clients is the total simulated client population, spread evenly
	// across the machine's front-ends. Think of it as concurrent users:
	// each client thinks (mean ThinkCycles), issues one root call, and
	// waits for its completion.
	Clients int
	// ThinkCycles is the mean client think time; Clients/ThinkCycles
	// sets the machine-wide offered call rate.
	ThinkCycles int
	// ClientZipfS skews per-client weights (client 0 hottest) exactly
	// like params.Workload.ClientZipfS; 0 is a uniform population.
	ClientZipfS float64
	// Tiers is the fan-out shape, root outward. Tiers[0] is the
	// front-end's own fan-out; later entries nest beneath it.
	Tiers []Tier
	// Hedge is the probability a root call is hedge-eligible: if an
	// eligible call is still incomplete HedgeAfterCycles after issue,
	// the front-end duplicates every outstanding leg to a fresh backend
	// and the first reply per leg wins (the tail-at-scale "hedged
	// request"). 0 disables hedging; must stay below 1.
	Hedge float64
	// HedgeAfterCycles is the hedge trigger delay.
	HedgeAfterCycles int
	// MaxInflight caps concurrent root calls per front-end; arrivals
	// beyond it queue (FIFO) and their queueing delay counts toward
	// latency — the overload/goodput regime.
	MaxInflight int
	// Seed feeds every random stream (arrivals, backends, service
	// times); same seed, same bytes.
	Seed uint64
}

// DefaultRPCSpec is a million-client fan-out at moderate load: with
// the default think time the population offers 100 KRPS machine-wide,
// a fraction of even the weakest NI's measured serving capacity, so
// tails reflect the straggler join rather than saturation.
func DefaultRPCSpec() RPCSpec {
	return RPCSpec{
		Clients:          1_000_000,
		ThinkCycles:      2_000_000_000,
		Tiers:            []Tier{{Fanout: 4, ServiceCycles: 100, ReqBytes: 64, RepBytes: 128}},
		Hedge:            0,
		HedgeAfterCycles: 20_000,
		// A small per-front-end cap: the measured goodput-maximising
		// point under deep overload. Larger caps push more outstanding
		// legs than the fabric can carry and congestion queueing, not
		// service, dominates (goodput collapses instead of plateauing).
		MaxInflight: 4,
		Seed:        1,
	}
}

// IncastSpec is the storage-read preset built on the fan-in
// primitive: tiny requests to fanout servers, bulk chunk replies that
// all converge on the caller at once.
func IncastSpec(fanout, chunkBytes int) RPCSpec {
	s := DefaultRPCSpec()
	s.Tiers = []Tier{{Fanout: fanout, ServiceCycles: 200, ReqBytes: 64, RepBytes: chunkBytes}}
	return s
}

// Validate rejects malformed specs.
func (s RPCSpec) Validate() error {
	if s.Clients < 1 {
		return fmt.Errorf("dcn: Clients must be >= 1, have %d", s.Clients)
	}
	if s.ThinkCycles < 1 {
		return fmt.Errorf("dcn: ThinkCycles must be >= 1, have %d", s.ThinkCycles)
	}
	if s.ClientZipfS < 0 || s.ClientZipfS > params.MaxZipfS {
		return fmt.Errorf("dcn: ClientZipfS must be in [0, %v], have %v", float64(params.MaxZipfS), s.ClientZipfS)
	}
	if len(s.Tiers) == 0 {
		return fmt.Errorf("dcn: at least one tier is required")
	}
	for i, t := range s.Tiers {
		if t.Fanout < 1 {
			return fmt.Errorf("dcn: tier %d fanout must be >= 1, have %d", i, t.Fanout)
		}
		if t.ServiceCycles < 0 {
			return fmt.Errorf("dcn: tier %d service cycles must be >= 0, have %d", i, t.ServiceCycles)
		}
		if t.ReqBytes < 1 || t.RepBytes < 1 {
			return fmt.Errorf("dcn: tier %d payload sizes must be >= 1, have req %d rep %d", i, t.ReqBytes, t.RepBytes)
		}
	}
	if s.Hedge < 0 || s.Hedge >= 1 {
		return fmt.Errorf("dcn: Hedge must be in [0, 1), have %v", s.Hedge)
	}
	if s.Hedge > 0 && s.HedgeAfterCycles < 1 {
		return fmt.Errorf("dcn: HedgeAfterCycles must be >= 1 when hedging, have %d", s.HedgeAfterCycles)
	}
	if s.MaxInflight < 1 {
		return fmt.Errorf("dcn: MaxInflight must be >= 1, have %d", s.MaxInflight)
	}
	return nil
}

// RPCReport is one measured RPC run.
type RPCReport struct {
	// OfferedKRPS and GoodputKRPS are machine-wide root-call arrival
	// and completion rates over the measurement window, in thousands
	// of calls per second at params.CPUMHz. Under overload Goodput
	// plateaus while Offered keeps climbing.
	OfferedKRPS, GoodputKRPS float64
	// Issued and Completed count root calls over the whole run.
	Issued, Completed uint64
	// Queued counts arrivals that waited behind the MaxInflight cap.
	Queued uint64
	// Hedges and HedgeWins count duplicate legs sent and the ones
	// whose duplicate replied first.
	Hedges, HedgeWins uint64
	// Latency is the root-call distribution (intended arrival to last
	// sub-reply, so front-end queueing counts), measurement window
	// only.
	Latency sim.Histogram
	// Straggler is the root join's first-to-last sub-reply gap — the
	// tail-at-scale cost of waiting for the slowest of k.
	Straggler sim.Histogram
}

// rpcCall is one root call's join state at its front-end.
type rpcCall struct {
	weight    float64  // population weight held while in flight
	start     sim.Time // intended arrival instant (queue wait included)
	deadline  sim.Time // hedge trigger, hedge-eligible calls only
	eligible  bool
	remaining int
	firstAt   sim.Time
	lastAt    sim.Time
	legs      []*rootLeg
}

// rootLeg is one root sub-request; replies echo it back, and the done
// flag makes the first (original or hedged) reply win.
type rootLeg struct {
	call     *rpcCall
	done     bool
	hedged   bool
	hedgeDst int
}

// midCall is a mid-tier server's pending join: it served a hop-`hop`
// request from parentSrc and replies upward (echoing parent) once its
// own fan-out has fully reported.
type midCall struct {
	hop       int
	parentSrc int
	parent    any
	remaining int
}

// rpcNode is one front-end's runtime state.
type rpcNode struct {
	self     int
	rng      *apps.Rand
	pop      *workload.Population
	inflight int
	queued   sim.FIFO[queuedCall]
	hedgeQ   []*rpcCall // deadline-ordered outstanding eligible calls
	hedgeAt  int        // scan position into hedgeQ
}

// queuedCall is an arrival parked behind the MaxInflight cap.
type queuedCall struct {
	weight float64
	start  sim.Time
}

// rpcRun holds one measurement's shared state.
type rpcRun struct {
	m       *scenario.Machine
	spec    RPCSpec
	n       int
	nodes   []*rpcNode
	warmEnd sim.Time
	endAt   sim.Time

	offeredWin, completedWin uint64

	lat, strag *sim.Histogram

	cCalls, cCompleted, cQueued *sim.Counter
	cFanout, cHedges, cWins     *sim.Counter
}

// exp draws an exponential variate with the given mean from rng.
func expDraw(rng *apps.Rand, mean float64) sim.Time {
	if mean <= 0 {
		return 0
	}
	g := -mean * math.Log(1-rng.Float())
	if g < 1 {
		return 1
	}
	return sim.Time(g)
}

// pickBackend draws a uniform backend excluding self.
func pickBackend(rng *apps.Rand, n, self int) int {
	d := rng.Intn(n - 1)
	if d >= self {
		d++
	}
	return d
}

// RunRPC executes spec's RPC fan-out workload on cfg's machine for
// warm + measure cycles and reports SLO telemetry from the
// measurement window. Latency histograms are also recorded into the
// machine's stats as "rpc.latency" and "rpc.straggler", and rpc.*
// counters track call/fan-out/hedge volume, so registry and trace
// plumbing see them for free.
func RunRPC(cfg params.Config, spec RPCSpec, warm, measure sim.Time) (RPCReport, error) {
	m, err := scenario.Build(cfg)
	if err != nil {
		return RPCReport{}, err
	}
	defer m.Close()
	return RunRPCOn(m, spec, warm, measure)
}

// RunRPCOn is RunRPC on a caller-built (fresh) machine; the caller
// keeps ownership, so trace recorders and counters stay inspectable
// after the run, and Close is the caller's job.
func RunRPCOn(m *scenario.Machine, spec RPCSpec, warm, measure sim.Time) (RPCReport, error) {
	if err := spec.Validate(); err != nil {
		return RPCReport{}, err
	}
	if m.Nodes() < 2 {
		return RPCReport{}, fmt.Errorf("dcn: RPC fan-out needs at least 2 nodes, have %d", m.Nodes())
	}
	start := m.Clock()
	r := &rpcRun{
		m:       m,
		spec:    spec,
		n:       m.Nodes(),
		warmEnd: start + warm,
		endAt:   start + warm + measure,
		lat:     m.Stats().Histogram("rpc.latency"),
		strag:   m.Stats().Histogram("rpc.straggler"),
	}
	st := m.Stats()
	r.cCalls = st.Counter("rpc.calls")
	r.cCompleted = st.Counter("rpc.completed")
	r.cQueued = st.Counter("rpc.queued")
	r.cFanout = st.Counter("rpc.fanout")
	r.cHedges = st.Counter("rpc.hedges")
	r.cWins = st.Counter("rpc.hedge_wins")

	// Spread the client population across front-ends; every node is
	// both a front-end and a backend.
	perNode := spec.Clients / r.n
	extra := spec.Clients % r.n
	wl := params.Workload{ClientZipfS: spec.ClientZipfS}
	sc := scenario.New()
	for id := 0; id < r.n; id++ {
		clients := perNode
		if id < extra {
			clients++
		}
		if clients < 1 {
			clients = 1
		}
		nd := &rpcNode{
			self: id,
			rng:  apps.NewRand(spec.Seed ^ uint64(id+1)*0x9E3779B97F4A7C15),
		}
		r.nodes = append(r.nodes, nd)
		set := workload.NewClientSet(workload.ClientWeights(wl, clients))
		r.installHandlers(id)
		self := id
		sc.At(id, func(ep *scenario.Endpoint) {
			nd.pop = set.Population(float64(spec.ThinkCycles), nd.rng, ep.Clock())
			r.frontEndLoop(ep, nd, self)
		})
	}
	m.RunUntil(sc, r.endAt)

	// Credit the arrival backlog: under deep overload a front-end can
	// end the run with intended arrivals it never got to take, and
	// offered load is a statement about demand, not about how much of
	// it the admission loop kept up with.
	for _, nd := range r.nodes {
		for nd.pop.NextAt() <= r.endAt {
			if nd.pop.NextAt() > r.warmEnd {
				r.offeredWin++
			}
			nd.pop.Take()
		}
	}

	window := float64(r.endAt - r.warmEnd)
	rep := RPCReport{
		OfferedKRPS: float64(r.offeredWin) * params.CPUMHz * 1000 / window,
		GoodputKRPS: float64(r.completedWin) * params.CPUMHz * 1000 / window,
		Issued:      r.cCalls.Value(),
		Completed:   r.cCompleted.Value(),
		Queued:      r.cQueued.Value(),
		Hedges:      r.cHedges.Value(),
		HedgeWins:   r.cWins.Value(),
		Latency:     *r.lat,
		Straggler:   *r.strag,
	}
	return rep, nil
}

// installHandlers wires the server and join handlers on node id.
func (r *rpcRun) installHandlers(id int) {
	nd := r.nodes[id]
	ep := r.m.Endpoint(id)
	ep.Handle(hRPCReq, func(d *scenario.Delivery) {
		var hop int
		if q, ok := d.Payload.(*midCall); ok {
			hop = q.hop + 1
		}
		t := r.spec.Tiers[hop]
		d.EP.Load(0x4000, d.Size)
		if t.ServiceCycles > 0 {
			d.EP.Compute(expDraw(nd.rng, float64(t.ServiceCycles)))
		}
		if hop+1 < len(r.spec.Tiers) {
			next := r.spec.Tiers[hop+1]
			mc := &midCall{hop: hop, parentSrc: d.Src, parent: d.Payload, remaining: next.Fanout}
			for j := 0; j < next.Fanout; j++ {
				r.cFanout.Inc()
				d.EP.SendTo(pickBackend(nd.rng, r.n, nd.self), hRPCReq, next.ReqBytes, mc)
			}
			return
		}
		d.EP.SendTo(d.Src, hRPCRep, t.RepBytes, d.Payload)
	})
	ep.Handle(hRPCRep, func(d *scenario.Delivery) {
		switch q := d.Payload.(type) {
		case *rootLeg:
			if q.done {
				return // the other copy of a hedged leg already won
			}
			q.done = true
			if q.hedged && d.Src == q.hedgeDst {
				r.cWins.Inc()
			}
			c := q.call
			now := d.EP.Clock()
			if c.remaining == len(c.legs) {
				c.firstAt = now
			}
			c.lastAt = now
			c.remaining--
			if c.remaining == 0 {
				r.completeCall(nd, c, now)
			}
		case *midCall:
			q.remaining--
			if q.remaining == 0 {
				d.EP.SendTo(q.parentSrc, hRPCRep, r.spec.Tiers[q.hop].RepBytes, q.parent)
			}
		}
	})
}

// completeCall retires a finished root call: telemetry and weight
// return. Backfill from the overload queue happens in the front-end
// loop — reply handlers run during drains, and issuing from inside a
// dispatch would nest dispatch again.
func (r *rpcRun) completeCall(nd *rpcNode, c *rpcCall, now sim.Time) {
	r.cCompleted.Inc()
	if now > r.warmEnd {
		r.completedWin++
		r.lat.Record(now - c.start)
		r.strag.Record(c.lastAt - c.firstAt)
	}
	nd.pop.Return(c.weight, now)
	nd.inflight--
}

// sendLeg transmits one root sub-request from the front-end loop.
// Unlike a handler's blocking SendTo, a refused admission drains (and
// so dispatches) incoming traffic before retrying: a congested
// front-end keeps serving replies and its own backend work instead of
// wedging the machine — the software analogue of §4.1 flow control
// one level up.
func (r *rpcRun) sendLeg(ep *scenario.Endpoint, dst, bytes int, leg *rootLeg) {
	for !ep.TrySendTo(dst, hRPCReq, bytes, leg) {
		if ep.Drain() == 0 {
			ep.Sleep(rpcRetryCycles)
		}
	}
}

// issueCall fans a root call out to Tiers[0].Fanout backends. Only
// the front-end loop calls it (sendLeg dispatches while blocked).
func (r *rpcRun) issueCall(ep *scenario.Endpoint, nd *rpcNode, weight float64, start sim.Time) {
	t := r.spec.Tiers[0]
	c := &rpcCall{
		weight:    weight,
		start:     start,
		remaining: t.Fanout,
		legs:      make([]*rootLeg, t.Fanout),
	}
	if r.spec.Hedge > 0 && nd.rng.Float() < r.spec.Hedge {
		c.eligible = true
		c.deadline = ep.Clock() + sim.Time(r.spec.HedgeAfterCycles)
		nd.hedgeQ = append(nd.hedgeQ, c)
	}
	r.cCalls.Inc()
	nd.inflight++
	for j := 0; j < t.Fanout; j++ {
		leg := &rootLeg{call: c}
		c.legs[j] = leg
		r.cFanout.Inc()
		r.sendLeg(ep, pickBackend(nd.rng, r.n, nd.self), t.ReqBytes, leg)
	}
}

// fireHedges duplicates every outstanding leg of calls whose hedge
// deadline has passed; each leg hedges at most once and the first
// reply wins.
func (r *rpcRun) fireHedges(ep *scenario.Endpoint, nd *rpcNode) bool {
	fired := false
	for nd.hedgeAt < len(nd.hedgeQ) && nd.hedgeQ[nd.hedgeAt].deadline <= ep.Clock() {
		c := nd.hedgeQ[nd.hedgeAt]
		nd.hedgeAt++
		if c.remaining == 0 {
			continue
		}
		t := r.spec.Tiers[0]
		for _, leg := range c.legs {
			if leg.done || leg.hedged {
				continue
			}
			leg.hedged = true
			leg.hedgeDst = pickBackend(nd.rng, r.n, nd.self)
			r.cHedges.Inc()
			fired = true
			r.sendLeg(ep, leg.hedgeDst, t.ReqBytes, leg)
		}
	}
	// Compact the scanned prefix occasionally so the queue stays small.
	if nd.hedgeAt > 1024 && nd.hedgeAt*2 >= len(nd.hedgeQ) {
		n := copy(nd.hedgeQ, nd.hedgeQ[nd.hedgeAt:])
		nd.hedgeQ = nd.hedgeQ[:n]
		nd.hedgeAt = 0
	}
	return fired
}

// frontEndLoop is one node's main program: admit client arrivals,
// fire due hedges, and serve traffic until the horizon.
func (r *rpcRun) frontEndLoop(ep *scenario.Endpoint, nd *rpcNode, self int) {
	for ep.Clock() < r.endAt {
		progress := false
		for b := 0; b < rpcIssueBatch && nd.pop.NextAt() <= ep.Clock(); b++ {
			start := nd.pop.NextAt()
			w := nd.pop.Take()
			if start > r.warmEnd {
				r.offeredWin++
			}
			progress = true
			if nd.inflight >= r.spec.MaxInflight {
				r.cQueued.Inc()
				nd.queued.Push(queuedCall{weight: w, start: start})
				continue
			}
			r.issueCall(ep, nd, w, start)
		}
		if r.fireHedges(ep, nd) {
			progress = true
		}
		if ep.Drain() > 0 {
			progress = true
		}
		// Backfill overload-queued arrivals freed up by completions the
		// drain just dispatched (issuing never nests inside a handler).
		for nd.inflight < r.spec.MaxInflight && nd.queued.Len() > 0 {
			qc := nd.queued.Pop()
			r.issueCall(ep, nd, qc.weight, qc.start)
			progress = true
		}
		if progress {
			continue
		}
		wait := sim.Time(rpcPollQuantum)
		if next := nd.pop.NextAt(); next > ep.Clock() && next-ep.Clock() < wait {
			wait = next - ep.Clock()
		}
		if nd.hedgeAt < len(nd.hedgeQ) {
			if d := nd.hedgeQ[nd.hedgeAt].deadline - ep.Clock(); d > 0 && d < wait {
				wait = d
			}
		}
		if wait > 0 {
			ep.Sleep(wait)
		}
	}
}
