package scenario

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/sim"
)

// inboxHandler is the reserved active-message handler id behind
// Endpoint.Send/Recv. Ids 90..99 belong to library services (the apps
// barrier) and user handlers start at 100 (apps.HApp); 1 is below
// both. Handle rejects it — overwriting the inbox registration would
// silently hang every Recv on the node.
const inboxHandler = 1

// Message is one user message as seen by Recv.
type Message struct {
	// Src is the sending node.
	Src int
	// Size is the payload size in bytes.
	Size int
	// Payload is the logical content the sender attached.
	Payload any
}

// Handler is an active-message handler: it runs on the receiving
// node's process during one of that node's polls (Recv, Poll,
// PollUntil, Drain). A blocked Send only buffers incoming messages —
// it never dispatches handlers — so handlers need no reentrancy
// guard against the node's own sends.
type Handler func(d *Delivery)

// Delivery is what a Handler receives. It is valid only for the
// duration of the handler call (the box is recycled afterwards);
// handlers copy the fields they keep.
type Delivery struct {
	// EP is the receiving node's endpoint; handler code uses it to
	// reply, compute, or touch memory at the receiver's cost.
	EP *Endpoint
	// Src is the sending node.
	Src int
	// Size is the full user-message payload size in bytes.
	Size int
	// Payload is the logical content the sender attached.
	Payload any
}

// Endpoint is one node's interface to the simulated machine. Its
// methods charge the configured NI/bus/fabric costs to the node's
// process, so they may only be called from that node's scenario body
// (or from a Handler dispatched on it). Handle may additionally be
// called before Run, while wiring a scenario up.
type Endpoint struct {
	m    *Machine
	node *machine.Node
	p    *sim.Process // bound while the node's scenario body runs

	inbox sim.FIFO[Message]

	// dlvFree recycles Delivery boxes, which escape through the
	// Handler interface — one per dispatched user message otherwise.
	// A free list (not a single slot) keeps a handler that drains
	// nested deliveries safe.
	dlvFree []*Delivery
}

// ID returns the node id.
func (ep *Endpoint) ID() int { return ep.node.ID }

// Clock returns the current simulated time in cycles — the node's own
// shard clock on a sharded machine (the only clock its process can
// coherently observe mid-run).
func (ep *Endpoint) Clock() sim.Time {
	if ep.p != nil {
		return ep.p.Now()
	}
	return ep.m.Clock()
}

// Handle installs h for active-message handler id. Handlers must be
// installed before traffic with that id arrives; re-installation
// replaces. Registration is free in simulated time. Id 1 is reserved
// for the endpoint inbox (Send/Recv) and is rejected.
func (ep *Endpoint) Handle(id int, h Handler) {
	if id == inboxHandler {
		panic(fmt.Sprintf("scenario: handler id %d is reserved for the endpoint inbox", inboxHandler))
	}
	ep.node.Msgr.Register(id, func(c *msg.Context) {
		var d *Delivery
		if n := len(ep.dlvFree); n > 0 {
			d = ep.dlvFree[n-1]
			ep.dlvFree = ep.dlvFree[:n-1]
		} else {
			d = new(Delivery)
		}
		*d = Delivery{EP: ep, Src: c.Src, Size: c.Size, Payload: c.Payload}
		h(d)
		d.Payload = nil
		ep.dlvFree = append(ep.dlvFree, d)
	})
}

// Send transmits size payload bytes to dst's inbox (Recv on the far
// side). It blocks in simulated time until the NI accepts every
// fragment, running the messaging layer's software flow control
// (§4.1) while blocked.
func (ep *Endpoint) Send(dst, size int, payload any) {
	ep.node.Msgr.Send(ep.p, dst, inboxHandler, size, payload)
}

// TrySend is Send without the blocking flow control: if the NI
// refuses the message's first fragment it returns false and nothing
// was sent (the failed admission check's cost is still charged, as
// the hardware would). Once the first fragment is admitted the send
// is committed and any remaining fragments use the blocking path.
func (ep *Endpoint) TrySend(dst, size int, payload any) bool {
	return ep.node.Msgr.TrySend(ep.p, dst, inboxHandler, size, payload)
}

// Recv blocks (in simulated time) until a message addressed to this
// node's inbox arrives, polling the NI and dispatching any other
// handlers' traffic along the way.
func (ep *Endpoint) Recv() Message {
	for ep.inbox.Len() == 0 {
		ep.node.Msgr.Poll(ep.p)
	}
	return ep.inbox.Pop()
}

// TryRecv performs one poll and returns an inbox message if one is
// (or just became) available.
func (ep *Endpoint) TryRecv() (Message, bool) {
	if ep.inbox.Len() == 0 {
		ep.node.Msgr.Poll(ep.p)
	}
	if ep.inbox.Len() == 0 {
		return Message{}, false
	}
	return ep.inbox.Pop(), true
}

// SendTo transmits size payload bytes to the given active-message
// handler on dst, blocking like Send. It is the general form behind
// Send; the paper's benchmarks are written with it.
func (ep *Endpoint) SendTo(dst, handler, size int, payload any) {
	ep.node.Msgr.Send(ep.p, dst, handler, size, payload)
}

// TrySendTo is TrySend aimed at an explicit handler.
func (ep *Endpoint) TrySendTo(dst, handler, size int, payload any) bool {
	return ep.node.Msgr.TrySend(ep.p, dst, handler, size, payload)
}

// Poll checks for one incoming message and dispatches its handler if
// it completes a user message; it reports whether a network message
// was consumed. One poll costs the messaging layer's loop overhead
// even when idle.
func (ep *Endpoint) Poll() bool { return ep.node.Msgr.Poll(ep.p) }

// PollUntil polls until pred is true, advancing simulated time each
// iteration (handlers run inline and typically change pred's inputs).
func (ep *Endpoint) PollUntil(pred func() bool) {
	ep.node.Msgr.PollUntil(ep.p, pred)
}

// Drain dispatches everything currently available without blocking
// and returns the number of network messages consumed.
func (ep *Endpoint) Drain() int { return ep.node.Msgr.DrainAvailable(ep.p) }

// Compute charges n cycles of local computation.
func (ep *Endpoint) Compute(n sim.Time) { ep.node.CPU.Compute(ep.p, n) }

// Load reads bytes from the node's private user region at byte
// offset off, through the processor cache (hits cost a cycle, misses
// real bus traffic).
func (ep *Endpoint) Load(off uint64, bytes int) {
	ep.node.CPU.LoadRange(ep.p, machine.UserBase+off, bytes)
}

// Store writes bytes to the node's private user region at byte
// offset off, through the processor cache.
func (ep *Endpoint) Store(off uint64, bytes int) {
	ep.node.CPU.StoreRange(ep.p, machine.UserBase+off, bytes)
}

// Sleep suspends the node's process for d cycles.
func (ep *Endpoint) Sleep(d sim.Time) { ep.p.Sleep(d) }

// Sent returns how many user messages this endpoint has dispatched.
func (ep *Endpoint) Sent() uint64 { return ep.node.Msgr.Sent }

// Received returns how many user messages this endpoint has
// delivered to handlers.
func (ep *Endpoint) Received() uint64 { return ep.node.Msgr.Received }
