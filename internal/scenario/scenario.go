// Package scenario is the user-scriptable layer over the simulated
// machine — the programmable interface the paper argues a coherent NI
// makes possible. Build constructs the machine once (nodes, caches,
// buses, NI design, interconnect fabric) and hands out one Endpoint
// per node; a Scenario is an ordered set of per-node Go functions
// that run as simulated processes and communicate through those
// Endpoints over the configured NI exactly as the paper's own
// benchmarks do. Machine.Run executes a scenario and returns a typed
// Trace (runtime cycles, per-counter deltas, latency histograms).
//
// internal/apps (the five macrobenchmarks and the microbenchmarks)
// and internal/workload (the traffic generators) are ordinary
// consumers of this API: everything they measure can be expressed by
// user code, and the timing of a scenario is byte-for-byte the timing
// of the equivalent hand-wired machine program.
package scenario

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/params"
	"repro/internal/sim"
)

// Machine is one built simulated machine with per-node Endpoints.
// Build it once, run any number of scenarios on it (simulated time
// accumulates across runs), and Close it when done.
type Machine struct {
	m   *machine.Machine
	eps []*Endpoint
}

// Build constructs a simulated machine for cfg. Unlike the low-level
// machine constructor it reports invalid configurations as errors.
func Build(cfg params.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	capture := applyDefaultTrace(&cfg)
	sm := &Machine{m: machine.New(cfg)}
	if capture {
		captureTrace(sm)
	}
	for _, n := range sm.m.Nodes {
		ep := &Endpoint{m: sm, node: n}
		// The inbox handler backs Endpoint.Recv; registration is free
		// in simulated time and inert until someone sends to the inbox.
		n.Msgr.Register(inboxHandler, func(c *msg.Context) {
			ep.inbox.Push(Message{Src: c.Src, Size: c.Size, Payload: c.Payload})
		})
		sm.eps = append(sm.eps, ep)
	}
	return sm, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() params.Config { return m.m.Cfg }

// Nodes returns the node count.
func (m *Machine) Nodes() int { return len(m.eps) }

// Endpoint returns node id's endpoint.
func (m *Machine) Endpoint(id int) *Endpoint { return m.eps[id] }

// Clock returns the current simulated time in cycles (on a sharded
// machine, the global time of the last barrier alignment).
func (m *Machine) Clock() sim.Time { return m.m.Now() }

// Sharded reports whether the machine runs on the sharded
// conservative-lookahead engine (params.Config.Shards).
func (m *Machine) Sharded() bool { return m.m.Sharded() }

// BusOccupancy returns total busy cycles summed over all nodes'
// memory buses since construction (§5.2's occupancy metric). It may
// be sampled mid-run from inside a scenario body.
func (m *Machine) BusOccupancy() sim.Time { return m.m.MemBusOccupancy() }

// Counter returns the current value of a named statistics counter
// (e.g. "net.msg", "net.bytes"), cumulative since construction.
func (m *Machine) Counter(name string) uint64 { return m.m.Stats.Get(name) }

// Stats exposes the underlying statistics sink for diagnostic dumps.
func (m *Machine) Stats() *sim.Stats { return m.m.Stats }

// Advance continues a horizon-stopped machine to a later horizon with
// no scenario bookkeeping — no spawns, counter snapshots, or trace
// deltas. It is the stepping primitive the steady-state allocation
// pins drive windows with; measurement runs use RunUntil.
func (m *Machine) Advance(horizon sim.Time) { m.m.Run(horizon) }

// EventsScheduled returns how many events the machine's engine has
// scheduled since construction (shard 0's engine on a sharded
// machine).
func (m *Machine) EventsScheduled() uint64 { return m.m.Eng.Scheduled() }

// Close unwinds the machine's device processes. Call once, after the
// final Run.
func (m *Machine) Close() { m.m.Stop() }

// nodeProc is one scenario entry: body runs as node's process.
type nodeProc struct {
	node int
	body NodeFunc
}

// NodeFunc is one node's program within a scenario. It runs as that
// node's simulated process; every Endpoint method charges the
// simulated costs of the configured NI, bus, and fabric.
type NodeFunc func(ep *Endpoint)

// Scenario is an ordered set of node programs. Order matters for
// determinism: processes are spawned (and first activated) in the
// order they were added, so two runs of the same scenario on
// identically-configured machines are byte-identical.
type Scenario struct {
	procs []nodeProc
}

// New returns an empty scenario.
func New() *Scenario { return &Scenario{} }

// At appends a program for node id and returns the scenario for
// chaining. A node may host at most one program per Run.
func (s *Scenario) At(node int, body NodeFunc) *Scenario {
	s.procs = append(s.procs, nodeProc{node: node, body: body})
	return s
}

// Run executes the scenario to completion — until no simulated work
// remains — and returns its trace.
func (m *Machine) Run(s *Scenario) *Trace { return m.RunUntil(s, sim.Forever) }

// RunUntil executes the scenario until no work remains or the clock
// would pass horizon, whichever is first. A horizon-stopped machine
// may still hold parked processes; Close (not another Run) is the
// only safe next step for it.
func (m *Machine) RunUntil(s *Scenario, horizon sim.Time) *Trace {
	seen := make(map[int]bool, len(s.procs))
	for _, pr := range s.procs {
		if pr.node < 0 || pr.node >= len(m.eps) {
			panic(fmt.Sprintf("scenario: node %d out of range [0,%d)", pr.node, len(m.eps)))
		}
		if seen[pr.node] {
			panic(fmt.Sprintf("scenario: node %d has two programs", pr.node))
		}
		seen[pr.node] = true
	}
	start := m.m.Now()
	startBus := m.m.MemBusOccupancy()
	startCounters := m.snapshot()
	startHists := make(map[string]sim.Histogram)
	for _, name := range m.m.Stats.Histograms() {
		startHists[name] = *m.m.Stats.Histogram(name)
	}
	for _, pr := range s.procs {
		ep := m.eps[pr.node]
		body := pr.body
		m.m.Spawn(pr.node, func(p *sim.Process, _ *machine.Node) {
			ep.p = p
			body(ep)
		})
	}
	end := m.m.Run(horizon)
	tr := &Trace{
		Start:        start,
		End:          end,
		BusOccupancy: m.m.MemBusOccupancy() - startBus,
		Counters:     make(map[string]uint64),
		Histograms:   make(map[string]sim.Histogram),
	}
	for _, name := range m.m.Stats.Counters() {
		if d := m.m.Stats.Get(name) - startCounters[name]; d != 0 {
			tr.Counters[name] = d
		}
	}
	for _, name := range m.m.Stats.Histograms() {
		prev := startHists[name] // zero value for histograms born mid-run
		tr.Histograms[name] = m.m.Stats.Histogram(name).DeltaSince(&prev)
	}
	return tr
}

// snapshot copies the current counter values.
func (m *Machine) snapshot() map[string]uint64 {
	names := m.m.Stats.Counters()
	out := make(map[string]uint64, len(names))
	for _, name := range names {
		out[name] = m.m.Stats.Get(name)
	}
	return out
}

// Trace is one scenario run's typed result.
type Trace struct {
	// Start and End bracket the run in simulated cycles: Start is the
	// clock when Run was called, End the time of the last executed
	// event (for a first run on a fresh machine, End is the runtime).
	Start, End sim.Time
	// BusOccupancy is the memory-bus busy cycles consumed during the
	// run, summed over all nodes.
	BusOccupancy sim.Time
	// Counters holds every statistics counter that moved during the
	// run, as deltas (e.g. "net.msg" network messages, "net.bytes"
	// network payload bytes).
	Counters map[string]uint64
	// Histograms holds every latency histogram's distribution over
	// this run (notably "net.delivery", the fabric's
	// admission-to-delivery distribution). Like Counters, they are
	// per-run deltas, so back-to-back runs stay independent; the
	// window's min/max are reconstructed within the histogram's usual
	// quantile error bound when an earlier run holds the lifetime
	// extremes.
	Histograms map[string]sim.Histogram
}

// Cycles returns the run's simulated duration.
func (t *Trace) Cycles() sim.Time { return t.End - t.Start }

// Counter returns a counter delta (zero if it never moved).
func (t *Trace) Counter(name string) uint64 { return t.Counters[name] }

// Histogram returns a named histogram copy (zero-valued if absent).
func (t *Trace) Histogram(name string) sim.Histogram { return t.Histograms[name] }

// Micros converts the run's duration to microseconds.
func (t *Trace) Micros() float64 { return machine.Microseconds(t.Cycles()) }
