package scenario

import (
	"strings"
	"testing"

	"repro/internal/params"
)

func cfg2() params.Config {
	return params.Config{Nodes: 2, NI: params.CNI512Q, Bus: params.MemoryBus}
}

func TestBuildRejectsInvalidConfig(t *testing.T) {
	if _, err := Build(params.Config{Nodes: 1, NI: params.NI2w, Bus: params.MemoryBus}); err == nil {
		t.Fatal("1-node config should be rejected")
	}
	if _, err := Build(params.Config{Nodes: 2, NI: params.CNI16Qm, Bus: params.IOBus}); err == nil {
		t.Fatal("CNI16Qm@io should be rejected")
	}
}

func TestSendRecvAndTrace(t *testing.T) {
	m, err := Build(cfg2())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var got Message
	var sentAt, recvAt uint64
	sc := New().
		At(0, func(ep *Endpoint) {
			if ep.ID() != 0 {
				t.Errorf("endpoint 0 reports id %d", ep.ID())
			}
			sentAt = uint64(ep.Clock())
			ep.Send(1, 64, "hello")
		}).
		At(1, func(ep *Endpoint) {
			got = ep.Recv()
			recvAt = uint64(ep.Clock())
		})
	tr := m.Run(sc)

	if got.Src != 0 || got.Size != 64 || got.Payload != "hello" {
		t.Fatalf("received %+v", got)
	}
	if recvAt <= sentAt {
		t.Fatalf("receive at %d not after send at %d", recvAt, sentAt)
	}
	if tr.Cycles() == 0 || tr.End == 0 {
		t.Fatalf("empty trace window: %+v", tr)
	}
	if tr.Counter("net.msg") != 1 {
		t.Fatalf("net.msg delta = %d, want 1", tr.Counter("net.msg"))
	}
	if tr.Counter("net.bytes") == 0 {
		t.Fatal("no network bytes recorded")
	}
	if tr.BusOccupancy == 0 {
		t.Fatal("no memory-bus occupancy recorded")
	}
	if h := tr.Histogram("net.delivery"); h.Count() != 1 {
		t.Fatalf("net.delivery count = %d, want 1", h.Count())
	}
}

func TestHandlersAndSendTo(t *testing.T) {
	m, err := Build(cfg2())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const hEcho = 200
	pongs := 0
	m.Endpoint(1).Handle(hEcho, func(d *Delivery) {
		// Reply from inside the handler, at the receiver's cost.
		d.EP.Compute(10)
		d.EP.SendTo(d.Src, hEcho+1, d.Size, nil)
	})
	m.Endpoint(0).Handle(hEcho+1, func(d *Delivery) { pongs++ })
	done := false
	sc := New().
		At(0, func(ep *Endpoint) {
			for i := 0; i < 3; i++ {
				ep.SendTo(1, hEcho, 32, nil)
				want := i + 1
				ep.PollUntil(func() bool { return pongs == want })
			}
			done = true
		}).
		At(1, func(ep *Endpoint) {
			ep.PollUntil(func() bool { return done })
		})
	m.Run(sc)
	if pongs != 3 {
		t.Fatalf("pongs = %d, want 3", pongs)
	}
}

// TestTrySendBackpressure fills a shallow NI without draining the far
// side: TrySend must eventually refuse instead of deadlocking the
// sender, and everything sent before the refusal must still arrive.
func TestTrySendBackpressure(t *testing.T) {
	cfg := params.Config{Nodes: 2, NI: params.NI2w, Bus: params.MemoryBus}
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	accepted := 0
	drained := 0
	sc := New().
		At(0, func(ep *Endpoint) {
			// The NI2w FIFO holds two messages and node 1 is not
			// draining yet, so refusals must appear well before 64.
			for i := 0; i < 64; i++ {
				if !ep.TrySend(1, 100, i) {
					break
				}
				accepted++
			}
		}).
		At(1, func(ep *Endpoint) {
			ep.Compute(500_000) // stay silent until node 0 gives up
			for {
				if _, ok := ep.TryRecv(); ok {
					drained++
					continue
				}
				break
			}
		})
	m.Run(sc)
	if accepted == 0 || accepted >= 64 {
		t.Fatalf("accepted %d sends; want backpressure between 1 and 63", accepted)
	}
	if drained != accepted {
		t.Fatalf("drained %d != accepted %d", drained, accepted)
	}
	if m.Endpoint(0).Sent() != uint64(accepted) {
		t.Fatalf("Sent() = %d, want %d", m.Endpoint(0).Sent(), accepted)
	}
}

func TestSequentialRunsAccumulateTime(t *testing.T) {
	m, err := Build(cfg2())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ping := func(ep *Endpoint) { ep.Send(1, 16, nil) }
	pong := func(ep *Endpoint) { ep.Recv() }
	tr1 := m.Run(New().At(0, ping).At(1, pong))
	tr2 := m.Run(New().At(0, ping).At(1, pong))
	if tr2.Start != tr1.End {
		t.Fatalf("second run starts at %d, first ended at %d", tr2.Start, tr1.End)
	}
	if tr2.Counter("net.msg") != 1 {
		t.Fatalf("second run's net.msg delta = %d, want 1 (deltas must not accumulate)", tr2.Counter("net.msg"))
	}
	// Histograms are per-run too: the second run's delivery histogram
	// holds only its own sample.
	if h := tr2.Histogram("net.delivery"); h.Count() != 1 {
		t.Fatalf("second run's net.delivery count = %d, want 1", h.Count())
	}
}

func TestRunRejectsBadScenarios(t *testing.T) {
	m, err := Build(cfg2())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	expectPanic := func(name, want string, sc *Scenario) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: expected panic", name)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Errorf("%s: panic %v does not mention %q", name, r, want)
			}
		}()
		m.Run(sc)
	}
	expectPanic("out of range", "out of range", New().At(7, func(*Endpoint) {}))
	expectPanic("duplicate", "two programs", New().At(0, func(*Endpoint) {}).At(0, func(*Endpoint) {}))
}

// TestHandleRejectsInboxID pins that a user cannot clobber the
// reserved inbox registration (that would silently hang every Recv).
func TestHandleRejectsInboxID(t *testing.T) {
	m, err := Build(cfg2())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer func() {
		r := recover()
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "reserved") {
			t.Errorf("Handle(inboxHandler) panic = %v, want a reserved-id message", r)
		}
	}()
	m.Endpoint(0).Handle(inboxHandler, func(*Delivery) {})
}
