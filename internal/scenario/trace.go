package scenario

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/params"
	"repro/internal/trace"
)

// Telemetry accessors. The run-result type of this package is already
// named Trace (a scenario's typed outcome), so the telemetry
// subsystem's handles keep their internal/trace names here:
// TraceRecorder and TraceSampler.

// TraceRecorder returns the machine's lifecycle recorder, nil when
// Config.Trace is inactive.
func (m *Machine) TraceRecorder() *trace.Recorder { return m.m.Rec }

// TraceSampler returns the machine's time-series sampler, nil unless
// Config.Trace.SampleEvery is set.
func (m *Machine) TraceSampler() *trace.Sampler { return m.m.Smp }

// WriteTrace exports the machine's recorded telemetry as Chrome
// trace-event JSON (Perfetto-loadable). Errors when tracing was never
// configured.
func (m *Machine) WriteTrace(w io.Writer) (trace.Summary, error) {
	if m.m.Rec == nil {
		return trace.Summary{}, fmt.Errorf("scenario: machine built without tracing (set Config.Trace)")
	}
	return trace.WriteChrome(w, trace.Capture{Label: m.m.Cfg.Name(), Rec: m.m.Rec, Smp: m.m.Smp})
}

// The default-trace collector backs cnisim's global --trace flag: any
// machine Built while a default spec is set gets that spec (unless
// its config already carries one) and its telemetry handles are
// collected for a merged export when the command finishes. Guarded by
// a mutex because the experiment harness Builds machines from
// parallel worker goroutines.
var defTrace struct {
	sync.Mutex
	spec params.Trace
	caps []trace.Capture
	seq  int
}

// SetDefaultTrace installs spec as the default trace configuration
// for subsequently Built machines (a zero spec turns collection off).
func SetDefaultTrace(spec params.Trace) {
	defTrace.Lock()
	defer defTrace.Unlock()
	defTrace.spec = spec
	defTrace.caps = nil
	defTrace.seq = 0
}

// DrainCaptures returns every capture collected since the last
// SetDefaultTrace/DrainCaptures, sorted by label — a deterministic
// merge order regardless of which worker goroutine Built which
// machine.
func DrainCaptures() []trace.Capture {
	defTrace.Lock()
	defer defTrace.Unlock()
	caps := defTrace.caps
	defTrace.caps = nil
	sort.SliceStable(caps, func(i, j int) bool { return caps[i].Label < caps[j].Label })
	return caps
}

// applyDefaultTrace injects the default spec into cfg (when cfg has
// none of its own) and reports whether this Build should be captured.
func applyDefaultTrace(cfg *params.Config) bool {
	defTrace.Lock()
	defer defTrace.Unlock()
	if !defTrace.spec.Active() {
		return false
	}
	if !cfg.Trace.Active() {
		cfg.Trace = defTrace.spec
	}
	return true
}

// captureTrace registers a Built machine's telemetry for the merged
// export, labelled by config name plus a collection sequence number
// (configs repeat across sweep cells; labels must not).
func captureTrace(m *Machine) {
	defTrace.Lock()
	defer defTrace.Unlock()
	defTrace.caps = append(defTrace.caps,
		trace.Capture{Label: fmt.Sprintf("%s#%d", m.m.Cfg.Name(), defTrace.seq), Rec: m.m.Rec, Smp: m.m.Smp})
	defTrace.seq++
}

// WriteCaptures exports a capture set as one merged Chrome
// trace-event JSON document.
func WriteCaptures(w io.Writer, caps []trace.Capture) (trace.Summary, error) {
	return trace.WriteChrome(w, caps...)
}
