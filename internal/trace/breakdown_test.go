package trace_test

import (
	"reflect"
	"testing"

	"repro/internal/params"
)

// TestBreakdownStages: the per-hop decomposition matches the golden
// scenario's known message population — six user messages, every
// fragment's fabric span closed, and each stage's samples consistent
// with the run.
func TestBreakdownStages(t *testing.T) {
	m, _, got := goldenScenario(t,
		params.Trace{Enabled: true, RingSize: 4096}, params.Faults{})
	defer m.Close()
	if got != [4]int{0, 1, 2, 3} {
		t.Fatalf("deliveries = %v, want [0 1 2 3]", got)
	}
	b := m.TraceRecorder().ComputeBreakdown()
	if b.Msgs != 6 {
		t.Errorf("breakdown matched %d user messages, want 6", b.Msgs)
	}
	if b.Frags == 0 || b.Fabric.Count() != b.Frags {
		t.Errorf("fabric stage has %d samples for %d fragments", b.Fabric.Count(), b.Frags)
	}
	if b.Stall.Count() != b.Frags {
		t.Errorf("stall stage has %d samples for %d fragments", b.Stall.Count(), b.Frags)
	}
	if b.Dispatch.Count() != b.Msgs {
		t.Errorf("dispatch stage has %d samples for %d messages", b.Dispatch.Count(), b.Msgs)
	}
	// On the torus a fragment spends at least a hop in the fabric.
	if b.Fabric.Min() < params.TorusHopLatency {
		t.Errorf("fabric min %d below one torus hop", b.Fabric.Min())
	}
}

// TestBreakdownDeterministic: identical runs decompose identically.
func TestBreakdownDeterministic(t *testing.T) {
	run := func() interface{} {
		m, _, _ := goldenScenario(t,
			params.Trace{Enabled: true, RingSize: 4096}, params.Faults{})
		defer m.Close()
		return m.TraceRecorder().ComputeBreakdown()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("breakdowns differ:\n  a: %+v\n  b: %+v", a, b)
	}
}

// TestBreakdownExcludesAcks: with faults forcing retransmit/ack
// traffic, the breakdown still only counts user payload messages.
func TestBreakdownExcludesAcks(t *testing.T) {
	m, _, _ := goldenScenario(t,
		params.Trace{Enabled: true, RingSize: 4096},
		params.Faults{Seed: 3, DropProb: 0.05})
	defer m.Close()
	b := m.TraceRecorder().ComputeBreakdown()
	if b.Msgs != 6 {
		t.Errorf("faulted breakdown matched %d user messages, want 6", b.Msgs)
	}
}
