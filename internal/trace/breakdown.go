package trace

import (
	"sort"

	"repro/internal/sim"
)

// Breakdown is the per-hop latency decomposition of every traced user
// message: where the time went between a sender calling into the NI
// and the receiver's handler running. It is derived entirely from the
// lifecycle rings, so it costs nothing during the run and reflects
// exactly the records that survived ring wrap (best effort on
// wrapped rings, exact otherwise — check Recorder.Overwritten).
type Breakdown struct {
	// Stall is inject → admit per fragment: cycles spent blocked in NI
	// admission (sliding-window stalls) before the fabric took the
	// fragment.
	Stall sim.Histogram
	// Fabric is admit → deliver per fragment: cycles in the
	// interconnect, serialisation and routing included.
	Fabric sim.Histogram
	// Dispatch is last-fragment delivery → user.deliver per message:
	// cycles between the data arriving and the destination's poll loop
	// reassembling and running the handler — the receiver's share of
	// the latency.
	Dispatch sim.Histogram
	// Frags and Msgs count matched fragment spans and user messages.
	Frags, Msgs uint64
}

// breakKey identifies a fragment across its lifecycle records.
type breakKey struct {
	src, dst int32
	id       uint64
	frag     uint8
}

// breakUserKey identifies a reassembled user message.
type breakUserKey struct {
	src, dst int32
	id       uint64
}

// ComputeBreakdown walks the recorder's rings and matches
// inject→admit→deliver→user.deliver chains into per-stage
// distributions. Ack frames and fault-injected duplicates are
// excluded — the breakdown describes user payload only. Spans are
// matched FIFO per fragment key, the same discipline the Perfetto
// export uses.
func (r *Recorder) ComputeBreakdown() Breakdown {
	var all []Record
	var buf []Record
	for n := 0; n < r.Nodes(); n++ {
		buf = r.records(n, buf[:0])
		all = append(all, buf...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })

	var b Breakdown
	injects := make(map[breakKey][]uint64)
	admits := make(map[breakKey][]uint64)
	lastDeliver := make(map[breakUserKey]uint64)
	pop := func(m map[breakKey][]uint64, k breakKey) (uint64, bool) {
		q := m[k]
		if len(q) == 0 {
			return 0, false
		}
		m[k] = q[1:]
		return q[0], true
	}
	for i := range all {
		rec := &all[i]
		if rec.Flags&(FlagAck|FlagDup) != 0 {
			continue
		}
		k := breakKey{rec.Src, rec.Dst, rec.ID, rec.Frag}
		switch rec.Kind {
		case KInject:
			injects[k] = append(injects[k], rec.At)
		case KAdmit:
			if at, ok := pop(injects, k); ok {
				b.Stall.Record(sim.Time(rec.At - at))
			}
			admits[k] = append(admits[k], rec.At)
		case KDeliver:
			if at, ok := pop(admits, k); ok {
				b.Fabric.Record(sim.Time(rec.At - at))
				b.Frags++
			}
			lastDeliver[breakUserKey{rec.Src, rec.Dst, rec.ID}] = rec.At
		case KUserDeliver:
			uk := breakUserKey{rec.Src, rec.Dst, rec.ID}
			if at, ok := lastDeliver[uk]; ok {
				b.Dispatch.Record(sim.Time(rec.At - at))
				b.Msgs++
				delete(lastDeliver, uk)
			}
		}
	}
	return b
}
