package trace

import (
	"testing"

	"repro/internal/sim"
)

func TestRecorderRingWrap(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 2, 4)
	if r.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2", r.Nodes())
	}
	for i := 0; i < 10; i++ {
		r.Note(1, KInject, uint64(i), -1, 1, 0, 0, 0)
	}
	if got := r.Len(1); got != 4 {
		t.Errorf("Len(1) = %d, want 4 (ring capacity)", got)
	}
	if got := r.Len(0); got != 0 {
		t.Errorf("Len(0) = %d, want 0 (untouched ring)", got)
	}
	if got := r.Overwritten(); got != 6 {
		t.Errorf("Overwritten = %d, want 6", got)
	}
	// A wrapped ring keeps the newest records, oldest first.
	recs := r.records(1, nil)
	if len(recs) != 4 {
		t.Fatalf("records: %d, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(6 + i); rec.ID != want {
			t.Errorf("records[%d].ID = %d, want %d", i, rec.ID, want)
		}
		if rec.Kind != KInject || rec.Src != 1 || rec.Dst != 0 || rec.Link != -1 {
			t.Errorf("records[%d] = %+v: fields not preserved", i, rec)
		}
	}
}

func TestRecorderPartialRing(t *testing.T) {
	e := sim.NewEngine()
	r := NewRecorder(e, 1, 8)
	r.Note(0, KAdmit, 42, -1, 0, 1, 3, FlagAck)
	recs := r.records(0, nil)
	if len(recs) != 1 {
		t.Fatalf("records: %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.ID != 42 || rec.Kind != KAdmit || rec.Frag != 3 || rec.Flags != FlagAck {
		t.Errorf("record = %+v", rec)
	}
	if r.Overwritten() != 0 {
		t.Errorf("Overwritten = %d on a non-wrapped ring", r.Overwritten())
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(1); k < kindCount; k++ {
		if k.String() == "?" {
			t.Errorf("Kind(%d) has no export name", k)
		}
	}
	if Kind(0).String() != "?" || kindCount.String() != "?" {
		t.Error("out-of-range kinds should render as ?")
	}
}

// TestSamplerColumns pins the columnar semantics: gauges sample
// point-in-time values, deltas report per-interval increments, and the
// tick stops itself at quiescence so RunAll terminates.
func TestSamplerColumns(t *testing.T) {
	e := sim.NewEngine()
	s := NewSampler(e, 10)
	g, n := 0.0, 0.0
	s.Gauge("g", func() float64 { return g })
	s.Delta("d", func() float64 { return n })
	e.Schedule(5, func() { g, n = 1, 3 })
	e.Schedule(25, func() { g, n = 2, 10 })
	s.Ensure()
	e.RunAll()
	// Ticks at 10 and 20 observe the t=5 state, the tick at 30 the
	// t=25 state; with nothing else pending at 30 the sampler stops.
	if s.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3 (times %v)", s.Rows(), s.Times())
	}
	if h := s.Header(); len(h) != 3 || h[0] != "cycle" || h[1] != "g" || h[2] != "d" {
		t.Errorf("Header = %v", h)
	}
	if ts := s.Times(); ts[0] != 10 || ts[1] != 20 || ts[2] != 30 {
		t.Errorf("Times = %v, want [10 20 30]", ts)
	}
	if gv := s.Values(0); gv[0] != 1 || gv[1] != 1 || gv[2] != 2 {
		t.Errorf("gauge series = %v, want [1 1 2]", gv)
	}
	if dv := s.Values(1); dv[0] != 3 || dv[1] != 0 || dv[2] != 7 {
		t.Errorf("delta series = %v, want [3 0 7]", dv)
	}
}

// TestSamplerReArms pins Ensure's contract for back-to-back runs: a
// sampler that stopped at quiescence resumes on the next Ensure.
func TestSamplerReArms(t *testing.T) {
	e := sim.NewEngine()
	s := NewSampler(e, 10)
	s.Gauge("g", func() float64 { return 0 })
	e.Schedule(5, func() {})
	s.Ensure()
	e.RunAll()
	first := s.Rows()
	if first == 0 {
		t.Fatal("no rows from the first run")
	}
	e.Schedule(15, func() {})
	s.Ensure()
	e.RunAll()
	if s.Rows() <= first {
		t.Errorf("Rows = %d after second run, want > %d", s.Rows(), first)
	}
}

// TestSamplerValuesBeforeTick pins the nil-safety of Values on a
// sampler that never ticked (exporting an idle machine).
func TestSamplerValuesBeforeTick(t *testing.T) {
	s := NewSampler(sim.NewEngine(), 10)
	s.Gauge("g", func() float64 { return 0 })
	if v := s.Values(0); v != nil {
		t.Errorf("Values before first tick = %v, want nil", v)
	}
}
