package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Export renders recorded telemetry as Chrome trace-event JSON
// (the format chrome://tracing and https://ui.perfetto.dev load
// directly). Mapping:
//
//   - process (pid) = simulated node; a trailing process per capture
//     carries the sampler's counter tracks.
//   - thread (tid) = one timeline per node: tid 1 "net.out" holds the
//     fabric spans of messages the node sent (admission → destination
//     accept, plus a "stall" span when window admission blocked),
//     tid 2 "user.in" the user-message spans it received (first
//     fragment injected → handler dispatched), tid 0 "events" the
//     instants (drops, retransmits, acks, duplicate deliveries), and
//     tids 8..11 the node's four torus output links (serialisation
//     spans and queue-wait instants).
//   - ts/dur are simulated cycles rendered as microseconds — exact
//     integers, so export is deterministic and byte-identical for
//     identical runs (1 displayed µs = 1 cycle = 5 ns at 200 MHz).
//
// Spans are matched FIFO per message key, which is exact wherever
// event order is FIFO by construction (links serialise one message at
// a time; the fault-free fabrics deliver in admission order) and a
// best-effort pairing under fault-injected reordering.

// Capture is one machine's telemetry: a label (the config name), the
// recorder, and the sampler (either may be nil). Multiple captures
// export into one timeline with disjoint pid ranges.
type Capture struct {
	Label string
	Rec   *Recorder
	Smp   *Sampler
}

// Summary reports what an export wrote.
type Summary struct {
	// Records is the lifecycle records read from the rings.
	Records int
	// Events is the trace events written (metadata excluded).
	Events int
	// FragSpans / UserSpans / LinkSpans / Stalls / Instants break the
	// events down. UserSpans is one per completed user message — for a
	// full-run capture it equals the workload's Delivered count.
	FragSpans int
	UserSpans int
	LinkSpans int
	Stalls    int
	Instants  int
	// Samples is the sampler counter events written.
	Samples int
	// Overwritten counts records lost to ring wrap (grow RingSize when
	// nonzero and completeness matters).
	Overwritten uint64
	// OpenSpans counts span starts left unmatched at export time
	// (messages still in flight when the run stopped).
	OpenSpans int
}

// taggedRec is a record plus its ring's node, for the merged scan.
type taggedRec struct {
	Record
	node int32
}

// spanKey identifies a fragment's admission/delivery pairing.
type spanKey struct {
	src, dst int32
	id       uint64
	frag     uint8
	ack      bool
}

// userKey identifies a user message's inject/dispatch pairing.
type userKey struct {
	src, dst int32
	id       uint64
}

// chromeWriter emits trace events with explicit comma state and
// tracks (pid, tid) pairs for the metadata pass.
type chromeWriter struct {
	w     *bufio.Writer
	first bool
	used  map[[2]int]bool
}

func (cw *chromeWriter) sep() {
	if cw.first {
		cw.first = false
		return
	}
	cw.w.WriteString(",\n")
}

// event emits one complete ("X") or instant ("i") event.
func (cw *chromeWriter) span(pid, tid int, ts, dur uint64, name string) {
	cw.sep()
	fmt.Fprintf(cw.w, `{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%q}`, pid, tid, ts, dur, name)
	cw.used[[2]int{pid, tid}] = true
}

func (cw *chromeWriter) instant(pid, tid int, ts uint64, name string) {
	cw.sep()
	fmt.Fprintf(cw.w, `{"ph":"i","pid":%d,"tid":%d,"ts":%d,"s":"t","name":%q}`, pid, tid, ts, name)
	cw.used[[2]int{pid, tid}] = true
}

func (cw *chromeWriter) counter(pid int, ts uint64, name string, v float64) {
	cw.sep()
	fmt.Fprintf(cw.w, `{"ph":"C","pid":%d,"ts":%d,"name":%q,"args":{"v":%s}}`,
		pid, ts, name, strconv.FormatFloat(v, 'g', -1, 64))
	cw.used[[2]int{pid, 0}] = true
}

func (cw *chromeWriter) meta(pid int, kind, name string) {
	cw.sep()
	fmt.Fprintf(cw.w, `{"ph":"M","pid":%d,"name":%q,"args":{"name":%q}}`, pid, kind, name)
}

func (cw *chromeWriter) threadMeta(pid, tid int, name string) {
	cw.sep()
	fmt.Fprintf(cw.w, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`, pid, tid, name)
}

// Track tids within a node's process.
const (
	tidEvents = 0
	tidNetOut = 1
	tidUserIn = 2
	tidLink0  = 8 // + direction index (x+, x-, y+, y-)
)

var linkDirNames = [4]string{"x+", "x-", "y+", "y-"}

func tidName(tid int) string {
	switch {
	case tid == tidEvents:
		return "events"
	case tid == tidNetOut:
		return "net.out"
	case tid == tidUserIn:
		return "user.in"
	case tid >= tidLink0 && tid < tidLink0+4:
		return "link." + linkDirNames[tid-tidLink0]
	}
	return fmt.Sprintf("tid%d", tid)
}

// WriteChrome writes the captures as one Chrome trace-event JSON
// document. Byte-identical output for identical simulations.
func WriteChrome(w io.Writer, caps ...Capture) (Summary, error) {
	var sum Summary
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw, first: true, used: make(map[[2]int]bool)}
	bw.WriteString("{\"traceEvents\":[\n")

	pidBase := 0
	type pidLabel struct {
		pid  int
		name string
	}
	var pids []pidLabel
	for _, c := range caps {
		nodes := 0
		if c.Rec != nil {
			nodes = c.Rec.Nodes()
		}
		prefix := ""
		if c.Label != "" {
			prefix = c.Label + "/"
		}
		for n := 0; n < nodes; n++ {
			pids = append(pids, pidLabel{pidBase + n, fmt.Sprintf("%snode%d", prefix, n)})
		}
		if c.Rec != nil {
			sum.Overwritten += c.Rec.Overwritten()
			exportRecords(cw, c.Rec, pidBase, &sum)
		}
		if c.Smp != nil {
			ctrPid := pidBase + nodes
			pids = append(pids, pidLabel{ctrPid, prefix + "series"})
			exportSamples(cw, c.Smp, ctrPid, &sum)
		}
		pidBase += nodes + 1
	}

	// Metadata last (order is irrelevant to the format): process names
	// and the names of every thread track actually used.
	for _, p := range pids {
		cw.meta(p.pid, "process_name", p.name)
	}
	var tracks [][2]int
	for k := range cw.used {
		tracks = append(tracks, k)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i][0] != tracks[j][0] {
			return tracks[i][0] < tracks[j][0]
		}
		return tracks[i][1] < tracks[j][1]
	})
	for _, t := range tracks {
		cw.threadMeta(t[0], t[1], tidName(t[1]))
	}

	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return sum, bw.Flush()
}

// exportRecords scans one recorder's merged rings, pairing span
// starts with their ends and emitting instants for the rest.
func exportRecords(cw *chromeWriter, rec *Recorder, pidBase int, sum *Summary) {
	var all []taggedRec
	var buf []Record
	for n := 0; n < rec.Nodes(); n++ {
		buf = rec.records(n, buf[:0])
		for _, r := range buf {
			all = append(all, taggedRec{r, int32(n)})
		}
	}
	// Stable by time: rings are individually chronological and were
	// appended in node order, so ties resolve node-low-first — a fixed,
	// deterministic order.
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	sum.Records += len(all)

	injects := make(map[spanKey][]uint64) // KInject awaiting KAdmit
	admits := make(map[spanKey][]uint64)  // KAdmit awaiting KDeliver
	users := make(map[userKey][]uint64)   // first-frag KInject awaiting KUserDeliver
	links := make(map[int32][]taggedRec)  // KLinkTx awaiting KLinkFree

	popT := func(m map[spanKey][]uint64, k spanKey) (uint64, bool) {
		q := m[k]
		if len(q) == 0 {
			return 0, false
		}
		m[k] = q[1:]
		return q[0], true
	}

	for _, r := range all {
		pid := pidBase + int(r.node)
		ack := r.Flags&FlagAck != 0
		k := spanKey{r.Src, r.Dst, r.ID, r.Frag, ack}
		switch r.Kind {
		case KInject:
			injects[k] = append(injects[k], r.At)
			if !ack && r.Flags&FlagDup == 0 && r.Frag == 0 {
				uk := userKey{r.Src, r.Dst, r.ID}
				users[uk] = append(users[uk], r.At)
			}
		case KAdmit:
			if at, ok := popT(injects, k); ok && r.At > at {
				cw.span(pid, tidNetOut, at, r.At-at, spanName("stall", &r.Record, ack))
				sum.Stalls++
				sum.Events++
			}
			admits[k] = append(admits[k], r.At)
		case KDeliver:
			if r.Flags&FlagDup != 0 {
				cw.instant(pid, tidEvents, r.At, spanName("dup", &r.Record, ack))
				sum.Instants++
				sum.Events++
				break
			}
			if at, ok := popT(admits, k); ok {
				// The span lives on the *sender's* outbound track: where
				// the message's fabric time was spent.
				cw.span(pidBase+int(r.Src), tidNetOut, at, r.At-at, spanName("m", &r.Record, ack))
				sum.FragSpans++
				sum.Events++
			}
		case KUserDeliver:
			uk := userKey{r.Src, r.Dst, r.ID}
			if q := users[uk]; len(q) > 0 {
				users[uk] = q[1:]
				cw.span(pid, tidUserIn, q[0], r.At-q[0], fmt.Sprintf("u%d n%d>n%d", r.ID, r.Src, r.Dst))
				sum.UserSpans++
				sum.Events++
			}
		case KLinkTx:
			links[r.Link] = append(links[r.Link], r)
		case KLinkFree:
			if q := links[r.Link]; len(q) > 0 {
				tx := q[0]
				links[r.Link] = q[1:]
				cw.span(pid, linkTid(r.Link), tx.At, r.At-tx.At, spanName("tx", &tx.Record, tx.Flags&FlagAck != 0))
				sum.LinkSpans++
				sum.Events++
			}
		case KLinkWait:
			cw.instant(pid, linkTid(r.Link), r.At, spanName("wait", &r.Record, ack))
			sum.Instants++
			sum.Events++
		case KDrop:
			cw.instant(pid, tidEvents, r.At, spanName("drop", &r.Record, ack))
			sum.Instants++
			sum.Events++
		case KRetx:
			cw.instant(pid, tidEvents, r.At, fmt.Sprintf("retx n%d>n%d seq%d", r.Src, r.Dst, r.ID))
			sum.Instants++
			sum.Events++
		case KAck:
			cw.instant(pid, tidEvents, r.At, fmt.Sprintf("ack n%d>n%d #%d", r.Src, r.Dst, r.ID))
			sum.Instants++
			sum.Events++
		}
	}

	for _, q := range injects {
		sum.OpenSpans += len(q)
	}
	for _, q := range admits {
		sum.OpenSpans += len(q)
	}
	for _, q := range users {
		sum.OpenSpans += len(q)
	}
	for _, q := range links {
		sum.OpenSpans += len(q)
	}
}

// linkTid maps a torus link index to its owner-process thread: links
// are numbered node*4+direction (dimension-order x+, x-, y+, y-).
func linkTid(li int32) int { return tidLink0 + int(li&3) }

// spanName renders a message-scoped event name.
func spanName(verb string, r *Record, ack bool) string {
	if ack {
		return fmt.Sprintf("%s ack n%d>n%d", verb, r.Src, r.Dst)
	}
	return fmt.Sprintf("%s m%d.%d n%d>n%d", verb, r.ID, r.Frag, r.Src, r.Dst)
}

// exportSamples renders the sampler's series as counter tracks on the
// capture's trailing process.
func exportSamples(cw *chromeWriter, s *Sampler, pid int, sum *Summary) {
	times := s.Times()
	for c := 0; c < s.Columns(); c++ {
		name := s.ColumnName(c)
		vals := s.Values(c)
		for i, t := range times {
			cw.counter(pid, t, name, vals[i])
			sum.Samples++
			sum.Events++
		}
	}
}
