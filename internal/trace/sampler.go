package trace

import (
	"repro/internal/sim"
)

// Sampler snapshots registered columns every Every cycles into
// columnar series. It is pure observation: the tick event consumes no
// simulated time, schedules nothing a process can see, and only
// *relabels* the engine's event sequence numbers — a monotone shift
// that preserves the relative order of every other event, so an
// enabled sampler leaves simulation behaviour (counters, latencies,
// delivered counts) exactly as a disabled one does. The one visible
// effect: a run's reported end time can extend to the last tick.
//
// The tick re-schedules itself only while other events remain
// pending; a quiescent engine's final tick simply stops, so RunAll
// still terminates. Machines re-arm the sampler (Ensure) at the start
// of every Run, covering back-to-back scenario runs.
type Sampler struct {
	eng   *sim.Engine
	every sim.Time

	cols []column
	// times and vals are the columnar series: times[i] is row i's
	// cycle stamp, vals[c][i] column c's sample.
	times []uint64
	vals  [][]float64

	tickFn func()
	armed  bool
}

// column is one registered series.
type column struct {
	name  string
	probe func() float64
	// delta turns a monotone probe (counter) into per-interval deltas.
	delta bool
	last  float64
}

// NewSampler builds a sampler ticking every `every` cycles. Columns
// are registered before the first run; Ensure arms the first tick.
func NewSampler(eng *sim.Engine, every sim.Time) *Sampler {
	if every < 1 {
		every = 1
	}
	s := &Sampler{eng: eng, every: every}
	s.tickFn = func() { s.tick() }
	return s
}

// Every returns the sampling period in cycles.
func (s *Sampler) Every() sim.Time { return s.every }

// Gauge registers a point-in-time column (queue depth, busy links).
func (s *Sampler) Gauge(name string, probe func() float64) {
	s.cols = append(s.cols, column{name: name, probe: probe})
}

// Delta registers a monotone column sampled as per-interval deltas
// (counter increments since the previous row).
func (s *Sampler) Delta(name string, probe func() float64) {
	s.cols = append(s.cols, column{name: name, probe: probe, delta: true})
}

// Counter registers a sim counter's per-interval deltas.
func (s *Sampler) Counter(name string, c *sim.Counter) {
	s.Delta(name, func() float64 { return float64(c.Value()) })
}

// Ensure arms the next tick if none is pending. Called by the machine
// at the start of every Run so sequential scenario runs keep
// sampling.
func (s *Sampler) Ensure() {
	if s.armed {
		return
	}
	s.armed = true
	s.eng.Schedule(s.every, s.tickFn)
}

// tick records one row and re-arms while other work remains. The
// pending check is what keeps RunAll terminating: with no other
// events left there is nothing more to observe.
func (s *Sampler) tick() {
	s.armed = false
	s.times = append(s.times, uint64(s.eng.Now()))
	if s.vals == nil {
		s.vals = make([][]float64, len(s.cols))
	}
	for i := range s.cols {
		c := &s.cols[i]
		v := c.probe()
		if c.delta {
			v, c.last = v-c.last, v
		}
		s.vals[i] = append(s.vals[i], v)
	}
	if s.eng.Pending() > 0 {
		s.armed = true
		s.eng.Schedule(s.every, s.tickFn)
	}
}

// Rows returns the number of recorded samples.
func (s *Sampler) Rows() int { return len(s.times) }

// Header returns "cycle" plus the registered column names.
func (s *Sampler) Header() []string {
	h := make([]string, 0, len(s.cols)+1)
	h = append(h, "cycle")
	for i := range s.cols {
		h = append(h, s.cols[i].name)
	}
	return h
}

// Times returns the row cycle stamps.
func (s *Sampler) Times() []uint64 { return s.times }

// Values returns column c's series (nil before the first tick).
func (s *Sampler) Values(c int) []float64 {
	if c >= len(s.vals) {
		return nil
	}
	return s.vals[c]
}

// Columns returns the registered column count.
func (s *Sampler) Columns() int { return len(s.cols) }

// ColumnName returns column c's name.
func (s *Sampler) ColumnName(c int) string { return s.cols[c].name }
