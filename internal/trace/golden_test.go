package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenScenario runs the pinned telemetry scenario — a 4-node torus
// under CNI512Q with a fixed message pattern (node 0 streams three
// 400-byte messages to its antipode and one to a neighbour, node 1
// sends two to node 2) — and returns the run result plus per-node
// delivery counts. The same scenario underlies the golden export, the
// byte-determinism test, and the inertness comparisons.
func goldenScenario(t *testing.T, spec params.Trace, f params.Faults) (*scenario.Machine, *scenario.Trace, [4]int) {
	t.Helper()
	cfg := params.Config{
		Nodes: 4, NI: params.CNI512Q, Bus: params.MemoryBus,
		Topology: params.TopoTorus, Trace: spec, Faults: f,
	}
	m, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const h = 7
	var got [4]int
	// Every node polls until every delivery has landed (the sim is
	// cooperative, so the shared array is safe): with the reliable
	// transport on, a sender that stops polling stops retransmitting,
	// and a dropped frame would spin the receivers forever.
	allDone := func() bool { return got[1] >= 1 && got[2] >= 2 && got[3] >= 3 }
	node := func(id, sendDst, sends, size int) scenario.NodeFunc {
		return func(ep *scenario.Endpoint) {
			ep.Handle(h, func(d *scenario.Delivery) { got[id]++ })
			for i := 0; i < sends; i++ {
				ep.SendTo(sendDst, h, size, nil)
			}
			ep.PollUntil(allDone)
		}
	}
	sc := scenario.New()
	sc.At(0, func(ep *scenario.Endpoint) {
		ep.Handle(h, func(d *scenario.Delivery) { got[0]++ })
		for i := 0; i < 3; i++ {
			ep.SendTo(3, h, 400, nil)
		}
		ep.SendTo(1, h, 64, nil)
		ep.PollUntil(allDone)
	})
	sc.At(1, node(1, 2, 2, 64))
	sc.At(2, node(2, 0, 0, 0))
	sc.At(3, node(3, 0, 0, 0))
	tr := m.Run(sc)
	return m, tr, got
}

// exportGolden renders the golden scenario's trace.
func exportGolden(t *testing.T) ([]byte, trace.Summary) {
	t.Helper()
	m, _, got := goldenScenario(t,
		params.Trace{Enabled: true, RingSize: 4096, SampleEvery: 500}, params.Faults{})
	defer m.Close()
	if got != [4]int{0, 1, 2, 3} {
		t.Fatalf("deliveries = %v, want [0 1 2 3]", got)
	}
	var buf bytes.Buffer
	sum, err := m.WriteTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sum
}

// TestTraceGoldenTorus4 pins the 4-node torus scenario's Chrome trace
// JSON byte-for-byte (regenerate with -update) and validates the
// schema Perfetto expects: every event carries ph/pid/name, spans
// carry ts/dur/tid, instants ts/s, counters ts/args.
func TestTraceGoldenTorus4(t *testing.T) {
	out, sum := exportGolden(t)
	if sum.UserSpans != 6 {
		t.Errorf("UserSpans = %d, want 6 (one per delivered user message)", sum.UserSpans)
	}
	if sum.FragSpans == 0 || sum.LinkSpans == 0 || sum.Samples == 0 {
		t.Errorf("summary %+v: fragment, link, and sample tracks must all be populated", sum)
	}
	if sum.Overwritten != 0 {
		t.Errorf("golden ring wrapped (%d lost): grow RingSize", sum.Overwritten)
	}

	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		switch ph {
		case "X":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("span %d has no ts: %v", i, ev)
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("span %d has no dur: %v", i, ev)
			}
			if _, ok := ev["tid"].(float64); !ok {
				t.Fatalf("span %d has no tid: %v", i, ev)
			}
		case "i":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("instant %d has no ts: %v", i, ev)
			}
			if _, ok := ev["s"].(string); !ok {
				t.Fatalf("instant %d has no scope: %v", i, ev)
			}
		case "C":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("counter %d has no ts: %v", i, ev)
			}
			if _, ok := ev["args"].(map[string]any); !ok {
				t.Fatalf("counter %d has no args: %v", i, ev)
			}
		case "M":
			if _, ok := ev["args"].(map[string]any); !ok {
				t.Fatalf("metadata %d has no args: %v", i, ev)
			}
		default:
			t.Fatalf("event %d has unknown phase %q", i, ph)
		}
	}

	golden := filepath.Join("testdata", "torus4_chrome.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/trace -run TraceGolden -update)", err)
	}
	if !bytes.Equal(out, want) {
		t.Errorf("export drifted from %s (%d bytes vs %d): a timing- or export-format change must regenerate the golden deliberately (-update)",
			golden, len(out), len(want))
	}
}

// TestTraceByteDeterminism pins the export contract the CI
// determinism job re-runs (-count=2): identical machines and
// scenarios produce byte-identical trace JSON.
func TestTraceByteDeterminism(t *testing.T) {
	a, _ := exportGolden(t)
	b, _ := exportGolden(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs exported different trace bytes")
	}
}

// TestTraceRecorderInert pins the other half of the zero-overhead
// contract: a recorder-only trace (no sampler) leaves the run result
// — end time, every counter delta, every histogram — exactly as an
// untraced build, because hooks neither consume simulated time nor
// schedule events.
func TestTraceRecorderInert(t *testing.T) {
	for _, f := range []params.Faults{{}, {Seed: 3, DropProb: 0.02, Transport: true}} {
		m0, tr0, got0 := goldenScenario(t, params.Trace{}, f)
		m0.Close()
		m1, tr1, got1 := goldenScenario(t, params.Trace{Enabled: true}, f)
		m1.Close()
		if got0 != got1 {
			t.Errorf("faults=%+v: deliveries diverged: %v vs %v", f, got0, got1)
		}
		if !reflect.DeepEqual(tr0, tr1) {
			t.Errorf("faults=%+v: traced run result diverged from untraced:\nuntraced: %+v\ntraced:   %+v", f, tr0, tr1)
		}
	}
}

// TestTraceSamplerInert pins the sampler's behavioural footprint: all
// simulation results (deliveries, counter deltas, histograms) are
// unchanged; only the run's reported end time may extend to the last
// tick.
func TestTraceSamplerInert(t *testing.T) {
	m0, tr0, got0 := goldenScenario(t, params.Trace{}, params.Faults{})
	m0.Close()
	m1, tr1, got1 := goldenScenario(t, params.Trace{Enabled: true, SampleEvery: 500}, params.Faults{})
	m1.Close()
	if got0 != got1 {
		t.Errorf("deliveries diverged: %v vs %v", got0, got1)
	}
	if !reflect.DeepEqual(tr0.Counters, tr1.Counters) {
		t.Errorf("counters diverged:\nuntraced: %v\nsampled:  %v", tr0.Counters, tr1.Counters)
	}
	if !reflect.DeepEqual(tr0.Histograms, tr1.Histograms) {
		t.Error("histograms diverged under sampling")
	}
	if tr0.BusOccupancy != tr1.BusOccupancy {
		t.Errorf("bus occupancy diverged: %d vs %d", tr0.BusOccupancy, tr1.BusOccupancy)
	}
	if tr1.End < tr0.End {
		t.Errorf("sampled run ended at %d, before the untraced %d", tr1.End, tr0.End)
	}
	if d := tr1.End - tr0.End; d >= 500 {
		t.Errorf("sampled end overshot by %d cycles, more than one period", d)
	}
}
