// Package trace is the simulator's telemetry subsystem: a
// message-lifecycle recorder and a sampled time-series collector,
// both zero-overhead when disabled (the same contract internal/fault
// keeps — a zero-value params.Trace builds nothing and every run is
// byte-identical to a pre-trace simulator).
//
// The recorder is built for the hot path: hooks in the fabric edge,
// the torus links, and the reliable transport write fixed-size
// 32-byte records into preallocated per-node rings. No interface{},
// no closures, no allocation per event — the enabled path is pinned
// at 0 allocs/event by the network conformance tests, and the
// disabled path is a single nil check. Export (export.go) renders the
// rings as Chrome trace-event JSON that Perfetto loads directly; the
// sampler (sampler.go) snapshots registered gauges and counters every
// N cycles into columnar series.
package trace

import (
	"repro/internal/sim"
)

// Kind classifies one lifecycle record. The hooks live in
// internal/network (fabric edge + torus links) and internal/msg (the
// reliable tier and user-message dispatch).
type Kind uint8

const (
	// KInject: a device process entered fabric admission (before any
	// sliding-window stall). Recorded on the source node.
	KInject Kind = 1 + iota
	// KAdmit: the fabric admitted the message (window space held,
	// SentAt stamped). Recorded on the source node; the matching
	// KDeliver closes the fragment's fabric span.
	KAdmit
	// KLinkTx: a torus link began serialising the message. Recorded on
	// the node owning the link; KLinkFree closes the link span.
	KLinkTx
	// KLinkFree: the torus link finished serialising and is free.
	KLinkFree
	// KLinkWait: the message queued behind a busy torus link.
	KLinkWait
	// KDeliver: the destination port accepted the message. Recorded on
	// the destination node.
	KDeliver
	// KDrop: the fault layer consumed the message at the destination
	// edge (injected drop or crashed endpoint).
	KDrop
	// KAck: the reliable transport sent a cumulative ack (ID carries
	// the acked sequence number).
	KAck
	// KRetx: the reliable transport retransmitted a stream head (ID
	// carries the frame's sequence number).
	KRetx
	// KUserDeliver: the messaging layer completed reassembly and
	// dispatched a user message to its handler. One record per
	// delivered user message — the unit the workload's Delivered
	// count and the export's user spans both measure.
	KUserDeliver

	kindCount
)

var kindNames = [kindCount]string{
	KInject:      "inject",
	KAdmit:       "admit",
	KLinkTx:      "link.tx",
	KLinkFree:    "link.free",
	KLinkWait:    "link.wait",
	KDeliver:     "deliver",
	KDrop:        "drop",
	KAck:         "ack",
	KRetx:        "retx",
	KUserDeliver: "user.deliver",
}

// String returns the kind's stable export name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "?"
}

// Record flags.
const (
	// FlagAck marks a transport ack frame's fabric records.
	FlagAck uint8 = 1 << iota
	// FlagDup marks a fault-injected duplicate copy's records.
	FlagDup
)

// Record is one lifecycle event: 32 bytes, fixed layout, no pointers
// — a ring of them is a single allocation and writing one is a plain
// store. Src/Dst/Frag identify the network message (plus ID, the
// sender-local user-message id); Link is the torus link index for
// link records and -1 otherwise.
type Record struct {
	At    uint64 // simulated time, cycles
	ID    uint64 // user-message id (KAck/KRetx: sequence number)
	Link  int32  // torus link index, -1 when not a link record
	Src   int32
	Dst   int32
	Kind  Kind
	Frag  uint8
	Flags uint8
	_     uint8
}

// ring is one node's record ring: head counts every record ever
// written, recs[head%len] is the next slot, and a wrapped ring keeps
// the newest records (the export reports how many were overwritten).
type ring struct {
	recs []Record
	head uint64
}

// Recorder collects lifecycle records for one machine. One ring per
// node, preallocated at construction; Note is the only hot-path
// entry.
type Recorder struct {
	eng   *sim.Engine
	sh    *sim.ShardSet // non-nil on sharded machines: per-node clocks
	rings []ring
	size  uint64
}

// NewRecorder builds a recorder for nodes nodes with ringSize records
// per node.
func NewRecorder(eng *sim.Engine, nodes, ringSize int) *Recorder {
	if ringSize < 1 {
		ringSize = 1
	}
	r := &Recorder{eng: eng, rings: make([]ring, nodes), size: uint64(ringSize)}
	for i := range r.rings {
		r.rings[i].recs = make([]Record, ringSize)
	}
	return r
}

// Nodes returns the ring count.
func (r *Recorder) Nodes() int { return len(r.rings) }

// Shard switches the recorder to per-node clocks: on a sharded
// machine each record is stamped with the clock of the shard that
// owns the noted node (records are only ever written by that shard,
// so each ring stays single-writer).
func (r *Recorder) Shard(sh *sim.ShardSet) { r.sh = sh }

// Note appends one record to node's ring, stamped with the current
// simulated time. It neither allocates nor consumes simulated time.
func (r *Recorder) Note(node int, k Kind, id uint64, link, src, dst int32, frag, flags uint8) {
	eng := r.eng
	if r.sh != nil {
		eng = r.sh.Engine(node)
	}
	rg := &r.rings[node]
	rg.recs[rg.head%r.size] = Record{
		At: uint64(eng.Now()), ID: id, Link: link,
		Src: src, Dst: dst, Kind: k, Frag: frag, Flags: flags,
	}
	rg.head++
}

// Len returns the number of records node's ring currently holds.
func (r *Recorder) Len(node int) int {
	if h := r.rings[node].head; h < r.size {
		return int(h)
	}
	return int(r.size)
}

// Overwritten returns how many records have been lost to ring wrap
// across all nodes.
func (r *Recorder) Overwritten() uint64 {
	var n uint64
	for i := range r.rings {
		if h := r.rings[i].head; h > r.size {
			n += h - r.size
		}
	}
	return n
}

// records appends node's ring contents, oldest first, to dst.
func (r *Recorder) records(node int, dst []Record) []Record {
	rg := &r.rings[node]
	if rg.head <= r.size {
		return append(dst, rg.recs[:rg.head]...)
	}
	at := rg.head % r.size
	dst = append(dst, rg.recs[at:]...)
	return append(dst, rg.recs[:at]...)
}
