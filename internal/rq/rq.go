// Package rq implements Remote Queues (Brewer et al., SPAA'95) on top
// of the CNI messaging layer, as the paper's §6 suggests:
// "Implementing Remote Queues with CNIs is straightforward and offers
// advantages over CM-5, Intel Paragon, MIT Alewife, and Cray T3D
// network interfaces."
//
// Remote Queues provide a communication model similar to active
// messages except that extracting a message from the network and
// invoking its receive handler are decoupled: the sender enqueues
// onto a named queue at the destination; the receiver dequeues and
// processes at its own pace. On a CNI the arriving messages already
// sit in cachable memory, so the "queue" costs nothing extra beyond
// the demultiplex.
package rq

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/sim"
)

// hEnqueue is the active-message handler id the package reserves.
const hEnqueue = 80

// Item is one dequeued remote-queue element.
type Item struct {
	Src     int
	Size    int
	Payload any
}

// Endpoint gives one node a set of named remote queues.
type Endpoint struct {
	node   *machine.Node
	queues map[int][]Item
}

// New wires remote-queue support onto every node of m and returns one
// Endpoint per node. Call once per machine; the reserved handler id
// must not be reused.
func New(m *machine.Machine) []*Endpoint {
	eps := make([]*Endpoint, len(m.Nodes))
	for _, n := range m.Nodes {
		ep := &Endpoint{node: n, queues: make(map[int][]Item)}
		eps[n.ID] = ep
		n.Msgr.Register(hEnqueue, func(ctx *msg.Context) {
			qid := ctx.Payload.(payload).qid
			ep.queues[qid] = append(ep.queues[qid], Item{
				Src:     ctx.Src,
				Size:    ctx.Size,
				Payload: ctx.Payload.(payload).data,
			})
		})
	}
	return eps
}

// payload wraps the user payload with the queue id.
type payload struct {
	qid  int
	data any
}

// Enqueue appends size payload bytes onto queue qid at node dst.
func (e *Endpoint) Enqueue(p *sim.Process, dst, qid, size int, data any) {
	e.node.Msgr.Send(p, dst, hEnqueue, size, payload{qid: qid, data: data})
}

// TryDequeue removes the oldest element of local queue qid. It first
// drains any messages waiting in the NI (the decoupling: extraction
// happens here, under receiver control, not in a handler at arrival).
func (e *Endpoint) TryDequeue(p *sim.Process, qid int) (Item, bool) {
	e.node.Msgr.DrainAvailable(p)
	q := e.queues[qid]
	if len(q) == 0 {
		return Item{}, false
	}
	it := q[0]
	e.queues[qid] = q[1:]
	return it, true
}

// Dequeue blocks (in simulated time) until queue qid has an element.
func (e *Endpoint) Dequeue(p *sim.Process, qid int) Item {
	for {
		if it, ok := e.TryDequeue(p, qid); ok {
			return it
		}
		e.node.CPU.Compute(p, msg.PollLoopCycles)
	}
}

// Len reports the locally visible length of queue qid (not counting
// messages still in the NI).
func (e *Endpoint) Len(qid int) int { return len(e.queues[qid]) }

// String describes the endpoint.
func (e *Endpoint) String() string {
	return fmt.Sprintf("rq.Endpoint{node=%d queues=%d}", e.node.ID, len(e.queues))
}
