package rq

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/params"
	"repro/internal/sim"
)

func newMachine(t *testing.T, ni params.NIKind) *machine.Machine {
	t.Helper()
	return machine.New(params.Config{Nodes: 2, NI: ni, Bus: params.MemoryBus})
}

func TestEnqueueDequeue(t *testing.T) {
	m := newMachine(t, params.CNI512Q)
	eps := New(m)
	const q = 7
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < 5; i++ {
			eps[0].Enqueue(p, 1, q, 64, i)
		}
	})
	var got []int
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < 5; i++ {
			it := eps[1].Dequeue(p, q)
			got = append(got, it.Payload.(int))
			if it.Src != 0 || it.Size != 64 {
				t.Errorf("item meta = %+v", it)
			}
		}
	})
	m.Run(sim.Forever)
	m.Stop()
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestQueuesAreIndependent(t *testing.T) {
	m := newMachine(t, params.CNI512Q)
	eps := New(m)
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		eps[0].Enqueue(p, 1, 1, 16, "a")
		eps[0].Enqueue(p, 1, 2, 16, "b")
		eps[0].Enqueue(p, 1, 1, 16, "c")
	})
	var q1, q2 []string
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		q2 = append(q2, eps[1].Dequeue(p, 2).Payload.(string))
		q1 = append(q1, eps[1].Dequeue(p, 1).Payload.(string))
		q1 = append(q1, eps[1].Dequeue(p, 1).Payload.(string))
	})
	m.Run(sim.Forever)
	m.Stop()
	if len(q1) != 2 || q1[0] != "a" || q1[1] != "c" || len(q2) != 1 || q2[0] != "b" {
		t.Fatalf("demux wrong: q1=%v q2=%v", q1, q2)
	}
}

func TestTryDequeueEmpty(t *testing.T) {
	m := newMachine(t, params.CNI512Q)
	eps := New(m)
	ok := true
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		_, ok = eps[1].TryDequeue(p, 3)
	})
	m.Run(sim.Forever)
	m.Stop()
	if ok {
		t.Fatal("TryDequeue on empty queue returned ok")
	}
}

// TestDecoupledExtraction: elements can sit in the remote queue while
// the receiver does other work — arrival does not force processing.
func TestDecoupledExtraction(t *testing.T) {
	m := newMachine(t, params.CNI16Qm)
	eps := New(m)
	const q = 1
	m.Spawn(0, func(p *sim.Process, n *machine.Node) {
		for i := 0; i < 10; i++ {
			eps[0].Enqueue(p, 1, q, 100, i)
		}
	})
	m.Spawn(1, func(p *sim.Process, n *machine.Node) {
		n.CPU.Compute(p, 50000) // busy: messages accumulate
		// One drain pulls everything already arrived into the queue.
		if _, ok := eps[1].TryDequeue(p, q); !ok {
			t.Error("nothing arrived during the busy period")
		}
		if eps[1].Len(q) == 0 {
			t.Error("queue should hold backlog after one dequeue")
		}
		for eps[1].Len(q) > 0 {
			eps[1].Dequeue(p, q)
		}
	})
	m.Run(sim.Forever)
	m.Stop()
}
