package cni

import (
	"strings"
	"testing"
)

func TestExperimentDispatch(t *testing.T) {
	// Static tables are cheap; verify dispatch plumbing end to end.
	for _, name := range []string{"table1", "table2", "table3", "table4"} {
		tb, err := Experiment(name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tb.String() == "" || len(tb.Rows) == 0 {
			t.Fatalf("%s rendered empty", name)
		}
	}
	if _, err := Experiment("nope", nil); err == nil {
		t.Fatal("unknown experiment should error")
	}
	for _, name := range ExperimentNames() {
		if strings.TrimSpace(name) == "" {
			t.Fatal("empty experiment name listed")
		}
	}
}

func TestPublicQueue(t *testing.T) {
	q := NewQueue[string](4)
	if !q.TryEnqueue("a") || !q.TryEnqueue("b") {
		t.Fatal("enqueue failed")
	}
	if v, ok := q.TryDequeue(); !ok || v != "a" {
		t.Fatalf("dequeue = %q,%v", v, ok)
	}
	var r Register[int]
	r.Publish(3)
	if v, ok := r.Take(); !ok || v != 3 {
		t.Fatalf("register take = %d,%v", v, ok)
	}
}

func TestPublicRoundTrip(t *testing.T) {
	cfg := Config{Nodes: 2, NI: CNI512Q, Bus: MemoryBus}
	rtt := RoundTrip(cfg, 64, 2)
	if rtt == 0 {
		t.Fatal("zero round trip")
	}
	if us := Microseconds(rtt); us <= 0 || us > 100 {
		t.Fatalf("implausible: %.2f us", us)
	}
}

func TestPublicBenchmarkList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 5 {
		t.Fatalf("Benchmarks = %v", names)
	}
	if _, err := RunBenchmark("nope", Config{Nodes: 2, NI: NI2w, Bus: MemoryBus}); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestConfigValidationSurface(t *testing.T) {
	bad := Config{Nodes: 2, NI: CNI16Qm, Bus: IOBus}
	if bad.Validate() == nil {
		t.Fatal("CNI16Qm@io must be invalid")
	}
	ok := Config{Nodes: 2, NI: DMA, Bus: MemoryBus}
	if err := ok.Validate(); err != nil {
		t.Fatalf("DMA@memory should validate: %v", err)
	}
}

func TestPublicVarQueueViaCore(t *testing.T) {
	// The variable-length queue is exercised through the facade's
	// fixed-size alias cousins; spot-check interoperability of the
	// exported generics.
	q := NewQueue[[]byte](8)
	q.Enqueue([]byte("xyz"))
	if v, ok := q.TryDequeue(); !ok || string(v) != "xyz" {
		t.Fatalf("got %q, %v", v, ok)
	}
}
